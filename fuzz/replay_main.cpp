// Standalone driver that replays corpus files through a fuzz harness's
// LLVMFuzzerTestOneInput. Built with any compiler (no libFuzzer
// runtime), it is what the ctest corpus-replay tests and non-clang
// developers run:
//
//   fuzz_packets_replay fuzz/corpus/packets            # whole directory
//   fuzz_scheduler_replay crash-1234.bin               # single repro
//
// Exit status: 0 when every input ran clean, 1 on empty/unreadable
// arguments. Invariant violations abort (same behaviour as the fuzzer).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

bool run_file(const std::filesystem::path& path) {
    std::ifstream file(path, std::ios::binary);
    if (!file) {
        std::fprintf(stderr, "replay: cannot read %s\n", path.c_str());
        return false;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(file)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <corpus-dir-or-file>...\n"
                     "replays each input through LLVMFuzzerTestOneInput\n",
                     argv[0]);
        return 1;
    }
    std::size_t ran = 0;
    bool ok = true;
    for (int i = 1; i < argc; ++i) {
        const std::filesystem::path arg(argv[i]);
        if (std::filesystem::is_directory(arg)) {
            std::vector<std::filesystem::path> files;
            for (const auto& entry :
                 std::filesystem::directory_iterator(arg)) {
                if (entry.is_regular_file()) files.push_back(entry.path());
            }
            // Deterministic order regardless of directory enumeration.
            std::sort(files.begin(), files.end());
            for (const auto& f : files) {
                ok = run_file(f) && ok;
                ++ran;
            }
        } else {
            ok = run_file(arg) && ok;
            ++ran;
        }
    }
    if (ran == 0) {
        std::fprintf(stderr, "replay: no inputs found\n");
        return 1;
    }
    if (!ok) {
        std::fprintf(stderr, "replay: unreadable input(s)\n");
        return 1;
    }
    std::printf("replay: %zu input(s) ran clean\n", ran);
    return 0;
}
