// Fuzz harness for the Clint wire codecs (§4.1 config/grant packets,
// docs/clint.md). Three properties, checked on every input:
//
//   1. decode() never crashes, whatever the bytes — truncated, oversized,
//      mistyped, or CRC-corrupt frames must all be rejected cleanly.
//   2. Accepted frames round-trip: encode(decode(wire)) == wire, so the
//      decoder cannot "repair" a frame into something the encoder would
//      not produce.
//   3. Field round-trip: encode() of any packet built from fuzz-chosen
//      field values decodes back to the same packet, and a single-byte
//      corruption of that encoding is always rejected (CRC-16 detects
//      every burst error of <= 16 bits, and the type tag guards byte 0).
//
// Seed corpus: fuzz/corpus/packets (tools/make_fuzz_corpus.py).

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "clint/packets.hpp"
#include "fuzz_common.hpp"

namespace {

using lcf::clint::ConfigPacket;
using lcf::clint::GrantPacket;

std::uint16_t u16(lcf::fuzz::ByteReader& in) {
    // Two statements: the evaluation order of `|` operands is
    // unspecified, and corpus semantics must not depend on the compiler.
    const unsigned hi = in.u8();
    const unsigned lo = in.u8();
    return static_cast<std::uint16_t>((hi << 8) | lo);
}

template <typename Packet>
void check_accepted_roundtrip(std::span<const std::uint8_t> wire) {
    const std::optional<Packet> decoded = Packet::decode(wire);
    if (!decoded) return;
    const std::vector<std::uint8_t> re = decoded->encode();
    LCF_FUZZ_ASSERT(re.size() == wire.size(),
                    "re-encode changed wire size: %zu -> %zu", wire.size(),
                    re.size());
    for (std::size_t i = 0; i < wire.size(); ++i) {
        LCF_FUZZ_ASSERT(re[i] == wire[i],
                        "re-encode diverges at byte %zu: %02x -> %02x", i,
                        wire[i], re[i]);
    }
}

template <typename Packet>
void check_field_roundtrip(const Packet& p, lcf::fuzz::ByteReader& in) {
    std::vector<std::uint8_t> wire = p.encode();
    LCF_FUZZ_ASSERT(wire.size() == Packet::kWireSize,
                    "encode produced %zu bytes, expected %zu", wire.size(),
                    Packet::kWireSize);
    const std::optional<Packet> back = Packet::decode(wire);
    LCF_FUZZ_ASSERT(back.has_value(), "encode() output rejected by decode()");
    LCF_FUZZ_ASSERT(*back == p, "field round-trip changed the packet");

    // Any single corrupted byte must be caught: byte 0 by the type tag,
    // everything else by the CRC (a <= 8-bit burst).
    const std::size_t at = in.index(wire.size());
    const std::uint8_t flip = static_cast<std::uint8_t>(in.u8() | 1u);
    wire[at] ^= flip;
    LCF_FUZZ_ASSERT(!Packet::decode(wire).has_value(),
                    "single-byte corruption (byte %zu ^ %02x) was accepted",
                    at, flip);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    // Property 1 + 2: the raw input as a hostile wire frame.
    const std::span<const std::uint8_t> wire(data, size);
    check_accepted_roundtrip<ConfigPacket>(wire);
    check_accepted_roundtrip<GrantPacket>(wire);

    // Property 3: the input as field material.
    lcf::fuzz::ByteReader in(data, size);
    ConfigPacket config;
    config.req = u16(in);
    config.pre = u16(in);
    config.ben = u16(in);
    config.qen = u16(in);
    check_field_roundtrip(config, in);

    GrantPacket grant;
    grant.node_id = static_cast<std::uint8_t>(in.u8() & 0x0F);
    grant.gnt = static_cast<std::uint8_t>(in.u8() & 0x0F);
    const std::uint8_t bits = in.u8();
    grant.gnt_val = (bits & 0x4) != 0;
    grant.link_err = (bits & 0x2) != 0;
    grant.crc_err = (bits & 0x1) != 0;
    check_field_roundtrip(grant, in);
    return 0;
}
