#pragma once
// Shared plumbing for the libFuzzer harnesses and their replay twins.
// Every harness defines
//
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size)
//
// and signals an invariant violation by printing a diagnostic and
// aborting — the idiom both libFuzzer and the standalone corpus-replay
// driver (replay_main.cpp) turn into a hard failure.

#include <cstdint>
#include <cstdio>
#include <cstdlib>

// The libFuzzer entry point each harness defines. Declared here so the
// definitions satisfy -Wmissing-declarations under the replay build too.
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

// Abort with a source location when `cond` is false. A macro (not a
// function) so the printed condition text is the actual invariant.
#define LCF_FUZZ_ASSERT(cond, ...)                                        \
    do {                                                                  \
        if (!(cond)) {                                                    \
            std::fprintf(stderr, "FUZZ INVARIANT FAILED %s:%d: %s\n",     \
                         __FILE__, __LINE__, #cond);                      \
            std::fprintf(stderr, __VA_ARGS__);                            \
            std::fprintf(stderr, "\n");                                   \
            std::abort();                                                 \
        }                                                                 \
    } while (0)

namespace lcf::fuzz {

/// Forward-only byte reader over the fuzz input. Reads past the end
/// return zeros, so every input (including the empty one) drives a
/// complete, deterministic harness run.
class ByteReader {
public:
    ByteReader(const unsigned char* data, std::size_t size) noexcept
        : data_(data), size_(size) {}

    [[nodiscard]] unsigned char u8() noexcept {
        return pos_ < size_ ? data_[pos_++] : 0;
    }
    /// u8() reduced to [0, bound) — bound must be nonzero.
    [[nodiscard]] std::size_t index(std::size_t bound) noexcept {
        return static_cast<std::size_t>(u8()) % bound;
    }
    [[nodiscard]] std::size_t remaining() const noexcept {
        return size_ - pos_;
    }

private:
    const unsigned char* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

}  // namespace lcf::fuzz
