// Fuzz harness for the scheduler stack: an arbitrary byte string picks a
// registered scheduler, a switch radix, and a short sequence of request
// matrices, then drives schedule() under obs::ParanoidChecker with
// throw-on-violation enabled. Checked on every cycle:
//
//   1. the ParanoidChecker invariants (valid partial permutation,
//      request-backed grants, NRQ/NGT consistency, §3 diagonal-fairness
//      window for the rotating variants, iteration budgets),
//   2. schedulers with a `*_reference` twin (the per-bit seed
//      transcriptions) stay bit-identical to it — matching AND
//      last_iterations() — on adversarial request sequences, not just
//      the random traffic the equivalence suite draws.
//
// Seed corpus: fuzz/corpus/scheduler (tools/make_fuzz_corpus.py).

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "fuzz_common.hpp"
#include "obs/paranoid_checker.hpp"
#include "sched/matching.hpp"
#include "sched/request_matrix.hpp"
#include "sched/scheduler.hpp"

namespace {

constexpr std::size_t kMaxPorts = 16;
constexpr std::size_t kMaxCycles = 12;

/// iLQF wants per-VOQ queue lengths; derive deterministic ones from the
/// request bits so the weight structure varies with the fuzz input.
void feed_queue_lengths(lcf::sched::Scheduler& sched,
                        const lcf::sched::RequestMatrix& requests) {
    if (!sched.wants_queue_lengths()) return;
    const std::size_t n_in = requests.inputs();
    const std::size_t n_out = requests.outputs();
    std::vector<std::uint32_t> lengths(n_in * n_out, 0);
    for (std::size_t i = 0; i < n_in; ++i) {
        for (std::size_t j = 0; j < n_out; ++j) {
            if (requests.get(i, j)) {
                lengths[i * n_out + j] =
                    static_cast<std::uint32_t>(1 + (i * 7 + j * 3) % 5);
            }
        }
    }
    sched.observe_queue_lengths({lengths.data(), lengths.size()}, n_out);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    namespace core = lcf::core;
    namespace sched = lcf::sched;
    lcf::fuzz::ByteReader in(data, size);

    const auto& names = core::scheduler_names();
    const std::string name = names[in.index(names.size())];
    const std::size_t ports = 1 + in.index(kMaxPorts);
    const std::size_t cycles = 1 + in.index(kMaxCycles);
    const sched::SchedulerConfig config{.iterations = 1 + in.index(4),
                                        .seed = in.u8()};

    const auto scheduler = core::make_scheduler(name, config);
    scheduler->reset(ports, ports);

    // Differential twin, when one is registered (the lcf_* families).
    std::unique_ptr<sched::Scheduler> reference;
    if (core::is_scheduler_name(name + "_reference")) {
        reference = core::make_scheduler(name + "_reference", config);
        reference->reset(ports, ports);
    }

    lcf::obs::ParanoidChecker checker(
        lcf::obs::ParanoidChecker::options_for(name, config.iterations));
    checker.reset(ports, ports);

    sched::RequestMatrix requests(ports);
    sched::Matching matching(ports);
    sched::Matching ref_matching(ports);
    for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
        // One request row per input, one fuzz byte per row (kMaxPorts
        // outputs fit in 16 bits; reads past the input's end are zeros,
        // i.e. an idle tail).
        requests.clear();
        for (std::size_t i = 0; i < ports; ++i) {
            const unsigned row_hi = in.u8();  // sequenced: corpus bytes
            const unsigned row_lo = in.u8();  // must read compiler-independent
            const std::uint16_t row =
                static_cast<std::uint16_t>((row_hi << 8) | row_lo);
            for (std::size_t j = 0; j < ports; ++j) {
                if ((row >> j) & 1u) requests.set(i, j);
            }
        }

        feed_queue_lengths(*scheduler, requests);
        try {
            scheduler->schedule(requests, matching);
            checker.check_cycle(requests, matching);
            checker.check_iterations(scheduler->last_iterations());
        } catch (const std::exception& e) {
            LCF_FUZZ_ASSERT(false, "%s cycle %zu (n=%zu): %s", name.c_str(),
                            cycle, ports, e.what());
        }

        if (reference) {
            feed_queue_lengths(*reference, requests);
            reference->schedule(requests, ref_matching);
            LCF_FUZZ_ASSERT(
                matching.to_string() == ref_matching.to_string(),
                "%s diverges from twin at cycle %zu (n=%zu):\n  opt: %s\n  "
                "ref: %s",
                name.c_str(), cycle, ports, matching.to_string().c_str(),
                ref_matching.to_string().c_str());
            LCF_FUZZ_ASSERT(scheduler->last_iterations() ==
                                reference->last_iterations(),
                            "%s iteration count diverges from twin: %zu vs "
                            "%zu",
                            name.c_str(), scheduler->last_iterations(),
                            reference->last_iterations());
        }
    }
    return 0;
}
