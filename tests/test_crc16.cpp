// Tests for CRC-16/CCITT-FALSE: known-answer vectors, incremental
// updates, and error-detection behaviour.

#include "clint/crc16.hpp"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace lcf::clint {
namespace {

std::vector<std::uint8_t> bytes(std::string_view s) {
    return {s.begin(), s.end()};
}

TEST(Crc16, KnownAnswerVectors) {
    // CRC-16/CCITT-FALSE check value for "123456789" is 0x29B1.
    EXPECT_EQ(crc16(bytes("123456789")), 0x29B1);
    // Empty message: the CRC of nothing is the init value.
    EXPECT_EQ(crc16({}), 0xFFFF);
    EXPECT_EQ(crc16(bytes("A")), 0xB915);
}

TEST(Crc16, IncrementalEqualsOneShot) {
    const auto data = bytes("the quick brown fox");
    const std::uint16_t whole = crc16(data);
    std::uint16_t crc = 0xFFFF;
    crc = crc16_update(crc, std::span(data).subspan(0, 7));
    crc = crc16_update(crc, std::span(data).subspan(7));
    EXPECT_EQ(crc, whole);
}

TEST(Crc16, DetectsEverySingleBitFlip) {
    const auto data = bytes("clint bulk channel");
    const std::uint16_t good = crc16(data);
    for (std::size_t byte = 0; byte < data.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            auto corrupted = data;
            corrupted[byte] =
                static_cast<std::uint8_t>(corrupted[byte] ^ (1U << bit));
            EXPECT_NE(crc16(corrupted), good)
                << "flip at byte " << byte << " bit " << bit;
        }
    }
}

TEST(Crc16, DetectsAllDoubleBitFlipsInShortMessages) {
    // CRC-16 with polynomial 0x1021 detects all 2-bit errors within its
    // designed span; verify on an 8-byte message exhaustively.
    const auto data = bytes("12345678");
    const std::uint16_t good = crc16(data);
    const std::size_t nbits = data.size() * 8;
    for (std::size_t a = 0; a < nbits; ++a) {
        for (std::size_t b = a + 1; b < nbits; ++b) {
            auto corrupted = data;
            corrupted[a / 8] =
                static_cast<std::uint8_t>(corrupted[a / 8] ^ (1U << (a % 8)));
            corrupted[b / 8] =
                static_cast<std::uint8_t>(corrupted[b / 8] ^ (1U << (b % 8)));
            ASSERT_NE(crc16(corrupted), good) << a << "," << b;
        }
    }
}

TEST(Crc16, RandomCorruptionDetectionRate) {
    // Random multi-bit corruption slips past a 16-bit CRC with
    // probability ~2^-16; over 20000 random corruptions expect at most a
    // couple of misses.
    util::Xoshiro256 rng(31337);
    std::vector<std::uint8_t> data(32);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    const std::uint16_t good = crc16(data);
    int undetected = 0;
    for (int trial = 0; trial < 20000; ++trial) {
        auto corrupted = data;
        bool changed = false;
        for (auto& b : corrupted) {
            if (rng.next_bool(0.1)) {
                const auto nb = static_cast<std::uint8_t>(rng());
                changed = changed || nb != b;
                b = nb;
            }
        }
        if (changed && crc16(corrupted) == good) ++undetected;
    }
    EXPECT_LE(undetected, 5);
}

}  // namespace
}  // namespace lcf::clint
