// Tests for the distributed iterative LCF scheduler (§5): grant/accept
// priority rules, iterative augmentation, the round-robin position, and
// convergence behaviour. Figure 9's unambiguous statements are encoded
// directly (I0 wins T2 against higher-NRQ contenders; grants are
// accepted from the target with the lowest NGT).

#include "core/lcf_dist.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace lcf::core {
namespace {

using sched::make_requests;
using sched::Matching;
using sched::RequestMatrix;

TEST(LcfDist, GrantPrefersLowestNrq) {
    // Figure 9, request step of iteration 0: "T2 receives requests from
    // I0, I1, and I2. With one request, I0 has the highest priority and,
    // therefore, receives a grant."
    const RequestMatrix r = make_requests(
        4, {{0, 2},                          // I0: one request
            {1, 0}, {1, 2}, {1, 3},          // I1: three requests
            {2, 0}, {2, 2}, {2, 3}});        // I2: three requests
    LcfDistScheduler sched(LcfDistOptions{.iterations = 1});
    sched.reset(4, 4);
    Matching m;
    sched.schedule(r, m);
    EXPECT_EQ(m.output_of(0), 2);
}

TEST(LcfDist, AcceptPrefersLowestNgt) {
    // An initiator holding two grants accepts the target that received
    // fewer requests. I0 requests T0 and T1; T0 is also requested by two
    // other initiators (NGT 3) while T1 is requested by I0 alone
    // (NGT 1). Both targets grant I0 (it has the lowest NRQ everywhere),
    // and I0 must accept T1.
    const RequestMatrix r = make_requests(
        4, {{0, 0}, {0, 1},
            {1, 0}, {1, 2}, {1, 3},
            {2, 0}, {2, 2}, {2, 3}});
    LcfDistScheduler sched(LcfDistOptions{.iterations = 1});
    sched.reset(4, 4);
    Matching m;
    sched.schedule(r, m);
    EXPECT_EQ(m.output_of(0), 1);
}

TEST(LcfDist, Figure9TwoIterationExample) {
    // Figure 9 reconstructed from its annotations: the NRQ column reads
    // 1, 3, 3, 2 and the prose fixes the grant/accept decisions —
    // "T2 receives requests from I0, I1, and I2; with one request I0
    // has the highest priority" and "I3 receives grants from T1 and T3
    // and accepts the grant from T1 since it has the higher priority".
    // The unique request set consistent with all of that:
    //   I0:{T2}, I1:{T0,T2,T3}, I2:{T0,T2,T3}, I3:{T1,T3}.
    const RequestMatrix r = make_requests(
        4, {{0, 2}, {1, 0}, {1, 2}, {1, 3}, {2, 0}, {2, 2}, {2, 3}, {3, 1},
            {3, 3}});
    ASSERT_EQ(r.row_count(0), 1u);  // the published NRQ column
    ASSERT_EQ(r.row_count(1), 3u);
    ASSERT_EQ(r.row_count(2), 3u);
    ASSERT_EQ(r.row_count(3), 2u);

    // Iteration 0 alone: I0 wins T2, I3 accepts T1 (declining T3's
    // grant), and one of I1/I2 takes T0 — three matches.
    {
        LcfDistScheduler one(LcfDistOptions{.iterations = 1});
        one.reset(4, 4);
        Matching m;
        one.schedule(r, m);
        EXPECT_EQ(m.output_of(0), 2);
        EXPECT_EQ(m.output_of(3), 1);
        EXPECT_EQ(m.size(), 3u);
        EXPECT_EQ(m.output_of(3), 1) << "I3 must prefer NGT(T1)=1 over "
                                        "NGT(T3)=3";
    }
    // "Figure 9 gives an example of a schedule calculated ... in two
    // iterations": the second iteration matches the remaining initiator
    // with T3, completing a perfect schedule.
    {
        LcfDistScheduler two(LcfDistOptions{.iterations = 2});
        two.reset(4, 4);
        Matching m;
        two.schedule(r, m);
        EXPECT_EQ(m.size(), 4u);
        EXPECT_EQ(m.output_of(0), 2);
        EXPECT_EQ(m.output_of(3), 1);
        // I1 and I2 share T0 and T3 (the tie-break decides which way).
        const auto o1 = m.output_of(1);
        const auto o2 = m.output_of(2);
        EXPECT_TRUE((o1 == 0 && o2 == 3) || (o1 == 3 && o2 == 0));
    }
}

TEST(LcfDist, SecondIterationAugmentsTheMatching) {
    // With everything requesting everything, iteration 1 of an n-port
    // switch matches at least one pair; further iterations must extend,
    // never shrink, the matching.
    RequestMatrix full(4);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) full.set(i, j);
    }
    std::size_t prev = 0;
    for (std::size_t iters = 1; iters <= 4; ++iters) {
        LcfDistScheduler sched(LcfDistOptions{.iterations = iters});
        sched.reset(4, 4);
        Matching m;
        sched.schedule(full, m);
        EXPECT_GE(m.size(), prev);
        prev = m.size();
    }
    EXPECT_EQ(prev, 4u);
}

TEST(LcfDist, IterateExtendsAPartialMatching) {
    const RequestMatrix r = make_requests(4, {{0, 0}, {0, 1}, {1, 0}});
    LcfDistScheduler sched;
    sched.reset(4, 4);
    Matching m(4);
    m.match(0, 0);  // pre-matched pair: iterations must respect it
    sched.iterate(r, 4, m);
    EXPECT_EQ(m.output_of(0), 0);
    EXPECT_EQ(m.size(), 1u);  // I1's only choice T0 is taken
}

TEST(LcfDist, RoundRobinPositionPreMatches) {
    // lcf_dist_rr grants the rotating position before iterating. Place
    // requests so pure LCF would give T0 to I0; the RR position [I1, T0]
    // must override.
    const RequestMatrix r = make_requests(4, {{0, 0}, {1, 0}, {1, 1}});
    LcfDistScheduler sched(LcfDistOptions{.iterations = 4, .round_robin = true});
    sched.reset(4, 4);
    sched.set_rr_position(1, 0);
    Matching m;
    sched.schedule(r, m);
    EXPECT_EQ(m.input_of(0), 1);
}

TEST(LcfDist, RoundRobinPositionWalksAllMatrixPositions) {
    LcfDistScheduler sched(LcfDistOptions{.iterations = 1, .round_robin = true});
    sched.reset(4, 4);
    const RequestMatrix empty(4);
    Matching m;
    std::set<std::pair<std::size_t, std::size_t>> seen;
    for (int c = 0; c < 16; ++c) {
        seen.insert(sched.rr_position());
        sched.schedule(empty, m);
    }
    EXPECT_EQ(seen.size(), 16u);
}

TEST(LcfDist, ValidityOnRandomMatrices) {
    util::Xoshiro256 rng(321);
    for (const bool rr : {false, true}) {
        LcfDistScheduler sched(
            LcfDistOptions{.iterations = 4, .round_robin = rr});
        sched.reset(8, 8);
        Matching m;
        for (int trial = 0; trial < 500; ++trial) {
            RequestMatrix r(8);
            for (std::size_t i = 0; i < 8; ++i) {
                for (std::size_t j = 0; j < 8; ++j) {
                    if (rng.next_bool(0.35)) r.set(i, j);
                }
            }
            sched.schedule(r, m);
            EXPECT_TRUE(m.valid_for(r));
        }
    }
}

TEST(LcfDist, EnoughIterationsReachMaximality) {
    // One iteration matches at least one pair per connected component;
    // n iterations always reach a maximal matching (each iteration
    // matches at least one pair while any free-free request edge
    // remains).
    util::Xoshiro256 rng(55);
    LcfDistScheduler sched(LcfDistOptions{.iterations = 8});
    sched.reset(8, 8);
    Matching m;
    for (int trial = 0; trial < 300; ++trial) {
        RequestMatrix r(8);
        for (std::size_t i = 0; i < 8; ++i) {
            for (std::size_t j = 0; j < 8; ++j) {
                if (rng.next_bool(0.3)) r.set(i, j);
            }
        }
        sched.schedule(r, m);
        EXPECT_TRUE(m.maximal_for(r));
    }
}

TEST(LcfDist, FourIterationsUsuallySufficeAt16Ports) {
    // §5: "a small number of iterations is normally sufficient to find a
    // near-optimal schedule" — quantify: over random 16-port matrices,
    // 4 iterations must reach a maximal matching in the vast majority of
    // cases.
    util::Xoshiro256 rng(99);
    LcfDistScheduler four(LcfDistOptions{.iterations = 4});
    four.reset(16, 16);
    Matching m;
    int maximal = 0;
    constexpr int kTrials = 300;
    for (int trial = 0; trial < kTrials; ++trial) {
        RequestMatrix r(16);
        for (std::size_t i = 0; i < 16; ++i) {
            for (std::size_t j = 0; j < 16; ++j) {
                if (rng.next_bool(0.25)) r.set(i, j);
            }
        }
        four.schedule(r, m);
        if (m.maximal_for(r)) ++maximal;
    }
    EXPECT_GT(maximal, kTrials * 9 / 10);
}

TEST(LcfDist, EmptyAndSingleRequest) {
    LcfDistScheduler sched;
    sched.reset(4, 4);
    Matching m;
    sched.schedule(RequestMatrix(4), m);
    EXPECT_EQ(m.size(), 0u);
    sched.schedule(make_requests(4, {{2, 3}}), m);
    EXPECT_EQ(m.output_of(2), 3);
    EXPECT_EQ(m.size(), 1u);
}

TEST(LcfDist, NamesReflectConfiguration) {
    EXPECT_EQ(LcfDistScheduler(LcfDistOptions{.round_robin = false}).name(),
              "lcf_dist");
    EXPECT_EQ(LcfDistScheduler(LcfDistOptions{.round_robin = true}).name(),
              "lcf_dist_rr");
}

}  // namespace
}  // namespace lcf::core
