// Tests for the ASCII table renderer: alignment, header rule, padding.

#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace lcf::util {
namespace {

TEST(AsciiTable, AlignsColumns) {
    AsciiTable t;
    t.header({"name", "value"});
    t.add_row({"x", "10"});
    t.add_row({"longer", "7"});
    std::ostringstream out;
    t.print(out);
    const std::string expected =
        "name    value\n"
        "-------------\n"
        "x       10   \n"
        "longer  7    \n";
    EXPECT_EQ(out.str(), expected);
}

TEST(AsciiTable, ShortRowsPad) {
    AsciiTable t;
    t.header({"a", "b", "c"});
    t.add_row({"1"});
    std::ostringstream out;
    t.print(out);
    EXPECT_NE(out.str().find("1"), std::string::npos);
    // Three columns in every printed row.
    const auto first_line_end = out.str().find('\n');
    ASSERT_NE(first_line_end, std::string::npos);
}

TEST(AsciiTable, NoHeaderNoRule) {
    AsciiTable t;
    t.add_row({"only", "data"});
    std::ostringstream out;
    t.print(out);
    EXPECT_EQ(out.str().find('-'), std::string::npos);
}

TEST(AsciiTable, NumFormatsPrecision) {
    EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(AsciiTable::num(2.0, 0), "2");
    EXPECT_EQ(AsciiTable::num(1.5, 3), "1.500");
}

}  // namespace
}  // namespace lcf::util
