// Tests for the observability subsystem: structured counters, the
// ring-buffered per-cycle trace, starvation-age tracking, and the
// paranoid invariant checker.

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "obs/counters.hpp"
#include "obs/paranoid_checker.hpp"
#include "obs/sched_trace.hpp"
#include "sched/matching.hpp"
#include "sched/request_matrix.hpp"

namespace lcf::obs {
namespace {

// ---------------------------------------------------------------- counters

TEST(SchedCounters, ObserveCycleAccumulates) {
    SchedCounters c;
    c.observe_cycle(6, 3);
    c.observe_cycle(2, 0);  // a cycle with requests but no grants
    c.observe_cycle(4, 4);
    EXPECT_EQ(c.cycles, 3u);
    EXPECT_EQ(c.requests, 12u);
    EXPECT_EQ(c.grants, 7u);
    EXPECT_EQ(c.empty_cycles, 1u);
    EXPECT_EQ(c.max_matching, 4u);
    EXPECT_DOUBLE_EQ(c.mean_matching(), 7.0 / 3.0);
    EXPECT_DOUBLE_EQ(c.grant_fraction(), 7.0 / 12.0);
}

TEST(SchedCounters, MergeSumsTotalsAndKeepsMaxima) {
    SchedCounters a;
    a.observe_cycle(4, 2);
    a.max_starvation_age = 10;
    a.paranoid_violations = 1;
    SchedCounters b;
    b.observe_cycle(8, 5);
    b.observe_cycle(0, 0);
    b.max_starvation_age = 7;
    a.merge(b);
    EXPECT_EQ(a.cycles, 3u);
    EXPECT_EQ(a.requests, 12u);
    EXPECT_EQ(a.grants, 7u);
    EXPECT_EQ(a.empty_cycles, 1u);
    EXPECT_EQ(a.max_matching, 5u);
    EXPECT_EQ(a.max_starvation_age, 10u);
    EXPECT_EQ(a.paranoid_violations, 1u);
}

TEST(SchedCounters, EmptyCountersHaveZeroRates) {
    const SchedCounters c;
    EXPECT_DOUBLE_EQ(c.mean_matching(), 0.0);
    EXPECT_DOUBLE_EQ(c.grant_fraction(), 0.0);
}

// ---------------------------------------------------------- starvation ages

TEST(StarvationAges, DeniedRequestAgesAndGrantResets) {
    StarvationAges ages(2, 2);
    sched::RequestMatrix r(2);
    r.set(0, 0);
    r.set(1, 0);  // both inputs want output 0; only one wins per cycle

    sched::Matching m;
    m.reset(2, 2);
    m.match(0, 0);
    EXPECT_EQ(ages.observe(r, m), 1u);  // (1,0) denied once
    EXPECT_EQ(ages.age(1, 0), 1u);
    EXPECT_EQ(ages.age(0, 0), 0u);  // granted => reset

    m.reset(2, 2);
    m.match(0, 0);
    EXPECT_EQ(ages.observe(r, m), 2u);
    EXPECT_EQ(ages.age(1, 0), 2u);

    m.reset(2, 2);
    m.match(1, 0);  // finally granted
    ages.observe(r, m);
    EXPECT_EQ(ages.age(1, 0), 0u);
    EXPECT_EQ(ages.age(0, 0), 1u);
    EXPECT_EQ(ages.high_watermark(), 2u);  // survives the reset
}

TEST(StarvationAges, WithdrawnRequestResetsAge) {
    StarvationAges ages(1, 2);
    sched::RequestMatrix r(1, 2);
    r.set(0, 1);
    sched::Matching empty;
    empty.reset(1, 2);
    ages.observe(r, empty);
    ages.observe(r, empty);
    EXPECT_EQ(ages.age(0, 1), 2u);
    r.clear();  // the VOQ drained: no request this cycle
    ages.observe(r, empty);
    EXPECT_EQ(ages.age(0, 1), 0u);
    EXPECT_EQ(ages.max_age(), 0u);
    EXPECT_EQ(ages.high_watermark(), 2u);
}

// ----------------------------------------------------------------- trace

sched::Matching single_match(std::size_t n, std::size_t i, std::size_t j) {
    sched::Matching m;
    m.reset(n, n);
    m.match(i, j);
    return m;
}

TEST(SchedTrace, RingKeepsMostRecentCycles) {
    SchedTrace trace(4, 4, 3);
    sched::RequestMatrix r(4);
    r.set(0, 0);
    for (std::uint64_t c = 0; c < 10; ++c) {
        trace.record(c, r, single_match(4, 0, 0));
    }
    EXPECT_EQ(trace.capacity(), 3u);
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.recorded(), 10u);
    // Oldest-first iteration over the retained window: cycles 7, 8, 9.
    EXPECT_EQ(trace.at(0).cycle, 7u);
    EXPECT_EQ(trace.at(1).cycle, 8u);
    EXPECT_EQ(trace.at(2).cycle, 9u);
    // Cumulative counters cover the whole run, not just the window.
    EXPECT_EQ(trace.grants_at(0, 0), 10u);
    EXPECT_EQ(trace.counters().cycles, 10u);
    EXPECT_EQ(trace.counters().grants, 10u);
}

TEST(SchedTrace, RecordsRequestAndGrantShape) {
    SchedTrace trace(4, 4, 8);
    sched::RequestMatrix r(4);
    r.set(1, 2);
    r.set(3, 0);
    sched::Matching m;
    m.reset(4, 4);
    m.match(1, 2);
    trace.record(0, r, m);
    const TraceRecord& rec = trace.at(0);
    EXPECT_EQ(rec.requests, 2u);
    EXPECT_EQ(rec.granted, 1u);
    ASSERT_EQ(rec.grant_of_output.size(), 4u);
    EXPECT_EQ(rec.grant_of_output[2], 1);
    EXPECT_EQ(rec.grant_of_output[0], sched::kUnmatched);
    EXPECT_EQ(rec.max_age, 1u);  // (3,0) requested and denied
}

TEST(SchedTrace, CsvExportHasHeaderAndOneRowPerCycle) {
    SchedTrace trace(2, 2, 4);
    sched::RequestMatrix r(2);
    r.set(0, 1);
    trace.record(0, r, single_match(2, 0, 1));
    trace.record(1, r, single_match(2, 0, 1));
    std::ostringstream out;
    trace.export_csv(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("cycle,requests,granted,max_starvation_age,matching"),
              std::string::npos);
    EXPECT_NE(text.find("0->1"), std::string::npos);
    // Header + 2 records = 3 newline-terminated lines.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(SchedTrace, JsonlExportOneObjectPerCycle) {
    SchedTrace trace(2, 2, 4);
    sched::RequestMatrix r(2);
    r.set(1, 0);
    trace.record(7, r, single_match(2, 1, 0));
    std::ostringstream out;
    trace.export_jsonl(out);
    const std::string text = out.str();
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
    EXPECT_NE(text.find("\"cycle\":7"), std::string::npos);
    EXPECT_NE(text.find("\"grants\":[[1,0]]"), std::string::npos);
}

TEST(SchedTrace, ResetForgetsEverything) {
    SchedTrace trace(2, 2, 4);
    sched::RequestMatrix r(2);
    r.set(0, 0);
    trace.record(0, r, single_match(2, 0, 0));
    trace.reset(3, 3);
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_EQ(trace.recorded(), 0u);
    EXPECT_EQ(trace.counters().cycles, 0u);
    EXPECT_EQ(trace.inputs(), 3u);
}

// ----------------------------------------------------------- paranoid checker

TEST(ParanoidChecker, CleanCyclePasses) {
    ParanoidChecker checker;
    checker.reset(4, 4);
    const auto r = sched::make_requests(4, {{0, 1}, {2, 3}});
    sched::Matching m;
    m.reset(4, 4);
    m.match(0, 1);
    m.match(2, 3);
    EXPECT_EQ(checker.check_cycle(r, m), 0u);
    EXPECT_EQ(checker.cycles_checked(), 1u);
    EXPECT_EQ(checker.violation_count(), 0u);
}

TEST(ParanoidChecker, UnbackedGrantThrows) {
    ParanoidChecker checker;
    checker.reset(4, 4);
    const auto r = sched::make_requests(4, {{0, 1}});
    sched::Matching m;
    m.reset(4, 4);
    m.match(0, 2);  // grants a position that never requested
    EXPECT_THROW(checker.check_cycle(r, m), std::logic_error);
}

TEST(ParanoidChecker, GeometryMismatchThrows) {
    ParanoidChecker checker;
    checker.reset(4, 4);
    const auto r = sched::make_requests(4, {{0, 1}});
    sched::Matching m;
    m.reset(3, 3);
    EXPECT_THROW(checker.check_cycle(r, m), std::logic_error);
}

TEST(ParanoidChecker, RecordingModeCountsInsteadOfThrowing) {
    ParanoidChecker checker(ParanoidOptions{.throw_on_violation = false});
    checker.reset(4, 4);
    const auto r = sched::make_requests(4, {{0, 1}});
    sched::Matching m;
    m.reset(4, 4);
    m.match(0, 2);
    EXPECT_GE(checker.check_cycle(r, m), 1u);
    EXPECT_GE(checker.violation_count(), 1u);
    ASSERT_FALSE(checker.violations().empty());
    EXPECT_NE(checker.violations().front().find("paranoid"),
              std::string::npos);
}

TEST(ParanoidChecker, FairnessWindowViolationFires) {
    ParanoidChecker checker(
        ParanoidOptions{.throw_on_violation = false,
                        .check_diagonal_fairness = true,
                        .fairness_window = 3});
    checker.reset(2, 2);
    sched::RequestMatrix r(2);
    r.set(0, 0);
    sched::Matching empty;
    empty.reset(2, 2);
    for (int c = 0; c < 3; ++c) {
        EXPECT_EQ(checker.check_cycle(r, empty), 0u) << "cycle " << c;
    }
    // Fourth consecutive denial: age 4 > window 3.
    EXPECT_EQ(checker.check_cycle(r, empty), 1u);
    EXPECT_EQ(checker.max_starvation_age(), 4u);
}

TEST(ParanoidChecker, FairnessWindowDefaultsToPortsSquared) {
    ParanoidChecker checker(
        ParanoidOptions{.check_diagonal_fairness = true});
    checker.reset(4, 4);
    sched::RequestMatrix r(4);
    r.set(0, 0);
    sched::Matching empty;
    empty.reset(4, 4);
    for (int c = 0; c < 16; ++c) checker.check_cycle(r, empty);  // age 16 = n²
    EXPECT_THROW(checker.check_cycle(r, empty), std::logic_error);
}

TEST(ParanoidChecker, IterationBudgetEnforced) {
    ParanoidChecker checker(ParanoidOptions{.throw_on_violation = false,
                                            .iteration_budget = 4});
    checker.reset(4, 4);
    EXPECT_EQ(checker.check_iterations(4), 0u);
    EXPECT_EQ(checker.check_iterations(5), 1u);
    EXPECT_EQ(checker.violation_count(), 1u);
}

TEST(ParanoidChecker, IterationCheckDisabledWithZeroBudget) {
    ParanoidChecker checker;  // default budget 0
    checker.reset(4, 4);
    EXPECT_EQ(checker.check_iterations(1000), 0u);
}

TEST(ParanoidChecker, OptionsForKnowsSchedulerFamilies) {
    const auto rr = ParanoidChecker::options_for("lcf_central_rr", 0);
    EXPECT_TRUE(rr.check_diagonal_fairness);
    EXPECT_EQ(rr.iteration_budget, 0u);

    const auto plain = ParanoidChecker::options_for("lcf_central", 0);
    EXPECT_FALSE(plain.check_diagonal_fairness);

    const auto pim = ParanoidChecker::options_for("pim", 4);
    EXPECT_FALSE(pim.check_diagonal_fairness);
    EXPECT_EQ(pim.iteration_budget, 4u);

    const auto dist = ParanoidChecker::options_for("lcf_dist_rr", 2);
    EXPECT_EQ(dist.iteration_budget, 2u);
}

TEST(ParanoidChecker, RectangularGeometryIsSupported) {
    ParanoidChecker checker;
    checker.reset(2, 4);
    sched::RequestMatrix r(2, 4);
    r.set(0, 3);
    r.set(1, 0);
    sched::Matching m;
    m.reset(2, 4);
    m.match(0, 3);
    m.match(1, 0);
    EXPECT_EQ(checker.check_cycle(r, m), 0u);
}

}  // namespace
}  // namespace lcf::obs
