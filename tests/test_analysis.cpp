// Tests for the analysis layer: the simulator against closed-form
// queueing theory, and the replication/confidence-interval machinery.

#include <gtest/gtest.h>

#include "analysis/queueing.hpp"
#include "analysis/replicate.hpp"
#include "sim/runner.hpp"

namespace lcf::analysis {
namespace {

TEST(Queueing, OutbufDelayFormulaBasics) {
    // Zero load: just the transmission slot.
    EXPECT_DOUBLE_EQ(outbuf_mean_delay(16, 0.0), 1.0);
    // Single-port "switch": no contention at any load.
    EXPECT_DOUBLE_EQ(outbuf_mean_delay(1, 0.9), 1.0);
    // Monotone in load.
    EXPECT_LT(outbuf_mean_delay(16, 0.5), outbuf_mean_delay(16, 0.9));
    EXPECT_THROW((void)outbuf_mean_delay(16, 1.0), std::invalid_argument);
    EXPECT_THROW((void)outbuf_mean_delay(0, 0.5), std::invalid_argument);
}

TEST(Queueing, SimulatedOutbufMatchesTheory) {
    // The strongest simulator validation available: the output-buffered
    // switch is analytically solvable, so simulated delay must match
    // the closed form within statistical noise across the load range.
    sim::SimConfig config;
    config.ports = 16;
    config.slots = 200000;
    config.warmup_slots = 20000;
    for (const double load : {0.2, 0.5, 0.8, 0.9}) {
        const auto r = sim::run_named("outbuf", config, "uniform", load);
        const double theory = outbuf_mean_delay(16, load);
        EXPECT_NEAR(r.mean_delay, theory, theory * 0.03)
            << "load " << load;
    }
}

TEST(Queueing, SimulatedFifoSaturationMatchesKarol) {
    sim::SimConfig config;
    config.ports = 16;
    config.slots = 50000;
    config.warmup_slots = 5000;
    const auto r = sim::run_named("fifo", config, "uniform", 1.0);
    // n = 16 sits between the n = 8 exact value (0.6184) and the
    // asymptote (0.5858).
    EXPECT_GT(r.throughput, fifo_saturation_limit() - 0.01);
    EXPECT_LT(r.throughput, fifo_saturation(8) + 0.01);
}

TEST(Queueing, FifoSaturationTableIsMonotone) {
    for (std::size_t n = 2; n <= 8; ++n) {
        EXPECT_LT(fifo_saturation(n), fifo_saturation(n - 1));
    }
    EXPECT_NEAR(fifo_saturation_limit(), 0.5858, 1e-4);
    EXPECT_DOUBLE_EQ(fifo_saturation(100), fifo_saturation_limit());
}

TEST(Queueing, PimIterationBound) {
    EXPECT_NEAR(pim_expected_iterations(16), 4.0 + 4.0 / 3.0, 1e-12);
    EXPECT_LT(pim_expected_iterations(4), pim_expected_iterations(64));
}

TEST(Queueing, BandwidthFloor) {
    EXPECT_DOUBLE_EQ(lcf_rr_bandwidth_floor(16), 1.0 / 256.0);
    EXPECT_DOUBLE_EQ(lcf_rr_bandwidth_floor(4), 1.0 / 16.0);
}

TEST(Replicate, TCriticalValues) {
    EXPECT_NEAR(t_critical_95(1), 12.706, 1e-3);
    EXPECT_NEAR(t_critical_95(9), 2.262, 1e-3);
    EXPECT_NEAR(t_critical_95(30), 2.042, 1e-3);
    EXPECT_NEAR(t_critical_95(1000), 1.960, 1e-3);
    EXPECT_THROW((void)t_critical_95(0), std::invalid_argument);
}

TEST(Replicate, ProducesTightIntervalsAndCoversTheTruth) {
    sim::SimConfig config;
    config.ports = 16;
    config.slots = 20000;
    config.warmup_slots = 2000;
    const auto rep = replicate("outbuf", config, "uniform", 0.8, 6);
    EXPECT_EQ(rep.runs.size(), 6u);
    EXPECT_EQ(rep.mean_delay.replications, 6u);
    EXPECT_GT(rep.mean_delay.half_width, 0.0);
    // The analytic truth lies inside (or very near) the 95 % interval.
    const double theory = outbuf_mean_delay(16, 0.8);
    EXPECT_GT(theory, rep.mean_delay.lower() - 0.1);
    EXPECT_LT(theory, rep.mean_delay.upper() + 0.1);
    // Throughput interval around the offered load.
    EXPECT_NEAR(rep.throughput.mean, 0.8, 0.01);
}

TEST(Replicate, SeedsDifferAcrossReplications) {
    sim::SimConfig config;
    config.ports = 8;
    config.slots = 5000;
    config.warmup_slots = 500;
    const auto rep = replicate("islip", config, "uniform", 0.7, 4);
    bool any_difference = false;
    for (std::size_t k = 1; k < rep.runs.size(); ++k) {
        if (rep.runs[k].mean_delay != rep.runs[0].mean_delay) {
            any_difference = true;
        }
    }
    EXPECT_TRUE(any_difference);
}

TEST(Replicate, ClearlyBelowDetectsSeparatedIntervals) {
    Estimate a{1.0, 0.1, 5};
    Estimate b{2.0, 0.1, 5};
    EXPECT_TRUE(a.clearly_below(b));
    EXPECT_FALSE(b.clearly_below(a));
    Estimate c{1.15, 0.1, 5};
    EXPECT_FALSE(a.clearly_below(c));  // overlapping
}

TEST(Replicate, SignificantOrderingLcfVsPimAtHighLoad) {
    // The paper's headline with error bars: lcf_central's delay is
    // significantly below pim's at load 0.9 (non-overlapping 95 % CIs).
    sim::SimConfig config;
    config.ports = 16;
    config.slots = 20000;
    config.warmup_slots = 2000;
    const auto lcf = replicate("lcf_central", config, "uniform", 0.9, 5);
    const auto pim = replicate("pim", config, "uniform", 0.9, 5);
    EXPECT_TRUE(lcf.mean_delay.clearly_below(pim.mean_delay));
}

TEST(Replicate, RejectsZeroReplications) {
    sim::SimConfig config;
    EXPECT_THROW(replicate("outbuf", config, "uniform", 0.5, 0),
                 std::invalid_argument);
}

}  // namespace
}  // namespace lcf::analysis
