// Tests for the runner layer: name-to-mode mapping, sweep grid shape
// and ordering, and reproducibility across the parallel path.

#include "sim/runner.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "core/factory.hpp"

namespace lcf::sim {
namespace {

SimConfig quick_config() {
    SimConfig c;
    c.ports = 8;
    c.slots = 2000;
    c.warmup_slots = 200;
    c.seed = 3;
    return c;
}

TEST(Runner, RunsEveryFigure12Configuration) {
    for (const auto* name :
         {"fifo", "outbuf", "pim", "islip", "wfront", "lcf_central",
          "lcf_central_rr", "lcf_dist", "lcf_dist_rr"}) {
        const auto r = run_named(name, quick_config(), "uniform", 0.5);
        EXPECT_GT(r.delivered, 0u) << name;
        EXPECT_GT(r.mean_delay, 0.9) << name;
        EXPECT_NEAR(r.throughput, 0.5, 0.07) << name;
    }
}

TEST(Runner, UnknownNameThrows) {
    EXPECT_THROW(run_named("bogus", quick_config(), "uniform", 0.5),
                 std::invalid_argument);
}

TEST(Runner, UnknownConfigNameListsValidNames) {
    try {
        run_named("bogus", quick_config(), "uniform", 0.5);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("bogus"), std::string::npos);
        EXPECT_NE(message.find("outbuf"), std::string::npos);
        for (const auto& name : core::scheduler_names()) {
            EXPECT_NE(message.find(name), std::string::npos) << name;
        }
    }
}

TEST(Runner, UnknownTrafficNameListsValidNames) {
    try {
        run_named("islip", quick_config(), "bogus_traffic", 0.5);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("bogus_traffic"), std::string::npos);
        for (const auto& name : traffic::traffic_names()) {
            EXPECT_NE(message.find(name), std::string::npos) << name;
        }
    }
}

TEST(Runner, SweepPropagatesWorkerExceptions) {
    const std::vector<std::string> names = {"islip", "bogus"};
    const std::vector<double> loads = {0.5};
    EXPECT_THROW(sweep(names, loads, quick_config(), "uniform", {}, 2),
                 std::invalid_argument);
}

TEST(Runner, ParanoidRunValidatesEveryCycle) {
    SimConfig config = quick_config();
    config.paranoid = true;
    for (const auto* name : {"lcf_central_rr", "lcf_dist_rr", "islip"}) {
        const auto r = run_named(name, config, "uniform", 0.9);
        EXPECT_EQ(r.sched.cycles, config.slots) << name;
        EXPECT_EQ(r.sched.paranoid_violations, 0u) << name;
        EXPECT_GT(r.sched.grants, 0u) << name;
    }
}

TEST(Runner, SweepAggregatesCountersAcrossPoints) {
    const std::vector<std::string> names = {"islip", "lcf_central"};
    const std::vector<double> loads = {0.3, 0.6};
    const auto points = sweep(names, loads, quick_config(), "uniform", {}, 2);
    const auto totals = aggregate_counters(points);
    // Every VOQ-mode point contributes one scheduling cycle per slot.
    EXPECT_EQ(totals.cycles, quick_config().slots * points.size());
    std::uint64_t grants = 0, max_matching = 0;
    for (const auto& p : points) {
        grants += p.result.sched.grants;
        max_matching = std::max(max_matching, p.result.sched.max_matching);
    }
    EXPECT_EQ(totals.grants, grants);
    EXPECT_EQ(totals.max_matching, max_matching);
    EXPECT_GT(totals.grants, 0u);
}

TEST(Runner, SweepReturnsConfigMajorOrder) {
    const std::vector<std::string> names = {"islip", "outbuf"};
    const std::vector<double> loads = {0.2, 0.4};
    const auto points = sweep(names, loads, quick_config(), "uniform", {}, 2);
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0].config_name, "islip");
    EXPECT_DOUBLE_EQ(points[0].load, 0.2);
    EXPECT_EQ(points[1].config_name, "islip");
    EXPECT_DOUBLE_EQ(points[1].load, 0.4);
    EXPECT_EQ(points[2].config_name, "outbuf");
    EXPECT_EQ(points[3].config_name, "outbuf");
    for (const auto& p : points) {
        EXPECT_GT(p.result.delivered, 0u);
    }
}

TEST(Runner, ParallelSweepMatchesSerialRuns) {
    const std::vector<std::string> names = {"islip"};
    const std::vector<double> loads = {0.3, 0.6};
    const auto parallel = sweep(names, loads, quick_config(), "uniform", {}, 4);
    for (const auto& p : parallel) {
        const auto serial = run_named(p.config_name, quick_config(), "uniform",
                                      p.load);
        EXPECT_DOUBLE_EQ(p.result.mean_delay, serial.mean_delay);
        EXPECT_EQ(p.result.delivered, serial.delivered);
    }
}

TEST(Runner, Figure12LoadGridShape) {
    const auto loads = figure12_loads();
    ASSERT_FALSE(loads.empty());
    EXPECT_NEAR(loads.front(), 0.05, 1e-12);
    EXPECT_DOUBLE_EQ(loads.back(), 1.0);
    for (std::size_t k = 1; k < loads.size(); ++k) {
        EXPECT_GT(loads[k], loads[k - 1]);
    }
}

}  // namespace
}  // namespace lcf::sim
