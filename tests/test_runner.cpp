// Tests for the runner layer: name-to-mode mapping, sweep grid shape
// and ordering, and reproducibility across the parallel path.

#include "sim/runner.hpp"

#include <gtest/gtest.h>

namespace lcf::sim {
namespace {

SimConfig quick_config() {
    SimConfig c;
    c.ports = 8;
    c.slots = 2000;
    c.warmup_slots = 200;
    c.seed = 3;
    return c;
}

TEST(Runner, RunsEveryFigure12Configuration) {
    for (const auto* name :
         {"fifo", "outbuf", "pim", "islip", "wfront", "lcf_central",
          "lcf_central_rr", "lcf_dist", "lcf_dist_rr"}) {
        const auto r = run_named(name, quick_config(), "uniform", 0.5);
        EXPECT_GT(r.delivered, 0u) << name;
        EXPECT_GT(r.mean_delay, 0.9) << name;
        EXPECT_NEAR(r.throughput, 0.5, 0.07) << name;
    }
}

TEST(Runner, UnknownNameThrows) {
    EXPECT_THROW(run_named("bogus", quick_config(), "uniform", 0.5),
                 std::invalid_argument);
}

TEST(Runner, SweepReturnsConfigMajorOrder) {
    const std::vector<std::string> names = {"islip", "outbuf"};
    const std::vector<double> loads = {0.2, 0.4};
    const auto points = sweep(names, loads, quick_config(), "uniform", {}, 2);
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0].config_name, "islip");
    EXPECT_DOUBLE_EQ(points[0].load, 0.2);
    EXPECT_EQ(points[1].config_name, "islip");
    EXPECT_DOUBLE_EQ(points[1].load, 0.4);
    EXPECT_EQ(points[2].config_name, "outbuf");
    EXPECT_EQ(points[3].config_name, "outbuf");
    for (const auto& p : points) {
        EXPECT_GT(p.result.delivered, 0u);
    }
}

TEST(Runner, ParallelSweepMatchesSerialRuns) {
    const std::vector<std::string> names = {"islip"};
    const std::vector<double> loads = {0.3, 0.6};
    const auto parallel = sweep(names, loads, quick_config(), "uniform", {}, 4);
    for (const auto& p : parallel) {
        const auto serial = run_named(p.config_name, quick_config(), "uniform",
                                      p.load);
        EXPECT_DOUBLE_EQ(p.result.mean_delay, serial.mean_delay);
        EXPECT_EQ(p.result.delivered, serial.delivered);
    }
}

TEST(Runner, Figure12LoadGridShape) {
    const auto loads = figure12_loads();
    ASSERT_FALSE(loads.empty());
    EXPECT_NEAR(loads.front(), 0.05, 1e-12);
    EXPECT_DOUBLE_EQ(loads.back(), 1.0);
    for (std::size_t k = 1; k < loads.size(); ++k) {
        EXPECT_GT(loads[k], loads[k - 1]);
    }
}

}  // namespace
}  // namespace lcf::sim
