// Golden SimResult pins: end-to-end simulation outputs for every
// traffic model, captured before the batched-arrival / hot-slot-path
// rework (PR 4) and asserted bit-identical ever since. Any change to
// per-(input, slot) RNG draw order, queue mechanics, or metrics
// accounting shows up here as an exact-value mismatch.
//
// Also pins that sweep() and replicate() are deterministic functions of
// their seeds alone: thread count (1 vs 8 vs the shared pool) must not
// change a single bit of any result.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "analysis/replicate.hpp"
#include "sim/runner.hpp"

namespace lcf {
namespace {

sim::SimResult run_golden_point(const std::string& sched,
                                const std::string& traffic) {
    sim::SimConfig c;
    c.ports = 16;
    c.slots = 5000;
    c.warmup_slots = 500;
    c.seed = 7777;
    return sim::run_named(sched, c, traffic, 0.85,
                          sched::SchedulerConfig{.iterations = 4,
                                                 .seed = 7777});
}

struct Golden {
    std::uint64_t generated, delivered, dropped, measured, grants;
    double mean_delay, p99_delay, throughput, mean_choices;
};

void expect_matches_golden(const sim::SimResult& r, const Golden& g) {
    EXPECT_EQ(r.generated, g.generated);
    EXPECT_EQ(r.delivered, g.delivered);
    EXPECT_EQ(r.dropped, g.dropped);
    EXPECT_EQ(r.measured, g.measured);
    EXPECT_EQ(r.sched.grants, g.grants);
    EXPECT_DOUBLE_EQ(r.mean_delay, g.mean_delay);
    EXPECT_DOUBLE_EQ(r.p99_delay, g.p99_delay);
    EXPECT_DOUBLE_EQ(r.throughput, g.throughput);
    EXPECT_DOUBLE_EQ(r.mean_choices, g.mean_choices);
}

TEST(SimGolden, UniformLcfCentralRr) {
    expect_matches_golden(
        run_golden_point("lcf_central_rr", "uniform"),
        {67804, 67747, 0, 60926, 67747, 4.6792830647014023, 30.0,
         0.84687500000000004, 3.1769583333333333});
}

TEST(SimGolden, BurstyLcfDistRr) {
    expect_matches_golden(
        run_golden_point("lcf_dist_rr", "bursty"),
        {71963, 69550, 0, 62417, 69550, 104.57823990259186, 992.0,
         0.87836111111111115, 4.6505833333333335});
}

TEST(SimGolden, ParetoIslip) {
    expect_matches_golden(
        run_golden_point("islip", "pareto"),
        {80000, 74302, 0, 66302, 74302, 211.24608609091615, 1533.0,
         0.93647222222222226, 10.577125000000001});
}

TEST(SimGolden, HotspotLcfCentral) {
    expect_matches_golden(
        run_golden_point("lcf_central", "hotspot"),
        {67831, 22535, 25211, 15735, 22535, 1186.3505560851568, 3791.0,
         0.24447222222222223, 1.4029166666666666});
}

TEST(SimGolden, DiagonalLcfCentral) {
    expect_matches_golden(
        run_golden_point("lcf_central", "diagonal"),
        {67804, 67767, 0, 60946, 67767, 3.2406064384864899, 14.0,
         0.84698611111111111, 1.3698611111111112});
}

TEST(SimGolden, PermutationIslip) {
    expect_matches_golden(
        run_golden_point("islip", "permutation"),
        {67730, 67730, 0, 60917, 67730, 1.0, 1.0, 0.84606944444444443,
         0.84606944444444443});
}

// ---------------------------------------------------------------------
// sweep(): golden values and thread-count independence.

std::vector<sim::SweepPoint> run_golden_sweep(std::size_t threads) {
    sim::SimConfig c;
    c.ports = 16;
    c.slots = 3000;
    c.warmup_slots = 300;
    c.seed = 4242;
    return sim::sweep({"lcf_central_rr", "islip"}, {0.5, 0.9}, c, "uniform",
                      sched::SchedulerConfig{.iterations = 4, .seed = 11},
                      threads);
}

TEST(SimGolden, SweepPinnedValues) {
    const auto pts = run_golden_sweep(2);
    ASSERT_EQ(pts.size(), 4u);
    EXPECT_EQ(pts[0].result.generated, 23944u);
    EXPECT_EQ(pts[0].result.delivered, 23942u);
    EXPECT_DOUBLE_EQ(pts[0].result.mean_delay, 1.6251621872103788);
    EXPECT_DOUBLE_EQ(pts[0].result.throughput, 0.49974537037037037);
    EXPECT_EQ(pts[1].result.generated, 43151u);
    EXPECT_EQ(pts[1].result.delivered, 43075u);
    EXPECT_DOUBLE_EQ(pts[1].result.mean_delay, 7.259918485270612);
    EXPECT_DOUBLE_EQ(pts[1].result.throughput, 0.89932870370370366);
    EXPECT_EQ(pts[2].result.delivered, 23941u);
    EXPECT_DOUBLE_EQ(pts[2].result.mean_delay, 1.7139348440613515);
    EXPECT_EQ(pts[3].result.delivered, 43016u);
    EXPECT_DOUBLE_EQ(pts[3].result.mean_delay, 10.95471103417986);
    EXPECT_DOUBLE_EQ(pts[3].result.throughput, 0.89918981481481486);
}

void expect_results_identical(const sim::SimResult& a,
                              const sim::SimResult& b) {
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.measured, b.measured);
    EXPECT_EQ(a.sched, b.sched);
    // Exact (not approximate) comparison: determinism means the same
    // bits, not close values.
    EXPECT_EQ(a.mean_delay, b.mean_delay);
    EXPECT_EQ(a.p50_delay, b.p50_delay);
    EXPECT_EQ(a.p99_delay, b.p99_delay);
    EXPECT_EQ(a.max_delay, b.max_delay);
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.mean_choices, b.mean_choices);
}

TEST(SimGolden, SweepIsThreadCountIndependent) {
    const auto one = run_golden_sweep(1);
    const auto eight = run_golden_sweep(8);
    const auto shared = run_golden_sweep(0);  // process-wide shared pool
    ASSERT_EQ(one.size(), eight.size());
    ASSERT_EQ(one.size(), shared.size());
    for (std::size_t k = 0; k < one.size(); ++k) {
        SCOPED_TRACE(one[k].config_name + "@" +
                     std::to_string(one[k].load));
        EXPECT_EQ(one[k].config_name, eight[k].config_name);
        EXPECT_EQ(one[k].load, eight[k].load);
        expect_results_identical(one[k].result, eight[k].result);
        expect_results_identical(one[k].result, shared[k].result);
    }
}

// ---------------------------------------------------------------------
// replicate(): golden values and thread-count independence.

analysis::ReplicatedResult run_golden_replicate(std::size_t threads) {
    sim::SimConfig c;
    c.ports = 16;
    c.slots = 2000;
    c.warmup_slots = 200;
    c.seed = 99;
    return analysis::replicate(
        "lcf_dist", c, "bursty", 0.8, 4,
        sched::SchedulerConfig{.iterations = 4, .seed = 5}, threads);
}

TEST(SimGolden, ReplicatePinnedValues) {
    const auto rep = run_golden_replicate(2);
    EXPECT_DOUBLE_EQ(rep.mean_delay.mean, 59.706054542383505);
    EXPECT_DOUBLE_EQ(rep.mean_delay.half_width, 16.353563329291976);
    EXPECT_DOUBLE_EQ(rep.throughput.mean, 0.81801215277777783);
}

TEST(SimGolden, ReplicateIsThreadCountIndependent) {
    const auto one = run_golden_replicate(1);
    const auto eight = run_golden_replicate(8);
    ASSERT_EQ(one.runs.size(), eight.runs.size());
    for (std::size_t k = 0; k < one.runs.size(); ++k) {
        SCOPED_TRACE("replication " + std::to_string(k));
        expect_results_identical(one.runs[k], eight.runs[k]);
    }
    EXPECT_EQ(one.mean_delay.mean, eight.mean_delay.mean);
    EXPECT_EQ(one.mean_delay.half_width, eight.mean_delay.half_width);
    EXPECT_EQ(one.throughput.mean, eight.throughput.mean);
    EXPECT_EQ(one.throughput.half_width, eight.throughput.half_width);
}

}  // namespace
}  // namespace lcf
