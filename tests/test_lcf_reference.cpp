// Differential oracle for the central LCF scheduler: a deliberately
// naive, array-based transliteration of the paper's Figure 2 pseudocode
// (Pascal-style, no bit vectors, no shared scratch) is run against the
// production implementation on randomised sequences. Any divergence —
// in either direction — flags a transcription bug in one of the two.

#include <gtest/gtest.h>

#include <vector>

#include "core/lcf_central.hpp"
#include "util/rng.hpp"

namespace lcf::core {
namespace {

using sched::Matching;
using sched::RequestMatrix;

/// Literal transcription of Figure 2. MaxReq = MaxRes = n. Keeps its
/// own I/J state across calls, exactly like the `var` block.
class Figure2Reference {
public:
    explicit Figure2Reference(std::size_t n) : n_(n) {}

    /// Returns S: S[req] = granted resource or -1.
    std::vector<int> schedule(const std::vector<std::vector<bool>>& R_in) {
        // (* initialize schedule *)
        std::vector<std::vector<bool>> R = R_in;
        std::vector<int> S(n_, -1);
        std::vector<int> nrq(n_, 0);
        for (std::size_t req = 0; req < n_; ++req) {
            S[req] = -1;
            nrq[req] = 0;
            for (std::size_t res = 0; res < n_; ++res) {
                if (R[req][res]) nrq[req] = nrq[req] + 1;
            }
        }
        // (* allocate resources one after the other *)
        for (std::size_t res = 0; res < n_; ++res) {
            int gnt = -1;
            if (R[(I_ + res) % n_][(J_ + res) % n_]) {
                gnt = static_cast<int>((I_ + res) % n_);  // round-robin wins
            } else {
                int min = static_cast<int>(n_) + 1;
                for (std::size_t req = 0; req < n_; ++req) {
                    const std::size_t cand = (req + I_ + res) % n_;
                    if (R[cand][(res + J_) % n_] &&
                        nrq[cand] < min) {
                        gnt = static_cast<int>(cand);
                        min = nrq[cand];
                    }
                }
            }
            if (gnt != -1) {
                S[static_cast<std::size_t>(gnt)] =
                    static_cast<int>((res + J_) % n_);
                for (std::size_t r = 0; r < n_; ++r) {
                    R[static_cast<std::size_t>(gnt)][r] = false;
                }
                nrq[static_cast<std::size_t>(gnt)] = 0;
                for (std::size_t req = 0; req < n_; ++req) {
                    if (R[req][(res + J_) % n_]) nrq[req] = nrq[req] - 1;
                }
            }
        }
        I_ = (I_ + 1) % n_;
        if (I_ == 0) J_ = (J_ + 1) % n_;
        return S;
    }

private:
    std::size_t n_;
    std::size_t I_ = 0;
    std::size_t J_ = 0;
};

std::vector<std::vector<bool>> to_naive(const RequestMatrix& r) {
    std::vector<std::vector<bool>> out(r.inputs(),
                                       std::vector<bool>(r.outputs(), false));
    for (std::size_t i = 0; i < r.inputs(); ++i) {
        for (std::size_t j = 0; j < r.outputs(); ++j) {
            out[i][j] = r.get(i, j);
        }
    }
    return out;
}

void differential_run(std::size_t n, std::size_t cycles, double density,
                      std::uint64_t seed) {
    LcfCentralScheduler impl(
        LcfCentralOptions{.variant = RrVariant::kInterleaved});
    impl.reset(n, n);
    Figure2Reference oracle(n);
    util::Xoshiro256 rng(seed);
    Matching m;
    for (std::size_t c = 0; c < cycles; ++c) {
        RequestMatrix r(n);
        const double d = density > 0 ? density : rng.next_double();
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                if (rng.next_bool(d)) r.set(i, j);
            }
        }
        impl.schedule(r, m);
        const auto s = oracle.schedule(to_naive(r));
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(m.output_of(i), s[i])
                << "n=" << n << " cycle=" << c << " input=" << i;
        }
    }
}

TEST(LcfReference, Differential4x4DenseSweep) {
    differential_run(4, 2000, 0.0, 11);  // random density per cycle
}

TEST(LcfReference, Differential16x16) {
    differential_run(16, 500, 0.35, 12);
}

TEST(LcfReference, Differential16x16Saturated) {
    differential_run(16, 300, 0.95, 13);
}

TEST(LcfReference, DifferentialOddRadix) {
    differential_run(7, 1000, 0.4, 14);
}

TEST(LcfReference, Figure3AgreesWithPaperThroughTheOracle) {
    // The oracle, started at I=1, J=0 like Figure 3... the reference
    // has no setter, so drive it to that state: I advances once per
    // schedule, so run one empty schedule first.
    Figure2Reference oracle(4);
    std::vector<std::vector<bool>> empty(4, std::vector<bool>(4, false));
    (void)oracle.schedule(empty);  // I: 0 -> 1
    std::vector<std::vector<bool>> fig3(4, std::vector<bool>(4, false));
    fig3[0][1] = fig3[0][2] = true;
    fig3[1][0] = fig3[1][2] = fig3[1][3] = true;
    fig3[2][0] = fig3[2][2] = fig3[2][3] = true;
    fig3[3][1] = true;
    const auto s = oracle.schedule(fig3);
    EXPECT_EQ(s[1], 0);  // I1 -> T0 (round-robin position)
    EXPECT_EQ(s[3], 1);  // I3 -> T1
    EXPECT_EQ(s[0], 2);  // I0 -> T2
    EXPECT_EQ(s[2], 3);  // I2 -> T3
}

}  // namespace
}  // namespace lcf::core
