// Tests for the crossbar-speedup extension and the mean-choices
// diagnostic: speedup 2 must approach output-buffered behaviour, never
// hurt, and conserve packets; mean_choices must track VOQ occupancy.

#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "sim/runner.hpp"
#include "sim/switch_sim.hpp"
#include "traffic/bernoulli.hpp"
#include "traffic/trace.hpp"

namespace lcf::sim {
namespace {

SimResult run_with_speedup(const char* sched_name, double load,
                           std::size_t speedup, std::uint64_t slots = 20000) {
    SimConfig c;
    c.ports = 16;
    c.slots = slots;
    c.warmup_slots = slots / 10;
    c.speedup = speedup;
    SwitchSim sim(c, core::make_scheduler(sched_name),
                  std::make_unique<traffic::BernoulliUniform>(load));
    return sim.run();
}

TEST(Speedup, RejectsZero) {
    SimConfig c;
    c.ports = 4;
    c.speedup = 0;
    EXPECT_THROW(SwitchSim(c, core::make_scheduler("islip"),
                           std::make_unique<traffic::BernoulliUniform>(0.5)),
                 std::invalid_argument);
}

TEST(Speedup, TwoNeverWorseThanOneAtHighLoad) {
    for (const auto* name : {"islip", "lcf_central_rr"}) {
        const auto s1 = run_with_speedup(name, 0.95, 1);
        const auto s2 = run_with_speedup(name, 0.95, 2);
        EXPECT_LE(s2.mean_delay, s1.mean_delay * 1.05) << name;
        EXPECT_GE(s2.throughput, s1.throughput - 0.01) << name;
    }
}

TEST(Speedup, TwoApproachesOutputBuffering) {
    // The classic result: a VOQ switch with speedup 2 tracks the
    // output-buffered switch closely even where speedup 1 has drifted
    // away.
    SimConfig c;
    c.ports = 16;
    c.slots = 20000;
    c.warmup_slots = 2000;
    const auto outbuf = run_named("outbuf", c, "uniform", 0.95);
    const auto s2 = run_with_speedup("islip", 0.95, 2);
    const auto s1 = run_with_speedup("islip", 0.95, 1);
    EXPECT_LT(s2.mean_delay, outbuf.mean_delay * 1.35);
    EXPECT_GT(s1.mean_delay, s2.mean_delay);
}

TEST(Speedup, MinimumDelayStaysOneSlotPerBufferStage) {
    // One isolated packet, speedup 2: forwarded into the output buffer
    // in its arrival slot, onto the link the same slot's drain phase —
    // still delay 1.
    SimConfig c;
    c.ports = 4;
    c.slots = 50;
    c.warmup_slots = 0;
    c.speedup = 2;
    SwitchSim sim(c, core::make_scheduler("islip"),
                  std::make_unique<traffic::TraceTraffic>(
                      std::vector<traffic::TraceEntry>{{7, 1, 2}}));
    const auto r = sim.run();
    EXPECT_EQ(r.delivered, 1u);
    EXPECT_DOUBLE_EQ(r.mean_delay, 1.0);
}

TEST(Speedup, ConservationWithOutputBuffers) {
    SimConfig c;
    c.ports = 8;
    c.slots = 3000;
    c.warmup_slots = 0;
    c.speedup = 2;
    SwitchSim sim(c, core::make_scheduler("islip"),
                  std::make_unique<traffic::BernoulliUniform>(0.9));
    sim.run();
    std::size_t buffered = 0;
    for (std::size_t i = 0; i < c.ports; ++i) {
        buffered += sim.voq(i).total_buffered();
        buffered += sim.input_queue(i).size();
        buffered += sim.output_buffer(i).size();
    }
    const auto& m = sim.metrics();
    EXPECT_EQ(m.generated(), m.delivered() + m.dropped() + buffered);
}

TEST(MeanChoices, TracksOccupancy) {
    // Saturated 4-port switch: essentially every VOQ stays busy, so the
    // mean number of choices per input approaches the port count; at
    // tiny load it stays near zero.
    SimConfig c;
    c.ports = 4;
    c.slots = 10000;
    c.warmup_slots = 1000;
    {
        SwitchSim sim(c, core::make_scheduler("islip"),
                      std::make_unique<traffic::BernoulliUniform>(1.0));
        EXPECT_GT(sim.run().mean_choices, 2.5);
    }
    {
        SwitchSim sim(c, core::make_scheduler("islip"),
                      std::make_unique<traffic::BernoulliUniform>(0.05));
        EXPECT_LT(sim.run().mean_choices, 0.5);
    }
}

TEST(MeanChoices, RrVariantKeepsMoreChoicesAtExtremeLoad) {
    // §6.3's hypothesis for the high-load crossover: the round-robin
    // diagonal levels VOQ lengths, preventing queues from draining dry
    // and thereby keeping the scheduler's choice set larger.
    SimConfig c;
    c.ports = 16;
    c.slots = 30000;
    c.warmup_slots = 3000;
    const auto pure = run_named("lcf_central", c, "uniform", 0.98);
    const auto rr = run_named("lcf_central_rr", c, "uniform", 0.98);
    EXPECT_GT(rr.mean_choices, pure.mean_choices * 0.95);
    // And the delay crossover itself:
    EXPECT_LT(rr.mean_delay, pure.mean_delay);
}

}  // namespace
}  // namespace lcf::sim
