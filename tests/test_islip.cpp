// Tests for iSLIP: pointer behaviour (move only on first-iteration
// accepts), desynchronisation under full load, validity, and rotation
// fairness.

#include "sched/islip.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.hpp"

namespace lcf::sched {
namespace {

TEST(Islip, SingleRequestGranted) {
    IslipScheduler s;
    s.reset(4, 4);
    Matching m;
    s.schedule(make_requests(4, {{3, 1}}), m);
    EXPECT_EQ(m.output_of(3), 1);
}

TEST(Islip, FullLoadReachesPerfectMatchingAfterDesync) {
    // The hallmark iSLIP property: under all-ones requests the pointers
    // desynchronise within a few slots and every subsequent slot yields
    // a perfect matching.
    IslipScheduler s(SchedulerConfig{.iterations = 1});
    s.reset(4, 4);
    RequestMatrix full(4);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) full.set(i, j);
    }
    Matching m;
    for (int warm = 0; warm < 8; ++warm) s.schedule(full, m);
    for (int slot = 0; slot < 32; ++slot) {
        s.schedule(full, m);
        EXPECT_EQ(m.size(), 4u) << "slot " << slot;
    }
}

TEST(Islip, RotatesAmongPersistentContenders) {
    const RequestMatrix r = make_requests(4, {{0, 0}, {1, 0}, {2, 0}, {3, 0}});
    IslipScheduler s;
    s.reset(4, 4);
    Matching m;
    std::map<std::int32_t, int> wins;
    for (int slot = 0; slot < 40; ++slot) {
        s.schedule(r, m);
        ++wins[m.input_of(0)];
    }
    ASSERT_EQ(wins.size(), 4u);
    for (const auto& [input, count] : wins) {
        EXPECT_EQ(count, 10) << "input " << input;
    }
}

TEST(Islip, ValidityAndDeterminism) {
    util::Xoshiro256 rng(14);
    IslipScheduler a(SchedulerConfig{.iterations = 4});
    IslipScheduler b(SchedulerConfig{.iterations = 4});
    a.reset(8, 8);
    b.reset(8, 8);
    Matching ma, mb;
    for (int trial = 0; trial < 300; ++trial) {
        RequestMatrix r(8);
        for (std::size_t i = 0; i < 8; ++i) {
            for (std::size_t j = 0; j < 8; ++j) {
                if (rng.next_bool(0.4)) r.set(i, j);
            }
        }
        a.schedule(r, ma);
        b.schedule(r, mb);
        EXPECT_TRUE(ma.valid_for(r));
        EXPECT_EQ(ma, mb);  // iSLIP is fully deterministic
    }
}

TEST(Islip, MoreIterationsAugment) {
    // A pattern where one grant-accept round leaves an augmentable pair:
    // I0 requests T0+T1, I1 requests T0 only. With pointers at zero,
    // iteration 1 grants T0->I0, T1->I0; I0 accepts T0; I1 idles. The
    // second iteration must match I1... no: I1 only wants T0, taken.
    // Use I1:{T0}, I0:{T0,T1}: iter 1 may match I0 with T0 leaving T1
    // unmatched and I1 stranded; with 2 iterations T1 is still not
    // requestable by I1 — so instead check a genuinely augmentable case:
    // I0:{T0,T1}, I1:{T1}. Grant: T0->I0, T1->I1(ptr 0 hits I0 first...)
    // Simply assert more iterations never shrink the matching across
    // random matrices.
    util::Xoshiro256 rng(21);
    for (int trial = 0; trial < 200; ++trial) {
        RequestMatrix r(6);
        for (std::size_t i = 0; i < 6; ++i) {
            for (std::size_t j = 0; j < 6; ++j) {
                if (rng.next_bool(0.4)) r.set(i, j);
            }
        }
        std::size_t prev = 0;
        for (const std::size_t iters : {1u, 2u, 4u}) {
            IslipScheduler s(SchedulerConfig{.iterations = iters});
            s.reset(6, 6);
            Matching m;
            s.schedule(r, m);
            EXPECT_GE(m.size(), prev);
            prev = m.size();
        }
    }
}

TEST(Islip, FourIterationsMaximalOnSmallSwitches) {
    util::Xoshiro256 rng(31);
    IslipScheduler s(SchedulerConfig{.iterations = 8});
    s.reset(8, 8);
    Matching m;
    for (int trial = 0; trial < 200; ++trial) {
        RequestMatrix r(8);
        for (std::size_t i = 0; i < 8; ++i) {
            for (std::size_t j = 0; j < 8; ++j) {
                if (rng.next_bool(0.3)) r.set(i, j);
            }
        }
        s.schedule(r, m);
        EXPECT_TRUE(m.maximal_for(r));
    }
}

}  // namespace
}  // namespace lcf::sched
