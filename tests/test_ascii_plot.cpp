// Tests for the ASCII plot renderer: marker placement, clipping,
// legend, and degenerate inputs.

#include "util/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace lcf::util {
namespace {

std::string render(AsciiPlot& plot) {
    std::ostringstream out;
    plot.print(out);
    return out.str();
}

TEST(AsciiPlot, EmptyPlot) {
    AsciiPlot p;
    EXPECT_EQ(render(p), "(empty plot)\n");
}

TEST(AsciiPlot, SingleSeriesAppearsWithMarkerAndLegend) {
    AsciiPlot p(20, 8);
    p.add_series({"delay", {{0, 0}, {1, 1}, {2, 2}}});
    const std::string out = render(p);
    EXPECT_NE(out.find('a'), std::string::npos);
    EXPECT_NE(out.find("legend: a=delay"), std::string::npos);
}

TEST(AsciiPlot, TwoSeriesGetDistinctMarkers) {
    AsciiPlot p(20, 8);
    p.add_series({"one", {{0, 0}, {1, 1}}});
    p.add_series({"two", {{0, 1}, {1, 0}}});
    const std::string out = render(p);
    EXPECT_NE(out.find('a'), std::string::npos);
    EXPECT_NE(out.find('b'), std::string::npos);
    EXPECT_NE(out.find("a=one"), std::string::npos);
    EXPECT_NE(out.find("b=two"), std::string::npos);
}

TEST(AsciiPlot, MonotoneSeriesRendersMonotonically) {
    AsciiPlot p(30, 10);
    p.add_series({"line", {{0, 0}, {10, 10}}});
    const std::string out = render(p);
    // The first marker row (top of plot) must be to the right of the
    // last: find 'a' column per line, assert non-increasing rows going
    // down means columns decrease.
    std::vector<std::size_t> cols;
    std::istringstream lines(out);
    std::string line;
    while (std::getline(lines, line)) {
        const auto pos = line.find('a');
        if (pos != std::string::npos && line.find('|') != std::string::npos) {
            cols.push_back(pos);
        }
    }
    ASSERT_GE(cols.size(), 2u);
    for (std::size_t k = 1; k < cols.size(); ++k) {
        EXPECT_LE(cols[k], cols[k - 1]);
    }
}

TEST(AsciiPlot, YLimitClipsSpikes) {
    AsciiPlot p(20, 8);
    p.y_limit(10.0);
    p.add_series({"spiky", {{0, 1}, {1, 1e6}}});
    const std::string out = render(p);
    // The axis labels must not show 1e6.
    EXPECT_EQ(out.find("1000000"), std::string::npos);
    EXPECT_NE(out.find("10.00"), std::string::npos);
}

TEST(AsciiPlot, ConstantSeriesDoesNotDivideByZero) {
    AsciiPlot p(20, 8);
    p.add_series({"flat", {{0, 5}, {1, 5}, {2, 5}}});
    EXPECT_NO_FATAL_FAILURE((void)render(p));
}

TEST(AsciiPlot, AxisLabelsShown) {
    AsciiPlot p(20, 8);
    p.x_label("load");
    p.y_label("latency [slots]");
    p.add_series({"s", {{0, 0}, {1, 1}}});
    const std::string out = render(p);
    EXPECT_NE(out.find("load"), std::string::npos);
    EXPECT_NE(out.find("latency [slots]"), std::string::npos);
}

}  // namespace
}  // namespace lcf::util
