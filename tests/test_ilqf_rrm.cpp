// Tests for the extension baselines: iLQF (longest-queue-first
// iterative matching with VOQ-occupancy weights) and RRM (iSLIP's
// synchronisation-prone predecessor).

#include <gtest/gtest.h>

#include "sched/ilqf.hpp"
#include "sched/rrm.hpp"
#include "sim/runner.hpp"
#include "util/rng.hpp"

namespace lcf::sched {
namespace {

TEST(Ilqf, GrantsLongestQueue) {
    IlqfScheduler s(SchedulerConfig{.iterations = 1});
    s.reset(4, 4);
    // Both I0 and I1 request T2; I1's VOQ is longer.
    std::vector<std::uint32_t> lengths(16, 0);
    lengths[0 * 4 + 2] = 3;
    lengths[1 * 4 + 2] = 9;
    s.observe_queue_lengths(lengths, 4);
    Matching m;
    s.schedule(make_requests(4, {{0, 2}, {1, 2}}), m);
    EXPECT_EQ(m.input_of(2), 1);
}

TEST(Ilqf, AcceptsLongestQueueAmongGrants) {
    IlqfScheduler s(SchedulerConfig{.iterations = 1});
    s.reset(4, 4);
    // I0 requests T1 and T3, uncontested: both grant. Longer VOQ wins.
    std::vector<std::uint32_t> lengths(16, 0);
    lengths[0 * 4 + 1] = 2;
    lengths[0 * 4 + 3] = 7;
    s.observe_queue_lengths(lengths, 4);
    Matching m;
    s.schedule(make_requests(4, {{0, 1}, {0, 3}}), m);
    EXPECT_EQ(m.output_of(0), 3);
}

TEST(Ilqf, UnweightedFallbackStillValidAndIterative) {
    IlqfScheduler s(SchedulerConfig{.iterations = 8});
    s.reset(8, 8);
    util::Xoshiro256 rng(3);
    Matching m;
    for (int trial = 0; trial < 300; ++trial) {
        RequestMatrix r(8);
        for (std::size_t i = 0; i < 8; ++i) {
            for (std::size_t j = 0; j < 8; ++j) {
                if (rng.next_bool(0.35)) r.set(i, j);
            }
        }
        s.schedule(r, m);
        EXPECT_TRUE(m.valid_for(r));
        EXPECT_TRUE(m.maximal_for(r));
    }
}

TEST(Ilqf, WantsQueueLengths) {
    EXPECT_TRUE(IlqfScheduler().wants_queue_lengths());
    EXPECT_FALSE(RrmScheduler().wants_queue_lengths());
}

TEST(Ilqf, DrainsBacklogHotspotInSimulation) {
    // End-to-end: under uniform traffic iLQF keeps a sane delay profile
    // (the simulator feeds it real VOQ occupancy each slot).
    sim::SimConfig config;
    config.ports = 16;
    config.slots = 20000;
    config.warmup_slots = 2000;
    const auto r = sim::run_named("ilqf", config, "uniform", 0.9);
    EXPECT_NEAR(r.throughput, 0.9, 0.02);
    EXPECT_LT(r.mean_delay, 20.0);
}

TEST(Rrm, ValidMatchingsAndDeterminism) {
    util::Xoshiro256 rng(5);
    RrmScheduler a(SchedulerConfig{.iterations = 4});
    RrmScheduler b(SchedulerConfig{.iterations = 4});
    a.reset(8, 8);
    b.reset(8, 8);
    Matching ma, mb;
    for (int trial = 0; trial < 300; ++trial) {
        RequestMatrix r(8);
        for (std::size_t i = 0; i < 8; ++i) {
            for (std::size_t j = 0; j < 8; ++j) {
                if (rng.next_bool(0.4)) r.set(i, j);
            }
        }
        a.schedule(r, ma);
        b.schedule(r, mb);
        EXPECT_TRUE(ma.valid_for(r));
        EXPECT_EQ(ma, mb);
    }
}

TEST(Rrm, PointerSynchronisationHurtsFullLoadThroughput) {
    // The textbook RRM pathology: under all-ones requests with one
    // iteration, the grant pointers move in lock-step and the matching
    // stays far from perfect — while iSLIP reaches 100 % after desync.
    RequestMatrix full(8);
    for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < 8; ++j) full.set(i, j);
    }
    RrmScheduler rrm(SchedulerConfig{.iterations = 1});
    rrm.reset(8, 8);
    Matching m;
    double rrm_total = 0;
    for (int slot = 0; slot < 200; ++slot) {
        rrm.schedule(full, m);
        rrm_total += static_cast<double>(m.size());
    }
    // Under deterministic all-ones saturation the lock-step is total:
    // every grant pointer points at the same input, exactly one pair is
    // matched per slot. (With Bernoulli arrivals the collapse is the
    // milder ~63 % McKeown reports; see the simulation test below.)
    EXPECT_LT(rrm_total / 200.0, 0.8 * 8);
    EXPECT_GE(rrm_total / 200.0, 1.0);
}

TEST(Rrm, SimulationSaturatesBelowIslip) {
    sim::SimConfig config;
    config.ports = 16;
    config.slots = 20000;
    config.warmup_slots = 2000;
    const auto rrm =
        sim::run_named("rrm", config, "uniform", 0.95,
                       SchedulerConfig{.iterations = 1});
    const auto islip =
        sim::run_named("islip", config, "uniform", 0.95,
                       SchedulerConfig{.iterations = 1});
    EXPECT_GT(rrm.mean_delay, islip.mean_delay);
}

}  // namespace
}  // namespace lcf::sched
