// Tests for the deterministic fault-injection layer: plan validation,
// injector semantics (link down, loss, truncation, bit-error epoch
// composition, crash/restart tracking, determinism), the SeqTracker the
// recovery paths dedupe with, fault behavior of the bulk/quick channels
// and the switch simulator — and golden-equivalence pins proving that an
// empty plan leaves every simulation bit-identical to the pre-fault-layer
// build.

#include "fault/fault_injector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "clint/bulk_channel.hpp"
#include "clint/clint_sim.hpp"
#include "clint/quick_channel.hpp"
#include "clint/seq_tracker.hpp"
#include "core/factory.hpp"
#include "sim/switch_sim.hpp"
#include "traffic/bernoulli.hpp"

namespace lcf::fault {
namespace {

TEST(FaultPlan, EmptyPlanIsEmpty) {
    FaultPlan plan;
    EXPECT_TRUE(plan.empty());
    plan.add_scheduler_stall(10, 20);
    EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, ValidateRejectsMalformedEntries) {
    {
        FaultPlan p;
        p.add_bit_error_epoch({LinkKind::kData, kAllLinks}, 0, 100, 1.5);
        EXPECT_THROW(p.validate(), std::invalid_argument);
    }
    {
        FaultPlan p;
        p.add_packet_loss({LinkKind::kAck, 2}, 0, 100, -0.1);
        EXPECT_THROW(p.validate(), std::invalid_argument);
    }
    {
        FaultPlan p;
        p.add_link_down({LinkKind::kUplink, 0}, 50, 10);  // end < begin
        EXPECT_THROW(p.validate(), std::invalid_argument);
    }
    {
        FaultPlan p;
        p.add_host_crash(3, 100, 50);  // restart before crash
        EXPECT_THROW(p.validate(), std::invalid_argument);
    }
    {
        FaultPlan p;
        p.add_scheduler_stall(5, 5)
            .add_bit_error_epoch({LinkKind::kData, 1}, 0, kForever, 0.01)
            .add_packet_loss({LinkKind::kData, kAllLinks}, 0, 10, 0.5, 0.5);
        EXPECT_NO_THROW(p.validate());
    }
    EXPECT_THROW(FaultInjector(FaultPlan{}.add_host_crash(0, 9, 3)),
                 std::invalid_argument);
}

TEST(FaultInjector, LinkDownAbsorbsOnlySelectedLinkAndInterval) {
    FaultPlan plan;
    plan.add_link_down({LinkKind::kUplink, 1}, 10, 20);
    FaultInjector inj(plan);
    inj.reset(4);
    EXPECT_TRUE(inj.link_up(LinkKind::kUplink, 1, 9));
    EXPECT_FALSE(inj.link_up(LinkKind::kUplink, 1, 10));
    EXPECT_FALSE(inj.link_up(LinkKind::kUplink, 1, 19));
    EXPECT_TRUE(inj.link_up(LinkKind::kUplink, 1, 20));  // half-open
    EXPECT_TRUE(inj.link_up(LinkKind::kUplink, 0, 15));  // other index
    EXPECT_TRUE(inj.link_up(LinkKind::kDownlink, 1, 15));  // other kind

    std::vector<std::uint8_t> wire{1, 2, 3};
    EXPECT_FALSE(inj.transmit(LinkKind::kUplink, 1, 15, wire));
    EXPECT_EQ(inj.counters().packets_dropped, 1u);
    EXPECT_TRUE(inj.transmit(LinkKind::kUplink, 1, 25, wire));
    EXPECT_EQ(wire, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(FaultInjector, CertainLossAbsorbsEveryPacket) {
    FaultPlan plan;
    plan.add_packet_loss({LinkKind::kData, kAllLinks}, 0, kForever, 1.0);
    FaultInjector inj(plan);
    inj.reset(2);
    std::vector<std::uint8_t> wire{0xAB};
    for (std::uint64_t s = 0; s < 50; ++s) {
        EXPECT_FALSE(inj.transmit(LinkKind::kData, s % 2, s, wire));
        EXPECT_TRUE(inj.packet_lost(LinkKind::kData, s % 2, s));
    }
    EXPECT_EQ(inj.counters().packets_dropped, 100u);
}

TEST(FaultInjector, CertainTruncationShortensStrictly) {
    FaultPlan plan;
    plan.add_packet_loss({LinkKind::kDownlink, kAllLinks}, 0, kForever, 0.0,
                         1.0);
    FaultInjector inj(plan);
    inj.reset(1);
    for (int i = 0; i < 64; ++i) {
        std::vector<std::uint8_t> wire(11, 0xFF);
        EXPECT_TRUE(inj.transmit(LinkKind::kDownlink, 0, 5, wire));
        EXPECT_LT(wire.size(), 11u);  // strictly shorter, possibly empty
    }
    EXPECT_EQ(inj.counters().packets_truncated, 64u);
}

TEST(FaultInjector, OverlappingBitErrorEpochsCompose) {
    FaultPlan plan;
    plan.add_bit_error_epoch({LinkKind::kAck, 0}, 0, 100, 0.5)
        .add_bit_error_epoch({LinkKind::kAck, 0}, 50, 100, 0.5);
    FaultInjector inj(plan);
    inj.reset(1);
    EXPECT_DOUBLE_EQ(inj.extra_ber(LinkKind::kAck, 0, 10), 0.5);
    // Independent epochs: 1 - (1-0.5)(1-0.5).
    EXPECT_DOUBLE_EQ(inj.extra_ber(LinkKind::kAck, 0, 75), 0.75);
    EXPECT_DOUBLE_EQ(inj.extra_ber(LinkKind::kAck, 0, 100), 0.0);
    EXPECT_DOUBLE_EQ(inj.extra_ber(LinkKind::kData, 0, 10), 0.0);
}

TEST(FaultInjector, EpochBitErrorsFlipWireBits) {
    FaultPlan plan;
    plan.add_bit_error_epoch({LinkKind::kData, 0}, 0, kForever, 1.0);
    FaultInjector inj(plan);
    inj.reset(1);
    std::vector<std::uint8_t> wire{0x0F, 0xF0};
    EXPECT_TRUE(inj.transmit(LinkKind::kData, 0, 0, wire));
    EXPECT_EQ(wire, (std::vector<std::uint8_t>{0xF0, 0x0F}));
    EXPECT_EQ(inj.counters().bits_flipped, 16u);
    EXPECT_EQ(inj.counters().packets_corrupted, 1u);
}

TEST(FaultInjector, CrashRestartAndStallTracking) {
    FaultPlan plan;
    plan.add_host_crash(2, 10, 30).add_host_crash(3, 20);  // 3 never restarts
    plan.add_scheduler_stall(5, 8);
    FaultInjector inj(plan);
    inj.reset(4);
    EXPECT_TRUE(inj.host_up(2, 9));
    EXPECT_FALSE(inj.host_up(2, 10));
    EXPECT_FALSE(inj.host_up(2, 29));
    EXPECT_TRUE(inj.host_up(2, 30));
    EXPECT_FALSE(inj.host_up(3, 1000000));
    EXPECT_TRUE(inj.scheduler_stalled(5));
    EXPECT_TRUE(inj.scheduler_stalled(7));
    EXPECT_FALSE(inj.scheduler_stalled(8));
    for (std::uint64_t s = 0; s < 40; ++s) inj.begin_slot(s);
    EXPECT_EQ(inj.counters().crashes, 2u);
    EXPECT_EQ(inj.counters().restarts, 1u);
    EXPECT_EQ(inj.counters().stalled_slots, 3u);
}

TEST(FaultInjector, SamePlanReplaysIdentically) {
    FaultPlan plan;
    plan.seed = 99;
    plan.add_packet_loss({LinkKind::kData, kAllLinks}, 0, kForever, 0.3, 0.3)
        .add_bit_error_epoch({LinkKind::kData, kAllLinks}, 0, kForever, 0.01);
    FaultInjector a(plan);
    FaultInjector b(plan);
    a.reset(4);
    b.reset(4);
    for (std::uint64_t s = 0; s < 500; ++s) {
        std::vector<std::uint8_t> wa(32, 0x5A);
        std::vector<std::uint8_t> wb(32, 0x5A);
        const bool ra = a.transmit(LinkKind::kData, s % 4, s, wa);
        const bool rb = b.transmit(LinkKind::kData, s % 4, s, wb);
        ASSERT_EQ(ra, rb) << "slot " << s;
        ASSERT_EQ(wa, wb) << "slot " << s;
    }
    EXPECT_EQ(a.counters(), b.counters());
}

TEST(FaultCounters, MergeSumsFieldwise) {
    FaultCounters a{1, 2, 3, 4, 5, 6, 7};
    const FaultCounters b{10, 20, 30, 40, 50, 60, 70};
    a.merge(b);
    EXPECT_EQ(a, (FaultCounters{11, 22, 33, 44, 55, 66, 77}));
}

}  // namespace
}  // namespace lcf::fault

namespace lcf::clint {
namespace {

TEST(SeqTracker, InOrderDeliveriesAndDuplicates) {
    SeqTracker t(2);
    EXPECT_TRUE(t.deliver(0, 0));
    EXPECT_TRUE(t.deliver(0, 1));
    EXPECT_FALSE(t.deliver(0, 0));  // duplicate below base
    EXPECT_FALSE(t.deliver(0, 1));
    EXPECT_TRUE(t.deliver(1, 0));  // flows are independent
    EXPECT_EQ(t.pending(), 0u);
}

TEST(SeqTracker, ReorderingClosesHolesAndBoundsMemory) {
    SeqTracker t(1);
    EXPECT_TRUE(t.deliver(0, 2));
    EXPECT_TRUE(t.deliver(0, 1));
    EXPECT_EQ(t.pending(), 2u);  // base still 0; {1,2} held ahead
    EXPECT_TRUE(t.deliver(0, 0));
    EXPECT_EQ(t.pending(), 0u);  // base advanced through the run
    EXPECT_FALSE(t.deliver(0, 2));
    EXPECT_TRUE(t.deliver(0, 3));
}

TEST(SeqTracker, SkipAccountsDestroyedPackets) {
    SeqTracker t(1);
    t.skip(0, 0);  // destroyed before delivery
    EXPECT_TRUE(t.deliver(0, 1));
    EXPECT_FALSE(t.deliver(0, 0));  // late copy of the destroyed packet
    EXPECT_EQ(t.pending(), 0u);
}

// ---------------------------------------------------------------------
// Golden equivalence: with an empty fault plan (and the same configs the
// seed repository shipped), every simulation must reproduce the exact
// pre-fault-layer numbers. These values were captured from the commit
// preceding the fault layer; any drift means the refactor changed
// baseline behavior.
// ---------------------------------------------------------------------

TEST(FaultGolden, BulkChannelBitIdenticalWithEmptyPlan) {
    BulkChannelConfig c;
    c.hosts = 8;
    c.slots = 5000;
    c.warmup_slots = 500;
    c.seed = 1234;
    BulkChannelSim sim(c, std::make_unique<traffic::BernoulliUniform>(0.7));
    sim.enqueue_multicast(2, 0b10110101);
    const auto r = sim.run();
    EXPECT_FALSE(sim.fault_injector().has_value());
    EXPECT_EQ(r.generated, 27884u);
    EXPECT_EQ(r.delivered_unique, 27865u);
    EXPECT_EQ(r.duplicate_deliveries, 0u);
    EXPECT_EQ(r.dropped_voq, 0u);
    EXPECT_EQ(r.retransmissions, 0u);
    EXPECT_EQ(r.multicast_copies, 5u);
    EXPECT_EQ(r.sched.grants, 27871u);
    EXPECT_EQ(sim.buffered_total(), 19u);
    EXPECT_DOUBLE_EQ(r.mean_delay, 3.3970406413273269);
    EXPECT_DOUBLE_EQ(r.max_delay, 32.0);
    EXPECT_DOUBLE_EQ(r.goodput, 0.69672222222222224);
    EXPECT_EQ(r.faults, fault::FaultCounters{});
    EXPECT_TRUE(sim.accounting().balanced());
}

TEST(FaultGolden, QuickChannelBitIdenticalWithEmptyPlan) {
    QuickChannelConfig c;
    c.hosts = 8;
    c.slots = 5000;
    c.warmup_slots = 500;
    c.seed = 77;
    QuickChannelSim sim(c, std::make_unique<traffic::BernoulliUniform>(0.3));
    const auto r = sim.run();
    EXPECT_FALSE(sim.fault_injector().has_value());
    EXPECT_EQ(r.generated, 12066u);
    EXPECT_EQ(r.delivered_unique, 12065u);
    EXPECT_EQ(r.duplicate_deliveries, 0u);
    EXPECT_EQ(r.collisions, 2067u);
    EXPECT_EQ(r.retransmissions, 2066u);
    EXPECT_EQ(r.abandoned, 0u);
    EXPECT_EQ(r.dropped_queue, 0u);
    EXPECT_DOUBLE_EQ(r.mean_delay, 1.6726366322008923);
    EXPECT_DOUBLE_EQ(r.delivery_ratio, 0.99991712249295539);
    EXPECT_TRUE(sim.accounting().balanced());
}

TEST(FaultGolden, IntegratedClintBitIdenticalWithEmptyPlans) {
    ClintConfig c;
    c.hosts = 16;
    c.slots = 3000;
    c.warmup_slots = 300;
    c.seed = 9;
    c.integrated = true;
    c.bulk_load = 0.8;
    c.quick_load = 0.15;
    const auto r = run_clint(c);
    EXPECT_EQ(r.bulk.delivered_unique, 38392u);
    EXPECT_EQ(r.quick.delivered_unique, 4603u);
    EXPECT_EQ(r.quick_control_sent, 38392u);
    EXPECT_EQ(r.quick_control_preemptions, 36072u);
    EXPECT_EQ(r.quick.collisions, 6519u);
    EXPECT_DOUBLE_EQ(r.quick.mean_delay, 525.71346405228769);
}

TEST(FaultGolden, SwitchSimBitIdenticalWithEmptyPlan) {
    sim::SimConfig c;
    c.ports = 16;
    c.slots = 8000;
    c.warmup_slots = 800;
    c.seed = 4242;
    c.paranoid = true;
    sim::SwitchSim s(c, core::make_scheduler("lcf_central_rr"),
                     std::make_unique<traffic::BernoulliUniform>(0.9));
    const auto r = s.run();
    EXPECT_FALSE(s.fault_injector().has_value());
    EXPECT_EQ(r.generated, 115181u);
    EXPECT_EQ(r.delivered, 115080u);
    EXPECT_EQ(r.dropped, 0u);
    EXPECT_EQ(r.sched.grants, 115080u);
    EXPECT_EQ(r.sched.paranoid_violations, 0u);
    EXPECT_EQ(r.sched.stalled_cycles, 0u);
    EXPECT_DOUBLE_EQ(r.mean_delay, 7.4237078662535305);
    EXPECT_DOUBLE_EQ(r.throughput, 0.89973958333333337);
}

// ---------------------------------------------------------------------
// Channel-level fault behavior.
// ---------------------------------------------------------------------

TEST(BulkChannelFaults, CrashDestroysStateAndRestartResumes) {
    BulkChannelConfig c;
    c.hosts = 4;
    c.slots = 3000;
    c.warmup_slots = 0;
    c.seed = 21;
    c.fault_plan.add_host_crash(1, 500, 1500);
    BulkChannelSim sim(c, std::make_unique<traffic::BernoulliUniform>(0.5));
    while (sim.current_slot() < 600) sim.step();
    EXPECT_FALSE(sim.host_up(1));
    const auto mid = sim.result();
    EXPECT_GT(mid.crash_lost, 0u);  // VOQ contents destroyed at the crash
    EXPECT_TRUE(sim.accounting().balanced());
    while (sim.current_slot() < c.slots) sim.step();
    EXPECT_TRUE(sim.host_up(1));
    const auto r = sim.result();
    EXPECT_EQ(r.faults.crashes, 1u);
    EXPECT_EQ(r.faults.restarts, 1u);
    // Delivery kept happening after the restart.
    EXPECT_GT(r.delivered_unique, mid.delivered_unique);
    EXPECT_TRUE(sim.accounting().balanced());
}

TEST(BulkChannelFaults, ControlLinkDownStallsGrantsButConservationHolds) {
    BulkChannelConfig c;
    c.hosts = 4;
    c.slots = 2000;
    c.warmup_slots = 0;
    c.seed = 7;
    // Host 0's configuration uplink dies for a while: the switch sees no
    // requests from it, so its traffic waits and nothing leaks.
    c.fault_plan.add_link_down({fault::LinkKind::kUplink, 0}, 200, 900);
    c.fault_plan.add_packet_loss({fault::LinkKind::kDownlink, fault::kAllLinks},
                                 1000, 1500, 0.5);
    BulkChannelSim sim(c, std::make_unique<traffic::BernoulliUniform>(0.4));
    const auto r = sim.run();
    EXPECT_GT(r.configs_lost, 0u);
    EXPECT_GT(r.grants_lost, 0u);
    EXPECT_GT(r.faults.packets_dropped, 0u);
    EXPECT_GT(r.delivered_unique, 0u);
    EXPECT_TRUE(sim.accounting().balanced());
}

TEST(BulkChannelFaults, DataLossEpochForcesRecoveries) {
    BulkChannelConfig c;
    c.hosts = 4;
    c.slots = 3000;
    c.warmup_slots = 0;
    c.seed = 13;
    c.fault_plan.add_packet_loss({fault::LinkKind::kData, fault::kAllLinks}, 500,
                                 1500, 0.4);
    c.fault_plan.add_packet_loss({fault::LinkKind::kAck, fault::kAllLinks}, 500,
                                 1500, 0.4);
    BulkChannelSim sim(c, std::make_unique<traffic::BernoulliUniform>(0.4));
    const auto r = sim.run();
    EXPECT_GT(r.retransmissions, 0u);
    EXPECT_GT(r.recovered, 0u);
    EXPECT_GT(r.duplicate_deliveries, 0u);  // lost acks re-deliver
    EXPECT_GT(r.mean_recovery_delay, 0.0);
    EXPECT_TRUE(sim.accounting().balanced());
}

TEST(QuickChannelFaults, CrashAndLinkFaultsKeepAccountingExact) {
    QuickChannelConfig c;
    c.hosts = 4;
    c.slots = 3000;
    c.warmup_slots = 0;
    c.seed = 31;
    c.fault_plan.add_host_crash(2, 400, 1200);
    c.fault_plan.add_packet_loss({fault::LinkKind::kData, fault::kAllLinks}, 800,
                                 1600, 0.5);
    QuickChannelSim sim(c, std::make_unique<traffic::BernoulliUniform>(0.4));
    const auto r = sim.run();
    EXPECT_GT(r.crash_lost, 0u);
    EXPECT_GT(r.fault_losses, 0u);
    EXPECT_GT(r.retransmissions, 0u);
    EXPECT_EQ(r.faults.crashes, 1u);
    EXPECT_EQ(r.faults.restarts, 1u);
    EXPECT_GT(r.delivered_unique, 0u);
    EXPECT_TRUE(sim.accounting().balanced());
}

}  // namespace
}  // namespace lcf::clint

namespace lcf::sim {
namespace {

TEST(SwitchSimFaults, SchedulerStallProducesNoMatchingAndIsCounted) {
    SimConfig c;
    c.ports = 8;
    c.slots = 2000;
    c.warmup_slots = 0;
    c.seed = 3;
    c.paranoid = true;
    c.fault_plan.add_scheduler_stall(500, 700);
    SwitchSim s(c, core::make_scheduler("lcf_central_rr"),
                std::make_unique<traffic::BernoulliUniform>(0.6));
    while (s.current_slot() < 600) s.step();
    EXPECT_EQ(s.last_matching().size(), 0u);  // mid-stall: nothing granted
    while (s.current_slot() < c.slots) s.step();
    const auto r = s.result();
    EXPECT_EQ(r.sched.stalled_cycles, 200u);
    EXPECT_EQ(r.faults.stalled_slots, 200u);
    EXPECT_GT(r.delivered, 0u);
    // Conservation: everything generated is delivered or still buffered.
    std::size_t buffered = 0;
    for (std::size_t i = 0; i < c.ports; ++i) {
        buffered += s.voq(i).total_buffered() + s.input_queue(i).size();
    }
    EXPECT_EQ(r.generated, r.delivered + r.dropped + buffered);
}

TEST(SwitchSimFaults, CrashedPortIsMaskedOutOfTheMatching) {
    SimConfig c;
    c.ports = 8;
    c.slots = 1500;
    c.warmup_slots = 0;
    c.seed = 17;
    c.paranoid = true;
    c.fault_plan.add_host_crash(3, 200, 1000);
    SwitchSim s(c, core::make_scheduler("lcf_central_rr"),
                std::make_unique<traffic::BernoulliUniform>(0.8));
    while (s.current_slot() < c.slots) {
        s.step();
        const std::uint64_t slot = s.current_slot() - 1;
        if (slot >= 200 && slot < 1000) {
            EXPECT_FALSE(s.last_matching().input_matched(3)) << slot;
            EXPECT_FALSE(s.last_matching().output_matched(3)) << slot;
        }
    }
    const auto r = s.result();
    EXPECT_EQ(r.faults.crashes, 1u);
    EXPECT_EQ(r.faults.restarts, 1u);
    EXPECT_GT(r.dropped, 0u);  // arrivals at the crashed port
    EXPECT_GT(r.delivered, 0u);
    std::size_t buffered = 0;
    for (std::size_t i = 0; i < c.ports; ++i) {
        buffered += s.voq(i).total_buffered() + s.input_queue(i).size();
    }
    EXPECT_EQ(r.generated, r.delivered + r.dropped + buffered);
}

}  // namespace
}  // namespace lcf::sim
