// White-box tests for the switch simulator: delay accounting on exact
// traces, queue plumbing (PG -> PQ -> VOQ), packet conservation, drop
// behaviour at full buffers, and the three switch modes.

#include "sim/switch_sim.hpp"

#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "traffic/bernoulli.hpp"
#include "traffic/hotspot.hpp"
#include "traffic/trace.hpp"

namespace lcf::sim {
namespace {

std::unique_ptr<sched::Scheduler> islip() {
    return core::make_scheduler("islip");
}

SimConfig tiny(SwitchMode mode = SwitchMode::kVoq) {
    SimConfig c;
    c.ports = 4;
    c.slots = 100;
    c.warmup_slots = 0;
    c.mode = mode;
    return c;
}

TEST(SwitchSim, SinglePacketHasUnitDelay) {
    auto c = tiny();
    SwitchSim sim(c, islip(),
                  std::make_unique<traffic::TraceTraffic>(
                      std::vector<traffic::TraceEntry>{{10, 0, 2}}));
    const auto r = sim.run();
    EXPECT_EQ(r.generated, 1u);
    EXPECT_EQ(r.delivered, 1u);
    EXPECT_DOUBLE_EQ(r.mean_delay, 1.0);  // forwarded in its arrival slot
}

TEST(SwitchSim, HeadOfLineContentionSerialisesDeliveries) {
    // Two packets for output 0 arrive in the same slot at different
    // inputs; one departs with delay 1, the other waits one slot.
    auto c = tiny();
    SwitchSim sim(c, islip(),
                  std::make_unique<traffic::TraceTraffic>(
                      std::vector<traffic::TraceEntry>{{0, 0, 0}, {0, 1, 0}}));
    const auto r = sim.run();
    EXPECT_EQ(r.delivered, 2u);
    EXPECT_DOUBLE_EQ(r.mean_delay, 1.5);
}

TEST(SwitchSim, VoqsEliminateHolBlockingOnCrossTraffic) {
    // Input 0 queues a packet for the contended output 0 and one for the
    // free output 1. With VOQs the second packet must not wait behind
    // the first: both inputs' output-0 packets and the output-1 packet
    // all flow without extra delay.
    auto c = tiny();
    SwitchSim voq_sim(c, islip(),
                      std::make_unique<traffic::TraceTraffic>(
                          std::vector<traffic::TraceEntry>{
                              {0, 0, 0}, {0, 1, 0}, {1, 0, 1}}));
    const auto r = voq_sim.run();
    EXPECT_EQ(r.delivered, 3u);
    // Delays: 1 (winner of output 0), 2 (loser), 1 (output 1 packet).
    EXPECT_NEAR(r.mean_delay, 4.0 / 3.0, 1e-9);
}

TEST(SwitchSim, FifoModeSuffersHolBlocking) {
    // Same trace in FIFO mode: input 0's output-1 packet sits behind its
    // head-of-line packet. If input 0 loses the slot-0 arbitration for
    // output 0, the trailing packet is delayed an extra slot.
    auto c = tiny(SwitchMode::kFifo);
    SwitchSim sim(c, core::make_scheduler("fifo"),
                  std::make_unique<traffic::TraceTraffic>(
                      std::vector<traffic::TraceEntry>{
                          {0, 0, 0}, {0, 1, 0}, {1, 0, 1}}));
    const auto r = sim.run();
    EXPECT_EQ(r.delivered, 3u);
    // fifo's grant pointers start at input 0, so input 0 wins output 0
    // in slot 0 (delay 1); input 1 gets it in slot 1 (delay 2); input
    // 0's second packet then goes in slot 1 (delay 1). Mean 4/3 — but
    // had input 0 lost, the mean would be higher. Assert the exact
    // deterministic outcome.
    EXPECT_NEAR(r.mean_delay, 4.0 / 3.0, 1e-9);
}

TEST(SwitchSim, OutputBufferedModeNeedsNoScheduler) {
    auto c = tiny(SwitchMode::kOutputBuffered);
    SwitchSim sim(c, nullptr,
                  std::make_unique<traffic::TraceTraffic>(
                      std::vector<traffic::TraceEntry>{
                          {0, 0, 0}, {0, 1, 0}, {0, 2, 0}}));
    const auto r = sim.run();
    // All three packets reach output 0's buffer in slot 0 and drain one
    // per slot: delays 1, 2, 3.
    EXPECT_EQ(r.delivered, 3u);
    EXPECT_DOUBLE_EQ(r.mean_delay, 2.0);
}

TEST(SwitchSim, PacketConservation) {
    SimConfig c;
    c.ports = 8;
    c.slots = 5000;
    c.warmup_slots = 0;
    SwitchSim sim(c, islip(),
                  std::make_unique<traffic::BernoulliUniform>(0.7));
    sim.run();
    // generated = delivered + dropped + still-buffered.
    std::size_t buffered = 0;
    for (std::size_t i = 0; i < c.ports; ++i) {
        buffered += sim.voq(i).total_buffered();
        buffered += sim.input_queue(i).size();
    }
    const auto& m = sim.metrics();
    EXPECT_EQ(m.generated(), m.delivered() + m.dropped() + buffered);
}

TEST(SwitchSim, DropsWhenPacketQueueOverflows) {
    // One-entry VOQs and a tiny PQ, saturated input: drops must occur
    // and be counted.
    SimConfig c;
    c.ports = 2;
    c.voq_capacity = 1;
    c.pq_capacity = 2;
    c.slots = 200;
    c.warmup_slots = 0;
    // Both inputs always send to output 0: capacity 1/slot vs offered 2.
    SwitchSim sim(c, islip(),
                  std::make_unique<traffic::HotspotTraffic>(1.0, 1.0, 0));
    const auto r = sim.run();
    EXPECT_GT(r.dropped, 0u);
    EXPECT_EQ(r.generated, 400u);
    EXPECT_NEAR(r.throughput, 0.5, 0.05);  // one of two outputs busy
}

TEST(SwitchSim, WarmupExcludesEarlyPacketsFromDelayStats) {
    SimConfig c;
    c.ports = 4;
    c.slots = 60;
    c.warmup_slots = 50;
    SwitchSim sim(c, islip(),
                  std::make_unique<traffic::TraceTraffic>(
                      std::vector<traffic::TraceEntry>{{1, 0, 0},
                                                       {55, 1, 2}}));
    const auto r = sim.run();
    EXPECT_EQ(r.delivered, 2u);
    EXPECT_EQ(r.measured, 1u);  // only the post-warm-up packet counts
    EXPECT_DOUBLE_EQ(r.mean_delay, 1.0);
}

TEST(SwitchSim, ServiceMatrixRecordsFlows) {
    SimConfig c;
    c.ports = 4;
    c.slots = 50;
    c.warmup_slots = 0;
    c.record_service_matrix = true;
    SwitchSim sim(c, islip(),
                  std::make_unique<traffic::TraceTraffic>(
                      std::vector<traffic::TraceEntry>{
                          {0, 0, 2}, {1, 0, 2}, {2, 3, 1}}));
    const auto r = sim.run();
    EXPECT_EQ(r.service_of(0, 2), 2u);
    EXPECT_EQ(r.service_of(3, 1), 1u);
    EXPECT_EQ(r.service_of(1, 1), 0u);
}

TEST(SwitchSim, StepwiseIntrospection) {
    auto c = tiny();
    SwitchSim sim(c, islip(),
                  std::make_unique<traffic::TraceTraffic>(
                      std::vector<traffic::TraceEntry>{{0, 2, 3}}));
    EXPECT_EQ(sim.current_slot(), 0u);
    sim.step();
    EXPECT_EQ(sim.current_slot(), 1u);
    // The packet was forwarded in slot 0; the matching shows it.
    EXPECT_EQ(sim.last_matching().output_of(2), 3);
}

TEST(SwitchSim, CountersAlwaysCollected) {
    auto c = tiny();
    c.slots = 200;
    SwitchSim sim(c, islip(),
                  std::make_unique<traffic::BernoulliUniform>(0.6));
    const auto r = sim.run();
    EXPECT_EQ(r.sched.cycles, 200u);
    EXPECT_GT(r.sched.requests, 0u);
    EXPECT_GT(r.sched.grants, 0u);
    EXPECT_EQ(r.sched.grants, r.delivered);  // speedup 1, no fabric drops
    EXPECT_LE(r.sched.max_matching, c.ports);
    EXPECT_EQ(r.sched.paranoid_violations, 0u);
}

TEST(SwitchSim, SpeedupRunsSchedulerTwicePerSlot) {
    auto c = tiny();
    c.slots = 50;
    c.speedup = 2;
    SwitchSim sim(c, islip(),
                  std::make_unique<traffic::BernoulliUniform>(0.6));
    const auto r = sim.run();
    EXPECT_EQ(r.sched.cycles, 100u);  // one observation per phase
}

TEST(SwitchSim, TraceRingEngagesWhenConfigured) {
    auto c = tiny();
    c.slots = 50;
    c.trace_capacity = 16;
    SwitchSim sim(c, islip(),
                  std::make_unique<traffic::BernoulliUniform>(0.8));
    EXPECT_FALSE(SwitchSim(tiny(), islip(),
                           std::make_unique<traffic::BernoulliUniform>(0.1))
                     .trace()
                     .has_value());
    ASSERT_TRUE(sim.trace().has_value());
    sim.run();
    EXPECT_EQ(sim.trace()->recorded(), 50u);
    EXPECT_EQ(sim.trace()->size(), 16u);  // ring kept the most recent 16
    EXPECT_EQ(sim.trace()->at(0).cycle, 34u);
}

TEST(SwitchSim, ParanoidCheckerEngagesAndRunsClean) {
    auto c = tiny();
    c.slots = 300;
    c.paranoid = true;
    SwitchSim sim(c, core::make_scheduler("lcf_central_rr"),
                  std::make_unique<traffic::BernoulliUniform>(0.9));
    ASSERT_TRUE(sim.checker().has_value());
    // lcf_central_rr promises the §3 fairness guarantee; options_for
    // turned the diagonal-fairness check on for it.
    EXPECT_TRUE(sim.checker()->options().check_diagonal_fairness);
    const auto r = sim.run();
    EXPECT_EQ(sim.checker()->cycles_checked(), 300u);
    EXPECT_EQ(r.sched.paranoid_violations, 0u);
    EXPECT_LE(r.sched.max_starvation_age,
              static_cast<std::uint64_t>(c.ports * c.ports));
}

TEST(SwitchSim, RejectsInvalidConstruction) {
    auto c = tiny();
    EXPECT_THROW(
        SwitchSim(c, islip(), nullptr),
        std::invalid_argument);
    EXPECT_THROW(
        SwitchSim(c, nullptr,
                  std::make_unique<traffic::BernoulliUniform>(0.1)),
        std::invalid_argument);
    c.ports = 0;
    EXPECT_THROW(
        SwitchSim(c, islip(),
                  std::make_unique<traffic::BernoulliUniform>(0.1)),
        std::invalid_argument);
}

}  // namespace
}  // namespace lcf::sim
