// Tests for the quick-channel simulation: immediate delivery when
// uncontended, collision-and-drop semantics, retransmission recovery,
// retry exhaustion, and fairness of the rotating collision winner.

#include "clint/quick_channel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "clint/clint_sim.hpp"

#include "traffic/bernoulli.hpp"
#include "traffic/hotspot.hpp"
#include "traffic/trace.hpp"

namespace lcf::clint {
namespace {

QuickChannelConfig small_config() {
    QuickChannelConfig c;
    c.hosts = 4;
    c.slots = 2000;
    c.warmup_slots = 200;
    c.seed = 9;
    return c;
}

TEST(QuickChannel, UncontendedPacketDeliversInOneSlot) {
    QuickChannelConfig c;
    c.hosts = 4;
    c.slots = 10;
    c.warmup_slots = 0;
    QuickChannelSim sim(c, std::make_unique<traffic::TraceTraffic>(
                               std::vector<traffic::TraceEntry>{{3, 0, 2}}));
    const auto r = sim.run();
    EXPECT_EQ(r.delivered_unique, 1u);
    EXPECT_EQ(r.collisions, 0u);
    EXPECT_DOUBLE_EQ(r.mean_delay, 1.0);  // best-effort: no scheduling wait
}

TEST(QuickChannel, CollisionDropsAllButOne) {
    // Two hosts transmit to the same target in the same slot: exactly
    // one collision, and the loser's retransmission succeeds later.
    QuickChannelConfig c;
    c.hosts = 4;
    c.slots = 20;
    c.warmup_slots = 0;
    c.ack_timeout = 2;
    QuickChannelSim sim(c, std::make_unique<traffic::TraceTraffic>(
                               std::vector<traffic::TraceEntry>{
                                   {0, 0, 3}, {0, 1, 3}}));
    const auto r = sim.run();
    EXPECT_EQ(r.collisions, 1u);
    EXPECT_EQ(r.delivered_unique, 2u);
    EXPECT_GE(r.retransmissions, 1u);
}

TEST(QuickChannel, LowLoadDeliversEverything) {
    auto config = small_config();
    QuickChannelSim sim(config,
                        std::make_unique<traffic::BernoulliUniform>(0.1));
    const auto r = sim.run();
    EXPECT_GT(r.generated, 300u);
    EXPECT_GE(r.delivered_unique + 8, r.generated - r.dropped_queue);
    EXPECT_GT(r.delivery_ratio, 0.95);
}

TEST(QuickChannel, HighContentionCausesCollisionsButProgress) {
    auto config = small_config();
    // All traffic to one hot target: maximal contention.
    QuickChannelSim sim(config, std::make_unique<traffic::HotspotTraffic>(
                                    0.8, 1.0, 0));
    const auto r = sim.run();
    EXPECT_GT(r.collisions, 0u);
    EXPECT_GT(r.delivered_unique, 0u);
    // The single output can carry at most one packet per slot; four
    // hosts offering 0.8 each overload it 3.2x, so most traffic cannot
    // get through.
    EXPECT_LT(r.delivery_ratio, 0.5);
}

TEST(QuickChannel, RotatingPriorityIsFairUnderSymmetricContention) {
    // Two persistent senders to one target must split the wins about
    // evenly thanks to the rotating collision winner.
    QuickChannelConfig c;
    c.hosts = 2;
    c.slots = 4000;
    c.warmup_slots = 0;
    c.ack_timeout = 1;
    QuickChannelSim sim(c, std::make_unique<traffic::HotspotTraffic>(
                               1.0, 1.0, 0));
    const auto r = sim.run();
    // Output 0 carries one packet per slot; each host should win ~half.
    EXPECT_NEAR(r.delivery_ratio, 0.5, 0.05);
}

TEST(QuickChannel, BitErrorsTriggerRetransmissions) {
    auto config = small_config();
    config.bit_error_rate = 1e-4;
    QuickChannelSim sim(config,
                        std::make_unique<traffic::BernoulliUniform>(0.2));
    const auto r = sim.run();
    EXPECT_GT(r.corruptions, 0u);
    EXPECT_GT(r.retransmissions, 0u);
    EXPECT_GT(r.delivery_ratio, 0.9);
}

TEST(QuickChannel, RetryLimitAbandonsHopelessPackets) {
    QuickChannelConfig c;
    c.hosts = 2;
    c.slots = 500;
    c.warmup_slots = 0;
    c.bit_error_rate = 0.05;  // ~99% packet corruption at 1024 bits
    c.max_retries = 2;
    QuickChannelSim sim(c, std::make_unique<traffic::BernoulliUniform>(0.3));
    const auto r = sim.run();
    EXPECT_GT(r.abandoned, 0u);
}

// The ack-corruption probability must follow the same independent-bit
// formula as the data path, parameterised by the configured ack size —
// it used to be hard-coded to 64 bits regardless of the config.
TEST(QuickChannel, AckCorruptProbabilityFollowsConfiguredAckBits) {
    for (const std::size_t ack_bits : {std::size_t{64}, std::size_t{128},
                                       std::size_t{1024}}) {
        QuickChannelConfig c = small_config();
        c.bit_error_rate = 3e-4;
        c.ack_bits = ack_bits;
        QuickChannelSim sim(c,
                            std::make_unique<traffic::BernoulliUniform>(0.1));
        const double expected =
            1.0 - std::pow(1.0 - c.bit_error_rate,
                           static_cast<double>(ack_bits));
        EXPECT_DOUBLE_EQ(sim.ack_corrupt_probability(), expected)
            << ack_bits << " ack bits";
        EXPECT_DOUBLE_EQ(sim.data_corrupt_probability(),
                         1.0 - std::pow(1.0 - c.bit_error_rate,
                                        static_cast<double>(c.payload_bits)));
    }
}

// A packet whose delivery landed but whose acks kept vanishing is not
// data loss: it must be counted abandoned_delivered, not abandoned, and
// the conservation identity must stay exact either way.
TEST(QuickChannel, AbandonedSplitsDeliveredFromUndelivered) {
    QuickChannelConfig c;
    c.hosts = 2;
    c.slots = 4000;
    c.warmup_slots = 0;
    c.seed = 5;
    c.bit_error_rate = 1.2e-3;  // ~71% data loss, ~8% ack loss at defaults
    c.payload_bits = 1024;
    c.max_retries = 3;
    QuickChannelSim sim(c, std::make_unique<traffic::BernoulliUniform>(0.4));
    const auto r = sim.run();
    EXPECT_GT(r.abandoned, 0u);
    EXPECT_GT(r.abandoned_delivered, 0u);
    EXPECT_GT(r.duplicate_deliveries, 0u);
    const auto a = sim.accounting();
    EXPECT_TRUE(a.balanced())
        << "generated " << a.generated << " != delivered " << a.delivered_unique
        << " + queued " << a.queued << " + in_flight " << a.in_flight
        << " + dropped " << a.dropped << " + abandoned " << a.abandoned;
}

TEST(QuickChannel, RejectsBadConfiguration) {
    QuickChannelConfig c;
    c.hosts = 0;
    EXPECT_THROW(
        QuickChannelSim(c, std::make_unique<traffic::BernoulliUniform>(0.1)),
        std::invalid_argument);
    c.hosts = 4;
    EXPECT_THROW(QuickChannelSim(c, nullptr), std::invalid_argument);
}

TEST(ClintSim, CombinedRunProducesBothChannelResults) {
    ClintConfig c;
    c.hosts = 8;
    c.slots = 1500;
    c.warmup_slots = 100;
    c.bulk_load = 0.5;
    c.quick_load = 0.1;
    const auto r = run_clint(c);
    EXPECT_GT(r.bulk.delivered_unique, 0u);
    EXPECT_GT(r.quick.delivered_unique, 0u);
    // The architecture's division of labour: quick beats bulk on latency
    // at light load.
    EXPECT_LT(r.quick.mean_delay, r.bulk.mean_delay + 1.0);
}

}  // namespace
}  // namespace lcf::clint
