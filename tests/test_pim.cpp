// Tests for the PIM baseline: validity, convergence with iterations,
// randomized-but-seeded determinism, and approximate grant fairness.

#include "sched/pim.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.hpp"

namespace lcf::sched {
namespace {

TEST(Pim, ValidMatchingsOnRandomInputs) {
    PimScheduler s(SchedulerConfig{.iterations = 4, .seed = 3});
    s.reset(8, 8);
    util::Xoshiro256 rng(8);
    Matching m;
    for (int trial = 0; trial < 300; ++trial) {
        RequestMatrix r(8);
        for (std::size_t i = 0; i < 8; ++i) {
            for (std::size_t j = 0; j < 8; ++j) {
                if (rng.next_bool(0.4)) r.set(i, j);
            }
        }
        s.schedule(r, m);
        EXPECT_TRUE(m.valid_for(r));
    }
}

TEST(Pim, SameSeedSameSchedule) {
    const RequestMatrix r =
        make_requests(4, {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 2}, {3, 3}});
    PimScheduler a(SchedulerConfig{.iterations = 4, .seed = 42});
    PimScheduler b(SchedulerConfig{.iterations = 4, .seed = 42});
    a.reset(4, 4);
    b.reset(4, 4);
    Matching ma, mb;
    for (int i = 0; i < 20; ++i) {
        a.schedule(r, ma);
        b.schedule(r, mb);
        EXPECT_EQ(ma, mb);
    }
}

TEST(Pim, ResetRestoresTheRandomStream) {
    const RequestMatrix r = make_requests(4, {{0, 0}, {1, 0}, {2, 0}, {3, 0}});
    PimScheduler s(SchedulerConfig{.iterations = 1, .seed = 5});
    s.reset(4, 4);
    Matching first;
    s.schedule(r, first);
    s.reset(4, 4);
    Matching again;
    s.schedule(r, again);
    EXPECT_EQ(first, again);
}

TEST(Pim, SingleRequestAlwaysGranted) {
    PimScheduler s(SchedulerConfig{.iterations = 1, .seed = 7});
    s.reset(4, 4);
    Matching m;
    s.schedule(make_requests(4, {{2, 1}}), m);
    EXPECT_EQ(m.output_of(2), 1);
}

TEST(Pim, MoreIterationsNeverHurtOnFullLoad) {
    RequestMatrix full(8);
    for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < 8; ++j) full.set(i, j);
    }
    double prev_avg = 0.0;
    for (const std::size_t iters : {1u, 2u, 4u}) {
        double total = 0.0;
        PimScheduler s(SchedulerConfig{.iterations = iters, .seed = 1});
        s.reset(8, 8);
        Matching m;
        for (int trial = 0; trial < 200; ++trial) {
            s.schedule(full, m);
            total += static_cast<double>(m.size());
        }
        const double avg = total / 200.0;
        EXPECT_GE(avg + 0.05, prev_avg);
        prev_avg = avg;
    }
    // With 4 iterations on all-ones 8x8, PIM is essentially perfect.
    EXPECT_GT(prev_avg, 7.5);
}

TEST(Pim, GrantsSpreadAcrossContenders) {
    // Four persistent contenders for one output share it roughly evenly
    // (statistical fairness — PIM's randomness gives no hard bound).
    const RequestMatrix r = make_requests(4, {{0, 0}, {1, 0}, {2, 0}, {3, 0}});
    PimScheduler s(SchedulerConfig{.iterations = 1, .seed = 9});
    s.reset(4, 4);
    Matching m;
    std::map<std::int32_t, int> wins;
    constexpr int kSlots = 4000;
    for (int i = 0; i < kSlots; ++i) {
        s.schedule(r, m);
        ++wins[m.input_of(0)];
    }
    ASSERT_EQ(wins.size(), 4u);
    for (const auto& [input, count] : wins) {
        EXPECT_NEAR(static_cast<double>(count), kSlots / 4.0, kSlots * 0.05)
            << "input " << input;
    }
}

TEST(Pim, EmptyRequests) {
    PimScheduler s;
    s.reset(4, 4);
    Matching m;
    s.schedule(RequestMatrix(4), m);
    EXPECT_EQ(m.size(), 0u);
}

}  // namespace
}  // namespace lcf::sched
