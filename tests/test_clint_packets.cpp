// Tests for the Clint packet codecs: round-trips, wire layout, CRC
// rejection, and type discrimination.

#include "clint/packets.hpp"

#include "clint/crc16.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace lcf::clint {
namespace {

TEST(ConfigPacket, RoundTrip) {
    ConfigPacket p;
    p.req = 0xA5F0;
    p.pre = 0x0102;
    p.ben = 0xFFFF;
    p.qen = 0x8001;
    const auto wire = p.encode();
    EXPECT_EQ(wire.size(), ConfigPacket::kWireSize);
    const auto decoded = ConfigPacket::decode(wire);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, p);
}

TEST(ConfigPacket, RejectsEverySingleBitCorruption) {
    const auto wire = ConfigPacket{0x1234, 0, 0xFFFF, 0xFFFF}.encode();
    for (std::size_t byte = 0; byte < wire.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            auto bad = wire;
            bad[byte] = static_cast<std::uint8_t>(bad[byte] ^ (1U << bit));
            EXPECT_FALSE(ConfigPacket::decode(bad).has_value())
                << "byte " << byte << " bit " << bit;
        }
    }
}

TEST(ConfigPacket, RejectsWrongLength) {
    auto wire = ConfigPacket{}.encode();
    wire.push_back(0);
    EXPECT_FALSE(ConfigPacket::decode(wire).has_value());
    wire.resize(ConfigPacket::kWireSize - 1);
    EXPECT_FALSE(ConfigPacket::decode(wire).has_value());
}

// Truncation faults hand the decoder arbitrarily short buffers —
// including ones too short to hold even the CRC field, which used to
// make the checksum helper's `size() - 2` underflow. Every length from
// empty to oversized must be rejected cleanly.
TEST(ConfigPacket, RejectsTruncatedEmptyAndOversizedWires) {
    const auto wire = ConfigPacket{0xBEEF, 0x0001, 0xFFFF, 0xFFFF}.encode();
    EXPECT_FALSE(ConfigPacket::decode({}).has_value());
    for (std::size_t len = 0; len < wire.size(); ++len) {
        const auto cut = std::vector<std::uint8_t>(wire.begin(),
                                                   wire.begin() +
                                                       static_cast<std::ptrdiff_t>(len));
        EXPECT_FALSE(ConfigPacket::decode(cut).has_value()) << "len " << len;
    }
    auto grown = wire;
    grown.insert(grown.end(), 5, 0xAA);
    EXPECT_FALSE(ConfigPacket::decode(grown).has_value());
}

TEST(GrantPacket, RejectsTruncatedEmptyAndOversizedWires) {
    const auto wire = GrantPacket{4, 2, true, false, true}.encode();
    EXPECT_FALSE(GrantPacket::decode({}).has_value());
    for (std::size_t len = 0; len < wire.size(); ++len) {
        const auto cut = std::vector<std::uint8_t>(wire.begin(),
                                                   wire.begin() +
                                                       static_cast<std::ptrdiff_t>(len));
        EXPECT_FALSE(GrantPacket::decode(cut).has_value()) << "len " << len;
    }
    auto grown = wire;
    grown.push_back(0);
    EXPECT_FALSE(GrantPacket::decode(grown).has_value());
}

TEST(GrantPacket, RoundTripAllFlagCombinations) {
    for (int flags = 0; flags < 8; ++flags) {
        GrantPacket p;
        p.node_id = 11;
        p.gnt = 7;
        p.gnt_val = (flags & 4) != 0;
        p.link_err = (flags & 2) != 0;
        p.crc_err = (flags & 1) != 0;
        const auto decoded = GrantPacket::decode(p.encode());
        ASSERT_TRUE(decoded.has_value()) << flags;
        EXPECT_EQ(*decoded, p) << flags;
    }
}

TEST(GrantPacket, FourBitFieldsMaskHighBits) {
    GrantPacket p;
    p.node_id = 15;
    p.gnt = 15;
    p.gnt_val = true;
    const auto decoded = GrantPacket::decode(p.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->node_id, 15);
    EXPECT_EQ(decoded->gnt, 15);
}

TEST(GrantPacket, RejectsCorruption) {
    const auto wire = GrantPacket{3, 9, true, false, false}.encode();
    for (std::size_t byte = 0; byte < wire.size(); ++byte) {
        auto bad = wire;
        bad[byte] = static_cast<std::uint8_t>(bad[byte] ^ 0x10);
        EXPECT_FALSE(GrantPacket::decode(bad).has_value());
    }
}

// Regression for a gap the packets fuzz harness's round-trip property
// surfaced: the five reserved bits of the grant flag byte were ignored
// by decode(), so a CRC-valid frame with reserved bits set decoded to a
// packet whose re-encoding differed from the wire — a non-canonical
// frame the encoder can never produce. Reserved bits must now be zero.
TEST(GrantPacket, RejectsReservedFlagBits) {
    const auto canonical = GrantPacket{3, 5, true, false, false}.encode();
    for (int bit = 3; bit < 8; ++bit) {
        // Rebuild the frame with one reserved bit set and a *correct*
        // CRC, so only the canonical-frame rule can reject it.
        auto body = std::vector<std::uint8_t>(canonical.begin(),
                                              canonical.end() - 2);
        body[2] = static_cast<std::uint8_t>(body[2] | (1U << bit));
        const std::uint16_t crc = crc16({body.data(), body.size()});
        body.push_back(static_cast<std::uint8_t>(crc >> 8));
        body.push_back(static_cast<std::uint8_t>(crc & 0xFF));
        EXPECT_FALSE(GrantPacket::decode(body).has_value())
            << "reserved bit " << bit << " accepted";
    }
    // The canonical frame itself still decodes.
    EXPECT_TRUE(GrantPacket::decode(canonical).has_value());
}

// The fuzzer's garbage-byte path, pinned as a unit test: every single-
// byte overwrite (not just single-bit flips) of valid config and grant
// frames must be rejected — a <= 8-bit burst is always caught by CRC-16,
// and byte 0 by the type tag.
TEST(Packets, RejectsEverySingleByteOverwrite) {
    const auto cfg = ConfigPacket{0xDEAD, 0xBEEF, 0x0F0F, 0xF0F0}.encode();
    const auto gnt = GrantPacket{9, 6, true, true, false}.encode();
    util::Xoshiro256 rng(1234);
    for (int trial = 0; trial < 200; ++trial) {
        const auto value = static_cast<std::uint8_t>(rng());
        for (std::size_t at = 0; at < cfg.size(); ++at) {
            if (cfg[at] == value) continue;
            auto bad = cfg;
            bad[at] = value;
            EXPECT_FALSE(ConfigPacket::decode(bad).has_value())
                << "config byte " << at << " <- " << static_cast<int>(value);
        }
        for (std::size_t at = 0; at < gnt.size(); ++at) {
            if (gnt[at] == value) continue;
            auto bad = gnt;
            bad[at] = value;
            EXPECT_FALSE(GrantPacket::decode(bad).has_value())
                << "grant byte " << at << " <- " << static_cast<int>(value);
        }
    }
}

TEST(Packets, TypeTagsAreMutuallyExclusive) {
    const auto cfg_wire = ConfigPacket{}.encode();
    const auto gnt_wire = GrantPacket{}.encode();
    EXPECT_FALSE(GrantPacket::decode(cfg_wire).has_value());
    EXPECT_FALSE(ConfigPacket::decode(gnt_wire).has_value());
}

TEST(Packets, RandomGarbageRejected) {
    util::Xoshiro256 rng(404);
    for (int trial = 0; trial < 1000; ++trial) {
        std::vector<std::uint8_t> junk(ConfigPacket::kWireSize);
        for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
        // Even with a lucky type byte the CRC must fail almost surely.
        if (ConfigPacket::decode(junk).has_value()) {
            // Probability ~2^-24; treat an occurrence as suspicious.
            ADD_FAILURE() << "random garbage decoded as config packet";
        }
    }
}

}  // namespace
}  // namespace lcf::clint
