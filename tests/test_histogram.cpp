// Tests for the integer histogram: exact buckets, overflow accounting,
// mean exactness, percentiles, and merge.

#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace lcf::util {
namespace {

TEST(Histogram, EmptyDefaults) {
    const Histogram h(16);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(Histogram, CountsExactValues) {
    Histogram h(10);
    h.add(3);
    h.add(3);
    h.add(7);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.bucket(7), 1u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, OverflowStillContributesToMeanExactly) {
    Histogram h(4);
    h.add(2);
    h.add(1000);  // overflows the buckets
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), 501.0);
}

TEST(Histogram, PercentilesOnUniformData) {
    Histogram h(101);
    for (std::uint64_t v = 0; v <= 100; ++v) h.add(v);
    EXPECT_EQ(h.percentile(0.0), 0u);
    EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 50.0, 1.0);
    EXPECT_EQ(h.percentile(1.0), 100u);
}

TEST(Histogram, PercentileWithOverflowSamples) {
    Histogram h(4);
    h.add(0);
    h.add(1);
    h.add(100);
    h.add(200);
    // Half the samples exceed the capacity; the high percentiles report
    // the capacity as the saturated bound.
    EXPECT_EQ(h.percentile(1.0), 4u);
    EXPECT_LE(h.percentile(0.25), 1u);
}

TEST(Histogram, MergeAddsEverything) {
    Histogram a(8), b(8);
    a.add(1);
    a.add(20);
    b.add(1);
    b.add(2);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.bucket(1), 2u);
    EXPECT_EQ(a.bucket(2), 1u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_DOUBLE_EQ(a.mean(), 6.0);
}

TEST(Histogram, PercentileClampsQ) {
    Histogram h(8);
    h.add(5);
    EXPECT_EQ(h.percentile(-1.0), h.percentile(0.0));
    EXPECT_EQ(h.percentile(2.0), h.percentile(1.0));
}

TEST(Histogram, PercentileZeroIsSmallestRecordedValue) {
    // Regression: with a rank of 0 the scan used to accept bucket 0
    // unconditionally, reporting p0 = 0 even when no sample was 0.
    Histogram h(16);
    h.add(5);
    EXPECT_EQ(h.percentile(0.0), 5u);
    h.add(9);
    EXPECT_EQ(h.percentile(0.0), 5u);
    EXPECT_EQ(h.percentile(-3.0), 5u);
}

TEST(Histogram, PercentileZeroSaturatesWithAllOverflowSamples) {
    // Every sample beyond capacity: all percentiles, including p0,
    // report the saturated bound instead of an empty bucket 0.
    Histogram h(4);
    h.add(100);
    h.add(200);
    EXPECT_EQ(h.percentile(0.0), 4u);
    EXPECT_EQ(h.percentile(1.0), 4u);
}

TEST(Histogram, PercentileOnEmptyHistogramIsZero) {
    const Histogram h(8);
    EXPECT_EQ(h.percentile(0.0), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.percentile(1.0), 0u);
}

}  // namespace
}  // namespace lcf::util
