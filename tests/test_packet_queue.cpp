// Tests for the bounded packet FIFO: ordering, capacity, wraparound.

#include "sim/packet_queue.hpp"

#include <gtest/gtest.h>

namespace lcf::sim {
namespace {

Packet make_packet(std::uint64_t id) {
    return Packet{id, 0, 0, 0};
}

TEST(PacketQueue, StartsEmpty) {
    const PacketQueue q(4);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.full());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.capacity(), 4u);
}

TEST(PacketQueue, FifoOrder) {
    PacketQueue q(8);
    for (std::uint64_t i = 0; i < 5; ++i) {
        ASSERT_TRUE(q.push(make_packet(i)));
    }
    for (std::uint64_t i = 0; i < 5; ++i) {
        EXPECT_EQ(q.front().id, i);
        EXPECT_EQ(q.pop().id, i);
    }
    EXPECT_TRUE(q.empty());
}

TEST(PacketQueue, RejectsWhenFull) {
    PacketQueue q(2);
    EXPECT_TRUE(q.push(make_packet(0)));
    EXPECT_TRUE(q.push(make_packet(1)));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.push(make_packet(2)));
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.front().id, 0u);  // rejected push altered nothing
}

TEST(PacketQueue, WraparoundKeepsOrder) {
    PacketQueue q(3);
    std::uint64_t next = 0, expect = 0;
    for (int round = 0; round < 10; ++round) {
        while (!q.full()) q.push(make_packet(next++));
        q.pop();
        EXPECT_EQ(q.front().id, ++expect);
    }
}

TEST(PacketQueue, ClearEmpties) {
    PacketQueue q(4);
    q.push(make_packet(1));
    q.push(make_packet(2));
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_TRUE(q.push(make_packet(3)));
    EXPECT_EQ(q.front().id, 3u);
}

TEST(PacketQueue, PreservesPacketFields) {
    PacketQueue q(2);
    q.push(Packet{42, 3, 7, 99});
    const Packet p = q.pop();
    EXPECT_EQ(p.id, 42u);
    EXPECT_EQ(p.source, 3u);
    EXPECT_EQ(p.destination, 7u);
    EXPECT_EQ(p.generated_slot, 99u);
}

}  // namespace
}  // namespace lcf::sim
