// Integration tests reproducing the *qualitative* content of the
// paper's evaluation (§6.3, Figure 12) at reduced scale so they run in
// seconds:
//   - fifo saturates near the Karol/Hluchyj/Morgan 58.6 % bound,
//   - VOQ schedulers sustain high load, outbuf is the lower envelope,
//   - lcf_central tracks outbuf most closely at high load,
//   - the latency ordering of the main curves holds.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "sim/runner.hpp"

namespace lcf::sim {
namespace {

SimConfig paper_config(std::uint64_t slots = 20000) {
    SimConfig c;
    c.ports = 16;
    c.voq_capacity = 256;
    c.pq_capacity = 1000;
    c.outbuf_capacity = 256;
    c.slots = slots;
    c.warmup_slots = slots / 10;
    c.seed = 1234;
    return c;
}

TEST(Integration, FifoSaturatesNearFiftyNinePercent) {
    // Head-of-line blocking caps FIFO throughput at 2 - sqrt(2) = 0.586
    // for large n; at full offered load the carried load must sit close
    // to that bound and far from 1.
    const auto r = run_named("fifo", paper_config(), "uniform", 1.0);
    EXPECT_GT(r.throughput, 0.52);
    EXPECT_LT(r.throughput, 0.64);
}

TEST(Integration, VoqSchedulersSustainHighLoad) {
    for (const auto* name :
         {"lcf_central", "lcf_central_rr", "lcf_dist", "lcf_dist_rr",
          "islip", "wfront"}) {
        const auto r = run_named(name, paper_config(), "uniform", 0.95);
        EXPECT_GT(r.throughput, 0.90) << name;
    }
}

TEST(Integration, OutbufCarriesFullLoad) {
    const auto r = run_named("outbuf", paper_config(), "uniform", 0.98);
    EXPECT_NEAR(r.throughput, 0.98, 0.02);
}

TEST(Integration, LatencyOrderingAtHighLoadMatchesFigure12) {
    // At load 0.85 the paper's Figure 12 places: outbuf < lcf_central <
    // (distributed / iterative schedulers) << fifo.
    const double load = 0.85;
    std::map<std::string, double> delay;
    for (const auto* name :
         {"outbuf", "lcf_central", "lcf_dist", "pim", "islip", "fifo"}) {
        delay[name] =
            run_named(name, paper_config(), "uniform", load).mean_delay;
    }
    EXPECT_LT(delay["outbuf"], delay["lcf_central"]);
    EXPECT_LT(delay["lcf_central"], delay["lcf_dist"]);
    EXPECT_LT(delay["lcf_central"], delay["pim"]);
    EXPECT_LT(delay["lcf_central"], delay["islip"]);
    EXPECT_GT(delay["fifo"], 2.0 * delay["islip"]);
}

TEST(Integration, LcfCentralTracksOutbufClosely) {
    // "lcf_central comes closest to the performance of an output-
    // buffered switch ... For high load, the latency for lcf_central is
    // about 1.4 times the latency of outbuf."
    const double load = 0.9;
    const double outbuf =
        run_named("outbuf", paper_config(), "uniform", load).mean_delay;
    const double lcf =
        run_named("lcf_central", paper_config(), "uniform", load).mean_delay;
    EXPECT_GT(lcf / outbuf, 1.0);
    EXPECT_LT(lcf / outbuf, 2.0);
}

TEST(Integration, LcfDistBeatsPimBelowPoint9) {
    // "Compared with pim, lcf_dist has lower ... latencies for a load up
    // to 0.9."
    const double load = 0.8;
    const double dist =
        run_named("lcf_dist", paper_config(), "uniform", load).mean_delay;
    const double pim =
        run_named("pim", paper_config(), "uniform", load).mean_delay;
    EXPECT_LT(dist, pim * 1.05);
}

TEST(Integration, LowLoadLatenciesNearlyIdentical) {
    // "For low load, the latencies for the various schedulers differ
    // very little."
    const double load = 0.2;
    double lo = 1e9, hi = 0.0;
    for (const auto* name :
         {"outbuf", "lcf_central", "lcf_central_rr", "lcf_dist", "pim",
          "islip", "wfront"}) {
        const double d =
            run_named(name, paper_config(8000), "uniform", load).mean_delay;
        lo = std::min(lo, d);
        hi = std::max(hi, d);
    }
    EXPECT_LT(hi / lo, 1.3);
}

TEST(Integration, DelayGrowsMonotonicallyWithLoadForLcf) {
    double prev = 0.0;
    for (const double load : {0.3, 0.6, 0.8, 0.95}) {
        const double d =
            run_named("lcf_central", paper_config(8000), "uniform", load)
                .mean_delay;
        EXPECT_GT(d, prev);
        prev = d;
    }
}

TEST(Integration, PermutationTrafficIsContentionFree) {
    // Fixed-permutation traffic at full load needs no arbitration at
    // all: any maximal scheduler delivers with delay ~1.
    for (const auto* name : {"lcf_central", "islip", "wfront"}) {
        const auto r =
            run_named(name, paper_config(6000), "permutation", 1.0);
        EXPECT_NEAR(r.mean_delay, 1.0, 0.25) << name;
        EXPECT_GT(r.throughput, 0.95) << name;
    }
}

}  // namespace
}  // namespace lcf::sim
