// Tests for the FIFO round-robin baseline: head-of-line arbitration and
// rotating fairness among persistent contenders.

#include "sched/fifo_rr.hpp"

#include <gtest/gtest.h>

#include <map>

namespace lcf::sched {
namespace {

TEST(FifoRr, GrantsSoleRequester) {
    FifoRrScheduler s;
    s.reset(4, 4);
    Matching m;
    s.schedule(make_requests(4, {{1, 2}}), m);
    EXPECT_EQ(m.output_of(1), 2);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FifoRr, OneWinnerPerContestedOutput) {
    FifoRrScheduler s;
    s.reset(4, 4);
    Matching m;
    // All four inputs' HOL packets head for output 0.
    s.schedule(make_requests(4, {{0, 0}, {1, 0}, {2, 0}, {3, 0}}), m);
    EXPECT_EQ(m.size(), 1u);
    EXPECT_NE(m.input_of(0), kUnmatched);
}

TEST(FifoRr, RotatesAmongPersistentContenders) {
    FifoRrScheduler s;
    s.reset(4, 4);
    const RequestMatrix r = make_requests(4, {{0, 0}, {1, 0}, {2, 0}, {3, 0}});
    Matching m;
    std::map<std::int32_t, int> wins;
    for (int slot = 0; slot < 40; ++slot) {
        s.schedule(r, m);
        ++wins[m.input_of(0)];
    }
    ASSERT_EQ(wins.size(), 4u);
    for (const auto& [input, count] : wins) {
        EXPECT_EQ(count, 10) << "input " << input;
    }
}

TEST(FifoRr, DisjointRequestsAllGranted) {
    FifoRrScheduler s;
    s.reset(4, 4);
    Matching m;
    s.schedule(make_requests(4, {{0, 3}, {1, 2}, {2, 1}, {3, 0}}), m);
    EXPECT_EQ(m.size(), 4u);
}

TEST(FifoRr, ValidityOnHolMatrices) {
    FifoRrScheduler s;
    s.reset(8, 8);
    Matching m;
    const RequestMatrix r =
        make_requests(8, {{0, 1}, {1, 1}, {2, 5}, {3, 5}, {4, 5}, {5, 0}});
    s.schedule(r, m);
    EXPECT_TRUE(m.valid_for(r));
    EXPECT_EQ(m.size(), 3u);  // outputs 0, 1, 5 each serve one input
}

TEST(FifoRr, NameIsStable) {
    EXPECT_EQ(FifoRrScheduler().name(), "fifo");
}

}  // namespace
}  // namespace lcf::sched
