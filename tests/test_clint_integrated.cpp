// Tests for the integrated Clint cluster mode: bulk acknowledgments
// travelling over the quick channel (§4.1), contending with and
// preempting quick data traffic.

#include <gtest/gtest.h>

#include "clint/clint_sim.hpp"
#include "clint/quick_channel.hpp"
#include "traffic/bernoulli.hpp"
#include "traffic/trace.hpp"

namespace lcf::clint {
namespace {

TEST(QuickControl, ControlPacketPreemptsData) {
    QuickChannelConfig c;
    c.hosts = 4;
    c.slots = 10;
    c.warmup_slots = 0;
    // One data packet queued at host 0 in slot 0; a control packet is
    // injected first, so the data goes out one slot later.
    QuickChannelSim sim(c, std::make_unique<traffic::TraceTraffic>(
                               std::vector<traffic::TraceEntry>{{0, 0, 2}}));
    sim.inject_control(0, 3);
    sim.run();
    const auto r = sim.result();
    EXPECT_EQ(sim.control_sent(), 1u);
    EXPECT_EQ(sim.control_preemptions(), 1u);
    EXPECT_EQ(r.delivered_unique, 1u);
    EXPECT_DOUBLE_EQ(r.mean_delay, 2.0);  // one slot late
}

TEST(QuickControl, ControlCollidesWithDataAtTheTarget) {
    QuickChannelConfig c;
    c.hosts = 4;
    c.slots = 10;
    c.warmup_slots = 0;
    c.ack_timeout = 1;
    // Host 1 sends data to target 3 in slot 0; host 0 sends a control
    // packet to target 3 in the same slot: exactly one collision.
    QuickChannelSim sim(c, std::make_unique<traffic::TraceTraffic>(
                               std::vector<traffic::TraceEntry>{{0, 1, 3}}));
    sim.inject_control(0, 3);
    sim.run();
    const auto r = sim.result();
    EXPECT_EQ(r.collisions, 1u);
    EXPECT_EQ(r.delivered_unique, 1u);  // the data packet gets through on retry
}

TEST(Integrated, AcksAreInjectedAndCounted) {
    ClintConfig c;
    c.hosts = 8;
    c.slots = 2000;
    c.warmup_slots = 200;
    c.bulk_load = 0.5;
    c.quick_load = 0.1;
    c.integrated = true;
    const auto r = run_clint(c);
    // Every delivered-and-acked bulk packet produced one control packet
    // on the quick channel.
    EXPECT_GT(r.quick_control_sent, 0u);
    EXPECT_GE(r.quick_control_sent, r.bulk.delivered_unique - r.bulk.ack_losses);
    EXPECT_GT(r.quick.delivered_unique, 0u);
}

TEST(Integrated, BulkAckTrafficDegradesQuickChannel) {
    // The architectural cost §4.1 implies: the heavier the bulk
    // channel, the more ack traffic the quick channel carries, and the
    // worse quick data latency gets.
    ClintConfig base;
    base.hosts = 8;
    base.slots = 4000;
    base.warmup_slots = 400;
    base.quick_load = 0.15;
    base.integrated = true;

    ClintConfig light = base;
    light.bulk_load = 0.05;
    ClintConfig heavy = base;
    heavy.bulk_load = 0.9;

    const auto l = run_clint(light);
    const auto h = run_clint(heavy);
    EXPECT_GT(h.quick_control_sent, l.quick_control_sent * 5);
    EXPECT_GT(h.quick.mean_delay, l.quick.mean_delay);
}

TEST(Integrated, NonIntegratedModeReportsNoControlTraffic) {
    ClintConfig c;
    c.hosts = 8;
    c.slots = 1000;
    c.warmup_slots = 100;
    c.integrated = false;
    const auto r = run_clint(c);
    EXPECT_EQ(r.quick_control_sent, 0u);
    EXPECT_EQ(r.quick_control_preemptions, 0u);
}

TEST(Integrated, Deterministic) {
    ClintConfig c;
    c.hosts = 8;
    c.slots = 1500;
    c.warmup_slots = 100;
    c.integrated = true;
    const auto a = run_clint(c);
    const auto b = run_clint(c);
    EXPECT_EQ(a.bulk.delivered_unique, b.bulk.delivered_unique);
    EXPECT_EQ(a.quick.delivered_unique, b.quick.delivered_unique);
    EXPECT_DOUBLE_EQ(a.quick.mean_delay, b.quick.mean_delay);
    EXPECT_EQ(a.quick_control_sent, b.quick_control_sent);
}

}  // namespace
}  // namespace lcf::clint
