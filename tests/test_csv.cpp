// Tests for CsvWriter: cell formatting and RFC 4180 quoting.

#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace lcf::util {
namespace {

TEST(Csv, PlainRow) {
    std::ostringstream out;
    CsvWriter w(out);
    w.row("load", "latency", "scheduler");
    EXPECT_EQ(out.str(), "load,latency,scheduler\n");
}

TEST(Csv, NumericCells) {
    std::ostringstream out;
    CsvWriter w(out);
    w.row(1, 2.5, 3u);
    EXPECT_EQ(out.str(), "1,2.5,3\n");
}

TEST(Csv, IntegralDoublesPrintWithoutDecimalPoint) {
    std::ostringstream out;
    CsvWriter w(out);
    w.row(2.0);
    EXPECT_EQ(out.str(), "2\n");
}

TEST(Csv, QuotesCellsWithSeparators) {
    std::ostringstream out;
    CsvWriter w(out);
    w.row("a,b", "plain");
    EXPECT_EQ(out.str(), "\"a,b\",plain\n");
}

TEST(Csv, EscapesEmbeddedQuotes) {
    std::ostringstream out;
    CsvWriter w(out);
    w.row("say \"hi\"");
    EXPECT_EQ(out.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(Csv, QuotesNewlines) {
    std::ostringstream out;
    CsvWriter w(out);
    w.row("two\nlines");
    EXPECT_EQ(out.str(), "\"two\nlines\"\n");
}

TEST(Csv, RowVec) {
    std::ostringstream out;
    CsvWriter w(out);
    w.row_vec({"a", "b", "c"});
    EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, MultipleRows) {
    std::ostringstream out;
    CsvWriter w(out);
    w.row("x");
    w.row("y");
    EXPECT_EQ(out.str(), "x\ny\n");
}

}  // namespace
}  // namespace lcf::util
