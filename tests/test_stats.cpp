// Tests for RunningStat: Welford correctness against closed forms and
// the parallel merge() path.

#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace lcf::util {
namespace {

TEST(RunningStat, EmptyIsNeutral) {
    const RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStat, SingleValue) {
    RunningStat s;
    s.add(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStat, KnownMoments) {
    RunningStat s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of this classic dataset is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeEqualsSequential) {
    Xoshiro256 rng(4);
    RunningStat whole, left, right;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.next_double() * 100.0;
        whole.add(x);
        (i < 400 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStat, MergeWithEmptySides) {
    RunningStat a;
    a.add(1.0);
    a.add(3.0);
    RunningStat empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    RunningStat b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStat, StddevIsSqrtOfVariance) {
    RunningStat s;
    s.add(1.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.stddev() * s.stddev(), s.variance());
}

}  // namespace
}  // namespace lcf::util
