// The central hardware-correctness result: the bit-level Figure 6
// datapath model computes exactly the same matchings as the behavioural
// Figure 2 pseudocode (round-robin variant), cycle after cycle —
// exhaustively on small switches and randomised on larger ones — and
// consumes exactly the 3n+2 clock cycles per schedule that Table 2
// reports for the LCF calculation task.

#include <gtest/gtest.h>

#include "core/lcf_central.hpp"
#include "hw/rtl_central.hpp"
#include "hw/timing_model.hpp"
#include "util/rng.hpp"

namespace lcf {
namespace {

using sched::Matching;
using sched::RequestMatrix;

RequestMatrix from_bits(std::size_t n, std::uint32_t bits) {
    RequestMatrix r(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (bits & (1U << (i * n + j))) r.set(i, j);
        }
    }
    return r;
}

TEST(RtlEquivalence, Exhaustive3x3OverFullDiagonalPeriod) {
    // All 512 request matrices, each scheduled at every diagonal state:
    // run n²+1 consecutive cycles on the same matrix so the anchors
    // sweep their whole period.
    constexpr std::size_t kN = 3;
    for (std::uint32_t bits = 0; bits < (1U << (kN * kN)); ++bits) {
        core::LcfCentralScheduler behav(
            core::LcfCentralOptions{.variant = core::RrVariant::kInterleaved});
        hw::RtlCentralScheduler rtl;
        behav.reset(kN, kN);
        rtl.reset(kN, kN);
        const auto r = from_bits(kN, bits);
        Matching mb, mr;
        for (std::size_t cycle = 0; cycle <= kN * kN; ++cycle) {
            behav.schedule(r, mb);
            rtl.schedule(r, mr);
            ASSERT_EQ(mb, mr) << "bits=" << bits << " cycle=" << cycle;
        }
    }
}

TEST(RtlEquivalence, Randomised16PortSequences) {
    constexpr std::size_t kN = 16;
    core::LcfCentralScheduler behav(
        core::LcfCentralOptions{.variant = core::RrVariant::kInterleaved});
    hw::RtlCentralScheduler rtl;
    behav.reset(kN, kN);
    rtl.reset(kN, kN);
    util::Xoshiro256 rng(2026);
    Matching mb, mr;
    for (int cycle = 0; cycle < 2000; ++cycle) {
        RequestMatrix r(kN);
        const double density = rng.next_double();
        for (std::size_t i = 0; i < kN; ++i) {
            for (std::size_t j = 0; j < kN; ++j) {
                if (rng.next_bool(density)) r.set(i, j);
            }
        }
        behav.schedule(r, mb);
        rtl.schedule(r, mr);
        ASSERT_EQ(mb, mr) << "cycle " << cycle;
    }
}

TEST(RtlEquivalence, RandomisedOddPortCounts) {
    // Non-power-of-two radices exercise the modulo wrap paths.
    for (const std::size_t n : {2u, 5u, 7u, 11u}) {
        core::LcfCentralScheduler behav(
            core::LcfCentralOptions{.variant = core::RrVariant::kInterleaved});
        hw::RtlCentralScheduler rtl;
        behav.reset(n, n);
        rtl.reset(n, n);
        util::Xoshiro256 rng(n);
        Matching mb, mr;
        for (int cycle = 0; cycle < 300; ++cycle) {
            RequestMatrix r(n);
            for (std::size_t i = 0; i < n; ++i) {
                for (std::size_t j = 0; j < n; ++j) {
                    if (rng.next_bool(0.4)) r.set(i, j);
                }
            }
            behav.schedule(r, mb);
            rtl.schedule(r, mr);
            ASSERT_EQ(mb, mr) << "n=" << n << " cycle=" << cycle;
        }
    }
}

TEST(RtlEquivalence, CycleCountMatchesTable2) {
    // Table 2: calculating the LCF schedule takes 3n+2 cycles.
    constexpr std::size_t kN = 16;
    hw::RtlCentralScheduler rtl;
    rtl.reset(kN, kN);
    RequestMatrix r(kN);
    r.set(0, 0);
    Matching m;
    rtl.schedule(r, m);
    EXPECT_EQ(rtl.cycles_consumed(), hw::TimingModel::lcf_cycles(kN));
    EXPECT_EQ(rtl.cycles_consumed(), 50u);
    rtl.schedule(r, m);
    EXPECT_EQ(rtl.cycles_consumed(), 100u);
    EXPECT_EQ(rtl.schedules_run(), 2u);
}

TEST(RtlEquivalence, RejectsUnsupportedGeometry) {
    hw::RtlCentralScheduler rtl;
    EXPECT_THROW(rtl.reset(4, 5), std::invalid_argument);
    EXPECT_THROW(rtl.reset(64, 64), std::invalid_argument);
}

}  // namespace
}  // namespace lcf
