// Tests for the §3 round-robin variants of the central LCF scheduler:
// the fairness knob spanning pure LCF (no guarantee) through the single
// position and interleaved diagonal (b/n²) up to diagonal-first (b/n).

#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "core/lcf_central.hpp"
#include "obs/paranoid_checker.hpp"
#include "util/rng.hpp"

namespace lcf::core {
namespace {

using sched::make_requests;
using sched::Matching;
using sched::RequestMatrix;

RequestMatrix all_ones(std::size_t n) {
    RequestMatrix r(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) r.set(i, j);
    }
    return r;
}

std::vector<std::uint64_t> service_counts(LcfCentralScheduler& s,
                                          const RequestMatrix& r,
                                          std::size_t cycles) {
    const std::size_t n = r.inputs();
    std::vector<std::uint64_t> counts(n * n, 0);
    Matching m;
    for (std::size_t c = 0; c < cycles; ++c) {
        s.schedule(r, m);
        for (std::size_t i = 0; i < n; ++i) {
            if (m.output_of(i) != sched::kUnmatched) {
                ++counts[i * n + static_cast<std::size_t>(m.output_of(i))];
            }
        }
    }
    return counts;
}

TEST(RrVariants, SinglePositionWinsOnlyAtAnchor) {
    // Requests: I0:{T0}, I1:{T0,T1}. Anchor the diagonal at [I1, T0]:
    // kSingle grants T0 to I1 (the anchor, res == 0 step); but with the
    // anchor at [I1, T1] the first scheduled column is T1, whose anchor
    // position [I1,T1] is requested, so I1 wins T1 and LCF gives T0 to
    // I0. The non-anchor diagonal position [I2,T2] never overrides.
    LcfCentralScheduler s(LcfCentralOptions{.variant = RrVariant::kSingle});
    s.reset(4, 4);
    s.set_diagonal(1, 0);
    Matching m;
    s.schedule(make_requests(4, {{0, 0}, {1, 0}, {1, 1}}), m);
    EXPECT_EQ(m.input_of(0), 1);  // anchor position [I1,T0] wins

    s.reset(4, 4);
    s.set_diagonal(2, 1);  // anchor at [I2, T1], not requested
    s.schedule(make_requests(4, {{0, 0}, {1, 0}, {1, 1}}), m);
    // No RR override anywhere: pure LCF gives T1 to I1? Column order is
    // T1 first (J=1): contenders of T1: I1 (nrq 2). Wait — LCF grants
    // it regardless; then T0 goes to I0. Either way the anchor did not
    // override anything; validity and maximality suffice here.
    EXPECT_EQ(m.size(), 2u);
}

TEST(RrVariants, DiagonalFirstGrantsWholeDiagonalBeforeLcf) {
    // Diagonal at [I0,T0],[I1,T1],[I2,T2],[I3,T3]; every diagonal
    // position is requested, and each input also has a single-choice
    // competitor... here: all inputs request everything, so LCF alone
    // would pick some matching — with diagonal-first the result must be
    // exactly the diagonal.
    LcfCentralScheduler s(
        LcfCentralOptions{.variant = RrVariant::kDiagonalFirst});
    s.reset(4, 4);
    Matching m;
    s.schedule(all_ones(4), m);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(m.output_of(i), static_cast<std::int32_t>(i));
    }
}

TEST(RrVariants, DiagonalFirstGivesBOverNFloor) {
    // Under a persistent all-ones backlog, every flow [i, j] lies on the
    // granted diagonal once every n cycles: floor b/n, i.e. at least
    // cycles/n grants per flow.
    constexpr std::size_t kN = 4;
    constexpr std::size_t kCycles = kN * kN * 10;
    LcfCentralScheduler s(
        LcfCentralOptions{.variant = RrVariant::kDiagonalFirst});
    s.reset(kN, kN);
    const auto counts = service_counts(s, all_ones(kN), kCycles);
    for (const auto c : counts) {
        EXPECT_GE(c, kCycles / kN / 2);  // comfortably above the b/n² floor
    }
    // And the floor is tight-ish: each flow gets ~cycles/n.
    for (const auto c : counts) {
        EXPECT_NEAR(static_cast<double>(c),
                    static_cast<double>(kCycles) / kN,
                    static_cast<double>(kCycles) / kN);
    }
}

TEST(RrVariants, SingleGivesBOverNSquaredFloor) {
    constexpr std::size_t kN = 4;
    constexpr std::size_t kCycles = kN * kN * 25;
    LcfCentralScheduler s(LcfCentralOptions{.variant = RrVariant::kSingle});
    s.reset(kN, kN);
    const auto counts = service_counts(s, all_ones(kN), kCycles);
    for (const auto c : counts) {
        EXPECT_GE(c, kCycles / (kN * kN));
    }
}

TEST(RrVariants, AllVariantsRemainMaximal) {
    util::Xoshiro256 rng(2002);
    for (const auto variant :
         {RrVariant::kNone, RrVariant::kSingle, RrVariant::kInterleaved,
          RrVariant::kDiagonalFirst}) {
        LcfCentralScheduler s(LcfCentralOptions{.variant = variant});
        s.reset(8, 8);
        Matching m;
        for (int trial = 0; trial < 300; ++trial) {
            RequestMatrix r(8);
            for (std::size_t i = 0; i < 8; ++i) {
                for (std::size_t j = 0; j < 8; ++j) {
                    if (rng.next_bool(0.3)) r.set(i, j);
                }
            }
            s.schedule(r, m);
            ASSERT_TRUE(m.valid_for(r));
            ASSERT_TRUE(m.maximal_for(r));
        }
    }
}

TEST(RrVariants, ThroughputOrderingOnAdversarialPattern) {
    // The fairness/throughput trade-off made visible: on matrices where
    // the diagonal position conflicts with better LCF choices, stronger
    // RR variants grant (weakly) fewer total connections per cycle.
    util::Xoshiro256 rng(414);
    double none_total = 0, first_total = 0;
    LcfCentralScheduler none(LcfCentralOptions{.variant = RrVariant::kNone});
    LcfCentralScheduler first(
        LcfCentralOptions{.variant = RrVariant::kDiagonalFirst});
    none.reset(8, 8);
    first.reset(8, 8);
    Matching m;
    for (int trial = 0; trial < 500; ++trial) {
        RequestMatrix r(8);
        for (std::size_t i = 0; i < 8; ++i) {
            for (std::size_t j = 0; j < 8; ++j) {
                if (rng.next_bool(0.25)) r.set(i, j);
            }
        }
        none.schedule(r, m);
        none_total += static_cast<double>(m.size());
        first.schedule(r, m);
        first_total += static_cast<double>(m.size());
    }
    EXPECT_GE(none_total, first_total);
}

TEST(RrVariants, DiagonalOrbitsAllPositionsInEveryVariant) {
    // The anchor [I, J] must advance exactly once per schedule() call —
    // I = (I+1) % n, J advancing when I wraps — in every variant,
    // visiting all n² positions exactly once over n² cycles and then
    // returning to the start. A variant that advanced twice (or skipped
    // the advance on some code path) would silently halve the b/n²
    // fairness floor.
    const std::size_t n = 4;
    const RequestMatrix full = all_ones(n);
    for (const RrVariant variant :
         {RrVariant::kNone, RrVariant::kSingle, RrVariant::kInterleaved,
          RrVariant::kDiagonalFirst}) {
        LcfCentralScheduler s(LcfCentralOptions{.variant = variant});
        s.reset(n, n);
        Matching m;
        std::set<std::pair<std::size_t, std::size_t>> visited;
        for (std::size_t c = 0; c < n * n; ++c) {
            const auto before = s.diagonal();
            EXPECT_TRUE(visited.insert(before).second)
                << "anchor revisited before the orbit closed";
            s.schedule(full, m);
            const auto after = s.diagonal();
            EXPECT_EQ(after.first, (before.first + 1) % n);
            EXPECT_EQ(after.second, after.first == 0
                                        ? (before.second + 1) % n
                                        : before.second);
        }
        EXPECT_EQ(visited.size(), n * n);
        EXPECT_EQ(s.diagonal(), (std::pair<std::size_t, std::size_t>{0, 0}))
            << "orbit must close after n*n cycles";
    }
}

TEST(RrVariants, PrecalcPathAdvancesDiagonalExactlyOnce) {
    // schedule_with_precalc() shares the rotation state with the plain
    // path; an admitted precalculated claim must not add an extra
    // advance.
    const std::size_t n = 4;
    LcfCentralScheduler s;  // kInterleaved default
    s.reset(n, n);
    const RequestMatrix full = all_ones(n);
    MulticastResult out;
    for (std::size_t c = 0; c < n * n; ++c) {
        const auto before = s.diagonal();
        PrecalcSchedule precalc(n);
        precalc.claim(c % n, (c / n) % n);  // varying multicast claims
        s.schedule_with_precalc(full, precalc, out);
        const auto after = s.diagonal();
        EXPECT_EQ(after.first, (before.first + 1) % n);
        EXPECT_EQ(after.second, after.first == 0 ? (before.second + 1) % n
                                                 : before.second);
    }
    EXPECT_EQ(s.diagonal(), (std::pair<std::size_t, std::size_t>{0, 0}));
}

TEST(RrVariants, ContinuousRequestGrantedWithinNSquaredCycles) {
    // §3's guarantee, measured directly: under a continuously asserted
    // request, no (input, output) position of the interleaved or single
    // variant waits more than n² cycles for a grant — even against an
    // adversarial full backlog from every other input.
    const std::size_t n = 4;
    const RequestMatrix full = all_ones(n);
    for (const RrVariant variant :
         {RrVariant::kSingle, RrVariant::kInterleaved,
          RrVariant::kDiagonalFirst}) {
        LcfCentralScheduler s(LcfCentralOptions{.variant = variant});
        s.reset(n, n);
        obs::ParanoidChecker checker(
            obs::ParanoidOptions{.check_diagonal_fairness = true});
        checker.reset(n, n);  // window defaults to n²
        Matching m;
        for (std::size_t c = 0; c < 4 * n * n; ++c) {
            s.schedule(full, m);
            EXPECT_NO_THROW(checker.check_cycle(full, m))
                << s.name() << " cycle " << c;
        }
        EXPECT_LE(checker.max_starvation_age(), n * n) << s.name();
    }
}

TEST(RrVariants, NamesAreDistinct) {
    EXPECT_EQ(LcfCentralScheduler(
                  LcfCentralOptions{.variant = RrVariant::kSingle})
                  .name(),
              "lcf_central_rr_single");
    EXPECT_EQ(LcfCentralScheduler(
                  LcfCentralOptions{.variant = RrVariant::kDiagonalFirst})
                  .name(),
              "lcf_central_rr_first");
}

}  // namespace
}  // namespace lcf::core
