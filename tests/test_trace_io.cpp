// Tests for trace persistence and capture: CSV round-trip, malformed
// input, recording decorator, and the record -> replay identity on a
// full simulation.

#include <gtest/gtest.h>

#include <sstream>

#include "core/factory.hpp"
#include "sim/switch_sim.hpp"
#include "traffic/bernoulli.hpp"
#include "traffic/trace_io.hpp"

namespace lcf::traffic {
namespace {

TEST(TraceIo, CsvRoundTrip) {
    const std::vector<TraceEntry> entries = {
        {0, 0, 3}, {0, 1, 2}, {5, 3, 0}, {100, 2, 1}};
    std::stringstream buf;
    write_trace_csv(buf, entries);
    const auto back = read_trace_csv(buf);
    ASSERT_EQ(back.size(), entries.size());
    for (std::size_t k = 0; k < entries.size(); ++k) {
        EXPECT_EQ(back[k].slot, entries[k].slot);
        EXPECT_EQ(back[k].input, entries[k].input);
        EXPECT_EQ(back[k].destination, entries[k].destination);
    }
}

TEST(TraceIo, EmptyTrace) {
    std::stringstream buf;
    write_trace_csv(buf, {});
    EXPECT_TRUE(read_trace_csv(buf).empty());
}

TEST(TraceIo, ToleratesCrlfAndBlankLines) {
    std::stringstream buf("slot,input,destination\r\n1,2,3\r\n\n4,5,6\n");
    const auto entries = read_trace_csv(buf);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].slot, 1u);
    EXPECT_EQ(entries[1].destination, 6u);
}

TEST(TraceIo, RejectsMalformedRows) {
    std::stringstream missing_field("1,2\n");
    EXPECT_THROW(read_trace_csv(missing_field), std::runtime_error);
    std::stringstream bad_number("1,x,3\n");
    EXPECT_THROW(read_trace_csv(bad_number), std::runtime_error);
}

TEST(Recording, CapturesInnerArrivals) {
    RecordingTraffic rec(std::make_unique<BernoulliUniform>(0.5));
    rec.reset(4, 4, 9);
    std::size_t arrivals = 0;
    for (std::uint64_t t = 0; t < 100; ++t) {
        for (std::size_t i = 0; i < 4; ++i) {
            if (rec.arrival(i, t) != kNoArrival) ++arrivals;
        }
    }
    EXPECT_EQ(rec.entries().size(), arrivals);
    EXPECT_GT(arrivals, 100u);
}

TEST(Recording, ResetClearsTheTape) {
    RecordingTraffic rec(std::make_unique<BernoulliUniform>(1.0));
    rec.reset(2, 2, 1);
    (void)rec.arrival(0, 0);
    rec.reset(2, 2, 1);
    EXPECT_TRUE(rec.entries().empty());
}

TEST(Recording, RejectsNullInner) {
    EXPECT_THROW(RecordingTraffic(nullptr), std::invalid_argument);
}

TEST(Recording, RecordThenReplayReproducesTheSimulationExactly) {
    // Run once with recorded Bernoulli traffic, replay the tape through
    // a fresh simulation: every metric must be bit-identical.
    sim::SimConfig config;
    config.ports = 8;
    config.slots = 3000;
    config.warmup_slots = 300;

    auto recording = std::make_unique<RecordingTraffic>(
        std::make_unique<BernoulliUniform>(0.8));
    RecordingTraffic* tape = recording.get();
    sim::SwitchSim original(config, core::make_scheduler("lcf_central_rr"),
                            std::move(recording));
    const auto first = original.run();

    sim::SwitchSim replayed(
        config, core::make_scheduler("lcf_central_rr"),
        std::make_unique<TraceTraffic>(tape->entries()));
    const auto second = replayed.run();

    EXPECT_EQ(first.generated, second.generated);
    EXPECT_EQ(first.delivered, second.delivered);
    EXPECT_DOUBLE_EQ(first.mean_delay, second.mean_delay);
    EXPECT_DOUBLE_EQ(first.p99_delay, second.p99_delay);
}

}  // namespace
}  // namespace lcf::traffic
