// Tests for the precalculated-schedule front end (§4.3, Figure 7):
// multicast admission, the integrity check (conflicting claims on one
// target), and the interaction with the regular LCF stage.

#include "core/lcf_central.hpp"
#include "core/precalc.hpp"

#include <gtest/gtest.h>

namespace lcf::core {
namespace {

using sched::make_requests;
using sched::RequestMatrix;

TEST(PrecalcSchedule, ClaimAndQuery) {
    PrecalcSchedule p(4);
    EXPECT_TRUE(p.empty());
    p.claim(3, 1);
    p.claim(3, 3);
    EXPECT_FALSE(p.empty());
    EXPECT_TRUE(p.claimed(3, 1));
    EXPECT_TRUE(p.claimed(3, 3));
    EXPECT_FALSE(p.claimed(3, 0));
    EXPECT_EQ(p.row(3).count(), 2u);
}

TEST(Precalc, Figure7MulticastConnection) {
    // Figure 7: a multicast connection precalculated from I3 to T1 and
    // T3; regular unicast requests from the other initiators compete for
    // the remaining targets T0 and T2.
    LcfCentralScheduler sched(LcfCentralOptions{.variant = RrVariant::kInterleaved});
    sched.reset(4, 4);

    const RequestMatrix requests =
        make_requests(4, {{0, 0}, {0, 2}, {1, 0}, {1, 2}, {2, 0}, {2, 2}});
    PrecalcSchedule pre(4);
    pre.claim(3, 1);
    pre.claim(3, 3);

    MulticastResult out;
    sched.schedule_with_precalc(requests, pre, out);

    // The multicast fan-out is admitted intact...
    EXPECT_EQ(out.fanout[1], 3);
    EXPECT_EQ(out.fanout[3], 3);
    EXPECT_TRUE(out.dropped.empty());
    // ...and the LCF stage still fills T0 and T2 from the unicast
    // requests (both have multiple contenders).
    EXPECT_NE(out.fanout[0], sched::kUnmatched);
    EXPECT_NE(out.fanout[2], sched::kUnmatched);
    EXPECT_EQ(out.connections(), 4u);
    EXPECT_TRUE(out.consistent());
}

TEST(Precalc, IntegrityCheckDropsConflictingClaims) {
    // §4.3: "The integrity is violated if there are multiple requests
    // for a target. In such a case, one request is accepted and the
    // remaining ones are dropped."
    LcfCentralScheduler sched;
    sched.reset(4, 4);
    PrecalcSchedule pre(4);
    pre.claim(0, 2);
    pre.claim(1, 2);  // conflict on T2

    MulticastResult out;
    sched.schedule_with_precalc(RequestMatrix(4), pre, out);
    EXPECT_NE(out.fanout[2], sched::kUnmatched);
    ASSERT_EQ(out.dropped.size(), 1u);
    EXPECT_EQ(out.dropped[0].second, 2u);
    // Exactly one of the two claimants won.
    const auto winner = static_cast<std::size_t>(out.fanout[2]);
    EXPECT_TRUE(winner == 0 || winner == 1);
    EXPECT_NE(winner, out.dropped[0].first);
}

TEST(Precalc, PrecalcWinnerSkipsLcfStage) {
    // An input that won a precalculated connection transmits that packet
    // and must not also receive a unicast grant in the same slot.
    LcfCentralScheduler sched;
    sched.reset(4, 4);
    const RequestMatrix requests = make_requests(4, {{0, 0}, {0, 2}});
    PrecalcSchedule pre(4);
    pre.claim(0, 1);

    MulticastResult out;
    sched.schedule_with_precalc(requests, pre, out);
    EXPECT_EQ(out.fanout[1], 0);
    EXPECT_EQ(out.unicast.output_of(0), sched::kUnmatched);
    EXPECT_EQ(out.fanout[0], sched::kUnmatched);
    EXPECT_EQ(out.fanout[2], sched::kUnmatched);
}

TEST(Precalc, PrecalcTargetUnavailableToLcfStage) {
    // T1 is claimed by the precalculated schedule, so I0's unicast
    // request for T1 cannot be granted; its request for T3 still can.
    LcfCentralScheduler sched;
    sched.reset(4, 4);
    const RequestMatrix requests = make_requests(4, {{0, 1}, {0, 3}});
    PrecalcSchedule pre(4);
    pre.claim(2, 1);

    MulticastResult out;
    sched.schedule_with_precalc(requests, pre, out);
    EXPECT_EQ(out.fanout[1], 2);
    EXPECT_EQ(out.unicast.output_of(0), 3);
}

TEST(Precalc, EmptyPrecalcEqualsPlainSchedule) {
    const RequestMatrix requests =
        make_requests(4, {{0, 1}, {0, 2}, {1, 0}, {1, 2}, {1, 3}, {2, 0},
                          {2, 2}, {2, 3}, {3, 1}});
    LcfCentralScheduler a, b;
    a.reset(4, 4);
    b.reset(4, 4);

    sched::Matching plain;
    a.schedule(requests, plain);

    MulticastResult out;
    b.schedule_with_precalc(requests, PrecalcSchedule(4), out);

    for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_EQ(out.fanout[j], plain.input_of(j)) << j;
    }
}

TEST(Precalc, MulticastResultConnectionCount) {
    MulticastResult r;
    r.fanout = {sched::kUnmatched, 2, 2, sched::kUnmatched};
    EXPECT_EQ(r.connections(), 2u);
}

}  // namespace
}  // namespace lcf::core
