// Fault-storm soak harness (ctest label: soak). Runs the Clint channels
// and the switch simulator for long stretches under layered fault
// storms — bit-error epochs swept across decades, periodic host
// crash/restart cycles, link-down bursts, whole-packet loss, scheduler
// stalls — with paranoid invariant checking on, and asserts the exact
// conservation identity
//
//   generated = delivered_unique + queued + in_flight
//             + dropped + abandoned
//
// at periodic checkpoints and at the end of every run.
//
// The default length is CI-sized (tens of thousands of slots). Set
// LCF_SOAK_SLOTS (e.g. 1000000) for the full soak.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "clint/bulk_channel.hpp"
#include "clint/quick_channel.hpp"
#include "core/factory.hpp"
#include "fault/fault_plan.hpp"
#include "sim/switch_sim.hpp"
#include "traffic/bernoulli.hpp"

namespace lcf {
namespace {

constexpr std::uint64_t kCheckpointInterval = 4096;
const double kBerSweep[] = {1e-6, 1e-5, 1e-4, 1e-3};

std::uint64_t soak_slots(std::uint64_t default_slots) {
    if (const char* env = std::getenv("LCF_SOAK_SLOTS")) {
        const unsigned long long v = std::stoull(std::string(env));
        if (v > 0) return v;
    }
    return default_slots;
}

// A storm schedule scaled to the run length: every host crashes and
// restarts in a staggered rotation, links go down in bursts, the data
// and ack paths suffer loss/truncation epochs, control wires pick up
// bit-error bursts, and (where it applies) the scheduler stalls.
fault::FaultPlan make_storm(std::size_t hosts, std::uint64_t slots,
                            bool with_stalls) {
    fault::FaultPlan plan;
    plan.seed = 0x50AC ^ slots;
    const std::uint64_t phase = std::max<std::uint64_t>(slots / 8, 64);
    // Staggered crash/restart rotation: each host goes down once per
    // "era", a quarter-phase at a time, never all at once.
    for (std::size_t h = 0; h < hosts; ++h) {
        for (std::uint64_t era = 0; era < 4; ++era) {
            const std::uint64_t crash =
                era * 2 * phase + (h * phase) / hosts + phase / 8;
            const std::uint64_t restart = crash + phase / 4;
            if (restart < slots) plan.add_host_crash(h, crash, restart);
        }
    }
    // Link-down bursts on one control uplink and one downlink.
    plan.add_link_down({fault::LinkKind::kUplink, 1}, phase, phase + phase / 2);
    plan.add_link_down({fault::LinkKind::kDownlink, 2}, 3 * phase,
                       3 * phase + phase / 2);
    // Loss + truncation epochs over the payload and ack paths.
    plan.add_packet_loss({fault::LinkKind::kData, fault::kAllLinks}, phase / 2,
                         slots - phase / 2, 0.05, 0.02);
    plan.add_packet_loss({fault::LinkKind::kAck, fault::kAllLinks}, phase,
                         slots - phase, 0.05);
    // Bit-error bursts on the control wires.
    plan.add_bit_error_epoch({fault::LinkKind::kUplink, fault::kAllLinks},
                             2 * phase, 3 * phase, 5e-4);
    plan.add_bit_error_epoch({fault::LinkKind::kDownlink, fault::kAllLinks},
                             4 * phase, 5 * phase, 5e-4);
    if (with_stalls) {
        plan.add_scheduler_stall(phase / 4, phase / 4 + 64);
        plan.add_scheduler_stall(5 * phase, 5 * phase + 128);
    }
    return plan;
}

TEST(FaultSoak, BulkChannelStormConservesUnderBerSweep) {
    const std::uint64_t slots = soak_slots(24000);
    for (const double ber : kBerSweep) {
        clint::BulkChannelConfig c;
        c.hosts = 8;
        c.slots = slots;
        c.warmup_slots = slots / 10;
        c.seed = 4711;
        c.bit_error_rate = ber;
        c.max_retries = 16;
        c.exponential_backoff = true;
        c.paranoid = true;
        c.fault_plan = make_storm(c.hosts, slots, true);
        clint::BulkChannelSim sim(
            c, std::make_unique<traffic::BernoulliUniform>(0.6));
        while (sim.current_slot() < slots) {
            sim.step();
            if (sim.current_slot() % kCheckpointInterval == 0) {
                const auto a = sim.accounting();
                ASSERT_TRUE(a.balanced())
                    << "ber " << ber << " slot " << sim.current_slot()
                    << ": generated " << a.generated << " != delivered "
                    << a.delivered_unique << " + queued " << a.queued
                    << " + in_flight " << a.in_flight << " + dropped "
                    << a.dropped << " + abandoned " << a.abandoned;
            }
        }
        const auto r = sim.result();
        const auto a = sim.accounting();
        ASSERT_TRUE(a.balanced()) << "ber " << ber << " final";
        // At 1e-3 over 16-kbit payloads essentially every transfer
        // corrupts (p ~ 1 - e^-16): zero deliveries is the physically
        // correct outcome there, and conservation above is the real
        // invariant. Delivery is only demanded where the channel is
        // viable.
        if (sim.data_corrupt_probability() < 0.99) {
            EXPECT_GT(r.delivered_unique, 0u) << "ber " << ber;
        }
        EXPECT_GT(r.faults.crashes, 0u);
        EXPECT_GT(r.faults.packets_dropped, 0u);
        EXPECT_GT(r.crash_lost, 0u);
        EXPECT_GT(r.sched.stalled_cycles, 0u);
        EXPECT_EQ(r.sched.paranoid_violations, 0u) << "ber " << ber;
        // Buffering must stay bounded by the configuration (VOQs plus
        // the retransmit/outstanding windows), never grow with the run
        // length — the regression the SeqTracker rework guards against.
        EXPECT_LT(sim.buffered_total(),
                  2 * c.hosts * c.hosts * c.voq_capacity);
    }
}

TEST(FaultSoak, QuickChannelStormConservesUnderBerSweep) {
    const std::uint64_t slots = soak_slots(24000);
    for (const double ber : kBerSweep) {
        clint::QuickChannelConfig c;
        c.hosts = 8;
        c.slots = slots;
        c.warmup_slots = slots / 10;
        c.seed = 815;
        c.bit_error_rate = ber;
        c.max_retries = 8;
        c.fault_plan = make_storm(c.hosts, slots, false);
        clint::QuickChannelSim sim(
            c, std::make_unique<traffic::BernoulliUniform>(0.3));
        while (sim.current_slot() < slots) {
            sim.step();
            if (sim.current_slot() % kCheckpointInterval == 0) {
                const auto a = sim.accounting();
                ASSERT_TRUE(a.balanced())
                    << "ber " << ber << " slot " << sim.current_slot()
                    << ": generated " << a.generated << " != delivered "
                    << a.delivered_unique << " + queued " << a.queued
                    << " + in_flight " << a.in_flight << " + dropped "
                    << a.dropped << " + abandoned " << a.abandoned;
            }
        }
        const auto r = sim.result();
        ASSERT_TRUE(sim.accounting().balanced()) << "ber " << ber << " final";
        EXPECT_GT(r.delivered_unique, 0u);
        EXPECT_GT(r.crash_lost, 0u);
        EXPECT_GT(r.fault_losses, 0u);
        EXPECT_EQ(r.faults.crashes, r.faults.restarts);
    }
}

TEST(FaultSoak, SwitchSimStormConservesWithParanoidChecksOn) {
    const std::uint64_t slots = soak_slots(30000);
    for (const char* sched : {"lcf_central_rr", "islip"}) {
        sim::SimConfig c;
        c.ports = 16;
        c.slots = slots;
        c.warmup_slots = slots / 10;
        c.seed = 90125;
        c.paranoid = true;
        c.fault_plan = make_storm(c.ports, slots, true);
        sim::SwitchSim s(c, core::make_scheduler(sched),
                         std::make_unique<traffic::BernoulliUniform>(0.7));
        while (s.current_slot() < slots) {
            s.step();
            if (s.current_slot() % kCheckpointInterval == 0) {
                std::size_t buffered = 0;
                for (std::size_t i = 0; i < c.ports; ++i) {
                    buffered +=
                        s.voq(i).total_buffered() + s.input_queue(i).size();
                }
                const auto r = s.result();
                ASSERT_EQ(r.generated, r.delivered + r.dropped + buffered)
                    << sched << " slot " << s.current_slot();
            }
        }
        const auto r = s.result();
        EXPECT_EQ(r.sched.paranoid_violations, 0u) << sched;
        EXPECT_GT(r.sched.stalled_cycles, 0u);
        EXPECT_GT(r.faults.crashes, 0u);
        EXPECT_GT(r.delivered, 0u);
        std::size_t buffered = 0;
        for (std::size_t i = 0; i < c.ports; ++i) {
            buffered += s.voq(i).total_buffered() + s.input_queue(i).size();
        }
        EXPECT_EQ(r.generated, r.delivered + r.dropped + buffered) << sched;
    }
}

}  // namespace
}  // namespace lcf
