// Tests for the message-level distributed scheduler: matching
// equivalence with core::LcfDistScheduler across long randomised
// sequences, and message/bit accounting against the §6.2 analytic
// bound.

#include "hw/dist_message_sim.hpp"

#include <gtest/gtest.h>

#include "core/lcf_dist.hpp"
#include "hw/comm_model.hpp"
#include "util/rng.hpp"

namespace lcf::hw {
namespace {

using sched::Matching;
using sched::RequestMatrix;

TEST(DistMessageSim, MatchesBehaviouralSchedulerOverRandomSequences) {
    for (const std::size_t n : {4u, 7u, 16u}) {
        core::LcfDistScheduler behav(
            core::LcfDistOptions{.iterations = 4, .round_robin = false});
        DistMessageSim msg(4);
        behav.reset(n, n);
        msg.reset(n, n);
        util::Xoshiro256 rng(n * 31);
        Matching mb, mm;
        for (int cycle = 0; cycle < 500; ++cycle) {
            RequestMatrix r(n);
            const double density = rng.next_double();
            for (std::size_t i = 0; i < n; ++i) {
                for (std::size_t j = 0; j < n; ++j) {
                    if (rng.next_bool(density)) r.set(i, j);
                }
            }
            behav.schedule(r, mb);
            msg.schedule(r, mm);
            ASSERT_EQ(mb, mm) << "n=" << n << " cycle=" << cycle;
        }
    }
}

TEST(DistMessageSim, BitCountNeverExceedsTheAnalyticBound) {
    // §6.2's i·n²(2·log2 n + 3) counts the worst case (every pair
    // exchanges request+grant+accept every iteration); the measured
    // traffic must stay at or below it on every cycle.
    constexpr std::size_t kN = 16;
    constexpr std::size_t kIters = 4;
    DistMessageSim msg(kIters);
    msg.reset(kN, kN);
    util::Xoshiro256 rng(77);
    Matching m;
    std::uint64_t prev_bits = 0;
    const std::uint64_t bound = CommModel::distributed_bits(kN, kIters);
    for (int cycle = 0; cycle < 300; ++cycle) {
        RequestMatrix r(kN);
        for (std::size_t i = 0; i < kN; ++i) {
            for (std::size_t j = 0; j < kN; ++j) {
                if (rng.next_bool(0.5)) r.set(i, j);
            }
        }
        msg.schedule(r, m);
        const std::uint64_t cycle_bits = msg.stats().bits - prev_bits;
        prev_bits = msg.stats().bits;
        EXPECT_LE(cycle_bits, bound);
    }
    EXPECT_GT(msg.bits_per_cycle(), 0.0);
    EXPECT_LE(msg.bits_per_cycle(), static_cast<double>(bound));
}

TEST(DistMessageSim, SaturatedFirstIterationMatchesWorstCasePerPair) {
    // All-ones requests, first iteration: every initiator messages all
    // n targets -> n² request messages in iteration 1.
    constexpr std::size_t kN = 8;
    DistMessageSim msg(1);
    msg.reset(kN, kN);
    RequestMatrix full(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        for (std::size_t j = 0; j < kN; ++j) full.set(i, j);
    }
    Matching m;
    msg.schedule(full, m);
    EXPECT_EQ(msg.stats().request_messages, kN * kN);
    EXPECT_EQ(msg.stats().grant_messages, kN);  // one grant per target
    EXPECT_GE(msg.stats().accept_messages, 1u);
}

TEST(DistMessageSim, NoTrafficWithoutRequests) {
    DistMessageSim msg(4);
    msg.reset(8, 8);
    Matching m;
    msg.schedule(RequestMatrix(8), m);
    EXPECT_EQ(msg.stats().total_messages(), 0u);
    EXPECT_EQ(msg.stats().bits, 0u);
    EXPECT_EQ(m.size(), 0u);
}

TEST(DistMessageSim, SparseTrafficCostsFarLessThanTheBound) {
    // Light load is where the analytic worst case most overstates real
    // traffic — quantify the gap.
    constexpr std::size_t kN = 16;
    DistMessageSim msg(4);
    msg.reset(kN, kN);
    util::Xoshiro256 rng(5);
    Matching m;
    for (int cycle = 0; cycle < 200; ++cycle) {
        RequestMatrix r(kN);
        for (std::size_t i = 0; i < kN; ++i) {
            if (rng.next_bool(0.5)) {
                r.set(i, static_cast<std::size_t>(rng.next_below(kN)));
            }
        }
        msg.schedule(r, m);
    }
    EXPECT_LT(msg.bits_per_cycle(),
              0.1 * static_cast<double>(CommModel::distributed_bits(kN, 4)));
}

}  // namespace
}  // namespace lcf::hw
