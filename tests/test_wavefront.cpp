// Tests for the wrapped wavefront arbiter: diagonal sweep correctness,
// maximality, rotation fairness, and validity.

#include "sched/wavefront.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.hpp"

namespace lcf::sched {
namespace {

TEST(Wavefront, PriorityDiagonalWinsFirst) {
    // Slot 0 sweeps diagonal 0 first: cells with (i + j) mod 4 == 0,
    // i.e. (0,0), (1,3), (2,2), (3,1). Requests on that diagonal beat
    // conflicting requests elsewhere.
    WavefrontScheduler s;
    s.reset(4, 4);
    Matching m;
    s.schedule(make_requests(4, {{0, 0}, {0, 1}, {1, 3}, {2, 3}}), m);
    EXPECT_EQ(m.output_of(0), 0);  // (0,0) on the priority diagonal
    EXPECT_EQ(m.output_of(1), 3);  // (1,3) on the priority diagonal
    EXPECT_EQ(m.output_of(2), kUnmatched);  // T3 already taken
}

TEST(Wavefront, ProducesMaximalMatchings) {
    util::Xoshiro256 rng(41);
    WavefrontScheduler s;
    s.reset(8, 8);
    Matching m;
    for (int trial = 0; trial < 500; ++trial) {
        RequestMatrix r(8);
        for (std::size_t i = 0; i < 8; ++i) {
            for (std::size_t j = 0; j < 8; ++j) {
                if (rng.next_bool(0.35)) r.set(i, j);
            }
        }
        s.schedule(r, m);
        EXPECT_TRUE(m.valid_for(r));
        EXPECT_TRUE(m.maximal_for(r));
    }
}

TEST(Wavefront, FullLoadPerfectMatchingEverySlot) {
    WavefrontScheduler s;
    s.reset(4, 4);
    RequestMatrix full(4);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) full.set(i, j);
    }
    Matching m;
    for (int slot = 0; slot < 16; ++slot) {
        s.schedule(full, m);
        EXPECT_EQ(m.size(), 4u);
    }
}

TEST(Wavefront, RotationSharesContestedOutput) {
    // Inputs 0 and 2 persistently contend for output 0. Input 0's cell
    // sits on diagonal 0, input 2's on diagonal 2; the rotating priority
    // diagonal must alternate the winner evenly over 4-slot periods.
    const RequestMatrix r = make_requests(4, {{0, 0}, {2, 0}});
    WavefrontScheduler s;
    s.reset(4, 4);
    Matching m;
    std::map<std::int32_t, int> wins;
    for (int slot = 0; slot < 40; ++slot) {
        s.schedule(r, m);
        ++wins[m.input_of(0)];
    }
    ASSERT_EQ(wins.size(), 2u);
    EXPECT_EQ(wins[0], 20);
    EXPECT_EQ(wins[2], 20);
}

TEST(Wavefront, DiagonalCellsNeverConflict) {
    // All cells on one wrapped diagonal have distinct rows and columns;
    // requests confined to one diagonal are all granted.
    WavefrontScheduler s;
    s.reset(8, 8);
    Matching m;
    RequestMatrix r(8);
    for (std::size_t i = 0; i < 8; ++i) {
        r.set(i, (11 - i) % 8);  // diagonal (i + j) % 8 == 3
    }
    s.schedule(r, m);
    EXPECT_EQ(m.size(), 8u);
}

TEST(Wavefront, EmptyRequests) {
    WavefrontScheduler s;
    s.reset(4, 4);
    Matching m;
    s.schedule(RequestMatrix(4), m);
    EXPECT_EQ(m.size(), 0u);
}

}  // namespace
}  // namespace lcf::sched
