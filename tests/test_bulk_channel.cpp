// Tests for the bulk-channel simulation: clean-link delivery and
// conservation, pipeline latency floor, error recovery through
// retransmission, multicast via the precalculated schedule, and
// saturation behaviour.

#include "clint/bulk_channel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "traffic/bernoulli.hpp"
#include "traffic/trace.hpp"

namespace lcf::clint {
namespace {

BulkChannelConfig small_config() {
    BulkChannelConfig c;
    c.hosts = 4;
    c.slots = 2000;
    c.warmup_slots = 200;
    c.seed = 5;
    return c;
}

TEST(BulkChannel, CleanLinksDeliverEverythingEventually) {
    auto config = small_config();
    BulkChannelSim sim(config,
                       std::make_unique<traffic::BernoulliUniform>(0.3));
    const auto r = sim.run();
    EXPECT_GT(r.generated, 1000u);
    EXPECT_EQ(r.dropped_voq, 0u);
    // Everything generated is delivered except the handful still queued
    // or in flight at the end.
    EXPECT_GE(r.delivered_unique + 4 * 4 + 8, r.generated);
    EXPECT_EQ(r.config_crc_errors, 0u);
    EXPECT_EQ(r.grant_crc_errors, 0u);
    EXPECT_EQ(r.data_corruptions, 0u);
    EXPECT_EQ(r.retransmissions, 0u);
    EXPECT_EQ(r.duplicate_deliveries, 0u);
}

TEST(BulkChannel, PipelineLatencyFloorIsTwoSlots) {
    // A packet arriving in slot t is scheduled in t (config/grant) and
    // transferred in t+1, so the minimum delay is 2 slots. Use a single
    // isolated arrival.
    BulkChannelConfig c;
    c.hosts = 4;
    c.slots = 20;
    c.warmup_slots = 0;
    BulkChannelSim sim(c, std::make_unique<traffic::TraceTraffic>(
                              std::vector<traffic::TraceEntry>{{5, 1, 2}}));
    const auto r = sim.run();
    EXPECT_EQ(r.delivered_unique, 1u);
    EXPECT_DOUBLE_EQ(r.mean_delay, 2.0);
}

TEST(BulkChannel, GoodputTracksOfferedLoadBelowSaturation) {
    auto config = small_config();
    config.slots = 4000;
    BulkChannelSim sim(config,
                       std::make_unique<traffic::BernoulliUniform>(0.5));
    const auto r = sim.run();
    EXPECT_NEAR(r.goodput, 0.5, 0.05);
}

TEST(BulkChannel, ErrorInjectionTriggersRecoveryMachinery) {
    auto config = small_config();
    config.bit_error_rate = 2e-5;  // ~28% loss of 16-kbit payloads
    config.slots = 4000;
    BulkChannelSim sim(config,
                       std::make_unique<traffic::BernoulliUniform>(0.4));
    const auto r = sim.run();
    // At this BER every error class fires...
    EXPECT_GT(r.config_crc_errors, 0u);
    EXPECT_GT(r.data_corruptions, 0u);
    EXPECT_GT(r.retransmissions, 0u);
    // ...and retransmission still delivers the vast majority of traffic.
    EXPECT_GT(r.delivered_unique, r.generated * 9 / 10);
}

TEST(BulkChannel, LostTransfersAreRetransmittedNotLost) {
    // Moderate BER, long run: deliveries keep pace despite corruption.
    auto config = small_config();
    config.bit_error_rate = 1e-5;  // ~15% payload loss
    config.slots = 6000;
    BulkChannelSim sim(config,
                       std::make_unique<traffic::BernoulliUniform>(0.2));
    const auto r = sim.run();
    EXPECT_GT(r.retransmissions, 0u);
    EXPECT_GE(r.delivered_unique + 200, r.generated - r.dropped_voq);
}

TEST(BulkChannel, MulticastFanOutDeliversToAllTargets) {
    BulkChannelConfig c;
    c.hosts = 4;
    c.slots = 10;
    c.warmup_slots = 0;
    BulkChannelSim sim(c, std::make_unique<traffic::BernoulliUniform>(0.0));
    sim.enqueue_multicast(3, 0b1010);  // I3 -> {T1, T3}, the Figure 7 case
    const auto r = sim.run();
    EXPECT_EQ(r.multicast_copies, 2u);
}

TEST(BulkChannel, MulticastCoexistsWithUnicastTraffic) {
    BulkChannelConfig c;
    c.hosts = 4;
    c.slots = 2000;
    c.warmup_slots = 0;
    BulkChannelSim sim(c, std::make_unique<traffic::BernoulliUniform>(0.3));
    for (int k = 0; k < 50; ++k) {
        sim.enqueue_multicast(static_cast<std::size_t>(k % 4), 0b0110);
    }
    const auto r = sim.run();
    EXPECT_EQ(r.multicast_copies, 100u);  // 50 multicasts × 2 targets
    EXPECT_GT(r.delivered_unique, 0u);
}

TEST(BulkChannel, SaturatedChannelStillMakesProgress) {
    auto config = small_config();
    config.slots = 3000;
    BulkChannelSim sim(config,
                       std::make_unique<traffic::BernoulliUniform>(1.0));
    const auto r = sim.run();
    // At full load a 4-port LCF-scheduled crossbar sustains high goodput.
    EXPECT_GT(r.goodput, 0.8);
}

TEST(BulkChannel, PacketConservationOnCleanLinks) {
    // Error-free links: every generated packet is delivered, dropped at
    // a full VOQ, or still buffered somewhere in the channel — exactly.
    auto config = small_config();
    config.slots = 3000;
    BulkChannelSim sim(config,
                       std::make_unique<traffic::BernoulliUniform>(0.9));
    while (sim.current_slot() < config.slots) sim.step();
    const auto r = sim.result();
    EXPECT_EQ(r.generated, r.delivered_unique + r.dropped_voq + sim.buffered_total());
}

TEST(BulkChannel, BufferedTotalDrainsWhenTrafficStops) {
    BulkChannelConfig c;
    c.hosts = 4;
    c.slots = 100;
    c.warmup_slots = 0;
    // A burst of trace arrivals, then silence: the channel must drain.
    std::vector<traffic::TraceEntry> entries;
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::uint64_t t = 0; t < 5; ++t) {
            entries.push_back({t, i, (i + t) % 4});
        }
    }
    BulkChannelSim sim(c, std::make_unique<traffic::TraceTraffic>(entries));
    sim.run();
    EXPECT_EQ(sim.buffered_total(), 0u);
    EXPECT_EQ(sim.result().delivered_unique, entries.size());
}

TEST(BulkChannel, BenFieldFencesAMalfunctioningHost) {
    // §4.1: "ben and qen specify the bulk initiators ... from which
    // packets are to be forwarded by the switch — hosts use these
    // fields to disable malfunctioning hosts." Host 1 reports host 2 as
    // faulty: from then on host 2 receives no grants and delivers
    // nothing, while the others keep flowing.
    BulkChannelConfig c;
    c.hosts = 4;
    c.slots = 2000;
    c.warmup_slots = 0;
    BulkChannelSim sim(c, std::make_unique<traffic::BernoulliUniform>(0.4));
    sim.set_bulk_enable_report(1, 0xFFFF & ~(1U << 2));
    const auto r = sim.run();
    EXPECT_EQ(sim.fenced_mask() & 0xF, 1U << 2);
    // Host 2's packets pile up unscheduled: the channel delivers
    // roughly 3/4 of the generated traffic.
    EXPECT_LT(r.delivered_unique, r.generated * 8 / 9);
    EXPECT_GT(r.delivered_unique, r.generated / 2);
    // The fenced host's VOQs retain its backlog.
    EXPECT_GT(sim.buffered_total(), 150u);
}

TEST(BulkChannel, ReenablingAHostRestoresService) {
    BulkChannelConfig c;
    c.hosts = 4;
    c.slots = 400;
    c.warmup_slots = 0;
    BulkChannelSim sim(c, std::make_unique<traffic::BernoulliUniform>(0.3));
    sim.set_bulk_enable_report(0, 0xFFFF & ~(1U << 3));
    while (sim.current_slot() < 200) sim.step();
    EXPECT_NE(sim.fenced_mask() & (1U << 3), 0u);
    const auto mid = sim.result();
    sim.set_bulk_enable_report(0, 0xFFFF);
    while (sim.current_slot() < 400) sim.step();
    EXPECT_EQ(sim.fenced_mask() & 0xF, 0u);
    // After re-enabling, host 3's backlog drains: deliveries jump.
    EXPECT_GT(sim.result().delivered_unique, mid.delivered_unique + 40);
}

// Regression for the ack-loss double-delivery accounting bug: when an
// acknowledgment is lost, the target already holds the packet, yet the
// sender retransmits it. The re-delivery must land in
// duplicate_deliveries — never in delivered_unique — and the delivered
// copy waiting in the retransmission machinery must not double-count in
// the conservation identity.
TEST(BulkChannel, LostAcksProduceDuplicatesNotDoubleDeliveries) {
    auto config = small_config();
    config.seed = 11;
    config.slots = 6000;
    config.bit_error_rate = 2e-5;
    config.ack_bits = 16384;  // ack as fragile as the payload: many losses
    BulkChannelSim sim(config,
                       std::make_unique<traffic::BernoulliUniform>(0.3));
    const auto r = sim.run();
    EXPECT_GT(r.ack_losses, 0u);
    EXPECT_GT(r.duplicate_deliveries, 0u);
    EXPECT_LE(r.delivered_unique, r.generated);
    // First-delivery latency stats must cover exactly the unique
    // deliveries made after warm-up, not the duplicates.
    EXPECT_GT(r.recovered, 0u);
    EXPECT_GT(r.mean_recovery_delay, 0.0);
    const auto a = sim.accounting();
    EXPECT_TRUE(a.balanced())
        << "generated " << a.generated << " != delivered "
        << a.delivered_unique << " + queued " << a.queued << " + in_flight "
        << a.in_flight << " + dropped " << a.dropped << " + abandoned "
        << a.abandoned;
}

TEST(BulkChannel, AckCorruptProbabilityFollowsConfiguredAckBits) {
    for (const std::size_t ack_bits : {std::size_t{64}, std::size_t{512}}) {
        auto config = small_config();
        config.bit_error_rate = 1e-4;
        config.ack_bits = ack_bits;
        BulkChannelSim sim(config,
                           std::make_unique<traffic::BernoulliUniform>(0.1));
        EXPECT_DOUBLE_EQ(sim.ack_corrupt_probability(),
                         1.0 - std::pow(1.0 - config.bit_error_rate,
                                        static_cast<double>(ack_bits)));
    }
}

// Bounded exponential backoff with a retry cap: hopeless transfers are
// abandoned instead of being re-granted forever, and the abandonment is
// visible in both the stats and the conservation identity.
TEST(BulkChannel, RetryCapAbandonsAndBackoffStaysBounded) {
    BulkChannelConfig c;
    c.hosts = 4;
    c.slots = 5000;
    c.warmup_slots = 0;
    c.seed = 3;
    c.bit_error_rate = 1e-4;  // ~80% payload loss: retries mostly fail
    c.max_retries = 2;
    c.exponential_backoff = true;
    c.backoff_cap = 16;
    BulkChannelSim sim(c, std::make_unique<traffic::BernoulliUniform>(0.2));
    const auto r = sim.run();
    EXPECT_GT(r.abandoned, 0u);
    EXPECT_GT(r.retransmissions, 0u);
    const auto a = sim.accounting();
    EXPECT_TRUE(a.balanced())
        << "generated " << a.generated << " != delivered "
        << a.delivered_unique << " + queued " << a.queued << " + in_flight "
        << a.in_flight << " + dropped " << a.dropped << " + abandoned "
        << a.abandoned;
}

TEST(BulkChannel, ParanoidRunIsCleanAndCountersPopulate) {
    BulkChannelConfig c = small_config();
    c.paranoid = true;
    BulkChannelSim sim(c, std::make_unique<traffic::BernoulliUniform>(0.5));
    // Mix in multicast so the precalculated stage runs alongside the
    // checked unicast matchings.
    sim.enqueue_multicast(0, 0b1100);
    const auto r = sim.run();
    EXPECT_GT(r.delivered_unique, 0u);
    EXPECT_EQ(r.sched.cycles, c.slots);
    EXPECT_GT(r.sched.grants, 0u);
    EXPECT_EQ(r.sched.paranoid_violations, 0u);
}

TEST(BulkChannel, CountersCollectedWithoutParanoid) {
    BulkChannelSim sim(small_config(),
                       std::make_unique<traffic::BernoulliUniform>(0.5));
    const auto r = sim.run();
    EXPECT_EQ(r.sched.cycles, small_config().slots);
    EXPECT_GT(r.sched.grants, 0u);
    EXPECT_FALSE(sim.checker().has_value());
}

TEST(BulkChannel, RejectsBadConfiguration) {
    BulkChannelConfig c;
    c.hosts = 17;
    EXPECT_THROW(
        BulkChannelSim(c, std::make_unique<traffic::BernoulliUniform>(0.1)),
        std::invalid_argument);
    c.hosts = 4;
    EXPECT_THROW(BulkChannelSim(c, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace lcf::clint
