// Fairness properties from §3: the round-robin diagonal gives
// lcf_central_rr a hard service floor (every persistently backlogged
// request position is granted at least once per n² cycles, i.e. b/n² of
// an output's bandwidth), while throughput-optimal schedulers without it
// (pure LCF, maximum-size matching) can starve a request forever.

#include <gtest/gtest.h>

#include <vector>

#include "core/factory.hpp"
#include "core/lcf_central.hpp"
#include "core/lcf_dist.hpp"
#include "sched/maxsize.hpp"

namespace lcf {
namespace {

using sched::make_requests;
using sched::Matching;
using sched::RequestMatrix;

/// Grant counts per (input, output) pair over `cycles` cycles of a
/// persistent request matrix.
std::vector<std::uint64_t> service_counts(sched::Scheduler& s,
                                          const RequestMatrix& r,
                                          std::size_t cycles) {
    const std::size_t n = r.inputs();
    std::vector<std::uint64_t> counts(n * n, 0);
    Matching m;
    for (std::size_t c = 0; c < cycles; ++c) {
        s.schedule(r, m);
        for (std::size_t i = 0; i < n; ++i) {
            if (m.output_of(i) != sched::kUnmatched) {
                ++counts[i * n + static_cast<std::size_t>(m.output_of(i))];
            }
        }
    }
    return counts;
}

TEST(Fairness, LcfCentralRrGuaranteesServiceFloorUnderFullLoad) {
    // Adversarial all-ones backlog on a 4x4 switch: every one of the 16
    // request positions must be served at least floor(cycles / n²) times
    // — the b/n² guarantee.
    constexpr std::size_t kN = 4;
    constexpr std::size_t kCycles = 1600;  // 100 full diagonal periods
    core::LcfCentralScheduler s(core::LcfCentralOptions{.variant = core::RrVariant::kInterleaved});
    s.reset(kN, kN);
    RequestMatrix full(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        for (std::size_t j = 0; j < kN; ++j) full.set(i, j);
    }
    const auto counts = service_counts(s, full, kCycles);
    for (std::size_t k = 0; k < counts.size(); ++k) {
        EXPECT_GE(counts[k], kCycles / (kN * kN))
            << "pair (" << k / kN << "," << k % kN << ")";
    }
}

TEST(Fairness, LcfCentralRrFloorHoldsAt8Ports) {
    constexpr std::size_t kN = 8;
    constexpr std::size_t kCycles = kN * kN * 20;
    core::LcfCentralScheduler s(core::LcfCentralOptions{.variant = core::RrVariant::kInterleaved});
    s.reset(kN, kN);
    RequestMatrix full(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        for (std::size_t j = 0; j < kN; ++j) full.set(i, j);
    }
    const auto counts = service_counts(s, full, kCycles);
    for (const auto c : counts) {
        EXPECT_GE(c, kCycles / (kN * kN));
    }
}

TEST(Fairness, MaxSizeMatchingStarvesTheMiddleRequests) {
    // §3's starvation example, live: with the Figure 3 backlog persisting
    // forever, a pure maximum-size scheduler that always finds 4 matches
    // never serves [I0,T1], [I1,T2], or [I2,T2].
    const RequestMatrix r = make_requests(
        4, {{0, 1}, {0, 2}, {1, 0}, {1, 2}, {1, 3}, {2, 0}, {2, 2}, {2, 3},
            {3, 1}});
    sched::MaxSizeScheduler s;
    s.reset(4, 4);
    const auto counts = service_counts(s, r, 500);
    // I3 only requests T1 and a maximum matching must serve it, so I0
    // never gets T1; similarly the 4-match solutions never use [I1,T2]
    // or [I2,T2] together with the forced pairs... at least one of the
    // contended positions is starved outright.
    const bool i0t1_starved = counts[0 * 4 + 1] == 0;
    EXPECT_TRUE(i0t1_starved);
}

TEST(Fairness, PureLcfCanStarveWhereRrVariantDoesNot) {
    // A backlog where the LCF priority rule alone permanently prefers
    // single-request inputs: I1 and I2 each request only T0; I0 requests
    // T0, T1, T2 (NRQ 3). Pure LCF always grants T0 to a single-request
    // input, and I0 still gets T1/T2 — but position [I0, T0] itself is
    // never served. The RR diagonal serves it periodically.
    const RequestMatrix r =
        make_requests(4, {{0, 0}, {0, 1}, {0, 2}, {1, 0}, {2, 0}});
    constexpr std::size_t kCycles = 320;  // 20 diagonal periods

    core::LcfCentralScheduler pure(
        core::LcfCentralOptions{.variant = core::RrVariant::kNone});
    pure.reset(4, 4);
    const auto pure_counts = service_counts(pure, r, kCycles);
    EXPECT_EQ(pure_counts[0 * 4 + 0], 0u) << "pure LCF should starve [I0,T0]";

    core::LcfCentralScheduler rr(core::LcfCentralOptions{.variant = core::RrVariant::kInterleaved});
    rr.reset(4, 4);
    const auto rr_counts = service_counts(rr, r, kCycles);
    EXPECT_GE(rr_counts[0 * 4 + 0], kCycles / 16)
        << "the RR diagonal must serve [I0,T0] each time it anchors there";
}

TEST(Fairness, LcfDistRrServesItsRoundRobinPosition) {
    // The single rotating RR position of lcf_dist_rr guarantees the same
    // floor for the distributed scheduler.
    constexpr std::size_t kN = 4;
    constexpr std::size_t kCycles = kN * kN * 25;
    core::LcfDistScheduler s(
        core::LcfDistOptions{.iterations = 4, .round_robin = true});
    s.reset(kN, kN);
    RequestMatrix full(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        for (std::size_t j = 0; j < kN; ++j) full.set(i, j);
    }
    const auto counts = service_counts(s, full, kCycles);
    for (const auto c : counts) {
        EXPECT_GE(c, kCycles / (kN * kN));
    }
}

TEST(Fairness, RrSchedulersServeEveryFlowUnderFullLoad) {
    // The round-robin-equipped Figure 12 schedulers must leave no flow
    // unserved on a persistent all-ones backlog; this is the qualitative
    // "starvation is prevented" claim.
    for (const auto* name : {"lcf_central_rr", "lcf_dist_rr", "islip",
                             "wfront", "pim"}) {
        auto s = core::make_scheduler(
            name, sched::SchedulerConfig{.iterations = 4, .seed = 11});
        s->reset(4, 4);
        RequestMatrix full(4);
        for (std::size_t i = 0; i < 4; ++i) {
            for (std::size_t j = 0; j < 4; ++j) full.set(i, j);
        }
        const auto counts = service_counts(*s, full, 2000);
        for (const auto c : counts) {
            EXPECT_GT(c, 0u) << name;
        }
    }
}

}  // namespace
}  // namespace lcf
