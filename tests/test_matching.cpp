// Tests for Matching: bidirectional consistency, validity and maximality
// predicates, and mutation operations.

#include "sched/matching.hpp"

#include <gtest/gtest.h>

#include "sched/request_matrix.hpp"

namespace lcf::sched {
namespace {

TEST(Matching, StartsUnmatched) {
    const Matching m(4);
    EXPECT_EQ(m.size(), 0u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(m.output_of(i), kUnmatched);
        EXPECT_EQ(m.input_of(i), kUnmatched);
    }
}

TEST(Matching, MatchMaintainsBothDirections) {
    Matching m(4);
    m.match(1, 3);
    EXPECT_EQ(m.output_of(1), 3);
    EXPECT_EQ(m.input_of(3), 1);
    EXPECT_TRUE(m.input_matched(1));
    EXPECT_TRUE(m.output_matched(3));
    EXPECT_EQ(m.size(), 1u);
}

TEST(Matching, UnmatchInput) {
    Matching m(4);
    m.match(0, 2);
    m.unmatch_input(0);
    EXPECT_FALSE(m.input_matched(0));
    EXPECT_FALSE(m.output_matched(2));
    m.unmatch_input(0);  // idempotent on unmatched inputs
    EXPECT_EQ(m.size(), 0u);
}

TEST(Matching, ResetResizes) {
    Matching m(2);
    m.match(0, 1);
    m.reset(5, 5);
    EXPECT_EQ(m.inputs(), 5u);
    EXPECT_EQ(m.size(), 0u);
}

TEST(Matching, ValidForRequiresBackingRequests) {
    const RequestMatrix r = make_requests(4, {{0, 1}, {2, 3}});
    Matching m(4);
    m.match(0, 1);
    EXPECT_TRUE(m.valid_for(r));
    m.match(2, 2);  // no request (2, 2)
    EXPECT_FALSE(m.valid_for(r));
}

TEST(Matching, ValidForRejectsShapeMismatch) {
    const RequestMatrix r(4);
    const Matching m(3);
    EXPECT_FALSE(m.valid_for(r));
}

TEST(Matching, MaximalForDetectsAugmentablePair) {
    const RequestMatrix r = make_requests(4, {{0, 0}, {1, 1}});
    Matching m(4);
    m.match(0, 0);
    EXPECT_FALSE(m.maximal_for(r));  // (1,1) is free-free
    m.match(1, 1);
    EXPECT_TRUE(m.maximal_for(r));
}

TEST(Matching, MaximalForEmptyRequestsIsTrivially) {
    const RequestMatrix r(4);
    const Matching m(4);
    EXPECT_TRUE(m.maximal_for(r));
}

TEST(Matching, ToStringFormat) {
    Matching m(3);
    m.match(0, 2);
    EXPECT_EQ(m.to_string(), "0->2 1->- 2->-");
}

TEST(Matching, EqualityIsStructural) {
    Matching a(3), b(3);
    a.match(0, 1);
    EXPECT_NE(a, b);
    b.match(0, 1);
    EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace lcf::sched
