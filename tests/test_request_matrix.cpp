// Tests for RequestMatrix: bit accounting, row/column counts (NRQ/NGT),
// and the test-helper constructor.

#include "sched/request_matrix.hpp"

#include <gtest/gtest.h>

namespace lcf::sched {
namespace {

TEST(RequestMatrix, StartsEmpty) {
    const RequestMatrix m(4);
    EXPECT_EQ(m.inputs(), 4u);
    EXPECT_EQ(m.outputs(), 4u);
    EXPECT_EQ(m.total(), 0u);
}

TEST(RequestMatrix, RectangularShape) {
    const RequestMatrix m(3, 5);
    EXPECT_EQ(m.inputs(), 3u);
    EXPECT_EQ(m.outputs(), 5u);
}

TEST(RequestMatrix, SetGetClear) {
    RequestMatrix m(4);
    m.set(1, 2);
    EXPECT_TRUE(m.get(1, 2));
    EXPECT_FALSE(m.get(2, 1));
    m.set(1, 2, false);
    EXPECT_FALSE(m.get(1, 2));
    m.set(0, 0);
    m.set(3, 3);
    m.clear();
    EXPECT_EQ(m.total(), 0u);
}

TEST(RequestMatrix, RowAndColumnCounts) {
    // The paper's Figure 3 example: NRQ column must read 2, 3, 3, 1.
    const RequestMatrix m = make_requests(
        4, {{0, 1}, {0, 2}, {1, 0}, {1, 2}, {1, 3}, {2, 0}, {2, 2}, {2, 3},
            {3, 1}});
    EXPECT_EQ(m.row_count(0), 2u);
    EXPECT_EQ(m.row_count(1), 3u);
    EXPECT_EQ(m.row_count(2), 3u);
    EXPECT_EQ(m.row_count(3), 1u);
    // NGT per target: T0 has 2 requesters, T1 2, T2 3, T3 2.
    EXPECT_EQ(m.col_count(0), 2u);
    EXPECT_EQ(m.col_count(1), 2u);
    EXPECT_EQ(m.col_count(2), 3u);
    EXPECT_EQ(m.col_count(3), 2u);
    EXPECT_EQ(m.total(), 9u);
}

TEST(RequestMatrix, RowBitVecMatchesGets) {
    RequestMatrix m(8);
    m.set(2, 0);
    m.set(2, 7);
    const auto& row = m.row(2);
    EXPECT_TRUE(row.test(0));
    EXPECT_TRUE(row.test(7));
    EXPECT_EQ(row.count(), 2u);
}

TEST(RequestMatrix, Equality) {
    RequestMatrix a(4), b(4);
    EXPECT_EQ(a, b);
    a.set(0, 0);
    EXPECT_NE(a, b);
    b.set(0, 0);
    EXPECT_EQ(a, b);
}

TEST(RequestMatrix, MutableRowAccess) {
    RequestMatrix m(4);
    m.row(1).set(3);
    EXPECT_TRUE(m.get(1, 3));
}

TEST(RequestMatrix, ColumnViewTransposesRows) {
    const RequestMatrix m = make_requests(
        4, {{0, 1}, {0, 2}, {1, 0}, {1, 2}, {1, 3}, {2, 0}, {2, 2}, {2, 3},
            {3, 1}});
    for (std::size_t j = 0; j < 4; ++j) {
        const auto& col = m.col(j);
        ASSERT_EQ(col.size(), 4u);
        for (std::size_t i = 0; i < 4; ++i) {
            EXPECT_EQ(col.test(i), m.get(i, j)) << i << "," << j;
        }
    }
}

TEST(RequestMatrix, ColumnViewRectangular) {
    RequestMatrix m(3, 5);
    m.set(0, 4);
    m.set(2, 4);
    m.set(1, 0);
    EXPECT_EQ(m.col(4).count(), 2u);
    EXPECT_TRUE(m.col(4).test(0));
    EXPECT_TRUE(m.col(4).test(2));
    EXPECT_EQ(m.col(0).count(), 1u);
    EXPECT_EQ(m.col(1).count(), 0u);
}

TEST(RequestMatrix, ColumnViewTracksSetAndClear) {
    RequestMatrix m(4);
    m.set(1, 2);
    EXPECT_TRUE(m.col(2).test(1));  // materializes the view
    m.set(3, 2);                    // in-place column update
    EXPECT_TRUE(m.col(2).test(3));
    m.set(1, 2, false);
    EXPECT_FALSE(m.col(2).test(1));
    m.clear();
    EXPECT_EQ(m.col(2).count(), 0u);
}

TEST(RequestMatrix, ColumnViewInvalidatedByMutableRow) {
    RequestMatrix m(4);
    m.set(0, 1);
    EXPECT_TRUE(m.col(1).test(0));
    // Writing through the row view bypasses set(); col() must rebuild.
    m.row(2).set(1);
    m.row(0).reset(1);
    EXPECT_TRUE(m.col(1).test(2));
    EXPECT_FALSE(m.col(1).test(0));
    EXPECT_EQ(m.col_count(1), 1u);
}

TEST(RequestMatrix, EqualityIgnoresColumnCacheState) {
    RequestMatrix a(4), b(4);
    a.set(1, 3);
    b.set(1, 3);
    (void)a.col(3);  // a has a materialized column view, b does not
    EXPECT_EQ(a, b);
    EXPECT_EQ(b, a);
}

}  // namespace
}  // namespace lcf::sched
