// Tests pinning the hardware cost/timing/communication models to the
// paper's published numbers (Tables 1 and 2, §6.2) and checking their
// scaling behaviour.

#include <gtest/gtest.h>

#include "hw/comm_model.hpp"
#include "hw/gate_model.hpp"
#include "hw/timing_model.hpp"

namespace lcf::hw {
namespace {

// ---------------------------------------------------------------- Table 1

TEST(GateModel, Table1SliceCountsAt16Ports) {
    const GateCount slice = GateModel::slice(16);
    EXPECT_EQ(slice.gates, 450u);
    EXPECT_EQ(slice.registers, 86u);
}

TEST(GateModel, Table1CentralCountsAt16Ports) {
    const GateCount central = GateModel::central(16);
    EXPECT_EQ(central.gates, 767u);
    EXPECT_EQ(central.registers, 216u);
}

TEST(GateModel, Table1TotalsAt16Ports) {
    const GateCount total = GateModel::total(16);
    EXPECT_EQ(total.gates, 7967u);    // 16*450 + 767
    EXPECT_EQ(total.registers, 1592u);  // 16*86 + 216
}

TEST(GateModel, CostsGrowMonotonically) {
    GateCount prev{};
    for (const std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
        const GateCount t = GateModel::total(n);
        EXPECT_GT(t.gates, prev.gates) << n;
        EXPECT_GT(t.registers, prev.registers) << n;
        prev = t;
    }
}

TEST(GateModel, TotalGrowthIsEssentiallyQuadratic) {
    // n slices of O(n) cost each: doubling n should roughly quadruple
    // the total gate count at large n.
    const double g32 = static_cast<double>(GateModel::total(32).gates);
    const double g64 = static_cast<double>(GateModel::total(64).gates);
    EXPECT_GT(g64 / g32, 3.0);
    EXPECT_LT(g64 / g32, 4.5);
}

TEST(GateModel, IndexBits) {
    EXPECT_EQ(GateModel::index_bits(2), 1u);
    EXPECT_EQ(GateModel::index_bits(3), 2u);
    EXPECT_EQ(GateModel::index_bits(16), 4u);
    EXPECT_EQ(GateModel::index_bits(17), 5u);
    EXPECT_EQ(GateModel::index_bits(64), 6u);
}

TEST(GateModel, Xcv600UtilizationAnchoredAt15Percent) {
    EXPECT_NEAR(GateModel::xcv600_utilization(16), 0.15, 1e-12);
    EXPECT_LT(GateModel::xcv600_utilization(8), 0.15);
}

TEST(GateModel, GateCountArithmetic) {
    const GateCount a{10, 2}, b{5, 3};
    EXPECT_EQ((a + b), (GateCount{15, 5}));
    EXPECT_EQ((3 * b), (GateCount{15, 9}));
}

// ---------------------------------------------------------------- Table 2

TEST(TimingModel, Table2CycleDecomposition) {
    EXPECT_EQ(TimingModel::precalc_cycles(16), 33u);  // 2n+1
    EXPECT_EQ(TimingModel::lcf_cycles(16), 50u);      // 3n+2
    EXPECT_EQ(TimingModel::total_cycles(16), 83u);    // 5n+3
}

TEST(TimingModel, Table2TimesAt66MHz) {
    const TimingModel t;  // 66 MHz default
    EXPECT_EQ(t.nanoseconds(TimingModel::precalc_cycles(16)), 500u);
    EXPECT_EQ(t.nanoseconds(TimingModel::lcf_cycles(16)), 758u);
    EXPECT_EQ(t.nanoseconds(TimingModel::total_cycles(16)), 1258u);
}

TEST(TimingModel, SchedulingTimeMatchesSection1Quote) {
    // §1: "the actual scheduling time is 1.3 µs" for the 16-port switch.
    const TimingModel t;
    EXPECT_NEAR(t.seconds(TimingModel::total_cycles(16)), 1.3e-6, 0.05e-6);
}

TEST(TimingModel, SchedulerFitsInsideTheClintSlot) {
    // The pipeline argument: scheduling (1.26 µs) overlaps the 8.5 µs
    // slot, using about 15 % of it.
    const TimingModel t;
    EXPECT_LT(t.slot_fraction(16), 0.16);
    EXPECT_GT(t.slot_fraction(16), 0.14);
}

TEST(TimingModel, CustomClock) {
    const TimingModel t(133.0e6);
    EXPECT_NEAR(t.seconds(133), 1e-6, 1e-12);
}

TEST(TimingModel, LinearCycleGrowth) {
    EXPECT_EQ(TimingModel::total_cycles(32), 5u * 32 + 3);
    EXPECT_EQ(TimingModel::total_cycles(64), 5u * 64 + 3);
}

// ------------------------------------------------------------- §6.2 comm

TEST(CommModel, CentralFormula) {
    // n(n + log2 n + 1): for n = 16 -> 16 * 21 = 336 bits.
    EXPECT_EQ(CommModel::central_bits(16), 336u);
    // n = 4 -> 4 * (4 + 2 + 1) = 28.
    EXPECT_EQ(CommModel::central_bits(4), 28u);
}

TEST(CommModel, DistributedFormula) {
    // i n^2 (2 log2 n + 3): n = 16, i = 4 -> 4 * 256 * 11 = 11264.
    EXPECT_EQ(CommModel::distributed_bits(16, 4), 11264u);
    // One iteration, n = 4 -> 16 * 7 = 112.
    EXPECT_EQ(CommModel::distributed_bits(4, 1), 112u);
}

TEST(CommModel, DistributedCostsSignificantlyMore) {
    // The paper's qualitative claim, quantified: at n = 16 with 4
    // iterations the distributed scheduler moves ~34x more bits.
    EXPECT_NEAR(CommModel::overhead_ratio(16, 4), 11264.0 / 336.0, 1e-9);
    EXPECT_GT(CommModel::overhead_ratio(16, 4), 30.0);
}

TEST(CommModel, Log2Bits) {
    EXPECT_EQ(CommModel::log2_bits(2), 1u);
    EXPECT_EQ(CommModel::log2_bits(16), 4u);
    EXPECT_EQ(CommModel::log2_bits(17), 5u);
}

TEST(CommModel, CentralScalesQuadraticallyDistributedWorse) {
    const double c_ratio = static_cast<double>(CommModel::central_bits(64)) /
                           static_cast<double>(CommModel::central_bits(16));
    const double d_ratio =
        static_cast<double>(CommModel::distributed_bits(64, 4)) /
        static_cast<double>(CommModel::distributed_bits(16, 4));
    EXPECT_GT(d_ratio, c_ratio);  // the n² log n term dominates
}

}  // namespace
}  // namespace lcf::hw
