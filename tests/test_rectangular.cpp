// Rectangular (inputs != outputs) switch support: the request-matrix
// and matching types are rectangular by design; verify the schedulers
// that support non-square geometries behave correctly there (the RTL
// model is square-only by hardware construction and rejects).

#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "sched/maxsize.hpp"
#include "util/rng.hpp"

namespace lcf {
namespace {

using sched::Matching;
using sched::RequestMatrix;

RequestMatrix random_rect(util::Xoshiro256& rng, std::size_t inputs,
                          std::size_t outputs, double density) {
    RequestMatrix r(inputs, outputs);
    for (std::size_t i = 0; i < inputs; ++i) {
        for (std::size_t j = 0; j < outputs; ++j) {
            if (rng.next_bool(density)) r.set(i, j);
        }
    }
    return r;
}

TEST(Rectangular, SchedulersStayValidOnWideAndTallMatrices) {
    // Concentrators (more inputs than outputs) and expanders (fewer).
    util::Xoshiro256 rng(404);
    for (const auto& [n_in, n_out] :
         {std::pair<std::size_t, std::size_t>{8, 3},
          {3, 8},
          {16, 4},
          {2, 12}}) {
        for (const auto* name :
             {"pim", "islip", "maxsize", "fifo", "ilqf", "rrm",
              "lcf_central", "lcf_central_rr", "lcf_dist", "lcf_dist_rr"}) {
            auto s = core::make_scheduler(
                name, sched::SchedulerConfig{.iterations = 8, .seed = 5});
            s->reset(n_in, n_out);
            Matching m;
            for (int trial = 0; trial < 100; ++trial) {
                const auto r = random_rect(rng, n_in, n_out, 0.4);
                s->schedule(r, m);
                ASSERT_TRUE(m.valid_for(r))
                    << name << " " << n_in << "x" << n_out;
                ASSERT_LE(m.size(), std::min(n_in, n_out));
            }
        }
    }
}

TEST(Rectangular, LcfCentralMaximalOnRectangles) {
    util::Xoshiro256 rng(405);
    auto s = core::make_scheduler("lcf_central_rr");
    s->reset(6, 10);
    Matching m;
    for (int trial = 0; trial < 200; ++trial) {
        const auto r = random_rect(rng, 6, 10, 0.3);
        s->schedule(r, m);
        ASSERT_TRUE(m.maximal_for(r));
    }
}

TEST(Rectangular, ConcentratorSaturatesAtOutputCount) {
    // 8 inputs all requesting all 3 outputs: exactly 3 grants.
    auto s = core::make_scheduler("lcf_central");
    s->reset(8, 3);
    RequestMatrix r(8, 3);
    for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < 3; ++j) r.set(i, j);
    }
    Matching m;
    s->schedule(r, m);
    EXPECT_EQ(m.size(), 3u);
}

TEST(Rectangular, MaxSizeOptimalOnRectangles) {
    util::Xoshiro256 rng(406);
    for (int trial = 0; trial < 100; ++trial) {
        const auto r = random_rect(rng, 4, 7, 0.35);
        // Brute force over the 4 inputs.
        std::size_t best = 0;
        for (std::uint32_t assign = 0; assign < (1u << (4 * 3)); ++assign) {
            // 3 bits per input choosing output 0..6 or skip (7).
            std::uint32_t used = 0;
            std::size_t count = 0;
            bool ok = true;
            for (std::size_t i = 0; i < 4 && ok; ++i) {
                const std::uint32_t pick = (assign >> (3 * i)) & 7u;
                if (pick == 7) continue;
                if (!r.get(i, pick) || (used & (1u << pick))) {
                    ok = false;
                } else {
                    used |= 1u << pick;
                    ++count;
                }
            }
            if (ok) best = std::max(best, count);
        }
        EXPECT_EQ(sched::MaxSizeScheduler::maximum_matching_size(r), best);
    }
}

}  // namespace
}  // namespace lcf
