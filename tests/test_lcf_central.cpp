// Tests for the central LCF scheduler, including an exact transcription
// of the paper's Figure 3 worked example and the properties §3 claims:
// round-robin positions win unconditionally, priorities are recalculated
// after every grant, matchings are maximal, and the diagonal anchor
// walks all n² positions.

#include "core/lcf_central.hpp"

#include <gtest/gtest.h>

#include "sched/maxsize.hpp"
#include "util/rng.hpp"

namespace lcf::core {
namespace {

using sched::make_requests;
using sched::Matching;
using sched::RequestMatrix;

/// The request matrix of Figure 3: I0:{T1,T2}, I1:{T0,T2,T3},
/// I2:{T0,T2,T3}, I3:{T1}.
RequestMatrix figure3_requests() {
    return make_requests(4, {{0, 1}, {0, 2}, {1, 0}, {1, 2}, {1, 3},
                             {2, 0}, {2, 2}, {2, 3}, {3, 1}});
}

TEST(LcfCentral, Figure3WorkedExample) {
    // Figure 3's diagonal starts at [I1, T0] (positions [I1,T0], [I2,T1],
    // [I3,T2], [I0,T3]), i.e. I = 1, J = 0.
    LcfCentralScheduler sched(LcfCentralOptions{.variant = RrVariant::kInterleaved});
    sched.reset(4, 4);
    sched.set_diagonal(1, 0);

    Matching m;
    sched.schedule(figure3_requests(), m);

    // Paper: T0 -> I1 (round-robin position), T1 -> I3 (NRQ 1 beats
    // I0's 2), T2 -> I0 (NRQ 1 after T1 was consumed beats I2's 2),
    // T3 -> I2 (only remaining requester).
    EXPECT_EQ(m.input_of(0), 1);
    EXPECT_EQ(m.input_of(1), 3);
    EXPECT_EQ(m.input_of(2), 0);
    EXPECT_EQ(m.input_of(3), 2);
    EXPECT_EQ(m.size(), 4u);
}

TEST(LcfCentral, Figure3DiagonalAdvancesAfterCycle) {
    LcfCentralScheduler sched;
    sched.reset(4, 4);
    sched.set_diagonal(1, 0);
    Matching m;
    sched.schedule(figure3_requests(), m);
    // I := (I+1) mod n; J advances when I wraps.
    EXPECT_EQ(sched.diagonal(), (std::pair<std::size_t, std::size_t>{2, 0}));
}

TEST(LcfCentral, DiagonalVisitsAllPositionsOverNSquaredCycles) {
    LcfCentralScheduler sched;
    sched.reset(4, 4);
    const RequestMatrix empty(4);
    Matching m;
    std::set<std::pair<std::size_t, std::size_t>> seen;
    for (int c = 0; c < 16; ++c) {
        seen.insert(sched.diagonal());
        sched.schedule(empty, m);
    }
    EXPECT_EQ(seen.size(), 16u);
    EXPECT_EQ(sched.diagonal(), (std::pair<std::size_t, std::size_t>{0, 0}));
}

TEST(LcfCentral, RoundRobinPositionWinsOverLowerNrq) {
    // I0 requests only T0 (NRQ 1); I1 requests T0 and T1 (NRQ 2). Put
    // the round-robin position on [I1, T0]: despite its lower priority,
    // I1 must win T0.
    LcfCentralScheduler sched(LcfCentralOptions{.variant = RrVariant::kInterleaved});
    sched.reset(4, 4);
    sched.set_diagonal(1, 0);
    Matching m;
    sched.schedule(make_requests(4, {{0, 0}, {1, 0}, {1, 1}}), m);
    EXPECT_EQ(m.input_of(0), 1);
}

TEST(LcfCentral, PureLcfIgnoresRoundRobinPosition) {
    LcfCentralScheduler sched(LcfCentralOptions{.variant = RrVariant::kNone});
    sched.reset(4, 4);
    sched.set_diagonal(1, 0);
    Matching m;
    sched.schedule(make_requests(4, {{0, 0}, {1, 0}, {1, 1}}), m);
    // Pure LCF: I0 has fewer requests, so I0 wins T0.
    EXPECT_EQ(m.input_of(0), 0);
    EXPECT_EQ(m.input_of(1), 1);
}

TEST(LcfCentral, FewestChoicesWins) {
    // T0 contended by I0 (NRQ 1) and I1 (NRQ 3): least-choice first.
    LcfCentralScheduler sched(LcfCentralOptions{.variant = RrVariant::kNone});
    sched.reset(4, 4);
    Matching m;
    sched.schedule(make_requests(4, {{0, 0}, {1, 0}, {1, 1}, {1, 2}}), m);
    EXPECT_EQ(m.input_of(0), 0);
}

TEST(LcfCentral, NrqRecalculatedAfterEachGrant) {
    // From Figure 3's step 3: after T1 went to I3, I0's NRQ drops to 1,
    // which lets it beat I2 (NRQ 2) for T2. Replay just that mechanism
    // with a minimal matrix: I0:{T0,T1}, I1:{T1,T2,T3}. T0 -> I0. At T1,
    // I0 is gone, I1 wins; at T2/T3 I1 is gone.
    LcfCentralScheduler sched(LcfCentralOptions{.variant = RrVariant::kNone});
    sched.reset(4, 4);
    Matching m;
    sched.schedule(make_requests(4, {{0, 0}, {0, 1}, {1, 1}, {1, 2}, {1, 3}}),
                   m);
    EXPECT_EQ(m.input_of(0), 0);
    EXPECT_EQ(m.input_of(1), 1);
    EXPECT_EQ(m.size(), 2u);
}

TEST(LcfCentral, EmptyRequestsYieldEmptyMatching) {
    LcfCentralScheduler sched;
    sched.reset(4, 4);
    Matching m;
    sched.schedule(RequestMatrix(4), m);
    EXPECT_EQ(m.size(), 0u);
}

TEST(LcfCentral, FullRequestsYieldPerfectMatching) {
    for (const bool rr : {false, true}) {
        LcfCentralScheduler sched(LcfCentralOptions{.variant = rr ? RrVariant::kInterleaved : RrVariant::kNone});
        sched.reset(8, 8);
        RequestMatrix full(8);
        for (std::size_t i = 0; i < 8; ++i) {
            for (std::size_t j = 0; j < 8; ++j) full.set(i, j);
        }
        Matching m;
        sched.schedule(full, m);
        EXPECT_EQ(m.size(), 8u) << "rr=" << rr;
        EXPECT_TRUE(m.valid_for(full));
    }
}

TEST(LcfCentral, MatchingsAreAlwaysMaximal) {
    util::Xoshiro256 rng(77);
    for (const bool rr : {false, true}) {
        LcfCentralScheduler sched(LcfCentralOptions{.variant = rr ? RrVariant::kInterleaved : RrVariant::kNone});
        sched.reset(8, 8);
        Matching m;
        for (int trial = 0; trial < 500; ++trial) {
            RequestMatrix r(8);
            for (std::size_t i = 0; i < 8; ++i) {
                for (std::size_t j = 0; j < 8; ++j) {
                    if (rng.next_bool(0.3)) r.set(i, j);
                }
            }
            sched.schedule(r, m);
            EXPECT_TRUE(m.valid_for(r));
            EXPECT_TRUE(m.maximal_for(r));
        }
    }
}

TEST(LcfCentral, LcfBeatsNaiveGreedyOnTheMotivatingPattern) {
    // The pattern LCF is designed for: one input with a single choice
    // competing against inputs with many. A greedy first-come scan can
    // strand the single-choice input; LCF must not.
    // I0:{T0}, I1:{T0,T1}, I2:{T0,T1,T2}: LCF grants all three.
    LcfCentralScheduler sched(LcfCentralOptions{.variant = RrVariant::kNone});
    sched.reset(4, 4);
    Matching m;
    sched.schedule(make_requests(4, {{0, 0}, {1, 0}, {1, 1}, {2, 0}, {2, 1},
                                     {2, 2}}),
                   m);
    EXPECT_EQ(m.size(), 3u);
    EXPECT_EQ(m.input_of(0), 0);
    EXPECT_EQ(m.input_of(1), 1);
    EXPECT_EQ(m.input_of(2), 2);
}

TEST(LcfCentral, MatchingSizeTracksMaximumCloselyOnRandomMatrices) {
    // §1 motivates LCF as approximating maximum-size matching. Verify
    // LCF achieves at least 90 % of the Hopcroft–Karp optimum on average
    // (and never less than 1/2, the maximal-matching bound).
    util::Xoshiro256 rng(123);
    LcfCentralScheduler sched(LcfCentralOptions{.variant = RrVariant::kNone});
    sched.reset(16, 16);
    Matching m;
    double lcf_total = 0, opt_total = 0;
    for (int trial = 0; trial < 200; ++trial) {
        RequestMatrix r(16);
        for (std::size_t i = 0; i < 16; ++i) {
            for (std::size_t j = 0; j < 16; ++j) {
                if (rng.next_bool(0.2)) r.set(i, j);
            }
        }
        sched.schedule(r, m);
        const auto opt = sched::MaxSizeScheduler::maximum_matching_size(r);
        EXPECT_GE(2 * m.size(), opt);
        lcf_total += static_cast<double>(m.size());
        opt_total += static_cast<double>(opt);
    }
    EXPECT_GT(lcf_total / opt_total, 0.90);
}

TEST(LcfCentral, ResetRestoresInitialDiagonal) {
    LcfCentralScheduler sched;
    sched.reset(4, 4);
    Matching m;
    sched.schedule(figure3_requests(), m);
    sched.reset(4, 4);
    EXPECT_EQ(sched.diagonal(), (std::pair<std::size_t, std::size_t>{0, 0}));
}

TEST(LcfCentral, NamesReflectConfiguration) {
    EXPECT_EQ(LcfCentralScheduler(LcfCentralOptions{.variant = RrVariant::kInterleaved}).name(),
              "lcf_central_rr");
    EXPECT_EQ(
        LcfCentralScheduler(LcfCentralOptions{.variant = RrVariant::kNone}).name(),
        "lcf_central");
}

}  // namespace
}  // namespace lcf::core
