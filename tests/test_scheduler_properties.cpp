// Property suite run over EVERY scheduler in the library (parameterised
// gtest): universal invariants any correct switch scheduler must hold.
//
//  P1  validity        — every matched pair is backed by a request
//  P2  no spurious     — empty requests produce empty matchings
//  P3  conflict-free   — no input or output appears twice (checked via
//                        the Matching invariant inside valid_for)
//  P4  single request  — a lone request is always granted
//  P5  permutation     — a permutation request set is fully granted
//  P6  reset determinism — reset() returns the scheduler to a state that
//                        reproduces the same schedule sequence
//  P7  half-optimal    — matchings reach at least half of maximum size
//                        (exact for the maximal schedulers; iterative
//                        ones are exercised with enough iterations)
//  P8  paranoid-clean  — every cycle of a traffic-driven run passes the
//                        ParanoidChecker (validity, exact bookkeeping,
//                        §3 fairness window, iteration budgets), on
//                        square and rectangular geometries

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/factory.hpp"
#include "obs/paranoid_checker.hpp"
#include "sched/maxsize.hpp"
#include "sched/scheduler.hpp"
#include "traffic/traffic.hpp"
#include "util/rng.hpp"

namespace lcf {
namespace {

using sched::Matching;
using sched::RequestMatrix;

class AllSchedulers : public ::testing::TestWithParam<std::string> {
protected:
    static std::unique_ptr<sched::Scheduler> make(std::size_t ports) {
        // Enough iterations that even the iterative matchers reach
        // maximality on the sizes tested here.
        auto s = core::make_scheduler(
            GetParam(), sched::SchedulerConfig{.iterations = 8, .seed = 17});
        s->reset(ports, ports);
        return s;
    }

    static RequestMatrix random_matrix(util::Xoshiro256& rng, std::size_t n,
                                       double density) {
        RequestMatrix r(n);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                if (rng.next_bool(density)) r.set(i, j);
            }
        }
        return r;
    }
};

TEST_P(AllSchedulers, ValidityOnRandomMatrices) {
    auto s = make(8);
    util::Xoshiro256 rng(5);
    Matching m;
    for (int trial = 0; trial < 200; ++trial) {
        const auto r = random_matrix(rng, 8, 0.35);
        s->schedule(r, m);
        ASSERT_TRUE(m.valid_for(r)) << s->name() << " trial " << trial;
    }
}

TEST_P(AllSchedulers, EmptyRequestsEmptyMatching) {
    auto s = make(8);
    Matching m;
    for (int slot = 0; slot < 10; ++slot) {
        s->schedule(RequestMatrix(8), m);
        EXPECT_EQ(m.size(), 0u);
    }
}

TEST_P(AllSchedulers, SingleRequestAlwaysGranted) {
    auto s = make(8);
    Matching m;
    for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < 8; ++j) {
            RequestMatrix r(8);
            r.set(i, j);
            s->schedule(r, m);
            EXPECT_EQ(m.output_of(i), static_cast<std::int32_t>(j))
                << s->name() << " (" << i << "," << j << ")";
            EXPECT_EQ(m.size(), 1u);
        }
    }
}

TEST_P(AllSchedulers, PermutationFullyGranted) {
    if (GetParam() == "fifo") {
        // FIFO's request matrices carry at most one bit per row by
        // construction; a permutation is exactly such a matrix, so it is
        // covered, not skipped.
    }
    auto s = make(8);
    Matching m;
    for (std::size_t shift = 0; shift < 8; ++shift) {
        RequestMatrix r(8);
        for (std::size_t i = 0; i < 8; ++i) r.set(i, (i + shift) % 8);
        s->schedule(r, m);
        EXPECT_EQ(m.size(), 8u) << s->name() << " shift " << shift;
    }
}

TEST_P(AllSchedulers, ResetReproducesScheduleSequence) {
    util::Xoshiro256 rng(6);
    std::vector<RequestMatrix> inputs;
    for (int k = 0; k < 20; ++k) inputs.push_back(random_matrix(rng, 6, 0.4));

    auto s = make(6);
    std::vector<Matching> first;
    Matching m;
    for (const auto& r : inputs) {
        s->schedule(r, m);
        first.push_back(m);
    }
    s->reset(6, 6);
    for (std::size_t k = 0; k < inputs.size(); ++k) {
        s->schedule(inputs[k], m);
        EXPECT_EQ(m, first[k]) << s->name() << " slot " << k;
    }
}

TEST_P(AllSchedulers, AtLeastHalfOfMaximum) {
    if (GetParam() == "fifo") {
        GTEST_SKIP() << "fifo sees only head-of-line requests";
    }
    auto s = make(8);
    util::Xoshiro256 rng(7);
    Matching m;
    for (int trial = 0; trial < 200; ++trial) {
        const auto r = random_matrix(rng, 8, 0.3);
        s->schedule(r, m);
        const auto opt = sched::MaxSizeScheduler::maximum_matching_size(r);
        EXPECT_GE(2 * m.size(), opt) << s->name();
    }
}

TEST_P(AllSchedulers, HandlesFullLoadWithoutConflicts) {
    auto s = make(16);
    RequestMatrix full(16);
    for (std::size_t i = 0; i < 16; ++i) {
        for (std::size_t j = 0; j < 16; ++j) full.set(i, j);
    }
    Matching m;
    for (int slot = 0; slot < 50; ++slot) {
        s->schedule(full, m);
        EXPECT_TRUE(m.valid_for(full));
        EXPECT_GE(m.size(), 1u);
    }
}

TEST_P(AllSchedulers, NameMatchesFactoryKey) {
    auto s = make(4);
    EXPECT_EQ(s->name(), GetParam());
}

TEST_P(AllSchedulers, ParanoidCleanUnderTrafficDrivenBacklog) {
    // Every scheduler, driven by a simulated VOQ backlog fed from real
    // traffic generators, must satisfy the ParanoidChecker's invariants
    // on every single cycle: valid partial permutation, every grant
    // backed by a request, exact NRQ/NGT bookkeeping, the §3 fairness
    // window for the rotating-diagonal variants, and the iteration
    // budget for the iterative matchers.
    constexpr std::size_t kPorts = 8;
    constexpr std::size_t kCyclesPerCombo = 1200;
    constexpr std::size_t kBacklogCap = 64;

    for (const auto* traffic_name : {"uniform", "bursty", "hotspot"}) {
        for (const double load : {0.5, 0.9, 1.0}) {
            auto s = make(kPorts);
            obs::ParanoidChecker checker(obs::ParanoidChecker::options_for(
                s->name(), s->iteration_limit()));
            checker.reset(kPorts, kPorts);
            auto gen = traffic::make_traffic(traffic_name, load);
            gen->reset(kPorts, kPorts, 99);

            std::vector<std::uint32_t> backlog(kPorts * kPorts, 0);
            RequestMatrix r(kPorts);
            Matching m;
            for (std::size_t cycle = 0; cycle < kCyclesPerCombo; ++cycle) {
                for (std::size_t i = 0; i < kPorts; ++i) {
                    const std::int32_t dst = gen->arrival(i, cycle);
                    if (dst == traffic::kNoArrival) continue;
                    auto& q = backlog[i * kPorts +
                                      static_cast<std::size_t>(dst)];
                    if (q < kBacklogCap) ++q;
                }
                r.clear();
                for (std::size_t i = 0; i < kPorts; ++i) {
                    for (std::size_t j = 0; j < kPorts; ++j) {
                        if (backlog[i * kPorts + j] > 0) r.set(i, j);
                    }
                }
                if (s->wants_queue_lengths()) {
                    s->observe_queue_lengths(backlog, kPorts);
                }
                s->schedule(r, m);
                ASSERT_NO_THROW(checker.check_cycle(r, m))
                    << s->name() << " on " << traffic_name << " at load "
                    << load << ", cycle " << cycle;
                ASSERT_NO_THROW(checker.check_iterations(s->last_iterations()))
                    << s->name() << " on " << traffic_name;
                for (std::size_t j = 0; j < kPorts; ++j) {
                    const std::int32_t i = m.input_of(j);
                    if (i != sched::kUnmatched) {
                        --backlog[static_cast<std::size_t>(i) * kPorts + j];
                    }
                }
            }
            EXPECT_EQ(checker.cycles_checked(), kCyclesPerCombo);
            EXPECT_EQ(checker.violation_count(), 0u);
        }
    }
}

TEST(ParanoidProperties, CleanOnRectangularGeometries) {
    // The invariants hold off the square diagonal too: concentrators
    // (6x10) and expanders (10x6) under random request matrices.
    // wfront is square-only by construction and is exercised above.
    util::Xoshiro256 rng(2024);
    for (const auto& [n_in, n_out] :
         {std::pair<std::size_t, std::size_t>{6, 10}, {10, 6}}) {
        for (const auto* name :
             {"pim", "islip", "maxsize", "fifo", "ilqf", "rrm",
              "lcf_central", "lcf_central_rr", "lcf_dist", "lcf_dist_rr"}) {
            auto s = core::make_scheduler(
                name, sched::SchedulerConfig{.iterations = 8, .seed = 11});
            s->reset(n_in, n_out);
            obs::ParanoidChecker checker(obs::ParanoidChecker::options_for(
                s->name(), s->iteration_limit()));
            checker.reset(n_in, n_out);
            Matching m;
            std::vector<std::uint32_t> lengths(n_in * n_out, 0);
            for (int trial = 0; trial < 400; ++trial) {
                RequestMatrix r(n_in, n_out);
                for (std::size_t i = 0; i < n_in; ++i) {
                    for (std::size_t j = 0; j < n_out; ++j) {
                        const bool bit = rng.next_bool(0.4);
                        if (bit) r.set(i, j);
                        lengths[i * n_out + j] = bit ? 1 : 0;
                    }
                }
                if (s->wants_queue_lengths()) {
                    s->observe_queue_lengths(lengths, n_out);
                }
                s->schedule(r, m);
                ASSERT_NO_THROW(checker.check_cycle(r, m))
                    << name << " " << n_in << "x" << n_out << " trial "
                    << trial;
                ASSERT_NO_THROW(checker.check_iterations(s->last_iterations()))
                    << name;
            }
            EXPECT_EQ(checker.violation_count(), 0u) << name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Library, AllSchedulers,
    ::testing::Values("fifo", "pim", "islip", "wfront", "maxsize",
                      "lcf_central", "lcf_central_rr",
                      "lcf_central_rr_single", "lcf_central_rr_first",
                      "lcf_dist", "lcf_dist_rr", "ilqf", "rrm"),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
        return param_info.param;
    });

TEST(Factory, RejectsUnknownNames) {
    EXPECT_THROW(core::make_scheduler("bogus"), std::invalid_argument);
}

TEST(Factory, NameListsAreConsistent) {
    for (const auto& name : core::scheduler_names()) {
        EXPECT_TRUE(core::is_scheduler_name(name)) << name;
        EXPECT_NO_THROW(core::make_scheduler(name));
    }
    EXPECT_FALSE(core::is_scheduler_name("outbuf"));
    // Figure 12 has nine configurations: eight schedulers + outbuf.
    EXPECT_EQ(core::figure12_names().size(), 9u);
}

}  // namespace
}  // namespace lcf
