// Property suite run over EVERY scheduler in the library (parameterised
// gtest): universal invariants any correct switch scheduler must hold.
//
//  P1  validity        — every matched pair is backed by a request
//  P2  no spurious     — empty requests produce empty matchings
//  P3  conflict-free   — no input or output appears twice (checked via
//                        the Matching invariant inside valid_for)
//  P4  single request  — a lone request is always granted
//  P5  permutation     — a permutation request set is fully granted
//  P6  reset determinism — reset() returns the scheduler to a state that
//                        reproduces the same schedule sequence
//  P7  half-optimal    — matchings reach at least half of maximum size
//                        (exact for the maximal schedulers; iterative
//                        ones are exercised with enough iterations)

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/factory.hpp"
#include "sched/maxsize.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace lcf {
namespace {

using sched::Matching;
using sched::RequestMatrix;

class AllSchedulers : public ::testing::TestWithParam<std::string> {
protected:
    static std::unique_ptr<sched::Scheduler> make(std::size_t ports) {
        // Enough iterations that even the iterative matchers reach
        // maximality on the sizes tested here.
        auto s = core::make_scheduler(
            GetParam(), sched::SchedulerConfig{.iterations = 8, .seed = 17});
        s->reset(ports, ports);
        return s;
    }

    static RequestMatrix random_matrix(util::Xoshiro256& rng, std::size_t n,
                                       double density) {
        RequestMatrix r(n);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                if (rng.next_bool(density)) r.set(i, j);
            }
        }
        return r;
    }
};

TEST_P(AllSchedulers, ValidityOnRandomMatrices) {
    auto s = make(8);
    util::Xoshiro256 rng(5);
    Matching m;
    for (int trial = 0; trial < 200; ++trial) {
        const auto r = random_matrix(rng, 8, 0.35);
        s->schedule(r, m);
        ASSERT_TRUE(m.valid_for(r)) << s->name() << " trial " << trial;
    }
}

TEST_P(AllSchedulers, EmptyRequestsEmptyMatching) {
    auto s = make(8);
    Matching m;
    for (int slot = 0; slot < 10; ++slot) {
        s->schedule(RequestMatrix(8), m);
        EXPECT_EQ(m.size(), 0u);
    }
}

TEST_P(AllSchedulers, SingleRequestAlwaysGranted) {
    auto s = make(8);
    Matching m;
    for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < 8; ++j) {
            RequestMatrix r(8);
            r.set(i, j);
            s->schedule(r, m);
            EXPECT_EQ(m.output_of(i), static_cast<std::int32_t>(j))
                << s->name() << " (" << i << "," << j << ")";
            EXPECT_EQ(m.size(), 1u);
        }
    }
}

TEST_P(AllSchedulers, PermutationFullyGranted) {
    if (GetParam() == "fifo") {
        // FIFO's request matrices carry at most one bit per row by
        // construction; a permutation is exactly such a matrix, so it is
        // covered, not skipped.
    }
    auto s = make(8);
    Matching m;
    for (std::size_t shift = 0; shift < 8; ++shift) {
        RequestMatrix r(8);
        for (std::size_t i = 0; i < 8; ++i) r.set(i, (i + shift) % 8);
        s->schedule(r, m);
        EXPECT_EQ(m.size(), 8u) << s->name() << " shift " << shift;
    }
}

TEST_P(AllSchedulers, ResetReproducesScheduleSequence) {
    util::Xoshiro256 rng(6);
    std::vector<RequestMatrix> inputs;
    for (int k = 0; k < 20; ++k) inputs.push_back(random_matrix(rng, 6, 0.4));

    auto s = make(6);
    std::vector<Matching> first;
    Matching m;
    for (const auto& r : inputs) {
        s->schedule(r, m);
        first.push_back(m);
    }
    s->reset(6, 6);
    for (std::size_t k = 0; k < inputs.size(); ++k) {
        s->schedule(inputs[k], m);
        EXPECT_EQ(m, first[k]) << s->name() << " slot " << k;
    }
}

TEST_P(AllSchedulers, AtLeastHalfOfMaximum) {
    if (GetParam() == "fifo") {
        GTEST_SKIP() << "fifo sees only head-of-line requests";
    }
    auto s = make(8);
    util::Xoshiro256 rng(7);
    Matching m;
    for (int trial = 0; trial < 200; ++trial) {
        const auto r = random_matrix(rng, 8, 0.3);
        s->schedule(r, m);
        const auto opt = sched::MaxSizeScheduler::maximum_matching_size(r);
        EXPECT_GE(2 * m.size(), opt) << s->name();
    }
}

TEST_P(AllSchedulers, HandlesFullLoadWithoutConflicts) {
    auto s = make(16);
    RequestMatrix full(16);
    for (std::size_t i = 0; i < 16; ++i) {
        for (std::size_t j = 0; j < 16; ++j) full.set(i, j);
    }
    Matching m;
    for (int slot = 0; slot < 50; ++slot) {
        s->schedule(full, m);
        EXPECT_TRUE(m.valid_for(full));
        EXPECT_GE(m.size(), 1u);
    }
}

TEST_P(AllSchedulers, NameMatchesFactoryKey) {
    auto s = make(4);
    EXPECT_EQ(s->name(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Library, AllSchedulers,
    ::testing::Values("fifo", "pim", "islip", "wfront", "maxsize",
                      "lcf_central", "lcf_central_rr",
                      "lcf_central_rr_single", "lcf_central_rr_first",
                      "lcf_dist", "lcf_dist_rr", "ilqf", "rrm"),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
        return param_info.param;
    });

TEST(Factory, RejectsUnknownNames) {
    EXPECT_THROW(core::make_scheduler("bogus"), std::invalid_argument);
}

TEST(Factory, NameListsAreConsistent) {
    for (const auto& name : core::scheduler_names()) {
        EXPECT_TRUE(core::is_scheduler_name(name)) << name;
        EXPECT_NO_THROW(core::make_scheduler(name));
    }
    EXPECT_FALSE(core::is_scheduler_name("outbuf"));
    // Figure 12 has nine configurations: eight schedulers + outbuf.
    EXPECT_EQ(core::figure12_names().size(), 9u);
}

}  // namespace
}  // namespace lcf
