// Tests for the heavy-tailed Pareto burst traffic: distribution shape,
// load calibration, burst coherence, and factory integration.

#include "traffic/pareto.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "traffic/traffic.hpp"

namespace lcf::traffic {
namespace {

TEST(Pareto, RejectsBadParameters) {
    EXPECT_THROW(ParetoBurstTraffic(1.5), std::invalid_argument);
    EXPECT_THROW(ParetoBurstTraffic(0.5, 1.0), std::invalid_argument);
    EXPECT_THROW(ParetoBurstTraffic(0.5, 1.5, 0.5), std::invalid_argument);
}

TEST(Pareto, SampleMeanMatchesClosedForm) {
    const ParetoBurstTraffic gen(0.5, 1.5, 10000.0);
    util::Xoshiro256 rng(12);
    double sum = 0.0;
    constexpr int kDraws = 200000;
    for (int k = 0; k < kDraws; ++k) {
        const double x = gen.sample_burst(rng);
        ASSERT_GE(x, 1.0);
        ASSERT_LE(x, 10000.0);
        sum += x;
    }
    // Heavy tail => slow convergence; allow 10 % tolerance.
    EXPECT_NEAR(sum / kDraws, gen.mean_burst(), gen.mean_burst() * 0.10);
}

TEST(Pareto, TailIsHeavierThanGeometric) {
    // P(X > 100) for bounded Pareto(1.5) is ~1e-3; a geometric with the
    // same mean (~3) would put it below 1e-14. Count empirical
    // exceedances.
    const ParetoBurstTraffic gen(0.5);
    util::Xoshiro256 rng(9);
    int exceed = 0;
    constexpr int kDraws = 100000;
    for (int k = 0; k < kDraws; ++k) {
        if (gen.sample_burst(rng) > 100.0) ++exceed;
    }
    EXPECT_GT(exceed, 20);  // ~100 expected; geometric would give 0
}

TEST(Pareto, LoadIsApproximatelyCalibrated) {
    ParetoBurstTraffic gen(0.4);
    gen.reset(1, 16, 31);
    std::uint64_t busy = 0;
    constexpr std::uint64_t kSlots = 400000;
    for (std::uint64_t t = 0; t < kSlots; ++t) {
        if (gen.arrival(0, t) != kNoArrival) ++busy;
    }
    // Heavy-tailed on periods make the busy fraction noisy; a wide
    // tolerance still catches calibration errors of the wrong shape.
    EXPECT_NEAR(static_cast<double>(busy) / static_cast<double>(kSlots), 0.4,
                0.12);
}

TEST(Pareto, BurstsKeepOneDestination) {
    ParetoBurstTraffic gen(0.6);
    gen.reset(1, 16, 5);
    std::int32_t prev = kNoArrival;
    std::uint64_t switches_without_gap = 0;
    std::uint64_t continuations = 0;
    for (std::uint64_t t = 0; t < 100000; ++t) {
        const auto d = gen.arrival(0, t);
        if (d != kNoArrival && prev != kNoArrival) {
            if (d == prev) {
                ++continuations;
            } else {
                ++switches_without_gap;
            }
        }
        prev = d;
    }
    // Pareto(1.5) produces many 1-slot bursts (median ~1.6), so
    // burst-to-burst adjacency is common at load 0.6 — but within-burst
    // continuations must still dominate clearly (the rare huge bursts
    // contribute thousands of continuations each).
    EXPECT_GT(continuations, 3 * switches_without_gap);
}

TEST(Pareto, FactoryKnowsIt) {
    const auto gen = make_traffic("pareto", 0.3);
    ASSERT_NE(gen, nullptr);
    EXPECT_EQ(gen->name(), "pareto");
    EXPECT_DOUBLE_EQ(gen->offered_load(), 0.3);
}

}  // namespace
}  // namespace lcf::traffic
