// Direct tests for MetricsCollector and SimResult plumbing.

#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace lcf::sim {
namespace {

TEST(Metrics, CountsBasics) {
    MetricsCollector m(4, 4, 0, false);
    m.on_generated();
    m.on_generated();
    m.on_dropped();
    m.on_delivered(0, 3, 1, 2);
    EXPECT_EQ(m.generated(), 2u);
    EXPECT_EQ(m.dropped(), 1u);
    EXPECT_EQ(m.delivered(), 1u);
    EXPECT_EQ(m.measured(), 1u);
    EXPECT_DOUBLE_EQ(m.delay_stat().mean(), 3.0);
}

TEST(Metrics, WarmupExcludesDelayButCountsDelivery) {
    MetricsCollector m(4, 4, 100, false);
    m.on_delivered(50, 7, 0, 0);   // generated pre-warm-up
    m.on_delivered(150, 9, 0, 0);  // post-warm-up
    EXPECT_EQ(m.delivered(), 2u);
    EXPECT_EQ(m.measured(), 1u);
    EXPECT_DOUBLE_EQ(m.delay_stat().mean(), 9.0);
}

TEST(Metrics, ServiceMatrixOnlyWhenRequested) {
    MetricsCollector off(4, 4, 0, false);
    off.on_delivered(0, 1, 2, 3);
    EXPECT_FALSE(off.has_service_matrix());
    EXPECT_EQ(off.service(2, 3), 0u);

    MetricsCollector on(4, 4, 0, true);
    on.on_delivered(0, 1, 2, 3);
    on.on_delivered(0, 1, 2, 3);
    EXPECT_TRUE(on.has_service_matrix());
    EXPECT_EQ(on.service(2, 3), 2u);
    EXPECT_EQ(on.service(3, 2), 0u);
}

TEST(Metrics, ServiceMatrixRespectsWarmup) {
    MetricsCollector m(2, 2, 10, true);
    m.on_delivered(5, 1, 0, 1);   // pre-warm-up: not recorded
    m.on_delivered(15, 1, 0, 1);  // recorded
    EXPECT_EQ(m.service(0, 1), 1u);
}

TEST(Metrics, HistogramAndStatsAgree) {
    MetricsCollector m(2, 2, 0, false);
    for (std::uint64_t d = 1; d <= 100; ++d) {
        m.on_delivered(0, d, 0, 0);
    }
    EXPECT_NEAR(m.delay_histogram().mean(), m.delay_stat().mean(), 1e-9);
    EXPECT_EQ(m.delay_histogram().percentile(1.0), 100u);
    EXPECT_NEAR(static_cast<double>(m.delay_histogram().percentile(0.5)),
                50.0, 1.0);
}

TEST(SimResultStruct, ServiceOfHandlesEmpty) {
    SimResult r;
    r.ports = 4;
    EXPECT_EQ(r.service_of(1, 2), 0u);
    r.service.assign(16, 0);
    r.service[1 * 4 + 2] = 7;
    EXPECT_EQ(r.service_of(1, 2), 7u);
}

}  // namespace
}  // namespace lcf::sim
