// Tests for the CLI parser: value forms, types, errors, help.

#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace lcf::util {
namespace {

TEST(Cli, ParsesSeparateAndInlineValues) {
    std::uint64_t ports = 16;
    double load = 0.5;
    CliParser p("test");
    p.flag("ports", "port count", &ports).flag("load", "offered load", &load);
    const char* argv[] = {"prog", "--ports", "32", "--load=0.9"};
    ASSERT_TRUE(p.parse(4, argv));
    EXPECT_EQ(ports, 32u);
    EXPECT_DOUBLE_EQ(load, 0.9);
}

TEST(Cli, DefaultsSurviveWhenUnset) {
    std::uint64_t ports = 16;
    CliParser p("test");
    p.flag("ports", "port count", &ports);
    const char* argv[] = {"prog"};
    ASSERT_TRUE(p.parse(1, argv));
    EXPECT_EQ(ports, 16u);
}

TEST(Cli, BoolFlagForms) {
    bool verbose = false;
    bool quiet = true;
    CliParser p("test");
    p.flag("verbose", "", &verbose).flag("quiet", "", &quiet);
    const char* argv[] = {"prog", "--verbose", "--quiet=false"};
    ASSERT_TRUE(p.parse(3, argv));
    EXPECT_TRUE(verbose);
    EXPECT_FALSE(quiet);
}

TEST(Cli, StringValues) {
    std::string name = "uniform";
    CliParser p("test");
    p.flag("traffic", "", &name);
    const char* argv[] = {"prog", "--traffic", "bursty"};
    ASSERT_TRUE(p.parse(3, argv));
    EXPECT_EQ(name, "bursty");
}

TEST(Cli, SignedIntegers) {
    std::int64_t v = 0;
    CliParser p("test");
    p.flag("offset", "", &v);
    const char* argv[] = {"prog", "--offset", "-5"};
    ASSERT_TRUE(p.parse(3, argv));
    EXPECT_EQ(v, -5);
}

TEST(Cli, UnknownOptionFails) {
    CliParser p("test");
    const char* argv[] = {"prog", "--nope", "1"};
    EXPECT_FALSE(p.parse(3, argv));
    EXPECT_EQ(p.exit_code(), 2);
}

TEST(Cli, MissingValueFails) {
    std::uint64_t ports = 0;
    CliParser p("test");
    p.flag("ports", "", &ports);
    const char* argv[] = {"prog", "--ports"};
    EXPECT_FALSE(p.parse(2, argv));
    EXPECT_EQ(p.exit_code(), 2);
}

TEST(Cli, BadNumberFails) {
    double load = 0.0;
    CliParser p("test");
    p.flag("load", "", &load);
    const char* argv[] = {"prog", "--load", "abc"};
    EXPECT_FALSE(p.parse(3, argv));
    EXPECT_EQ(p.exit_code(), 2);
}

TEST(Cli, HelpReturnsFalseWithZeroExit) {
    CliParser p("test");
    const char* argv[] = {"prog", "--help"};
    testing::internal::CaptureStdout();
    EXPECT_FALSE(p.parse(2, argv));
    testing::internal::GetCapturedStdout();
    EXPECT_EQ(p.exit_code(), 0);
}

TEST(Cli, PositionalArgumentRejected) {
    CliParser p("test");
    const char* argv[] = {"prog", "stray"};
    EXPECT_FALSE(p.parse(2, argv));
    EXPECT_EQ(p.exit_code(), 2);
}

}  // namespace
}  // namespace lcf::util
