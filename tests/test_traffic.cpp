// Tests for the traffic generators: load calibration, destination
// distributions, determinism, burst structure, and trace replay.

#include "traffic/traffic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "traffic/bernoulli.hpp"
#include "traffic/bursty.hpp"
#include "traffic/diagonal.hpp"
#include "traffic/hotspot.hpp"
#include "traffic/permutation.hpp"
#include "traffic/trace.hpp"

namespace lcf::traffic {
namespace {

constexpr std::size_t kPorts = 16;
constexpr std::uint64_t kSlots = 50000;

/// Measured arrival rate of one generator at one input.
double measure_load(TrafficGenerator& gen, std::size_t input) {
    std::uint64_t arrivals = 0;
    for (std::uint64_t t = 0; t < kSlots; ++t) {
        if (gen.arrival(input, t) != kNoArrival) ++arrivals;
    }
    return static_cast<double>(arrivals) / static_cast<double>(kSlots);
}

TEST(Bernoulli, LoadIsCalibrated) {
    BernoulliUniform gen(0.6);
    gen.reset(kPorts, kPorts, 1);
    EXPECT_NEAR(measure_load(gen, 0), 0.6, 0.02);
}

TEST(Bernoulli, ZeroAndFullLoad) {
    BernoulliUniform none(0.0);
    none.reset(kPorts, kPorts, 1);
    EXPECT_EQ(measure_load(none, 0), 0.0);
    BernoulliUniform full(1.0);
    full.reset(kPorts, kPorts, 1);
    EXPECT_EQ(measure_load(full, 0), 1.0);
}

TEST(Bernoulli, DestinationsAreUniform) {
    BernoulliUniform gen(1.0);
    gen.reset(kPorts, kPorts, 3);
    std::vector<std::uint64_t> counts(kPorts, 0);
    for (std::uint64_t t = 0; t < kSlots; ++t) {
        const auto d = gen.arrival(2, t);
        ASSERT_NE(d, kNoArrival);
        ++counts[static_cast<std::size_t>(d)];
    }
    const double expected = static_cast<double>(kSlots) / kPorts;
    for (const auto c : counts) {
        EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.15);
    }
}

TEST(Bernoulli, DeterministicPerSeed) {
    BernoulliUniform a(0.5), b(0.5);
    a.reset(4, 4, 9);
    b.reset(4, 4, 9);
    for (std::uint64_t t = 0; t < 1000; ++t) {
        for (std::size_t i = 0; i < 4; ++i) {
            EXPECT_EQ(a.arrival(i, t), b.arrival(i, t));
        }
    }
}

TEST(Bernoulli, InputStreamsAreIndependent) {
    BernoulliUniform gen(0.5);
    gen.reset(2, 16, 5);
    int same = 0, total = 0;
    for (std::uint64_t t = 0; t < 2000; ++t) {
        const auto a = gen.arrival(0, t);
        const auto b = gen.arrival(1, t);
        if (a != kNoArrival && b != kNoArrival) {
            ++total;
            if (a == b) ++same;
        }
    }
    ASSERT_GT(total, 100);
    EXPECT_LT(static_cast<double>(same) / total, 0.2);  // ~1/16 expected
}

TEST(Bernoulli, RejectsInvalidLoad) {
    EXPECT_THROW(BernoulliUniform(-0.1), std::invalid_argument);
    EXPECT_THROW(BernoulliUniform(1.1), std::invalid_argument);
}

TEST(Bursty, LoadIsCalibrated) {
    BurstyTraffic gen(0.4, 8.0);
    gen.reset(kPorts, kPorts, 2);
    EXPECT_NEAR(measure_load(gen, 0), 0.4, 0.05);
}

TEST(Bursty, BurstsShareOneDestination) {
    BurstyTraffic gen(0.5, 32.0);
    gen.reset(1, kPorts, 11);
    // Consecutive arrivals (no idle slot between them) belong to one
    // burst and must have equal destinations.
    std::int32_t prev = kNoArrival;
    std::uint64_t same_dst_runs = 0, switches_inside_run = 0;
    for (std::uint64_t t = 0; t < kSlots; ++t) {
        const auto d = gen.arrival(0, t);
        if (d != kNoArrival && prev != kNoArrival) {
            if (d == prev) {
                ++same_dst_runs;
            } else {
                ++switches_inside_run;
            }
        }
        prev = d;
    }
    // Long bursts: destination changes between consecutive busy slots
    // happen only at (rare) burst boundaries.
    EXPECT_GT(same_dst_runs, 10 * switches_inside_run);
}

TEST(Bursty, MeanBurstLengthApproximatesParameter) {
    constexpr double kMeanBurst = 10.0;
    BurstyTraffic gen(0.5, kMeanBurst);
    gen.reset(1, kPorts, 13);
    std::uint64_t bursts = 0, busy = 0;
    bool in_burst = false;
    for (std::uint64_t t = 0; t < kSlots; ++t) {
        const bool arrival = gen.arrival(0, t) != kNoArrival;
        if (arrival) {
            ++busy;
            if (!in_burst) ++bursts;
        }
        in_burst = arrival;
    }
    ASSERT_GT(bursts, 100u);
    EXPECT_NEAR(static_cast<double>(busy) / static_cast<double>(bursts),
                kMeanBurst, 2.0);
}

TEST(Bursty, RejectsInvalidParameters) {
    EXPECT_THROW(BurstyTraffic(0.5, 0.5), std::invalid_argument);
    EXPECT_THROW(BurstyTraffic(1.5, 8.0), std::invalid_argument);
}

TEST(Hotspot, HotPortReceivesConfiguredFraction) {
    HotspotTraffic gen(1.0, 0.5, 3);
    gen.reset(kPorts, kPorts, 4);
    std::uint64_t hot = 0, total = 0;
    for (std::uint64_t t = 0; t < kSlots; ++t) {
        const auto d = gen.arrival(0, t);
        ASSERT_NE(d, kNoArrival);
        ++total;
        if (d == 3) ++hot;
    }
    // hot fraction + uniform share of the remainder: 0.5 + 0.5/16.
    EXPECT_NEAR(static_cast<double>(hot) / static_cast<double>(total),
                0.5 + 0.5 / kPorts, 0.02);
}

TEST(Hotspot, RejectsOutOfRangeHotPort) {
    HotspotTraffic gen(0.5, 0.3, 99);
    EXPECT_THROW(gen.reset(4, 4, 1), std::invalid_argument);
}

TEST(Diagonal, OnlyTwoDestinationsPerInput) {
    DiagonalTraffic gen(1.0);
    gen.reset(kPorts, kPorts, 6);
    std::uint64_t to_self = 0, to_next = 0;
    for (std::uint64_t t = 0; t < kSlots; ++t) {
        const auto d = gen.arrival(5, t);
        ASSERT_TRUE(d == 5 || d == 6) << d;
        (d == 5 ? to_self : to_next) += 1;
    }
    EXPECT_NEAR(static_cast<double>(to_self) /
                    static_cast<double>(to_self + to_next),
                2.0 / 3.0, 0.02);
}

TEST(Diagonal, WrapsAtLastInput) {
    DiagonalTraffic gen(1.0);
    gen.reset(kPorts, kPorts, 6);
    for (std::uint64_t t = 0; t < 100; ++t) {
        const auto d = gen.arrival(kPorts - 1, t);
        ASSERT_TRUE(d == static_cast<std::int32_t>(kPorts - 1) || d == 0);
    }
}

TEST(Permutation, DestinationsAreFixedAndDistinct) {
    PermutationTraffic gen(1.0);
    gen.reset(kPorts, kPorts, 8);
    std::vector<bool> used(kPorts, false);
    for (std::size_t i = 0; i < kPorts; ++i) {
        const std::size_t d = gen.destination_of(i);
        EXPECT_FALSE(used[d]);
        used[d] = true;
        for (std::uint64_t t = 0; t < 100; ++t) {
            const auto a = gen.arrival(i, t);
            if (a != kNoArrival) {
                EXPECT_EQ(static_cast<std::size_t>(a), d);
            }
        }
    }
}

TEST(Trace, ReplaysExactly) {
    TraceTraffic gen({{0, 0, 3}, {0, 1, 2}, {5, 0, 1}});
    gen.reset(4, 4, 0);
    EXPECT_EQ(gen.arrival(0, 0), 3);
    EXPECT_EQ(gen.arrival(1, 0), 2);
    EXPECT_EQ(gen.arrival(2, 0), kNoArrival);
    EXPECT_EQ(gen.arrival(0, 3), kNoArrival);
    EXPECT_EQ(gen.arrival(0, 5), 1);
}

TEST(Trace, RejectsDuplicatesAndRangeErrors) {
    EXPECT_THROW(TraceTraffic({{0, 0, 1}, {0, 0, 2}}), std::invalid_argument);
    TraceTraffic bad_input({{0, 9, 1}});
    EXPECT_THROW(bad_input.reset(4, 4, 0), std::invalid_argument);
    TraceTraffic bad_dst({{0, 0, 9}});
    EXPECT_THROW(bad_dst.reset(4, 4, 0), std::invalid_argument);
}

TEST(Generators, RejectEmptyGeometry) {
    // Regression: reset(n, 0, seed) used to be accepted, and the first
    // arrival() then drew a destination below 0 — division by zero
    // inside the RNG's rejection sampler.
    for (const auto* name :
         {"uniform", "bursty", "pareto", "hotspot", "diagonal",
          "permutation"}) {
        auto gen = make_traffic(name, 0.5);
        EXPECT_THROW(gen->reset(4, 0, 1), std::invalid_argument) << name;
        EXPECT_THROW(gen->reset(0, 4, 1), std::invalid_argument) << name;
        gen->reset(4, 4, 1);  // sane geometry still accepted afterwards
    }
}

TEST(Factory, UnknownNameListsValidNames) {
    try {
        make_traffic("nope", 0.5);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("nope"), std::string::npos);
        for (const auto& name : traffic_names()) {
            EXPECT_NE(message.find(name), std::string::npos) << name;
        }
    }
}

TEST(Factory, TrafficNamesRoundTrip) {
    for (const auto& name : traffic_names()) {
        EXPECT_TRUE(is_traffic_name(name)) << name;
        EXPECT_NE(make_traffic(name, 0.5), nullptr) << name;
    }
    EXPECT_FALSE(is_traffic_name("nope"));
    EXPECT_FALSE(is_traffic_name(""));
}

TEST(Factory, MakesEveryKnownPattern) {
    for (const auto* name :
         {"uniform", "bursty", "hotspot", "diagonal", "permutation"}) {
        auto gen = make_traffic(name, 0.5);
        ASSERT_NE(gen, nullptr) << name;
        EXPECT_EQ(gen->name(), name);
        EXPECT_DOUBLE_EQ(gen->offered_load(), 0.5);
    }
    EXPECT_THROW(make_traffic("nope", 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace lcf::traffic
