// Tests for the deterministic RNG stack: reproducibility, stream
// independence, distribution sanity, and next_below bounds.

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace lcf::util {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
    SplitMix64 a(1234), b(1234);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
    SplitMix64 a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) ++equal;
    }
    EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, Reproducible) {
    Xoshiro256 a(99), b(99);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Xoshiro256, SeedZeroIsUsable) {
    Xoshiro256 rng(0);
    std::set<std::uint64_t> values;
    for (int i = 0; i < 100; ++i) values.insert(rng());
    EXPECT_GT(values.size(), 95u);  // not stuck
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
    Xoshiro256 rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Xoshiro256, NextDoubleMeanIsNearHalf) {
    Xoshiro256 rng(17);
    double sum = 0.0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) sum += rng.next_double();
    EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Xoshiro256, NextBelowRespectsBound) {
    Xoshiro256 rng(3);
    for (const std::uint64_t bound : {1ull, 2ull, 7ull, 16ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i) {
            EXPECT_LT(rng.next_below(bound), bound);
        }
    }
}

TEST(Xoshiro256, NextBelowIsApproximatelyUniform) {
    Xoshiro256 rng(11);
    constexpr std::uint64_t kBound = 10;
    constexpr int kDraws = 100000;
    std::vector<int> counts(kBound, 0);
    for (int i = 0; i < kDraws; ++i) {
        ++counts[rng.next_below(kBound)];
    }
    // Chi-squared with 9 dof: 99.9th percentile is ~27.9.
    double chi2 = 0.0;
    const double expected = static_cast<double>(kDraws) / kBound;
    for (const int c : counts) {
        chi2 += (c - expected) * (c - expected) / expected;
    }
    EXPECT_LT(chi2, 27.9);
}

TEST(Xoshiro256, NextBoolMatchesProbability) {
    Xoshiro256 rng(23);
    int hits = 0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        if (rng.next_bool(0.3)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(DeriveSeed, StreamsAreDistinct) {
    std::set<std::uint64_t> seeds;
    for (std::uint64_t s = 0; s < 100; ++s) {
        seeds.insert(derive_seed(42, s));
    }
    EXPECT_EQ(seeds.size(), 100u);
}

TEST(DeriveSeed, Deterministic) {
    EXPECT_EQ(derive_seed(7, 3), derive_seed(7, 3));
    EXPECT_NE(derive_seed(7, 3), derive_seed(8, 3));
}

}  // namespace
}  // namespace lcf::util
