// Tests for the Hopcroft–Karp maximum-size matching reference:
// optimality against brute force on small instances, known structured
// cases, and validity at scale.

#include "sched/maxsize.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace lcf::sched {
namespace {

/// Brute-force maximum matching size for matrices up to ~5x5.
std::size_t brute_force_max(const RequestMatrix& r, std::size_t input,
                            std::uint32_t used_outputs) {
    if (input == r.inputs()) return 0;
    std::size_t best = brute_force_max(r, input + 1, used_outputs);
    for (std::size_t j = 0; j < r.outputs(); ++j) {
        if (r.get(input, j) && !(used_outputs & (1U << j))) {
            best = std::max(best, 1 + brute_force_max(r, input + 1,
                                                      used_outputs |
                                                          (1U << j)));
        }
    }
    return best;
}

TEST(MaxSize, MatchesBruteForceOnRandomSmallInstances) {
    util::Xoshiro256 rng(61);
    for (int trial = 0; trial < 300; ++trial) {
        RequestMatrix r(5);
        for (std::size_t i = 0; i < 5; ++i) {
            for (std::size_t j = 0; j < 5; ++j) {
                if (rng.next_bool(0.4)) r.set(i, j);
            }
        }
        EXPECT_EQ(MaxSizeScheduler::maximum_matching_size(r),
                  brute_force_max(r, 0, 0));
    }
}

TEST(MaxSize, PerfectMatchingOnPermutation) {
    RequestMatrix r(8);
    for (std::size_t i = 0; i < 8; ++i) r.set(i, (i * 3) % 8);
    EXPECT_EQ(MaxSizeScheduler::maximum_matching_size(r), 8u);
}

TEST(MaxSize, AugmentingPathCase) {
    // Greedy picks (0,0) and strands input 1; the optimum re-routes 0 to
    // output 1. A classic augmenting-path instance.
    const RequestMatrix r = make_requests(4, {{0, 0}, {0, 1}, {1, 0}});
    MaxSizeScheduler s;
    s.reset(4, 4);
    Matching m;
    s.schedule(r, m);
    EXPECT_EQ(m.size(), 2u);
    EXPECT_TRUE(m.valid_for(r));
}

TEST(MaxSize, LongAugmentingChain) {
    // Inputs i request outputs {i, i+1}; input n-1 requests only n-1.
    // A bad greedy choice cascades; the optimum is a perfect matching.
    RequestMatrix r(6);
    for (std::size_t i = 0; i < 5; ++i) {
        r.set(i, i);
        r.set(i, i + 1);
    }
    r.set(5, 5);
    EXPECT_EQ(MaxSizeScheduler::maximum_matching_size(r), 6u);
}

TEST(MaxSize, StarvationStructureStillMaximum) {
    // The paper's fairness discussion (§3): maximising the match count
    // can permanently ignore some requests. The maximum here is 3 and
    // it necessarily excludes one of the contending pairs.
    const RequestMatrix r = make_requests(
        4, {{0, 1}, {0, 2}, {1, 0}, {1, 2}, {1, 3}, {2, 0}, {2, 2}, {2, 3},
            {3, 1}});
    EXPECT_EQ(MaxSizeScheduler::maximum_matching_size(r), 4u);
}

TEST(MaxSize, EmptyAndFull) {
    EXPECT_EQ(MaxSizeScheduler::maximum_matching_size(RequestMatrix(4)), 0u);
    RequestMatrix full(8);
    for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < 8; ++j) full.set(i, j);
    }
    EXPECT_EQ(MaxSizeScheduler::maximum_matching_size(full), 8u);
}

TEST(MaxSize, ValidMatchingsAtScale) {
    util::Xoshiro256 rng(71);
    MaxSizeScheduler s;
    s.reset(32, 32);
    Matching m;
    for (int trial = 0; trial < 50; ++trial) {
        RequestMatrix r(32);
        for (std::size_t i = 0; i < 32; ++i) {
            for (std::size_t j = 0; j < 32; ++j) {
                if (rng.next_bool(0.15)) r.set(i, j);
            }
        }
        s.schedule(r, m);
        EXPECT_TRUE(m.valid_for(r));
        EXPECT_TRUE(m.maximal_for(r));
    }
}

TEST(MaxSize, RectangularMatrices) {
    RequestMatrix r(2, 5);
    r.set(0, 4);
    r.set(1, 4);
    r.set(1, 0);
    EXPECT_EQ(MaxSizeScheduler::maximum_matching_size(r), 2u);
}

}  // namespace
}  // namespace lcf::sched
