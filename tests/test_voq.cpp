// Tests for the VOQ bank: routing by destination, occupancy/request
// vectors, and per-queue capacity.

#include "sim/voq.hpp"

#include <gtest/gtest.h>

namespace lcf::sim {
namespace {

TEST(VoqBank, RoutesByDestination) {
    VoqBank bank(4, 8);
    EXPECT_TRUE(bank.push(Packet{0, 0, 2, 0}));
    EXPECT_TRUE(bank.push(Packet{1, 0, 2, 0}));
    EXPECT_TRUE(bank.push(Packet{2, 0, 3, 0}));
    EXPECT_EQ(bank.queue(2).size(), 2u);
    EXPECT_EQ(bank.queue(3).size(), 1u);
    EXPECT_EQ(bank.queue(0).size(), 0u);
    EXPECT_EQ(bank.total_buffered(), 3u);
}

TEST(VoqBank, OccupancyReflectsPushes) {
    VoqBank bank(4, 8);
    bank.push(Packet{0, 0, 1, 0});
    bank.push(Packet{1, 0, 3, 0});
    const auto& req = bank.occupancy();
    EXPECT_FALSE(req.test(0));
    EXPECT_TRUE(req.test(1));
    EXPECT_FALSE(req.test(2));
    EXPECT_TRUE(req.test(3));
    EXPECT_EQ(bank.nonempty_count(), 2u);
}

TEST(VoqBank, FillRequestVectorClearsStaleBits) {
    VoqBank bank(4, 8);
    bank.push(Packet{0, 0, 1, 0});
    util::BitVec v(4);
    v.set(0);  // stale bit from a previous slot
    bank.fill_request_vector(v);
    EXPECT_FALSE(v.test(0));
    EXPECT_TRUE(v.test(1));
}

TEST(VoqBank, PerQueueCapacityEnforced) {
    VoqBank bank(2, 2);
    EXPECT_TRUE(bank.push(Packet{0, 0, 1, 0}));
    EXPECT_TRUE(bank.push(Packet{1, 0, 1, 0}));
    EXPECT_FALSE(bank.push(Packet{2, 0, 1, 0}));  // queue 1 is full
    EXPECT_TRUE(bank.push(Packet{3, 0, 0, 0}));   // queue 0 has space
}

TEST(VoqBank, OccupancyEmptiesAfterDrain) {
    VoqBank bank(3, 4);
    bank.push(Packet{0, 0, 2, 0});
    EXPECT_EQ(bank.nonempty_count(), 1u);
    bank.pop(2);
    EXPECT_TRUE(bank.occupancy().none());
    EXPECT_EQ(bank.nonempty_count(), 0u);
}

}  // namespace
}  // namespace lcf::sim
