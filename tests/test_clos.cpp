// Tests for the three-stage Clos fabric: rearrangeable non-blocking
// routing (Slepian–Duguid, m >= k) via edge colouring, blocking
// behaviour for m < k, verification, and the simulator integration
// (a non-blocking Clos must reproduce the crossbar's results exactly).

#include "fabric/clos.hpp"

#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "sim/switch_sim.hpp"
#include "traffic/bernoulli.hpp"
#include "util/rng.hpp"

namespace lcf::fabric {
namespace {

using sched::Matching;

/// Random (partial or full) matching over n ports.
Matching random_matching(util::Xoshiro256& rng, std::size_t n,
                         double density) {
    Matching m(n);
    std::vector<std::size_t> outputs(n);
    for (std::size_t j = 0; j < n; ++j) outputs[j] = j;
    for (std::size_t j = n; j > 1; --j) {  // shuffle outputs
        std::swap(outputs[j - 1],
                  outputs[static_cast<std::size_t>(rng.next_below(j))]);
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (rng.next_bool(density)) m.match(i, outputs[i]);
    }
    return m;
}

TEST(Clos, GeometryAccessors) {
    const ClosNetwork net(4, 5, 3);
    EXPECT_EQ(net.total_ports(), 12u);
    EXPECT_EQ(net.ports_per_switch(), 4u);
    EXPECT_EQ(net.middle_switches(), 5u);
    EXPECT_EQ(net.switch_count(), 3u);
    EXPECT_TRUE(net.rearrangeably_nonblocking());
    EXPECT_EQ(net.switch_of(0), 0u);
    EXPECT_EQ(net.switch_of(3), 0u);
    EXPECT_EQ(net.switch_of(4), 1u);
    EXPECT_EQ(net.switch_of(11), 2u);
}

TEST(Clos, RejectsDegenerateGeometry) {
    EXPECT_THROW(ClosNetwork(0, 1, 1), std::invalid_argument);
    EXPECT_THROW(ClosNetwork(1, 0, 1), std::invalid_argument);
    EXPECT_THROW(ClosNetwork(1, 1, 0), std::invalid_argument);
}

TEST(Clos, RoutesEmptyMatching) {
    const ClosNetwork net(4, 4, 4);
    const Matching m(16);
    const auto route = net.route(m);
    EXPECT_TRUE(route.complete());
    EXPECT_TRUE(net.verify(m, route));
}

TEST(Clos, RoutesIdentityPermutation) {
    const ClosNetwork net(4, 4, 4);
    Matching m(16);
    for (std::size_t p = 0; p < 16; ++p) m.match(p, p);
    const auto route = net.route(m);
    EXPECT_TRUE(route.complete());
    EXPECT_TRUE(net.verify(m, route));
}

TEST(Clos, RoutesWorstCasePermutationAtMinimalMiddleCount) {
    // All k ports of ingress switch 0 target the same egress switch —
    // the pattern that exhausts every middle switch. m = k must still
    // route it (Slepian–Duguid bound is tight).
    const ClosNetwork net(4, 4, 4);
    Matching m(16);
    for (std::size_t p = 0; p < 4; ++p) m.match(p, 4 + p);   // sw0 -> sw1
    for (std::size_t p = 4; p < 8; ++p) m.match(p, p - 4);   // sw1 -> sw0
    for (std::size_t p = 8; p < 12; ++p) m.match(p, p + 4);  // sw2 -> sw3
    for (std::size_t p = 12; p < 16; ++p) m.match(p, p - 4); // sw3 -> sw2
    const auto route = net.route(m);
    EXPECT_TRUE(route.complete());
    EXPECT_TRUE(net.verify(m, route));
}

TEST(Clos, NonBlockingRoutesEveryRandomMatching) {
    util::Xoshiro256 rng(777);
    for (const auto& [k, m_count, r] :
         {std::tuple<std::size_t, std::size_t, std::size_t>{2, 2, 4},
          {4, 4, 4},
          {4, 6, 4},
          {8, 8, 2},
          {3, 3, 5}}) {
        const ClosNetwork net(k, m_count, r);
        for (int trial = 0; trial < 200; ++trial) {
            const auto matching =
                random_matching(rng, net.total_ports(), 0.8);
            const auto route = net.route(matching);
            ASSERT_TRUE(route.complete())
                << "C(" << k << "," << m_count << "," << r << ") trial "
                << trial;
            ASSERT_TRUE(net.verify(matching, route));
        }
    }
}

TEST(Clos, ExhaustivePermutationsOnSmallNetwork) {
    // C(2,2,2): all 4! = 24 full permutations over 4 ports must route.
    const ClosNetwork net(2, 2, 2);
    std::vector<std::size_t> perm = {0, 1, 2, 3};
    int count = 0;
    do {
        Matching m(4);
        for (std::size_t p = 0; p < 4; ++p) m.match(p, perm[p]);
        const auto route = net.route(m);
        ASSERT_TRUE(route.complete()) << "perm " << count;
        ASSERT_TRUE(net.verify(m, route));
        ++count;
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_EQ(count, 24);
}

TEST(Clos, UnderProvisionedFabricBlocks) {
    // m = 1 < k = 4: two connections from one ingress switch to one
    // egress switch cannot both be carried.
    const ClosNetwork net(4, 1, 4);
    EXPECT_FALSE(net.rearrangeably_nonblocking());
    Matching m(16);
    m.match(0, 4);
    m.match(1, 5);  // same ingress switch 0, same egress switch 1
    const auto route = net.route(m);
    EXPECT_FALSE(route.complete());
    EXPECT_EQ(route.rejected_inputs.size(), 1u);
    EXPECT_TRUE(net.verify(m, route));  // the carried part is conflict-free
}

TEST(Clos, VerifyCatchesConflicts) {
    const ClosNetwork net(2, 2, 2);
    Matching m(4);
    m.match(0, 2);
    m.match(1, 3);  // same ingress switch 0, same egress switch 1
    ClosRoute bad;
    bad.middle_of_input = {0, 0, -1, -1};  // both on middle switch 0
    EXPECT_FALSE(net.verify(m, bad));
    bad.middle_of_input = {0, 1, -1, -1};
    EXPECT_TRUE(net.verify(m, bad));
    bad.middle_of_input = {0, 5, -1, -1};  // out of range
    EXPECT_FALSE(net.verify(m, bad));
}

TEST(ClosSim, NonBlockingClosMatchesCrossbarExactly) {
    // A rearrangeably non-blocking fabric never rejects a scheduled
    // connection, so the simulation results must be bit-identical to
    // the crossbar run.
    sim::SimConfig crossbar;
    crossbar.ports = 16;
    crossbar.slots = 5000;
    crossbar.warmup_slots = 500;
    sim::SimConfig clos = crossbar;
    clos.clos_middle = 4;
    clos.clos_group = 4;

    const auto a = sim::SwitchSim(
                       crossbar, core::make_scheduler("lcf_central_rr"),
                       std::make_unique<traffic::BernoulliUniform>(0.85))
                       .run();
    const auto b = sim::SwitchSim(
                       clos, core::make_scheduler("lcf_central_rr"),
                       std::make_unique<traffic::BernoulliUniform>(0.85))
                       .run();
    EXPECT_EQ(b.fabric_blocked, 0u);
    EXPECT_DOUBLE_EQ(a.mean_delay, b.mean_delay);
    EXPECT_EQ(a.delivered, b.delivered);
}

TEST(ClosSim, BlockingClosLosesThroughput) {
    sim::SimConfig config;
    config.ports = 16;
    config.slots = 5000;
    config.warmup_slots = 500;
    config.clos_middle = 2;  // m = 2 < k = 4: blocking
    config.clos_group = 4;
    const auto r = sim::SwitchSim(
                       config, core::make_scheduler("lcf_central_rr"),
                       std::make_unique<traffic::BernoulliUniform>(0.9))
                       .run();
    EXPECT_GT(r.fabric_blocked, 0u);
    // Two middle switches cap each ingress group at 2 packets/slot:
    // aggregate capacity 8/16 = 0.5 load.
    EXPECT_LT(r.throughput, 0.55);
    EXPECT_GT(r.throughput, 0.40);
}

TEST(ClosSim, RejectsBadGeometry) {
    sim::SimConfig config;
    config.ports = 16;
    config.clos_middle = 4;
    config.clos_group = 5;  // 16 % 5 != 0
    EXPECT_THROW(sim::SwitchSim(
                     config, core::make_scheduler("islip"),
                     std::make_unique<traffic::BernoulliUniform>(0.5)),
                 std::invalid_argument);
}

}  // namespace
}  // namespace lcf::fabric
