// Tests for the thread pool: task execution, parallel_for coverage,
// exception propagation, and clean shutdown with queued work.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace lcf::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i) {
        futures.push_back(pool.submit([&counter] { ++counter; }));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(500);
    pool.parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, ParallelForEmptyRange) {
    ThreadPool pool(2);
    int calls = 0;
    pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
    ThreadPool pool(2);
    auto f = pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ExceptionPropagatesThroughParallelFor) {
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallel_for(0, 10,
                                   [](std::size_t i) {
                                       if (i == 3) {
                                           throw std::runtime_error("boom");
                                       }
                                   }),
                 std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
    std::atomic<int> counter{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 50; ++i) {
            pool.submit([&counter] { ++counter; });
        }
        // Destructor must wait for all 50.
    }
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SizeReportsWorkers) {
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    ThreadPool defaulted(0);
    EXPECT_GE(defaulted.size(), 1u);
}

TEST(ThreadPool, NestedParallelForOnSamePoolThrows) {
    // A parallel_for from inside one of the pool's own tasks would park
    // the worker on futures only the (busy) workers can complete — the
    // pool must refuse instead of deadlocking silently.
    ThreadPool pool(2);
    auto f = pool.submit([&pool] {
        pool.parallel_for(0, 4, [](std::size_t) {});
    });
    EXPECT_THROW(f.get(), std::logic_error);
}

TEST(ThreadPool, ParallelForOnDifferentPoolFromTaskIsAllowed) {
    ThreadPool outer(2);
    ThreadPool inner(2);
    std::atomic<int> hits{0};
    auto f = outer.submit([&inner, &hits] {
        inner.parallel_for(0, 8, [&hits](std::size_t) { ++hits; });
    });
    f.get();
    EXPECT_EQ(hits.load(), 8);
}

TEST(ThreadPool, SharedPoolIsReusedAcrossCalls) {
    ThreadPool& a = ThreadPool::shared();
    ThreadPool& b = ThreadPool::shared();
    EXPECT_EQ(&a, &b);
    EXPECT_GE(a.size(), 1u);
    std::atomic<int> hits{0};
    a.parallel_for(0, 100, [&hits](std::size_t) { ++hits; });
    EXPECT_EQ(hits.load(), 100);
}

TEST(ThreadPool, ParallelForNZeroUsesSharedPool) {
    std::vector<std::atomic<int>> hits(64);
    parallel_for_n(0, 0, hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForChunksCoverUnevenRanges) {
    // Ranges that do not divide evenly into 4 * workers chunks must
    // still cover every index exactly once.
    ThreadPool pool(3);
    for (const std::size_t n : {1u, 2u, 11u, 12u, 13u, 97u}) {
        std::vector<std::atomic<int>> hits(n);
        pool.parallel_for(0, n, [&](std::size_t i) { ++hits[i]; });
        for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, ParallelSumMatchesSequential) {
    ThreadPool pool(4);
    std::vector<long long> values(1000);
    std::iota(values.begin(), values.end(), 1);
    std::atomic<long long> sum{0};
    pool.parallel_for(0, values.size(),
                      [&](std::size_t i) { sum += values[i]; });
    EXPECT_EQ(sum.load(), 1000LL * 1001 / 2);
}

}  // namespace
}  // namespace lcf::util
