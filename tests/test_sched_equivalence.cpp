// Equivalence property suite for the word-parallel scheduler rewrite:
// every optimized LCF scheduler must produce BIT-IDENTICAL matchings —
// and identical last_iterations() — to its `*_reference` twin (the
// per-bit transcription of the paper's pseudocode kept in
// core/lcf_reference.hpp) on every cycle of a long randomized run, over
// square and rectangular geometries and every round-robin variant. The
// optimized schedulers' outputs additionally run under the
// ParanoidChecker, so the optimizations cannot trade invariants for
// speed.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "core/lcf_central.hpp"
#include "core/lcf_reference.hpp"
#include "core/precalc.hpp"
#include "obs/paranoid_checker.hpp"
#include "sched/matching.hpp"
#include "sched/request_matrix.hpp"
#include "util/rng.hpp"

namespace lcf {
namespace {

struct Geometry {
    std::size_t inputs;
    std::size_t outputs;
};

// Square radices below, at, and above one 64-bit word, plus both
// rectangular orientations.
const Geometry kGeometries[] = {
    {16, 16}, {13, 13}, {67, 67}, {12, 20}, {20, 12}};

// Densities cycled per scheduling cycle; the 0.0 and 1.0 extremes pin
// the empty- and full-matrix edge cases.
constexpr double kDensities[] = {0.0, 0.05, 0.2, 0.35, 0.6, 0.9, 1.0};

sched::RequestMatrix random_requests(util::Xoshiro256& rng,
                                     const Geometry& g, double density) {
    sched::RequestMatrix r(g.inputs, g.outputs);
    for (std::size_t i = 0; i < g.inputs; ++i) {
        auto& row = r.row(i);
        for (std::size_t wi = 0; wi < row.word_count(); ++wi) {
            row.set_word(wi, rng.next_bernoulli_word(density));
        }
    }
    return r;
}

constexpr std::size_t kCycles = 250;

class SchedEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(SchedEquivalence, BitIdenticalToReferenceOverRandomCycles) {
    const std::string name = GetParam();
    const sched::SchedulerConfig config{.iterations = 4, .seed = 7};
    for (const Geometry& g : kGeometries) {
        auto opt = core::make_scheduler(name, config);
        auto ref = core::make_scheduler(name + "_reference", config);
        opt->reset(g.inputs, g.outputs);
        ref->reset(g.inputs, g.outputs);

        obs::ParanoidChecker checker(
            obs::ParanoidChecker::options_for(name, opt->iteration_limit()));
        checker.reset(g.inputs, g.outputs);

        util::Xoshiro256 rng(g.inputs * 1009 + g.outputs);
        sched::Matching m_opt, m_ref;
        for (std::size_t cycle = 0; cycle < kCycles; ++cycle) {
            const double density =
                kDensities[cycle % (sizeof(kDensities) / sizeof(double))];
            const sched::RequestMatrix r = random_requests(rng, g, density);
            opt->schedule(r, m_opt);
            ref->schedule(r, m_ref);
            ASSERT_EQ(m_opt, m_ref)
                << name << " diverges from its reference at cycle " << cycle
                << " (" << g.inputs << "x" << g.outputs << ", density "
                << density << ")\noptimized: " << m_opt.to_string()
                << "\nreference: " << m_ref.to_string();
            ASSERT_EQ(opt->last_iterations(), ref->last_iterations())
                << name << " iteration count diverges at cycle " << cycle;
            checker.check_cycle(r, m_opt);
            checker.check_iterations(opt->last_iterations());
        }
        EXPECT_EQ(checker.violation_count(), 0u);
        EXPECT_EQ(checker.cycles_checked(), kCycles);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllLcfSchedulers, SchedEquivalence,
    ::testing::Values("lcf_central", "lcf_central_rr",
                      "lcf_central_rr_single", "lcf_central_rr_first",
                      "lcf_dist", "lcf_dist_rr"),
    [](const auto& param_info) { return param_info.param; });

TEST(SchedEquivalence, ReferenceNamesRoundTripThroughFactory) {
    for (const auto& name : core::reference_scheduler_names()) {
        EXPECT_TRUE(core::is_scheduler_name(name)) << name;
        const auto s = core::make_scheduler(name);
        EXPECT_EQ(s->name(), name);
        // Deliberately not enumerated by sweeps and figure harnesses.
        for (const auto& regular : core::scheduler_names()) {
            EXPECT_NE(regular, name);
        }
    }
}

// The two-stage precalculated path (§4.3) must also match: stage-1
// integrity filtering and the stage-2 LCF pass over the leftovers,
// including multicast fan-outs and deliberately conflicting claims.
class PrecalcEquivalence : public ::testing::TestWithParam<core::RrVariant> {};

TEST_P(PrecalcEquivalence, PrecalcPathMatchesReference) {
    const core::LcfCentralOptions options{.variant = GetParam()};
    constexpr std::size_t kPorts = 16;
    core::LcfCentralScheduler opt(options);
    core::LcfCentralReferenceScheduler ref(options);
    opt.reset(kPorts, kPorts);
    ref.reset(kPorts, kPorts);

    util::Xoshiro256 rng(4242);
    core::MulticastResult r_opt, r_ref;
    for (std::size_t cycle = 0; cycle < kCycles; ++cycle) {
        const double density =
            kDensities[cycle % (sizeof(kDensities) / sizeof(double))];
        const sched::RequestMatrix requests =
            random_requests(rng, {kPorts, kPorts}, density);
        core::PrecalcSchedule precalc(kPorts);
        for (std::size_t i = 0; i < kPorts; ++i) {
            for (std::size_t j = 0; j < kPorts; ++j) {
                // Sparse claims; multiple claims per row exercise
                // multicast, claims on one target from several inputs
                // exercise the integrity check's drop path.
                if (rng.next_bool(0.08)) precalc.claim(i, j);
            }
        }
        opt.schedule_with_precalc(requests, precalc, r_opt);
        ref.schedule_with_precalc(requests, precalc, r_ref);
        ASSERT_EQ(r_opt.fanout, r_ref.fanout) << "cycle " << cycle;
        ASSERT_EQ(r_opt.unicast, r_ref.unicast) << "cycle " << cycle;
        ASSERT_EQ(r_opt.dropped, r_ref.dropped) << "cycle " << cycle;
        ASSERT_TRUE(r_opt.consistent()) << "cycle " << cycle;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllRrVariants, PrecalcEquivalence,
    ::testing::Values(core::RrVariant::kNone, core::RrVariant::kSingle,
                      core::RrVariant::kInterleaved,
                      core::RrVariant::kDiagonalFirst),
    [](const auto& param_info) {
        switch (param_info.param) {
            case core::RrVariant::kNone: return "none";
            case core::RrVariant::kSingle: return "single";
            case core::RrVariant::kInterleaved: return "interleaved";
            case core::RrVariant::kDiagonalFirst: return "diagonal_first";
        }
        return "unknown";
    });

}  // namespace
}  // namespace lcf
