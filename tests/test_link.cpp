// Tests for the bit-error link model: error-free passthrough, flip-rate
// calibration, statistics, and the geometric-skip flip sampler the link
// is built on.

#include "clint/link.hpp"

#include <gtest/gtest.h>

#include "util/bitflip.hpp"
#include "util/rng.hpp"

namespace lcf::clint {
namespace {

TEST(ErrorLink, ZeroRateIsTransparent) {
    ErrorLink link(0.0, 1);
    const std::vector<std::uint8_t> data{1, 2, 3, 250};
    EXPECT_EQ(link.transmit(data), data);
    EXPECT_EQ(link.corrupted_packets(), 0u);
    EXPECT_EQ(link.flipped_bits(), 0u);
}

TEST(ErrorLink, FlipRateIsCalibrated) {
    constexpr double kBer = 0.01;
    ErrorLink link(kBer, 7);
    const std::vector<std::uint8_t> data(100, 0);
    std::uint64_t total_bits = 0;
    for (int packet = 0; packet < 200; ++packet) {
        (void)link.transmit(data);
        total_bits += data.size() * 8;
    }
    const double rate = static_cast<double>(link.flipped_bits()) /
                        static_cast<double>(total_bits);
    EXPECT_NEAR(rate, kBer, 0.002);
}

TEST(ErrorLink, CorruptedPacketCounterTracksPackets) {
    ErrorLink link(1.0, 3);  // every bit flips
    const std::vector<std::uint8_t> data{0x00, 0xFF};
    const auto out = link.transmit(data);
    EXPECT_EQ(out[0], 0xFF);
    EXPECT_EQ(out[1], 0x00);
    EXPECT_EQ(link.corrupted_packets(), 1u);
    EXPECT_EQ(link.flipped_bits(), 16u);
}

// The geometric-skip sampler must stay calibrated at rates far below
// what the old per-bit Bernoulli loop could afford to test — and far
// below the resolution of the 16-bit fixed-point word sampler, which
// quantizes 1e-6 to zero.
TEST(ErrorLink, LowRateFlipRateIsCalibrated) {
    constexpr double kBer = 1e-4;
    ErrorLink link(kBer, 21);
    const std::vector<std::uint8_t> data(2000, 0x5A);
    std::uint64_t total_bits = 0;
    for (int packet = 0; packet < 1000; ++packet) {
        (void)link.transmit(data);
        total_bits += data.size() * 8;
    }
    // 16M bits at 1e-4: expect 1600 flips, sd = 40; 5 sd = 200.
    const double rate = static_cast<double>(link.flipped_bits()) /
                        static_cast<double>(total_bits);
    EXPECT_NEAR(rate, kBer, 200.0 / static_cast<double>(total_bits));
}

TEST(ErrorLink, TinyRateStillFlips) {
    constexpr double kBer = 1e-6;
    ErrorLink link(kBer, 33);
    const std::vector<std::uint8_t> data(1 << 20, 0);  // 8.4M bits each
    for (int packet = 0; packet < 12; ++packet) (void)link.transmit(data);
    // ~100 expected flips; zero has probability e^-100.
    EXPECT_GT(link.flipped_bits(), 0u);
    EXPECT_LT(link.flipped_bits(), 500u);
}

TEST(BitFlip, ExtremeProbabilities) {
    util::Xoshiro256 rng(5);
    std::vector<std::uint8_t> data{0x0F, 0xF0};
    EXPECT_EQ(util::flip_bits({data.data(), data.size()}, 0.0, rng), 0u);
    EXPECT_EQ(data[0], 0x0F);
    EXPECT_EQ(util::flip_bits({data.data(), data.size()}, 1.0, rng), 16u);
    EXPECT_EQ(data[0], 0xF0);
    EXPECT_EQ(data[1], 0x0F);
    EXPECT_EQ(util::flip_bits({}, 0.5, rng), 0u);
}

TEST(BitFlip, DeterministicPerSeed) {
    util::Xoshiro256 a(123);
    util::Xoshiro256 b(123);
    std::vector<std::uint8_t> da(256, 0xAB);
    std::vector<std::uint8_t> db(256, 0xAB);
    const auto fa = util::flip_bits({da.data(), da.size()}, 0.01, a);
    const auto fb = util::flip_bits({db.data(), db.size()}, 0.01, b);
    EXPECT_EQ(fa, fb);
    EXPECT_EQ(da, db);
}

TEST(ErrorLink, RejectsInvalidRate) {
    EXPECT_THROW(ErrorLink(-0.1, 1), std::invalid_argument);
    EXPECT_THROW(ErrorLink(1.1, 1), std::invalid_argument);
}

TEST(ErrorLink, EmptyPacket) {
    ErrorLink link(0.5, 9);
    EXPECT_TRUE(link.transmit({}).empty());
}

}  // namespace
}  // namespace lcf::clint
