// Tests for the bit-error link model: error-free passthrough, flip-rate
// calibration, and statistics.

#include "clint/link.hpp"

#include <gtest/gtest.h>

namespace lcf::clint {
namespace {

TEST(ErrorLink, ZeroRateIsTransparent) {
    ErrorLink link(0.0, 1);
    const std::vector<std::uint8_t> data{1, 2, 3, 250};
    EXPECT_EQ(link.transmit(data), data);
    EXPECT_EQ(link.corrupted_packets(), 0u);
    EXPECT_EQ(link.flipped_bits(), 0u);
}

TEST(ErrorLink, FlipRateIsCalibrated) {
    constexpr double kBer = 0.01;
    ErrorLink link(kBer, 7);
    const std::vector<std::uint8_t> data(100, 0);
    std::uint64_t total_bits = 0;
    for (int packet = 0; packet < 200; ++packet) {
        (void)link.transmit(data);
        total_bits += data.size() * 8;
    }
    const double rate = static_cast<double>(link.flipped_bits()) /
                        static_cast<double>(total_bits);
    EXPECT_NEAR(rate, kBer, 0.002);
}

TEST(ErrorLink, CorruptedPacketCounterTracksPackets) {
    ErrorLink link(1.0, 3);  // every bit flips
    const std::vector<std::uint8_t> data{0x00, 0xFF};
    const auto out = link.transmit(data);
    EXPECT_EQ(out[0], 0xFF);
    EXPECT_EQ(out[1], 0x00);
    EXPECT_EQ(link.corrupted_packets(), 1u);
    EXPECT_EQ(link.flipped_bits(), 16u);
}

TEST(ErrorLink, RejectsInvalidRate) {
    EXPECT_THROW(ErrorLink(-0.1, 1), std::invalid_argument);
    EXPECT_THROW(ErrorLink(1.1, 1), std::invalid_argument);
}

TEST(ErrorLink, EmptyPacket) {
    ErrorLink link(0.5, 9);
    EXPECT_TRUE(link.transmit({}).empty());
}

}  // namespace
}  // namespace lcf::clint
