// Unit tests for util::BitVec: bit addressing across word boundaries,
// scans, set algebra, and the beyond-size()-bits-stay-zero invariant.

#include "util/bitvec.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "util/rng.hpp"

namespace lcf::util {
namespace {

TEST(BitVec, StartsCleared) {
    const BitVec v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_EQ(v.count(), 0u);
    EXPECT_TRUE(v.none());
    EXPECT_FALSE(v.any());
    EXPECT_EQ(v.find_first(), BitVec::npos);
}

TEST(BitVec, SetAndTestAcrossWordBoundaries) {
    BitVec v(130);
    for (const std::size_t i : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 129u}) {
        v.set(i);
        EXPECT_TRUE(v.test(i)) << i;
    }
    EXPECT_EQ(v.count(), 8u);
    v.reset(64);
    EXPECT_FALSE(v.test(64));
    EXPECT_EQ(v.count(), 7u);
}

TEST(BitVec, SetWithValueArgument) {
    BitVec v(8);
    v.set(3, true);
    EXPECT_TRUE(v.test(3));
    v.set(3, false);
    EXPECT_FALSE(v.test(3));
}

TEST(BitVec, FillRespectsSize) {
    BitVec v(70);
    v.fill();
    EXPECT_EQ(v.count(), 70u);
    // The invariant matters for equality and count on the last word.
    BitVec w(70);
    for (std::size_t i = 0; i < 70; ++i) w.set(i);
    EXPECT_EQ(v, w);
}

TEST(BitVec, ClearResetsEverything) {
    BitVec v(100);
    v.fill();
    v.clear();
    EXPECT_TRUE(v.none());
}

TEST(BitVec, FindFirstAndNext) {
    BitVec v(200);
    v.set(5);
    v.set(64);
    v.set(199);
    EXPECT_EQ(v.find_first(), 5u);
    EXPECT_EQ(v.find_next(5), 64u);
    EXPECT_EQ(v.find_next(64), 199u);
    EXPECT_EQ(v.find_next(199), BitVec::npos);
}

TEST(BitVec, FindNextFromUnsetPosition) {
    BitVec v(100);
    v.set(50);
    EXPECT_EQ(v.find_next(0), 50u);
    EXPECT_EQ(v.find_next(49), 50u);
    EXPECT_EQ(v.find_next(50), BitVec::npos);
}

TEST(BitVec, IterationVisitsExactlyTheSetBits) {
    BitVec v(300);
    Xoshiro256 rng(7);
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < 300; ++i) {
        if (rng.next_bool(0.3)) {
            v.set(i);
            expected.push_back(i);
        }
    }
    std::vector<std::size_t> seen;
    for (std::size_t i = v.find_first(); i != BitVec::npos; i = v.find_next(i)) {
        seen.push_back(i);
    }
    EXPECT_EQ(seen, expected);
}

TEST(BitVec, SetAlgebra) {
    BitVec a(70), b(70);
    a.set(1);
    a.set(65);
    b.set(1);
    b.set(2);

    BitVec and_result = a;
    and_result &= b;
    EXPECT_TRUE(and_result.test(1));
    EXPECT_FALSE(and_result.test(2));
    EXPECT_FALSE(and_result.test(65));

    BitVec or_result = a;
    or_result |= b;
    EXPECT_EQ(or_result.count(), 3u);

    BitVec xor_result = a;
    xor_result ^= b;
    EXPECT_FALSE(xor_result.test(1));
    EXPECT_TRUE(xor_result.test(2));
    EXPECT_TRUE(xor_result.test(65));

    BitVec sub_result = a;
    sub_result.subtract(b);
    EXPECT_FALSE(sub_result.test(1));
    EXPECT_TRUE(sub_result.test(65));
}

TEST(BitVec, EqualityIncludesSize) {
    BitVec a(10), b(11);
    EXPECT_NE(a, b);
    BitVec c(10);
    EXPECT_EQ(a, c);
    c.set(9);
    EXPECT_NE(a, c);
}

TEST(BitVec, ToString) {
    BitVec v(5);
    v.set(0);
    v.set(3);
    EXPECT_EQ(v.to_string(), "10010");
}

TEST(BitVec, EmptyVector) {
    const BitVec v;
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.size(), 0u);
    EXPECT_TRUE(v.none());
    EXPECT_EQ(v.find_first(), BitVec::npos);
    EXPECT_EQ(v.find_next(0), BitVec::npos);
}

TEST(BitVec, FindNextOutOfRangeIsNpos) {
    BitVec v(100);
    v.set(3);
    // pos at or beyond size() has no successor (the seed version wrapped
    // pos + 1 for pos == npos and rescanned from zero).
    EXPECT_EQ(v.find_next(99), BitVec::npos);
    EXPECT_EQ(v.find_next(100), BitVec::npos);
    EXPECT_EQ(v.find_next(1000), BitVec::npos);
    EXPECT_EQ(v.find_next(BitVec::npos), BitVec::npos);
}

TEST(BitVec, FindFirstFromNoWrapNeeded) {
    BitVec v(200);
    v.set(10);
    v.set(150);
    EXPECT_EQ(v.find_first_from(0), 10u);
    EXPECT_EQ(v.find_first_from(10), 10u);  // inclusive of pos
    EXPECT_EQ(v.find_first_from(11), 150u);
    EXPECT_EQ(v.find_first_from(150), 150u);
}

TEST(BitVec, FindFirstFromWrapsAround) {
    BitVec v(200);
    v.set(10);
    EXPECT_EQ(v.find_first_from(11), 10u);
    EXPECT_EQ(v.find_first_from(199), 10u);
}

TEST(BitVec, FindFirstFromAtWordBoundaries) {
    BitVec v(192);  // exactly three words
    for (const std::size_t bit : {0u, 63u, 64u, 127u, 128u, 191u}) {
        BitVec w(192);
        w.set(bit);
        for (const std::size_t start : {0u, 1u, 63u, 64u, 65u, 127u, 128u,
                                        129u, 191u}) {
            EXPECT_EQ(w.find_first_from(start), bit)
                << "bit=" << bit << " start=" << start;
        }
    }
}

TEST(BitVec, FindFirstFromRotationOrder) {
    // With several set bits, the scan must prefer the [pos, n) segment
    // over the wrapped [0, pos) segment.
    BitVec v(130);
    v.set(5);
    v.set(70);
    v.set(129);
    EXPECT_EQ(v.find_first_from(6), 70u);
    EXPECT_EQ(v.find_first_from(71), 129u);
    EXPECT_EQ(v.find_first_from(130 - 1), 129u);
    EXPECT_EQ(v.find_first_from(0), 5u);
}

TEST(BitVec, FindFirstFromEmptyAndNone) {
    const BitVec empty;
    EXPECT_EQ(empty.find_first_from(0), BitVec::npos);
    const BitVec none(77);
    EXPECT_EQ(none.find_first_from(33), BitVec::npos);
}

TEST(BitVec, AndCountMatchesMaterializedIntersection) {
    Xoshiro256 rng(11);
    for (const std::size_t n : {1u, 64u, 65u, 130u, 300u}) {
        BitVec a(n), b(n);
        for (std::size_t i = 0; i < n; ++i) {
            if (rng.next_bool(0.4)) a.set(i);
            if (rng.next_bool(0.4)) b.set(i);
        }
        BitVec c = a;
        c &= b;
        EXPECT_EQ(a.and_count(b), c.count()) << n;
        EXPECT_EQ(a.intersects(b), c.any()) << n;
    }
}

TEST(BitVec, AssignAndAssignSubtract) {
    BitVec src(130), mask(130), dst(130);
    src.set(0);
    src.set(64);
    src.set(129);
    mask.set(64);
    dst.assign_and(src, mask);
    EXPECT_EQ(dst.count(), 1u);
    EXPECT_TRUE(dst.test(64));
    dst.assign_subtract(src, mask);
    EXPECT_EQ(dst.count(), 2u);
    EXPECT_TRUE(dst.test(0));
    EXPECT_TRUE(dst.test(129));
    EXPECT_FALSE(dst.test(64));
    // Aliasing: *this may be src.
    dst.assign_subtract(dst, mask);  // mask bit 64 already absent
    EXPECT_EQ(dst.count(), 2u);
}

TEST(BitVec, SetWordTrimsTailBits) {
    BitVec v(70);  // second word holds only 6 valid bits
    v.set_word(0, ~0ULL);
    v.set_word(1, ~0ULL);
    EXPECT_EQ(v.count(), 70u);
    BitVec w(70);
    w.fill();
    EXPECT_EQ(v, w);  // invariant: bits beyond size() stay zero
    EXPECT_EQ(v.word(1), w.word(1));
}

TEST(BitVec, SetBitsIteratorMatchesFindLoop) {
    Xoshiro256 rng(23);
    for (const std::size_t n : {1u, 63u, 64u, 65u, 128u, 300u}) {
        BitVec v(n);
        for (std::size_t i = 0; i < n; ++i) {
            if (rng.next_bool(0.25)) v.set(i);
        }
        std::vector<std::size_t> via_find;
        for (std::size_t i = v.find_first(); i != BitVec::npos;
             i = v.find_next(i)) {
            via_find.push_back(i);
        }
        std::vector<std::size_t> via_range;
        for (const std::size_t i : v.set_bits()) via_range.push_back(i);
        EXPECT_EQ(via_range, via_find) << n;
    }
}

TEST(BitVec, SetBitsIteratorOnEmptyAndFull) {
    const BitVec empty;
    EXPECT_EQ(empty.set_bits().begin(), empty.set_bits().end());
    BitVec full(66);
    full.fill();
    std::size_t expect = 0;
    for (const std::size_t i : full.set_bits()) {
        EXPECT_EQ(i, expect++);
    }
    EXPECT_EQ(expect, 66u);
}

TEST(BitVec, BernoulliWordIsDeterministicAndPlausible) {
    Xoshiro256 a(5), b(5);
    EXPECT_EQ(a.next_bernoulli_word(0.35), b.next_bernoulli_word(0.35));
    Xoshiro256 rng(9);
    EXPECT_EQ(rng.next_bernoulli_word(0.0), 0u);
    EXPECT_EQ(rng.next_bernoulli_word(1.0), ~0ULL);
    std::size_t ones = 0;
    constexpr int kWords = 4000;
    for (int k = 0; k < kWords; ++k) {
        ones += static_cast<std::size_t>(
            std::popcount(rng.next_bernoulli_word(0.35)));
    }
    const double rate = static_cast<double>(ones) / (64.0 * kWords);
    EXPECT_NEAR(rate, 0.35, 0.01);
}

}  // namespace
}  // namespace lcf::util
