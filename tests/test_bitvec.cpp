// Unit tests for util::BitVec: bit addressing across word boundaries,
// scans, set algebra, and the beyond-size()-bits-stay-zero invariant.

#include "util/bitvec.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace lcf::util {
namespace {

TEST(BitVec, StartsCleared) {
    const BitVec v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_EQ(v.count(), 0u);
    EXPECT_TRUE(v.none());
    EXPECT_FALSE(v.any());
    EXPECT_EQ(v.find_first(), BitVec::npos);
}

TEST(BitVec, SetAndTestAcrossWordBoundaries) {
    BitVec v(130);
    for (const std::size_t i : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 129u}) {
        v.set(i);
        EXPECT_TRUE(v.test(i)) << i;
    }
    EXPECT_EQ(v.count(), 8u);
    v.reset(64);
    EXPECT_FALSE(v.test(64));
    EXPECT_EQ(v.count(), 7u);
}

TEST(BitVec, SetWithValueArgument) {
    BitVec v(8);
    v.set(3, true);
    EXPECT_TRUE(v.test(3));
    v.set(3, false);
    EXPECT_FALSE(v.test(3));
}

TEST(BitVec, FillRespectsSize) {
    BitVec v(70);
    v.fill();
    EXPECT_EQ(v.count(), 70u);
    // The invariant matters for equality and count on the last word.
    BitVec w(70);
    for (std::size_t i = 0; i < 70; ++i) w.set(i);
    EXPECT_EQ(v, w);
}

TEST(BitVec, ClearResetsEverything) {
    BitVec v(100);
    v.fill();
    v.clear();
    EXPECT_TRUE(v.none());
}

TEST(BitVec, FindFirstAndNext) {
    BitVec v(200);
    v.set(5);
    v.set(64);
    v.set(199);
    EXPECT_EQ(v.find_first(), 5u);
    EXPECT_EQ(v.find_next(5), 64u);
    EXPECT_EQ(v.find_next(64), 199u);
    EXPECT_EQ(v.find_next(199), BitVec::npos);
}

TEST(BitVec, FindNextFromUnsetPosition) {
    BitVec v(100);
    v.set(50);
    EXPECT_EQ(v.find_next(0), 50u);
    EXPECT_EQ(v.find_next(49), 50u);
    EXPECT_EQ(v.find_next(50), BitVec::npos);
}

TEST(BitVec, IterationVisitsExactlyTheSetBits) {
    BitVec v(300);
    Xoshiro256 rng(7);
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < 300; ++i) {
        if (rng.next_bool(0.3)) {
            v.set(i);
            expected.push_back(i);
        }
    }
    std::vector<std::size_t> seen;
    for (std::size_t i = v.find_first(); i != BitVec::npos; i = v.find_next(i)) {
        seen.push_back(i);
    }
    EXPECT_EQ(seen, expected);
}

TEST(BitVec, SetAlgebra) {
    BitVec a(70), b(70);
    a.set(1);
    a.set(65);
    b.set(1);
    b.set(2);

    BitVec and_result = a;
    and_result &= b;
    EXPECT_TRUE(and_result.test(1));
    EXPECT_FALSE(and_result.test(2));
    EXPECT_FALSE(and_result.test(65));

    BitVec or_result = a;
    or_result |= b;
    EXPECT_EQ(or_result.count(), 3u);

    BitVec xor_result = a;
    xor_result ^= b;
    EXPECT_FALSE(xor_result.test(1));
    EXPECT_TRUE(xor_result.test(2));
    EXPECT_TRUE(xor_result.test(65));

    BitVec sub_result = a;
    sub_result.subtract(b);
    EXPECT_FALSE(sub_result.test(1));
    EXPECT_TRUE(sub_result.test(65));
}

TEST(BitVec, EqualityIncludesSize) {
    BitVec a(10), b(11);
    EXPECT_NE(a, b);
    BitVec c(10);
    EXPECT_EQ(a, c);
    c.set(9);
    EXPECT_NE(a, c);
}

TEST(BitVec, ToString) {
    BitVec v(5);
    v.set(0);
    v.set(3);
    EXPECT_EQ(v.to_string(), "10010");
}

TEST(BitVec, EmptyVector) {
    const BitVec v;
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.size(), 0u);
    EXPECT_TRUE(v.none());
    EXPECT_EQ(v.find_first(), BitVec::npos);
}

}  // namespace
}  // namespace lcf::util
