#!/usr/bin/env python3
"""Domain contract linter: static checks for repo-specific invariants.

The runtime layers (ParanoidChecker, the equivalence suite, the fault
soak) only catch a broken contract when a test happens to exercise it.
This linter enforces the contracts at source level, with file:line
diagnostics, so CI fails the moment a PR breaks one:

  reference-twin   every optimized lcf_* scheduler registered in
                   core::make_scheduler has a *_reference twin that is
                   registered, enumerated by reference_scheduler_names(),
                   pinned in tests/test_sched_equivalence.cpp, and
                   documented in docs/performance.md.
  sched-docs       every name in core::scheduler_names() is documented in
                   docs/algorithms.md.
  config-surface   every SimConfig field is documented in
                   docs/simulator.md and exposed as a --flag by the
                   flagship CLI (examples/latency_sweep.cpp); every
                   FaultPlan field is documented in docs/clint.md.
  rng-discipline   no rand()/srand()/std::random_device outside
                   src/util/ — all randomness flows through util::rng's
                   seeded, draw-order-disciplined streams.
  bench-baseline   committed BENCH_*.json baselines were recorded from a
                   Release build.

Exit status: 0 clean, 1 when any contract is violated, 2 on usage error.

`--self-test` runs the linter against synthetic fixture trees with one
seeded violation per rule and verifies each is reported (with a
file:line prefix); it is wired into ctest as contract_lint_selftest.

Adding a rule: write a `check_<name>(root) -> list[Finding]` function,
add it to CHECKS, and extend self_test() with a fixture that trips it.
See docs/static-analysis.md.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
import tempfile
from typing import Callable, NamedTuple


class Finding(NamedTuple):
    path: pathlib.Path
    line: int  # 1-based; 0 when the finding is about a whole file
    rule: str
    message: str

    def render(self, root: pathlib.Path) -> str:
        try:
            shown = self.path.resolve().relative_to(root.resolve())
        except ValueError:
            shown = self.path
        return f"{shown}:{max(self.line, 1)}: [{self.rule}] {self.message}"


def _read(path: pathlib.Path) -> str:
    return path.read_text(encoding="utf-8")


def _line_of(text: str, needle: str, default: int = 1) -> int:
    """1-based line of the first occurrence of `needle` in `text`."""
    at = text.find(needle)
    if at < 0:
        return default
    return text.count("\n", 0, at) + 1


# ---------------------------------------------------------------------------
# reference-twin + sched-docs
# ---------------------------------------------------------------------------

_FACTORY = pathlib.Path("src/core/factory.cpp")
_EQUIVALENCE = pathlib.Path("tests/test_sched_equivalence.cpp")
_ALGO_DOCS = pathlib.Path("docs/algorithms.md")
_PERF_DOCS = pathlib.Path("docs/performance.md")

# Optimized scheduler families that promise a bit-identical per-bit
# reference twin (docs/performance.md).
_TWIN_FAMILIES = re.compile(r"^lcf_(central|dist)")


def _registered_names(factory_text: str) -> dict[str, int]:
    """Scheduler names registered via `if (name == "...")`, with lines."""
    names: dict[str, int] = {}
    for match in re.finditer(r'name\s*==\s*"([^"]+)"', factory_text):
        names.setdefault(
            match.group(1), factory_text.count("\n", 0, match.start()) + 1
        )
    return names


def _listed_in(factory_text: str, function_name: str) -> set[str]:
    """String literals inside `function_name`'s static names list."""
    match = re.search(
        r"(?<!\w)" + function_name + r"\(\)\s*{(.*?)\n}", factory_text,
        re.DOTALL,
    )
    if not match:
        return set()
    return set(re.findall(r'"([^"]+)"', match.group(1)))


def check_reference_twin(root: pathlib.Path) -> list[Finding]:
    factory_path = root / _FACTORY
    factory = _read(factory_path)
    equivalence_path = root / _EQUIVALENCE
    equivalence = _read(equivalence_path) if equivalence_path.exists() else ""
    perf_docs = (
        _read(root / _PERF_DOCS) if (root / _PERF_DOCS).exists() else ""
    )

    registered = _registered_names(factory)
    reference_list = _listed_in(factory, "reference_scheduler_names")
    findings: list[Finding] = []

    for name, line in sorted(registered.items()):
        if name.endswith("_reference"):
            base = name.removesuffix("_reference")
            if base not in registered:
                findings.append(Finding(
                    factory_path, line, "reference-twin",
                    f'twin "{name}" is registered but its base "{base}" '
                    "is not",
                ))
            continue
        if not _TWIN_FAMILIES.match(name):
            continue
        twin = name + "_reference"
        if twin not in registered:
            findings.append(Finding(
                factory_path, line, "reference-twin",
                f'optimized scheduler "{name}" has no registered '
                f'"{twin}" twin — per-bit oracles are mandatory for the '
                "lcf_* families (docs/performance.md)",
            ))
            continue
        if twin not in reference_list:
            findings.append(Finding(
                factory_path, registered[twin], "reference-twin",
                f'"{twin}" is registered but missing from '
                "reference_scheduler_names() — the equivalence suite "
                "enumerates twins through that list",
            ))
        if f'"{name}"' not in equivalence:
            findings.append(Finding(
                equivalence_path, 1, "reference-twin",
                f'"{name}" is not pinned in the SchedEquivalence suite — '
                "add it to the INSTANTIATE_TEST_SUITE_P value list",
            ))
        if perf_docs and name not in perf_docs:
            findings.append(Finding(
                root / _PERF_DOCS, 1, "reference-twin",
                f'optimized scheduler "{name}" is not documented in '
                f"{_PERF_DOCS}",
            ))
    return findings


def check_sched_docs(root: pathlib.Path) -> list[Finding]:
    factory_path = root / _FACTORY
    factory = _read(factory_path)
    docs_path = root / _ALGO_DOCS
    docs = _read(docs_path) if docs_path.exists() else ""
    findings: list[Finding] = []
    for name in sorted(_listed_in(factory, "scheduler_names")):
        if name not in docs:
            findings.append(Finding(
                factory_path, _line_of(factory, f'"{name}"'), "sched-docs",
                f'scheduler "{name}" is enumerated by scheduler_names() '
                f"but not documented in {_ALGO_DOCS}",
            ))
    return findings


# ---------------------------------------------------------------------------
# config-surface
# ---------------------------------------------------------------------------

_SIM_CONFIG = pathlib.Path("src/sim/switch_sim.hpp")
_FAULT_PLAN = pathlib.Path("src/fault/fault_plan.hpp")
_FLAGSHIP_CLI = pathlib.Path("examples/latency_sweep.cpp")
_SIM_DOCS = pathlib.Path("docs/simulator.md")
_CLINT_DOCS = pathlib.Path("docs/clint.md")

# SimConfig fields with no scalar CLI mapping; each entry must say why.
_CLI_EXEMPT = {
    "mode": "selected via the configuration name (fifo/outbuf/...)",
    "fault_plan": "structured schedule, built programmatically or via "
    "the fault_storm example's flags",
}

_FIELD_RE = re.compile(
    r"^\s*(?:[\w:]+(?:\s*<[^;=]*>)?)\s+(\w+)\s*(?:=[^;]*)?;", re.MULTILINE
)


def _struct_fields(text: str, struct_name: str,
                   path: pathlib.Path) -> list[tuple[str, int]]:
    """(field, line) pairs of a struct's data members, brace-matched."""
    match = re.search(r"struct\s+" + struct_name + r"\s*{", text)
    if not match:
        return []
    depth = 0
    start = match.end() - 1
    end = start
    for at in range(start, len(text)):
        if text[at] == "{":
            depth += 1
        elif text[at] == "}":
            depth -= 1
            if depth == 0:
                end = at
                break
    body = text[start + 1:end]
    fields = []
    for field_match in _FIELD_RE.finditer(body):
        decl = field_match.group(0).strip()
        name = field_match.group(1)
        # Skip function declarations, defaulted parameters, and constants
        # the regex can't tell apart from data members.
        if ("(" in decl or ")" in decl
                or decl.startswith(("static", "return", "using"))):
            continue
        line = (
            text.count("\n", 0, start + 1 + field_match.start(1)) + 1
        )
        fields.append((name, line))
    del path  # kept in the signature for symmetric call sites
    return fields


def check_config_surface(root: pathlib.Path) -> list[Finding]:
    findings: list[Finding] = []

    sim_path = root / _SIM_CONFIG
    sim_text = _read(sim_path)
    sim_docs = _read(root / _SIM_DOCS) if (root / _SIM_DOCS).exists() else ""
    cli_path = root / _FLAGSHIP_CLI
    cli_text = _read(cli_path) if cli_path.exists() else ""

    for field, line in _struct_fields(sim_text, "SimConfig", sim_path):
        if f"`{field}`" not in sim_docs and f"::{field}" not in sim_docs:
            findings.append(Finding(
                sim_path, line, "config-surface",
                f"SimConfig::{field} is not documented in {_SIM_DOCS} — "
                "add it to the configuration reference table",
            ))
        if field in _CLI_EXEMPT:
            continue
        flag = field.replace("_", "-")
        if f'"{flag}"' not in cli_text and f'"{field}"' not in cli_text:
            findings.append(Finding(
                sim_path, line, "config-surface",
                f"SimConfig::{field} has no --{flag} flag in "
                f"{_FLAGSHIP_CLI} (the flagship CLI must expose every "
                "scalar simulation knob)",
            ))

    fault_path = root / _FAULT_PLAN
    if fault_path.exists():
        fault_text = _read(fault_path)
        clint_docs = (
            _read(root / _CLINT_DOCS) if (root / _CLINT_DOCS).exists() else ""
        )
        for field, line in _struct_fields(fault_text, "FaultPlan", fault_path):
            if f"`{field}`" not in clint_docs:
                findings.append(Finding(
                    fault_path, line, "config-surface",
                    f"FaultPlan::{field} is not documented in "
                    f"{_CLINT_DOCS} — add it to the fault-plan field "
                    "table",
                ))
    return findings


# ---------------------------------------------------------------------------
# rng-discipline
# ---------------------------------------------------------------------------

_RNG_SCAN_DIRS = ("src", "tests", "bench", "examples", "fuzz")
_RNG_BANNED = re.compile(
    r"(?<![\w:])(?:std::)?(?:rand|srand)\s*\(|std::random_device"
)


def check_rng_discipline(root: pathlib.Path) -> list[Finding]:
    findings: list[Finding] = []
    for scan_dir in _RNG_SCAN_DIRS:
        base = root / scan_dir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in {".cpp", ".hpp", ".h", ".cc"}:
                continue
            if (root / "src" / "util") in path.parents:
                continue  # util/ owns the RNG implementation
            for number, text in enumerate(
                _read(path).splitlines(), start=1
            ):
                code = text.split("//", 1)[0]
                if _RNG_BANNED.search(code):
                    findings.append(Finding(
                        path, number, "rng-discipline",
                        "raw rand()/srand()/std::random_device — use the "
                        "seeded streams in util/rng.hpp so runs stay "
                        "deterministic and draw-order stable",
                    ))
    return findings


# ---------------------------------------------------------------------------
# bench-baseline
# ---------------------------------------------------------------------------


def check_bench_baseline(root: pathlib.Path) -> list[Finding]:
    findings: list[Finding] = []
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            build_type = json.loads(_read(path)).get("build_type")
        except (json.JSONDecodeError, OSError) as error:
            findings.append(Finding(
                path, 1, "bench-baseline", f"unreadable baseline: {error}"
            ))
            continue
        if build_type != "Release":
            findings.append(Finding(
                path, _line_of(_read(path), "build_type"), "bench-baseline",
                f'build_type is "{build_type}" — perf baselines must be '
                "recorded from a Release build "
                "(tools/make_bench_baseline.py)",
            ))
    return findings


CHECKS: dict[str, Callable[[pathlib.Path], list[Finding]]] = {
    "reference-twin": check_reference_twin,
    "sched-docs": check_sched_docs,
    "config-surface": check_config_surface,
    "rng-discipline": check_rng_discipline,
    "bench-baseline": check_bench_baseline,
}


def run_checks(root: pathlib.Path) -> list[Finding]:
    findings: list[Finding] = []
    for check in CHECKS.values():
        findings.extend(check(root))
    return findings


# ---------------------------------------------------------------------------
# self-test fixtures: one seeded violation per rule
# ---------------------------------------------------------------------------

_FIXTURE_FACTORY_BAD = """\
namespace lcf::core {
std::unique_ptr<sched::Scheduler> make_scheduler(std::string_view name) {
    if (name == "lcf_central") return nullptr;
    if (name == "islip") return nullptr;
    throw std::invalid_argument("unknown");
}
const std::vector<std::string>& reference_scheduler_names() {
    static const std::vector<std::string> names = {};
    return names;
}
const std::vector<std::string>& scheduler_names() {
    static const std::vector<std::string> names = {"lcf_central", "islip"};
    return names;
}
}
"""

_FIXTURE_SIM_CONFIG = """\
namespace lcf::sim {
struct SimConfig {
    std::size_t ports = 16;
    std::uint64_t mystery_knob = 7;
};
}
"""


def _expect(condition: bool, what: str, failures: list[str]) -> None:
    if not condition:
        failures.append(what)


def self_test() -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="lint_contracts_") as tmp:
        root = pathlib.Path(tmp)
        (root / "src/core").mkdir(parents=True)
        (root / "src/sim").mkdir(parents=True)
        (root / "src/sched").mkdir(parents=True)
        (root / "tests").mkdir()
        (root / "docs").mkdir()

        (root / _FACTORY).write_text(_FIXTURE_FACTORY_BAD)
        (root / _EQUIVALENCE).write_text("// no pins here\n")
        (root / _ALGO_DOCS).write_text("# algorithms\n\nonly islip here\n")
        (root / _PERF_DOCS).write_text("# perf\n")
        (root / _SIM_CONFIG).write_text(_FIXTURE_SIM_CONFIG)
        (root / _SIM_DOCS).write_text("# sim\n\n`ports` is documented\n")
        (root / _FLAGSHIP_CLI).parent.mkdir(parents=True, exist_ok=True)
        (root / _FLAGSHIP_CLI).write_text('cli.flag("ports", "...", &p);\n')
        (root / "src/sched/bad_rng.cpp").write_text(
            "#include <random>\n"
            "int draw() { std::random_device rd; return rand(); }\n"
        )
        (root / "BENCH_debug.json").write_text(
            json.dumps({"build_type": "Debug", "results": []})
        )

        findings = run_checks(root)
        by_rule: dict[str, list[Finding]] = {}
        for finding in findings:
            by_rule.setdefault(finding.rule, []).append(finding)

        twin = by_rule.get("reference-twin", [])
        _expect(
            any('"lcf_central"' in f.message and f.line == 3 for f in twin),
            "reference-twin: missing twin for lcf_central at factory.cpp:3",
            failures,
        )
        _expect(
            any("sched-docs" == f.rule and "lcf_central" in f.message
                for f in findings),
            "sched-docs: lcf_central missing from algorithms docs",
            failures,
        )
        surface = by_rule.get("config-surface", [])
        _expect(
            any("mystery_knob" in f.message and "documented" in f.message
                for f in surface),
            "config-surface: undocumented SimConfig field",
            failures,
        )
        _expect(
            any("--mystery-knob" in f.message for f in surface),
            "config-surface: missing CLI flag",
            failures,
        )
        rng = by_rule.get("rng-discipline", [])
        _expect(
            any(f.path.name == "bad_rng.cpp" and f.line == 2 for f in rng),
            "rng-discipline: bad_rng.cpp:2",
            failures,
        )
        _expect(
            any(f.rule == "bench-baseline" for f in findings),
            "bench-baseline: Debug baseline rejected",
            failures,
        )
        # Every reported finding must carry a parseable file:line prefix.
        _expect(
            all(re.match(r"^[^:]+:\d+: \[[\w-]+\] ", f.render(root))
                for f in findings),
            "all findings have file:line: [rule] prefixes",
            failures,
        )

        # A clean fixture must produce no findings: repair everything and
        # re-run.
        (root / _FACTORY).write_text(
            _FIXTURE_FACTORY_BAD.replace(
                '    if (name == "islip") return nullptr;\n',
                '    if (name == "islip") return nullptr;\n'
                '    if (name == "lcf_central_reference") return nullptr;\n',
            ).replace(
                "names = {};",
                'names = {"lcf_central_reference"};',
            )
        )
        (root / _EQUIVALENCE).write_text('Values("lcf_central")\n')
        (root / _ALGO_DOCS).write_text("covers lcf_central and islip\n")
        (root / _PERF_DOCS).write_text("lcf_central twin story\n")
        (root / _SIM_DOCS).write_text("`ports` and `mystery_knob`\n")
        (root / _FLAGSHIP_CLI).write_text(
            'cli.flag("ports", ...).flag("mystery-knob", ...);\n'
        )
        (root / "src/sched/bad_rng.cpp").write_text(
            "// rand() only in this comment\nint draw();\n"
        )
        (root / "BENCH_debug.json").write_text(
            json.dumps({"build_type": "Release", "results": []})
        )
        leftover = run_checks(root)
        _expect(
            leftover == [],
            "clean fixture yields no findings, got: "
            + "; ".join(f.render(root) for f in leftover),
            failures,
        )

    if failures:
        print("lint_contracts self-test FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"lint_contracts self-test OK ({len(CHECKS)} rules exercised)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Domain contract linter (see docs/static-analysis.md)"
    )
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repository root to lint (default: inferred from this script)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify each rule fires on a seeded-violation fixture tree",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    if not (args.root / _FACTORY).exists():
        print(
            f"lint_contracts: {args.root} does not look like the repo root "
            f"(missing {_FACTORY})",
            file=sys.stderr,
        )
        return 2

    findings = run_checks(args.root)
    for finding in findings:
        print(finding.render(args.root))
    if findings:
        print(
            f"lint_contracts: {len(findings)} contract violation(s)",
            file=sys.stderr,
        )
        return 1
    print(f"lint_contracts: clean ({len(CHECKS)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
