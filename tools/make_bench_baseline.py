#!/usr/bin/env python3
"""Regenerate a committed perf baseline (BENCH_*.json).

Usage:
    make_bench_baseline.py [--bench sched_speed|sim_throughput]
                           [--build-dir build] [--output FILE]
                           [--min-time 0.05] [--input FRESH.json]
                           [--before BEFORE.json]

Runs the Release-built benchmark binary over every registered benchmark
(or reuses an existing google-benchmark JSON via --input), then writes a
baseline document with:

  - "results": human-oriented before/after rows — for sched_speed the
    optimized-vs-reference-twin pairs, for sim_throughput the
    slots/sec of each grid point paired against a pre-change run given
    via --before (the numbers quoted in docs/performance.md);
  - "raw": the flat {benchmark name: cpu ns} map tools/compare_bench.py
    checks CI runs against;
  - "build_type" (read from the build dir's CMakeCache.txt — NOT the
    google-benchmark library's build flavour) and "git_rev", so
    compare_bench.py can warn when a Release run is compared against a
    Debug baseline or vice versa.

Only the Python standard library is used.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

SCHED_SPEED_PAIRS = [
    ("lcf_central", "BM_LcfCentral", "BM_LcfCentralReference"),
    ("lcf_central_rr", "BM_LcfCentralRr", "BM_LcfCentralRrReference"),
    ("lcf_dist", "BM_LcfDist", "BM_LcfDistReference"),
    ("lcf_dist_rr", "BM_LcfDistRr", "BM_LcfDistRrReference"),
]

BENCHES = {
    "sched_speed": {
        "binary": "bench_sched_speed",
        "output": "BENCH_sched_speed.json",
        "workload": "random request matrices, density 0.35, "
                    "iterations 4 (iterative schedulers)",
    },
    "sim_throughput": {
        "binary": "bench_sim_throughput",
        "output": "BENCH_sim_throughput.json",
        "workload": "whole SwitchSim runs, 2048 slots (256 warmup), "
                    "seed 42, scheduler iterations 4",
    },
}


def read_build_type(build_dir):
    """CMAKE_BUILD_TYPE from the build tree's CMakeCache.txt."""
    cache = os.path.join(build_dir, "CMakeCache.txt")
    try:
        with open(cache) as f:
            for line in f:
                m = re.match(r"CMAKE_BUILD_TYPE:\w+=(.*)", line.strip())
                if m:
                    return m.group(1) or "unknown"
    except OSError:
        pass
    return "unknown"


def read_git_rev():
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def raw_cpu_ns(doc):
    """Flat {benchmark name: cpu ns} from google-benchmark JSON."""
    raw = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        raw[b["name"]] = round(float(b["cpu_time"]) * scale, 1)
    return raw


def slots_per_sec(doc):
    """{benchmark name: items_per_second} for sim_throughput rows."""
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        ips = b.get("items_per_second")
        if ips is not None:
            out[b["name"]] = round(float(ips), 1)
    return out


def sched_speed_results(raw):
    results = []
    for sched, after_bm, before_bm in SCHED_SPEED_PAIRS:
        sizes = sorted(
            int(name.split("/")[1])
            for name in raw
            if name.startswith(after_bm + "/"))
        for n in sizes:
            after = raw.get(f"{after_bm}/{n}")
            before = raw.get(f"{before_bm}/{n}")
            if after is None or before is None:
                continue
            results.append({
                "scheduler": sched,
                "n": n,
                "cpu_ns_before": before,
                "cpu_ns_after": after,
                "speedup": round(before / after, 2) if after > 0 else None,
            })
    return results


def sim_throughput_results(doc, before_doc):
    after = slots_per_sec(doc)
    before = slots_per_sec(before_doc) if before_doc else {}
    results = []
    for name in sorted(after):
        row = {"point": name, "slots_per_sec": after[name]}
        if name in before:
            row["slots_per_sec_before"] = before[name]
            if before[name] > 0:
                row["speedup"] = round(after[name] / before[name], 2)
        results.append(row)
    return results


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", choices=sorted(BENCHES),
                        default="sched_speed")
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--output", default=None,
                        help="output path (default: the bench's "
                             "committed BENCH_*.json name)")
    parser.add_argument("--min-time", type=float, default=0.05)
    parser.add_argument("--input", default=None,
                        help="reuse this google-benchmark JSON instead "
                             "of running the binary")
    parser.add_argument("--before", default=None,
                        help="sim_throughput only: pre-change "
                             "google-benchmark JSON whose slots/sec "
                             "becomes the before side of each row")
    args = parser.parse_args()

    spec = BENCHES[args.bench]
    output = args.output or spec["output"]

    if args.input:
        with open(args.input) as f:
            doc = json.load(f)
    else:
        binary = os.path.join(args.build_dir, "bench", spec["binary"])
        if not os.path.exists(binary):
            print(f"{binary} not found; build the Release tree first",
                  file=sys.stderr)
            return 2
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
            tmp_path = tmp.name
        try:
            subprocess.run(
                [binary, f"--benchmark_min_time={args.min_time}",
                 "--json", tmp_path],
                check=True)
            with open(tmp_path) as f:
                doc = json.load(f)
        finally:
            os.unlink(tmp_path)

    raw = raw_cpu_ns(doc)
    if args.bench == "sched_speed":
        results = sched_speed_results(raw)
    else:
        before_doc = None
        if args.before:
            with open(args.before) as f:
                before_doc = json.load(f)
        results = sim_throughput_results(doc, before_doc)

    baseline = {
        "bench": spec["binary"],
        "workload": spec["workload"],
        "build_type": read_build_type(args.build_dir),
        "git_rev": read_git_rev(),
        "host_cpus": doc.get("context", {}).get("num_cpus"),
        "results": results,
        "raw": raw,
    }
    with open(output, "w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"wrote {output}: {len(results)} result rows, "
          f"{len(raw)} raw entries "
          f"(build_type={baseline['build_type']}, "
          f"git_rev={baseline['git_rev']})")
    for row in results:
        if args.bench == "sched_speed":
            print(f"  {row['scheduler']:16} n={row['n']:<4} "
                  f"{row['cpu_ns_before']:>12.1f} -> "
                  f"{row['cpu_ns_after']:>10.1f} ns ({row['speedup']}x)")
        else:
            before = row.get("slots_per_sec_before")
            speedup = row.get("speedup")
            suffix = (f"  (before {before:>10.1f}, {speedup}x)"
                      if before is not None else "")
            print(f"  {row['point']:50} {row['slots_per_sec']:>12.1f} "
                  f"slots/s{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
