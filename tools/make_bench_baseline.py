#!/usr/bin/env python3
"""Regenerate the committed BENCH_sched_speed.json perf baseline.

Usage:
    make_bench_baseline.py [--build-dir build] [--output BENCH_sched_speed.json]
                           [--min-time 0.05]

Runs a Release-built bench_sched_speed over every registered benchmark,
then writes a baseline document with:

  - "results": per-scheduler before/after rows pairing each optimized
    LCF benchmark (BM_LcfCentral/...) with its pre-optimization
    reference twin (BM_LcfCentralReference/...), including the speedup
    ratio — the numbers quoted in docs/performance.md;
  - "raw": the flat {benchmark name: cpu ns} map tools/compare_bench.py
    checks CI runs against.

Only the Python standard library is used.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

PAIRS = [
    ("lcf_central", "BM_LcfCentral", "BM_LcfCentralReference"),
    ("lcf_central_rr", "BM_LcfCentralRr", "BM_LcfCentralRrReference"),
    ("lcf_dist", "BM_LcfDist", "BM_LcfDistReference"),
    ("lcf_dist_rr", "BM_LcfDistRr", "BM_LcfDistRrReference"),
]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--output", default="BENCH_sched_speed.json")
    parser.add_argument("--min-time", type=float, default=0.05)
    args = parser.parse_args()

    binary = os.path.join(args.build_dir, "bench", "bench_sched_speed")
    if not os.path.exists(binary):
        print(f"{binary} not found; build the Release tree first",
              file=sys.stderr)
        return 2

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        tmp_path = tmp.name
    try:
        subprocess.run(
            [binary, f"--benchmark_min_time={args.min_time}",
             "--json", tmp_path],
            check=True)
        with open(tmp_path) as f:
            doc = json.load(f)
    finally:
        os.unlink(tmp_path)

    raw = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        raw[b["name"]] = round(float(b["cpu_time"]) * scale, 1)

    results = []
    for sched, after_bm, before_bm in PAIRS:
        sizes = sorted(
            int(name.split("/")[1])
            for name in raw
            if name.startswith(after_bm + "/"))
        for n in sizes:
            after = raw.get(f"{after_bm}/{n}")
            before = raw.get(f"{before_bm}/{n}")
            if after is None or before is None:
                continue
            results.append({
                "scheduler": sched,
                "n": n,
                "cpu_ns_before": before,
                "cpu_ns_after": after,
                "speedup": round(before / after, 2) if after > 0 else None,
            })

    baseline = {
        "bench": "bench_sched_speed",
        "workload": "random request matrices, density 0.35, "
                    "iterations 4 (iterative schedulers)",
        "build_type": doc.get("context", {}).get(
            "library_build_type", "unknown"),
        "host_cpus": doc.get("context", {}).get("num_cpus"),
        "results": results,
        "raw": raw,
    }
    with open(args.output, "w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"wrote {args.output}: {len(results)} before/after rows, "
          f"{len(raw)} raw entries")
    for row in results:
        print(f"  {row['scheduler']:16} n={row['n']:<4} "
              f"{row['cpu_ns_before']:>12.1f} -> {row['cpu_ns_after']:>10.1f} ns "
              f"({row['speedup']}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
