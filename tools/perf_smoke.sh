#!/usr/bin/env bash
# CI perf smoke: run the scheduler microbenchmarks AND the end-to-end
# simulation-throughput benchmarks on a Release build, and fail on crash
# or on any benchmark slower than 3x its committed baseline
# (BENCH_sched_speed.json / BENCH_sim_throughput.json). Complexity
# regressions, not machine noise, are the target — see
# tools/compare_bench.py. Both comparisons pass the build type read from
# the build tree so compare_bench.py can warn loudly on a
# Release-vs-Debug mismatch.
#
# Usage: tools/perf_smoke.sh [build-dir]   (default: build)
set -euo pipefail

BUILD_DIR=${1:-build}
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)

BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[A-Z]*=//p' \
    "$BUILD_DIR/CMakeCache.txt" 2>/dev/null || true)
BUILD_TYPE=${BUILD_TYPE:-unknown}

run_gate() {
    local binary=$1 baseline=$2 filter=$3 min_time=$4
    if [[ ! -x "$binary" ]]; then
        echo "perf_smoke: $binary not found; build the Release tree first" >&2
        exit 2
    fi
    local fresh
    fresh=$(mktemp --suffix=.json)
    # shellcheck disable=SC2064  # expand $fresh now, not at trap time
    trap "rm -f '$fresh'" RETURN
    "$binary" --benchmark_filter="$filter" \
        --benchmark_min_time="$min_time" --json "$fresh"
    python3 "$REPO_ROOT/tools/compare_bench.py" "$baseline" "$fresh" \
        --max-ratio 3.0 --fresh-build-type "$BUILD_TYPE"
}

# Scheduler-level: schedule() microbenchmarks at n in {16, 64}.
run_gate "$BUILD_DIR/bench/bench_sched_speed" \
    "$REPO_ROOT/BENCH_sched_speed.json" '/(16|64)$' 0.05

# End-to-end: slots/sec at n in {16, 64}, load 0.9 (the n=256 points are
# too slow for a smoke job; the committed baseline still records them).
run_gate "$BUILD_DIR/bench/bench_sim_throughput" \
    "$REPO_ROOT/BENCH_sim_throughput.json" '/(16|64)/90$' 0.05
