#!/usr/bin/env bash
# CI perf smoke: run the scheduler microbenchmarks at n in {16, 64} on a
# Release build and fail on crash or on any benchmark slower than 3x the
# committed BENCH_sched_speed.json baseline (complexity regressions, not
# machine noise, are the target — see tools/compare_bench.py).
#
# Usage: tools/perf_smoke.sh [build-dir]   (default: build)
set -euo pipefail

BUILD_DIR=${1:-build}
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BASELINE="$REPO_ROOT/BENCH_sched_speed.json"
BINARY="$BUILD_DIR/bench/bench_sched_speed"

if [[ ! -x "$BINARY" ]]; then
    echo "perf_smoke: $BINARY not found; build the Release tree first" >&2
    exit 2
fi

FRESH=$(mktemp --suffix=.json)
trap 'rm -f "$FRESH"' EXIT

"$BINARY" --benchmark_filter='/(16|64)$' --benchmark_min_time=0.05 \
    --json "$FRESH"

python3 "$REPO_ROOT/tools/compare_bench.py" "$BASELINE" "$FRESH" \
    --max-ratio 3.0
