#!/usr/bin/env python3
"""Regenerate the committed fuzz seed corpora (fuzz/corpus/).

Deterministic by construction — no RNG, no timestamps — so re-running it
on a clean tree is a no-op diff. Each seed targets one decoder/scheduler
path the harness cares about; see the comments on each entry and
docs/static-analysis.md for how the corpora are used.

Usage: tools/make_fuzz_corpus.py [--root REPO_ROOT]
"""

from __future__ import annotations

import argparse
import pathlib
import sys

# CRC-16/CCITT-FALSE, bit-identical to src/clint/crc16.cpp.
_POLY = 0x1021
_INIT = 0xFFFF


def crc16(data: bytes) -> int:
    crc = _INIT
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ _POLY) if crc & 0x8000 else (crc << 1)
            crc &= 0xFFFF
    return crc


def with_crc(body: bytes) -> bytes:
    return body + crc16(body).to_bytes(2, "big")


def config_packet(req: int, pre: int, ben: int, qen: int) -> bytes:
    body = bytes([0xC5]) + b"".join(
        v.to_bytes(2, "big") for v in (req, pre, ben, qen)
    )
    return with_crc(body)


def grant_packet(node_id: int, gnt: int, flags: int) -> bytes:
    return with_crc(bytes([0x6A, ((node_id & 0xF) << 4) | (gnt & 0xF), flags]))


def packets_corpus() -> dict[str, bytes]:
    valid_cfg = config_packet(0x0001, 0x8000, 0xFFFF, 0xFFFF)
    valid_gnt = grant_packet(3, 5, 0x4)
    corrupt_crc = bytearray(valid_cfg)
    corrupt_crc[-1] ^= 0xFF
    wrong_type = bytearray(valid_cfg)
    wrong_type[0] = 0x00
    # CRC-valid grant frame with reserved flag bits set: the decoder must
    # reject it (canonical-frame rule, see GrantPacket::decode).
    reserved_bits = grant_packet(3, 5, 0xF4)
    return {
        "config_valid": valid_cfg,
        "config_idle": config_packet(0, 0, 0, 0),
        "config_truncated": valid_cfg[:5],
        "config_crc_corrupt": bytes(corrupt_crc),
        "config_wrong_type": bytes(wrong_type),
        "grant_valid": valid_gnt,
        "grant_all_flags": grant_packet(0xF, 0xF, 0x7),
        "grant_truncated": valid_gnt[:2],
        "grant_reserved_bits": reserved_bits,
        "oversize": valid_cfg + b"\x00",
        "one_byte": b"\xc5",
        "all_ff": b"\xff" * 11,
    }


def sched_input(sched: int, ports: int, cycles: int, iters: int,
                seed: int, rows: bytes) -> bytes:
    # Header layout must match fuzz/fuzz_scheduler.cpp's ByteReader
    # consumption order: scheduler index, ports, cycles, iterations, seed,
    # then two bytes per (cycle, input) request row.
    return bytes([sched, ports - 1, cycles - 1, iters - 1, seed]) + rows


def scheduler_corpus() -> dict[str, bytes]:
    out: dict[str, bytes] = {}
    # One seed per registered scheduler (13 names, factory order) so every
    # algorithm is on the fuzzer's frontier from minute zero: 8 ports,
    # 4 cycles of a dense-ish fixed pattern.
    rows = bytes([0xAD, 0x0B, 0x00, 0xFF, 0x13, 0x37, 0x00, 0x01] * 8)
    for idx in range(13):
        out[f"sched_{idx:02d}_dense"] = sched_input(idx, 8, 4, 4, 7, rows)
    # Structured extremes on the paper's own algorithm (index 0 =
    # lcf_central, which has a reference twin => differential path).
    diag = bytes(b for i in range(16) for b in (1 << (i % 8), 0)) * 2
    out["lcf_central_diagonal"] = sched_input(0, 16, 2, 4, 0, diag)
    out["lcf_central_empty"] = sched_input(0, 16, 8, 4, 0, b"")
    out["lcf_central_full"] = sched_input(0, 16, 3, 4, 0, b"\xff" * 96)
    out["single_port"] = sched_input(0, 1, 12, 1, 0, b"\x01\x01" * 12)
    return out


def write_corpus(root: pathlib.Path) -> int:
    wrote = 0
    for subdir, entries in (
        ("packets", packets_corpus()),
        ("scheduler", scheduler_corpus()),
    ):
        directory = root / "fuzz" / "corpus" / subdir
        directory.mkdir(parents=True, exist_ok=True)
        for name, data in entries.items():
            path = directory / f"{name}.bin"
            if not path.exists() or path.read_bytes() != data:
                path.write_bytes(data)
                wrote += 1
    return wrote


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repository root (default: inferred from this script)",
    )
    args = parser.parse_args()
    wrote = write_corpus(args.root)
    print(f"make_fuzz_corpus: {wrote} file(s) written/updated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
