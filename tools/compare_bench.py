#!/usr/bin/env python3
"""Compare a fresh benchmark run against a committed baseline.

Usage:
    compare_bench.py BASELINE.json FRESH.json [--max-ratio 3.0]
                     [--fresh-build-type Release]

BASELINE.json is a committed BENCH_*.json (see
tools/make_bench_baseline.py); its "raw" map holds per-benchmark CPU
times in nanoseconds and its "build_type"/"git_rev" record how it was
produced. FRESH.json is raw google-benchmark JSON output
(bench_* --json FRESH.json). The script exits nonzero when any
benchmark present in both files is slower than max-ratio times its
baseline — a deliberately loose bound so CI catches complexity
regressions (an accidental O(n^2) inner loop) without flaking on
machine-to-machine noise.

Comparing across build types is meaningless (Debug runs are several
times slower than Release); when --fresh-build-type is given and
disagrees with the baseline's recorded build_type, a loud warning is
printed. The comparison still runs — the loose ratio usually absorbs
it in the Release-vs-Debug-baseline direction — but the output cannot
be trusted as a perf signal.

Only the Python standard library is used.
"""

import argparse
import json
import sys


def load_doc(path):
    with open(path) as f:
        return json.load(f)


def cpu_times(doc):
    """Return {benchmark_name: cpu_time_ns} from either file format."""
    if "raw" in doc:  # committed baseline format
        return {name: float(ns) for name, ns in doc["raw"].items()}
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        out[b["name"]] = float(b["cpu_time"]) * scale
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--max-ratio", type=float, default=3.0,
                        help="fail when fresh/baseline exceeds this "
                             "(default: 3.0)")
    parser.add_argument("--fresh-build-type", default=None,
                        help="build type of the fresh run (e.g. from "
                             "CMakeCache.txt); warns loudly when it "
                             "differs from the baseline's build_type")
    args = parser.parse_args()

    baseline_doc = load_doc(args.baseline)
    baseline = cpu_times(baseline_doc)
    fresh = cpu_times(load_doc(args.fresh))

    base_build = baseline_doc.get("build_type", "unknown")
    base_rev = baseline_doc.get("git_rev", "unknown")
    print(f"baseline: {args.baseline} "
          f"(build_type={base_build}, git_rev={base_rev})")
    if (args.fresh_build_type is not None
            and base_build != "unknown"
            and args.fresh_build_type.lower() != base_build.lower()):
        print("=" * 72, file=sys.stderr)
        print(f"WARNING: build type mismatch — fresh run is "
              f"'{args.fresh_build_type}' but the baseline was recorded "
              f"from a '{base_build}' build.", file=sys.stderr)
        print("WARNING: cross-build-type ratios are meaningless; "
              "regenerate the baseline with tools/make_bench_baseline.py "
              "from a matching build.", file=sys.stderr)
        print("=" * 72, file=sys.stderr)

    common = sorted(set(baseline) & set(fresh))
    if not common:
        print("compare_bench: no common benchmarks between "
              f"{args.baseline} and {args.fresh}", file=sys.stderr)
        return 2

    failures = []
    for name in common:
        ratio = fresh[name] / baseline[name] if baseline[name] > 0 else 0.0
        status = "FAIL" if ratio > args.max_ratio else "ok"
        print(f"{status:4} {name:40} baseline {baseline[name]:12.1f} ns  "
              f"fresh {fresh[name]:12.1f} ns  ratio {ratio:6.2f}x")
        if ratio > args.max_ratio:
            failures.append((name, ratio))

    if failures:
        print(f"\ncompare_bench: {len(failures)} benchmark(s) slower than "
              f"{args.max_ratio}x baseline:", file=sys.stderr)
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\ncompare_bench: all {len(common)} benchmarks within "
          f"{args.max_ratio}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
