#!/usr/bin/env python3
"""Compare a fresh bench_sched_speed run against the committed baseline.

Usage:
    compare_bench.py BASELINE.json FRESH.json [--max-ratio 3.0]

BASELINE.json is the committed BENCH_sched_speed.json (see
tools/make_bench_baseline.py); its "raw" map holds per-benchmark CPU
times in nanoseconds. FRESH.json is raw google-benchmark JSON output
(bench_sched_speed --json FRESH.json). The script exits nonzero when any
benchmark present in both files is slower than max-ratio times its
baseline — a deliberately loose bound so CI catches complexity
regressions (an accidental O(n^2) inner loop) without flaking on
machine-to-machine noise.

Only the Python standard library is used.
"""

import argparse
import json
import sys


def load_cpu_times(path):
    """Return {benchmark_name: cpu_time_ns} from either file format."""
    with open(path) as f:
        doc = json.load(f)
    if "raw" in doc:  # committed baseline format
        return {name: float(ns) for name, ns in doc["raw"].items()}
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        out[b["name"]] = float(b["cpu_time"]) * scale
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--max-ratio", type=float, default=3.0,
                        help="fail when fresh/baseline exceeds this "
                             "(default: 3.0)")
    args = parser.parse_args()

    baseline = load_cpu_times(args.baseline)
    fresh = load_cpu_times(args.fresh)

    common = sorted(set(baseline) & set(fresh))
    if not common:
        print("compare_bench: no common benchmarks between "
              f"{args.baseline} and {args.fresh}", file=sys.stderr)
        return 2

    failures = []
    for name in common:
        ratio = fresh[name] / baseline[name] if baseline[name] > 0 else 0.0
        status = "FAIL" if ratio > args.max_ratio else "ok"
        print(f"{status:4} {name:40} baseline {baseline[name]:12.1f} ns  "
              f"fresh {fresh[name]:12.1f} ns  ratio {ratio:6.2f}x")
        if ratio > args.max_ratio:
            failures.append((name, ratio))

    if failures:
        print(f"\ncompare_bench: {len(failures)} benchmark(s) slower than "
              f"{args.max_ratio}x baseline:", file=sys.stderr)
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\ncompare_bench: all {len(common)} benchmarks within "
          f"{args.max_ratio}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
