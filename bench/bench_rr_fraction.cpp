// Ablation of the §3 fairness knob: "The algorithm can be easily
// changed to decrease or increase this fraction in the range 0..b/n."
// Compares the four central-scheduler variants — pure LCF (floor 0),
// single RR position (b/n²), interleaved diagonal (b/n², Figure 2),
// diagonal-first (b/n) — on minimum per-flow service and on queuing
// delay, making the throughput-vs-fairness trade-off measurable.

#include <algorithm>
#include <iostream>
#include <limits>

#include "core/factory.hpp"
#include "sim/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    std::uint64_t ports = 16;
    std::uint64_t cycles = 25600;
    std::uint64_t slots = 50000;
    lcf::util::CliParser cli("§3 round-robin variant ablation");
    cli.flag("ports", "switch radix", &ports)
        .flag("cycles", "cycles for the service-floor measurement", &cycles)
        .flag("slots", "slots for the delay measurement", &slots);
    if (!cli.parse(argc, argv)) return cli.exit_code();

    using lcf::util::AsciiTable;
    const auto n = static_cast<std::size_t>(ports);
    const std::vector<std::string> variants = {
        "lcf_central", "lcf_central_rr_single", "lcf_central_rr",
        "lcf_central_rr_first"};
    const std::vector<std::string> floors = {"0 (none)", "b/n^2", "b/n^2",
                                             "b/n"};

    // Service floor under all-ones backlog.
    lcf::sched::RequestMatrix full(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) full.set(i, j);
    }
    std::cout << "Per-flow service over " << cycles << " cycles, all-ones "
              << n << "x" << n << " backlog (b/n^2 floor = "
              << cycles / (n * n) << ", b/n floor = " << cycles / n << "):\n";
    AsciiTable t;
    t.header({"variant", "guaranteed floor", "min service", "max service",
              "throughput/port"});
    for (std::size_t k = 0; k < variants.size(); ++k) {
        auto s = lcf::core::make_scheduler(variants[k]);
        s->reset(n, n);
        std::vector<std::uint64_t> counts(n * n, 0);
        lcf::sched::Matching m;
        double total = 0;
        for (std::uint64_t c = 0; c < cycles; ++c) {
            s->schedule(full, m);
            for (std::size_t i = 0; i < n; ++i) {
                if (m.output_of(i) != lcf::sched::kUnmatched) {
                    ++counts[i * n + static_cast<std::size_t>(m.output_of(i))];
                    total += 1;
                }
            }
        }
        const auto mn = *std::min_element(counts.begin(), counts.end());
        const auto mx = *std::max_element(counts.begin(), counts.end());
        t.add_row({variants[k], floors[k], std::to_string(mn),
                   std::to_string(mx),
                   AsciiTable::num(total / static_cast<double>(cycles) /
                                       static_cast<double>(n),
                                   3)});
    }
    t.print(std::cout);

    // Delay cost of the fairness guarantee under uniform traffic.
    std::cout << "\nMean queuing delay under uniform traffic:\n";
    lcf::sim::SimConfig config;
    config.ports = n;
    config.slots = slots;
    config.warmup_slots = slots / 10;
    AsciiTable d;
    std::vector<std::string> header = {"load"};
    header.insert(header.end(), variants.begin(), variants.end());
    d.header(header);
    for (const double load : {0.5, 0.8, 0.9, 0.95, 1.0}) {
        std::vector<std::string> row = {AsciiTable::num(load, 2)};
        for (const auto& v : variants) {
            const auto r = lcf::sim::run_named(v, config, "uniform", load);
            row.push_back(AsciiTable::num(r.mean_delay, 2));
        }
        d.add_row(row);
    }
    d.print(std::cout);
    std::cout << "(stronger guarantees override more LCF decisions; the "
                 "paper predicts the cost stays small because overridden "
                 "positions are usually good choices anyway)\n";
    return 0;
}
