// Ablation beyond the paper: crossbar speedup. With speedup s the
// fabric forwards up to s packets per input/output per slot into
// line-rate-drained output buffers. The classic result — a VOQ switch
// with s = 2 nearly closes the gap to output buffering even with a
// simple scheduler — situates the paper's s = 1 design point: LCF buys
// with scheduling intelligence much of what speedup buys with fabric
// bandwidth.

#include <iostream>

#include "core/factory.hpp"
#include "sim/runner.hpp"
#include "sim/switch_sim.hpp"
#include "traffic/traffic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    std::uint64_t ports = 16;
    std::uint64_t slots = 50000;
    lcf::util::CliParser cli("Crossbar speedup ablation");
    cli.flag("ports", "switch radix", &ports)
        .flag("slots", "simulated slots per point", &slots);
    if (!cli.parse(argc, argv)) return cli.exit_code();

    using lcf::util::AsciiTable;
    lcf::sim::SimConfig base;
    base.ports = ports;
    base.slots = slots;
    base.warmup_slots = slots / 10;

    const std::vector<std::pair<std::string, std::size_t>> configs = {
        {"islip", 1},       {"islip", 2},       {"lcf_central", 1},
        {"lcf_central", 2}, {"lcf_central_rr", 1},
    };

    AsciiTable t;
    {
        std::vector<std::string> header = {"load"};
        for (const auto& [name, s] : configs) {
            header.push_back(name + " s=" + std::to_string(s));
        }
        header.push_back("outbuf");
        t.header(header);
    }
    for (const double load : {0.5, 0.8, 0.9, 0.95, 0.98}) {
        std::vector<std::string> row = {AsciiTable::num(load, 2)};
        for (const auto& [name, s] : configs) {
            lcf::sim::SimConfig config = base;
            config.speedup = s;
            lcf::sim::SwitchSim sim(
                config, lcf::core::make_scheduler(name),
                lcf::traffic::make_traffic("uniform", load));
            row.push_back(AsciiTable::num(sim.run().mean_delay, 2));
        }
        row.push_back(AsciiTable::num(
            lcf::sim::run_named("outbuf", base, "uniform", load).mean_delay,
            2));
        t.add_row(row);
    }
    std::cout << "Mean queuing delay [slots] vs load, " << ports
              << " ports:\n";
    t.print(std::cout);
    std::cout << "(speedup 2 converges on the output-buffered ideal; note "
                 "how close lcf_central at s=1 already sits — scheduling "
                 "quality substituting for fabric bandwidth)\n";
    return 0;
}
