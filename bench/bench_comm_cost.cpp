// Regenerates the §6.2 communication-cost comparison (Figure 10):
// bits exchanged per scheduling cycle between ports and scheduler for
// the central scheme, n(n + log2 n + 1), versus the distributed scheme,
// i * n^2 * (2 log2 n + 3).

#include <iostream>

#include "hw/comm_model.hpp"
#include "hw/dist_message_sim.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    std::uint64_t iterations = 4;
    lcf::util::CliParser cli("§6.2: scheduler communication cost");
    cli.flag("iterations", "distributed-scheduler iterations", &iterations);
    if (!cli.parse(argc, argv)) return cli.exit_code();

    using lcf::hw::CommModel;
    using lcf::util::AsciiTable;
    const auto iters = static_cast<std::size_t>(iterations);

    std::cout << "Communication cost per scheduling cycle (i = " << iters
              << " iterations for the distributed scheduler)\n";
    AsciiTable t;
    t.header({"n", "central bits", "distributed bits", "ratio"});
    for (const std::size_t n : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
        t.add_row({std::to_string(n),
                   std::to_string(CommModel::central_bits(n)),
                   std::to_string(CommModel::distributed_bits(n, iters)),
                   AsciiTable::num(CommModel::overhead_ratio(n, iters), 1) +
                       "x"});
    }
    t.print(std::cout);

    std::cout << "\nIteration sweep at n = 16:\n";
    AsciiTable ti;
    ti.header({"iterations", "distributed bits", "vs central (336 bits)"});
    for (const std::size_t i : {1u, 2u, 3u, 4u, 6u, 8u}) {
        ti.add_row({std::to_string(i),
                    std::to_string(CommModel::distributed_bits(16, i)),
                    AsciiTable::num(CommModel::overhead_ratio(16, i), 1) +
                        "x"});
    }
    ti.print(std::cout);
    std::cout << "(the paper: the distributed scheduler has significantly "
                 "higher communication demands since priorities must be "
                 "sent explicitly, possibly to multiple resources)\n\n";

    // Executed (not just computed) traffic: the message-level model of
    // Figure 10b counts the bits actually exchanged under load.
    std::cout << "Measured bits/cycle (message-level simulation, n = 16, "
              << iters << " iterations, 500 cycles per density):\n";
    lcf::util::AsciiTable tm;
    tm.header({"request density", "measured bits/cycle", "analytic bound",
               "utilisation"});
    for (const double density : {0.1, 0.35, 0.7, 1.0}) {
        lcf::hw::DistMessageSim msg(iters);
        msg.reset(16, 16);
        lcf::util::Xoshiro256 rng(42);
        lcf::sched::Matching m;
        for (int cycle = 0; cycle < 500; ++cycle) {
            lcf::sched::RequestMatrix r(16);
            for (std::size_t i = 0; i < 16; ++i) {
                for (std::size_t j = 0; j < 16; ++j) {
                    if (rng.next_bool(density)) r.set(i, j);
                }
            }
            msg.schedule(r, m);
        }
        const auto bound =
            static_cast<double>(CommModel::distributed_bits(16, iters));
        tm.add_row({AsciiTable::num(density, 2),
                    AsciiTable::num(msg.bits_per_cycle(), 0),
                    AsciiTable::num(bound, 0),
                    AsciiTable::num(100.0 * msg.bits_per_cycle() / bound, 1) +
                        "%"});
    }
    tm.print(std::cout);
    std::cout << "(the closed form is a worst-case bound; matched ports "
                 "stop talking, so real traffic falls well below it)\n";
    return 0;
}
