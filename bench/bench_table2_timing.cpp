// Regenerates Table 2 of the paper: the scheduling-task decomposition
// of the central LCF scheduler (precalculated-schedule check, LCF
// calculation) in clock cycles and nanoseconds at the Clint prototype's
// 66 MHz — and the closed-form scaling in n, including the fraction of
// the 8.5 µs Clint slot the scheduler occupies.

#include <iostream>

#include "hw/timing_model.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    double clock_mhz = 66.0;
    lcf::util::CliParser cli("Table 2: scheduling-task timing");
    cli.flag("clock-mhz", "scheduler clock frequency", &clock_mhz);
    if (!cli.parse(argc, argv)) return cli.exit_code();

    using lcf::hw::TimingModel;
    using lcf::util::AsciiTable;
    const TimingModel model(clock_mhz * 1e6);

    std::cout << "Table 2 reproduction (n = 16, " << clock_mhz << " MHz)\n";
    AsciiTable t2;
    t2.header({"Task", "Decomposition", "Clock Cycles", "Time"});
    t2.add_row({"Check prec. schedule", "2n+1",
                std::to_string(TimingModel::precalc_cycles(16)),
                std::to_string(model.nanoseconds(
                    TimingModel::precalc_cycles(16))) +
                    " ns"});
    t2.add_row({"Calculate LCF schedule", "3n+2",
                std::to_string(TimingModel::lcf_cycles(16)),
                std::to_string(model.nanoseconds(TimingModel::lcf_cycles(16))) +
                    " ns"});
    t2.add_row({"Total", "5n+3",
                std::to_string(TimingModel::total_cycles(16)),
                std::to_string(model.nanoseconds(
                    TimingModel::total_cycles(16))) +
                    " ns"});
    t2.print(std::cout);
    std::cout << "(paper: 33 cycles / 500 ns, 50 / 758 ns, 83 / 1258 ns; "
                 "§1 quotes the 1.3 us scheduling time)\n\n";

    std::cout << "Scaling in n at " << clock_mhz << " MHz:\n";
    AsciiTable scaling;
    scaling.header({"n", "precalc cyc", "lcf cyc", "total cyc", "total us",
                    "fraction of 8.5us slot"});
    for (const std::size_t n : {4u, 8u, 16u, 32u, 64u, 128u}) {
        const auto total = TimingModel::total_cycles(n);
        scaling.add_row(
            {std::to_string(n),
             std::to_string(TimingModel::precalc_cycles(n)),
             std::to_string(TimingModel::lcf_cycles(n)),
             std::to_string(total),
             AsciiTable::num(model.seconds(total) * 1e6, 3),
             AsciiTable::num(100.0 * model.seconds(total) /
                                 lcf::hw::kClintSlotSeconds,
                             1) +
                 "%"});
    }
    scaling.print(std::cout);
    std::cout << "(O(n) growth — §6.2's central-scheduler complexity; the "
                 "distributed scheduler needs only O(log2 n) iterations but "
                 "pays in communication, see bench_comm_cost)\n";
    return 0;
}
