// Measures what the bulk channel's recovery machinery costs and buys
// under fault pressure: a bit-error-rate sweep comparing fixed timeout
// retransmission against bounded exponential backoff (retransmissions,
// recovery latency, duplicates suppressed, goodput), and a crash-storm
// series showing how goodput degrades and recovers as hosts fall out of
// and rejoin the schedule.

#include <iostream>

#include "clint/bulk_channel.hpp"
#include "traffic/bernoulli.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

lcf::clint::BulkChannelResult run_point(std::uint64_t hosts,
                                        std::uint64_t slots, double load,
                                        double ber, bool backoff,
                                        const lcf::fault::FaultPlan& plan) {
    lcf::clint::BulkChannelConfig c;
    c.hosts = hosts;
    c.slots = slots;
    c.warmup_slots = slots / 10;
    c.bit_error_rate = ber;
    c.max_retries = 32;
    c.exponential_backoff = backoff;
    c.fault_plan = plan;
    lcf::clint::BulkChannelSim sim(
        c, std::make_unique<lcf::traffic::BernoulliUniform>(load));
    return sim.run();
}

}  // namespace

int main(int argc, char** argv) {
    std::uint64_t hosts = 8;
    std::uint64_t slots = 20000;
    double load = 0.5;
    lcf::util::CliParser cli(
        "Bulk-channel recovery cost under faults: timeout policy sweep "
        "and crash storms");
    cli.flag("hosts", "cluster size (<= 16)", &hosts)
        .flag("slots", "simulated slots per point", &slots)
        .flag("load", "bulk packets per host per slot", &load);
    if (!cli.parse(argc, argv)) return cli.exit_code();

    using lcf::util::AsciiTable;

    std::cout << "Recovery policy sweep, " << hosts << " hosts, " << slots
              << " slots, load " << load << " (max_retries 32):\n\n";
    AsciiTable t;
    t.header({"BER", "policy", "delivered", "retrans", "recovered",
              "recovery delay", "duplicates", "goodput"});
    for (const double ber : {1e-7, 1e-6, 1e-5}) {
        for (const bool backoff : {false, true}) {
            const auto r = run_point(hosts, slots, load, ber, backoff, {});
            t.add_row({AsciiTable::num(ber, 7),
                       backoff ? "exp backoff" : "fixed timeout",
                       std::to_string(r.delivered_unique),
                       std::to_string(r.retransmissions),
                       std::to_string(r.recovered),
                       AsciiTable::num(r.mean_recovery_delay, 2),
                       std::to_string(r.duplicate_deliveries),
                       AsciiTable::num(r.goodput, 3)});
        }
    }
    t.print(std::cout);
    std::cout << "(backoff trades retransmission pressure for recovery "
                 "latency; duplicates measure acks lost after a "
                 "successful delivery)\n\n";

    std::cout << "Crash storm (BER 1e-6, one host down at a time):\n";
    AsciiTable s;
    s.header({"crash cycle [slots]", "crashes", "crash lost", "delivered",
              "goodput", "conservation"});
    for (const std::uint64_t cycle :
         {std::uint64_t{0}, slots / 16, slots / 8, slots / 4}) {
        lcf::fault::FaultPlan plan;
        if (cycle > 0) {
            std::size_t victim = 0;
            for (std::uint64_t at = cycle; at + cycle / 2 < slots;
                 at += cycle) {
                plan.add_host_crash(victim, at, at + cycle / 2);
                victim = (victim + 1) % hosts;
            }
        }
        lcf::clint::BulkChannelConfig c;
        c.hosts = hosts;
        c.slots = slots;
        c.warmup_slots = slots / 10;
        c.bit_error_rate = 1e-6;
        c.max_retries = 32;
        c.exponential_backoff = true;
        c.fault_plan = plan;
        lcf::clint::BulkChannelSim sim(
            c, std::make_unique<lcf::traffic::BernoulliUniform>(load));
        const auto r = sim.run();
        s.add_row({cycle == 0 ? "none" : std::to_string(cycle),
                   std::to_string(r.faults.crashes),
                   std::to_string(r.crash_lost),
                   std::to_string(r.delivered_unique),
                   AsciiTable::num(r.goodput, 3),
                   sim.accounting().balanced() ? "exact" : "VIOLATED"});
    }
    s.print(std::cout);
    std::cout << "(crashed hosts are masked out of the request matrix, so "
                 "the survivors keep their full schedule; the accounting "
                 "identity stays exact through every crash)\n";
    return 0;
}
