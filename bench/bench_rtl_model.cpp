// Exercises the bit-level Figure 6 datapath model: live equivalence
// against the behavioural Figure 2 scheduler, the Table 2 cycle
// accounting, and the modelled scheduling time across radices at the
// Clint clock.

#include <iostream>

#include "core/lcf_central.hpp"
#include "hw/rtl_central.hpp"
#include "hw/timing_model.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    std::uint64_t cycles = 20000;
    lcf::util::CliParser cli("Figure 6 datapath model: equivalence and "
                             "cycle accounting");
    cli.flag("cycles", "random scheduling cycles to cross-check", &cycles);
    if (!cli.parse(argc, argv)) return cli.exit_code();

    using lcf::util::AsciiTable;

    std::cout << "Cross-checking RTL datapath vs Figure 2 pseudocode on "
              << cycles << " random 16-port cycles...\n";
    lcf::core::LcfCentralScheduler behav(
        lcf::core::LcfCentralOptions{
            .variant = lcf::core::RrVariant::kInterleaved});
    lcf::hw::RtlCentralScheduler rtl;
    behav.reset(16, 16);
    rtl.reset(16, 16);
    lcf::util::Xoshiro256 rng(8086);
    lcf::sched::Matching mb, mr;
    std::uint64_t mismatches = 0;
    for (std::uint64_t c = 0; c < cycles; ++c) {
        lcf::sched::RequestMatrix r(16);
        const double density = rng.next_double();
        for (std::size_t i = 0; i < 16; ++i) {
            for (std::size_t j = 0; j < 16; ++j) {
                if (rng.next_bool(density)) r.set(i, j);
            }
        }
        behav.schedule(r, mb);
        rtl.schedule(r, mr);
        if (!(mb == mr)) ++mismatches;
    }
    std::cout << "  mismatching schedules: " << mismatches << " / " << cycles
              << (mismatches == 0 ? "  (bit-exact)" : "  (BROKEN)") << "\n";
    std::cout << "  modelled clock cycles consumed: " << rtl.cycles_consumed()
              << " = " << cycles << " x (3n+2) = " << cycles << " x 50\n\n";

    std::cout << "Modelled scheduling time at the Clint clock (66 MHz), "
                 "3n+2 cycles per schedule:\n";
    const lcf::hw::TimingModel timing;
    AsciiTable t;
    t.header({"n", "cycles/schedule", "time/schedule", "schedules per "
              "8.5us slot"});
    for (const std::size_t n : {4u, 8u, 16u, 32u, 63u}) {
        lcf::hw::RtlCentralScheduler probe;
        probe.reset(n, n);
        lcf::sched::RequestMatrix r(n);
        r.set(0, 0);
        lcf::sched::Matching m;
        probe.schedule(r, m);
        const auto cyc = probe.cycles_consumed();
        t.add_row({std::to_string(n), std::to_string(cyc),
                   AsciiTable::num(timing.seconds(cyc) * 1e9, 0) + " ns",
                   AsciiTable::num(lcf::hw::kClintSlotSeconds /
                                       timing.seconds(cyc),
                                   1)});
    }
    t.print(std::cout);
    return mismatches == 0 ? 0 : 1;
}
