// Ablation: how many request/grant/accept iterations do the iterative
// schedulers need? §5 claims "a small number of iterations is normally
// sufficient to find a near-optimal schedule"; §6.3 uses 4. This bench
// sweeps the iteration count for pim, islip, lcf_dist, and lcf_dist_rr
// and reports (a) mean queuing delay at two load points and (b) the
// average matching-size deficit against Hopcroft–Karp on random
// matrices. With --json <path> the same numbers are additionally
// written as a machine-readable JSON document.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "sched/maxsize.hpp"
#include "sim/runner.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

struct DelayPoint {
    double load;
    std::size_t iterations;
    std::string scheduler;
    double mean_delay;
};

struct SizePoint {
    std::size_t iterations;
    std::string scheduler;  // "optimum" for the Hopcroft–Karp bound
    double mean_matching_size;
};

void write_json(const std::string& path, std::uint64_t ports,
                std::uint64_t slots, const std::vector<DelayPoint>& delays,
                const std::vector<SizePoint>& sizes) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot open " << path << " for writing\n";
        return;
    }
    out << "{\n  \"bench\": \"bench_iterations\",\n"
        << "  \"ports\": " << ports << ",\n  \"slots\": " << slots << ",\n"
        << "  \"delay\": [\n";
    for (std::size_t k = 0; k < delays.size(); ++k) {
        const auto& d = delays[k];
        out << "    {\"load\": " << d.load << ", \"iterations\": "
            << d.iterations << ", \"scheduler\": \"" << d.scheduler
            << "\", \"mean_delay\": " << d.mean_delay << "}"
            << (k + 1 < delays.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"matching_size\": [\n";
    for (std::size_t k = 0; k < sizes.size(); ++k) {
        const auto& s = sizes[k];
        out << "    {\"iterations\": " << s.iterations << ", \"scheduler\": \""
            << s.scheduler << "\", \"mean_matching_size\": "
            << s.mean_matching_size << "}"
            << (k + 1 < sizes.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
    std::uint64_t ports = 16;
    std::uint64_t slots = 50000;
    std::uint64_t threads = 0;
    std::string json_path;
    lcf::util::CliParser cli("Iteration-count ablation for the iterative "
                             "schedulers");
    cli.flag("ports", "switch radix", &ports)
        .flag("slots", "simulated slots per point", &slots)
        .flag("threads", "worker threads (0 = all cores)", &threads)
        .flag("json", "write results as JSON to this path", &json_path);
    if (!cli.parse(argc, argv)) return cli.exit_code();

    using lcf::util::AsciiTable;
    const std::vector<std::string> names = {"pim", "islip", "lcf_dist",
                                            "lcf_dist_rr"};
    const std::vector<std::size_t> iteration_grid = {1, 2, 3, 4, 6, 8};

    lcf::sim::SimConfig config;
    config.ports = ports;
    config.slots = slots;
    config.warmup_slots = slots / 10;

    std::vector<DelayPoint> delay_points;
    std::vector<SizePoint> size_points;

    for (const double load : {0.7, 0.95}) {
        std::cout << "Mean queuing delay vs iterations (load " << load
                  << ", " << ports << " ports):\n";
        AsciiTable t;
        std::vector<std::string> header = {"iterations"};
        header.insert(header.end(), names.begin(), names.end());
        t.header(header);
        for (const std::size_t iters : iteration_grid) {
            std::vector<std::string> row = {std::to_string(iters)};
            for (const auto& name : names) {
                const auto r = lcf::sim::run_named(
                    name, config, "uniform", load,
                    lcf::sched::SchedulerConfig{.iterations = iters,
                                                .seed = 5});
                row.push_back(AsciiTable::num(r.mean_delay, 2));
                delay_points.push_back({load, iters, name, r.mean_delay});
            }
            t.add_row(row);
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    // Matching-size deficit vs the maximum, per iteration count.
    std::cout << "Average matching size vs Hopcroft-Karp optimum "
                 "(random 35%-dense matrices, "
              << ports << " ports):\n";
    AsciiTable t;
    std::vector<std::string> header = {"iterations"};
    header.insert(header.end(), names.begin(), names.end());
    header.push_back("optimum");
    t.header(header);
    constexpr int kTrials = 300;
    for (const std::size_t iters : iteration_grid) {
        std::vector<double> sums(names.size(), 0.0);
        double opt_sum = 0.0;
        lcf::util::Xoshiro256 rng(99);
        std::vector<std::unique_ptr<lcf::sched::Scheduler>> scheds;
        for (const auto& name : names) {
            scheds.push_back(lcf::core::make_scheduler(
                name,
                lcf::sched::SchedulerConfig{.iterations = iters, .seed = 3}));
            scheds.back()->reset(ports, ports);
        }
        lcf::sched::Matching m;
        for (int trial = 0; trial < kTrials; ++trial) {
            lcf::sched::RequestMatrix r(ports);
            for (std::size_t i = 0; i < ports; ++i) {
                auto& row = r.row(i);
                for (std::size_t wi = 0; wi < row.word_count(); ++wi) {
                    row.set_word(wi, rng.next_bernoulli_word(0.35));
                }
            }
            for (std::size_t k = 0; k < scheds.size(); ++k) {
                scheds[k]->schedule(r, m);
                sums[k] += static_cast<double>(m.size());
            }
            opt_sum += static_cast<double>(
                lcf::sched::MaxSizeScheduler::maximum_matching_size(r));
        }
        std::vector<std::string> row = {std::to_string(iters)};
        for (std::size_t k = 0; k < sums.size(); ++k) {
            row.push_back(AsciiTable::num(sums[k] / kTrials, 2));
            size_points.push_back({iters, names[k], sums[k] / kTrials});
        }
        row.push_back(AsciiTable::num(opt_sum / kTrials, 2));
        size_points.push_back({iters, "optimum", opt_sum / kTrials});
        t.add_row(row);
    }
    t.print(std::cout);
    std::cout << "(log2(16) = 4 iterations recover nearly the whole "
                 "optimum, matching the paper's O(log2 n) claim)\n";

    if (!json_path.empty()) {
        write_json(json_path, ports, slots, delay_points, size_points);
        std::cout << "JSON written to " << json_path << "\n";
    }
    return 0;
}
