// Ablation: behaviour as the switch radix grows (the paper's
// scalability discussion, §6.2). For n = 4..64 this reports queuing
// delay at fixed load plus the measured wall-clock cost of one
// schedule() call, whose growth exposes the O(n) central vs iterative
// distributed trade-off in software form.

#include <chrono>
#include <iostream>

#include "core/factory.hpp"
#include "sim/runner.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

/// Mean ns per schedule() call on random 35%-dense matrices.
double schedule_ns(lcf::sched::Scheduler& s, std::size_t n) {
    lcf::util::Xoshiro256 rng(n);
    std::vector<lcf::sched::RequestMatrix> inputs;
    for (int k = 0; k < 32; ++k) {
        lcf::sched::RequestMatrix r(n);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                if (rng.next_bool(0.35)) r.set(i, j);
            }
        }
        inputs.push_back(std::move(r));
    }
    lcf::sched::Matching m;
    constexpr int kReps = 200;
    const auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kReps; ++rep) {
        for (const auto& r : inputs) s.schedule(r, m);
    }
    const auto dt = std::chrono::steady_clock::now() - t0;
    return std::chrono::duration<double, std::nano>(dt).count() /
           (kReps * static_cast<double>(inputs.size()));
}

}  // namespace

int main(int argc, char** argv) {
    std::uint64_t slots = 30000;
    double load = 0.8;
    std::uint64_t threads = 0;
    lcf::util::CliParser cli("Radix scalability: delay and schedule cost "
                             "vs port count");
    cli.flag("slots", "simulated slots per point", &slots)
        .flag("load", "offered load", &load)
        .flag("threads", "worker threads (0 = all cores)", &threads);
    if (!cli.parse(argc, argv)) return cli.exit_code();

    using lcf::util::AsciiTable;
    const std::vector<std::string> names = {"lcf_central", "lcf_central_rr",
                                            "lcf_dist", "islip", "pim"};

    std::cout << "Mean queuing delay at load " << load
              << " vs switch radix:\n";
    AsciiTable delay_table;
    {
        std::vector<std::string> header = {"n"};
        header.insert(header.end(), names.begin(), names.end());
        header.push_back("outbuf");
        delay_table.header(header);
    }
    for (const std::size_t n : {4u, 8u, 16u, 32u, 64u}) {
        lcf::sim::SimConfig config;
        config.ports = n;
        config.slots = slots;
        config.warmup_slots = slots / 10;
        std::vector<std::string> row = {std::to_string(n)};
        auto all = names;
        all.push_back("outbuf");
        const auto points = lcf::sim::sweep(all, {load}, config, "uniform",
                                            lcf::sched::SchedulerConfig{},
                                            threads);
        for (const auto& p : points) {
            row.push_back(AsciiTable::num(p.result.mean_delay, 2));
        }
        delay_table.add_row(row);
    }
    delay_table.print(std::cout);

    std::cout << "\nSoftware schedule() cost [ns/call, 35%-dense random "
                 "requests]:\n";
    AsciiTable cost_table;
    {
        std::vector<std::string> header = {"n"};
        header.insert(header.end(), names.begin(), names.end());
        cost_table.header(header);
    }
    for (const std::size_t n : {4u, 8u, 16u, 32u, 64u, 128u}) {
        std::vector<std::string> row = {std::to_string(n)};
        for (const auto& name : names) {
            auto s = lcf::core::make_scheduler(name);
            s->reset(n, n);
            row.push_back(AsciiTable::num(schedule_ns(*s, n), 0));
        }
        cost_table.add_row(row);
    }
    cost_table.print(std::cout);
    std::cout << "(hardware analogue: Table 2's 5n+3 cycles for the central "
                 "scheduler vs O(log2 n) iterations for the distributed "
                 "one)\n";
    return 0;
}
