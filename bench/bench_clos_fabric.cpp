// Ablation of the fabric choice §2 leaves open: crossbar vs three-stage
// Clos network. A rearrangeably non-blocking Clos (m >= k) carries any
// schedule the LCF scheduler computes — same delay, fewer crosspoints —
// while an under-provisioned Clos (m < k) blocks connections and caps
// throughput. This bench measures both, plus the crosspoint savings.

#include <iostream>

#include "fabric/clos.hpp"
#include "sim/runner.hpp"
#include "sim/switch_sim.hpp"
#include "core/factory.hpp"
#include "traffic/traffic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

/// Crosspoint count of C(k, m, r): r switches of k x m, m of r x r,
/// r of m x k.
std::uint64_t clos_crosspoints(std::size_t k, std::size_t m, std::size_t r) {
    return 2 * static_cast<std::uint64_t>(r) * k * m +
           static_cast<std::uint64_t>(m) * r * r;
}

}  // namespace

int main(int argc, char** argv) {
    std::uint64_t ports = 16;
    std::uint64_t group = 4;
    std::uint64_t slots = 30000;
    lcf::util::CliParser cli("Fabric ablation: crossbar vs Clos network");
    cli.flag("ports", "switch radix (multiple of group)", &ports)
        .flag("group", "Clos first-stage size k", &group)
        .flag("slots", "simulated slots per point", &slots);
    if (!cli.parse(argc, argv)) return cli.exit_code();

    using lcf::util::AsciiTable;
    const auto n = static_cast<std::size_t>(ports);
    const auto k = static_cast<std::size_t>(group);
    const std::size_t r = n / k;

    std::cout << "Crosspoint cost, " << n << " ports (crossbar: " << n * n
              << " crosspoints):\n";
    AsciiTable xp;
    xp.header({"fabric", "crosspoints", "vs crossbar", "non-blocking"});
    xp.add_row({"crossbar", std::to_string(n * n), "1.00x", "strict"});
    for (const std::size_t m : {k / 2, k, 2 * k - 1}) {
        if (m == 0) continue;
        const auto c = clos_crosspoints(k, m, r);
        char label[64];
        std::snprintf(label, sizeof(label), "Clos(%zu,%zu,%zu)", k, m, r);
        xp.add_row({label, std::to_string(c),
                    AsciiTable::num(static_cast<double>(c) /
                                        static_cast<double>(n * n),
                                    2) +
                        "x",
                    m >= k ? "rearrangeable" : "BLOCKING"});
    }
    xp.print(std::cout);
    std::cout << "(m >= k gives Slepian-Duguid rearrangeability; m >= 2k-1 "
                 "would be strict-sense non-blocking)\n\n";

    std::cout << "Simulated behaviour under uniform traffic "
                 "(lcf_central_rr, "
              << slots << " slots):\n";
    AsciiTable t;
    t.header({"fabric", "load", "mean delay", "throughput",
              "blocked connections"});
    for (const double load : {0.5, 0.9}) {
        for (const std::size_t m : {std::size_t{0}, k, k / 2}) {
            lcf::sim::SimConfig config;
            config.ports = n;
            config.slots = slots;
            config.warmup_slots = slots / 10;
            config.clos_middle = m;
            config.clos_group = k;
            lcf::sim::SwitchSim sim(
                config, lcf::core::make_scheduler("lcf_central_rr"),
                lcf::traffic::make_traffic("uniform", load));
            const auto res = sim.run();
            std::string label = "crossbar";
            if (m > 0) {
                char buf[64];
                std::snprintf(buf, sizeof(buf), "Clos(%zu,%zu,%zu)", k, m, r);
                label = buf;
            }
            t.add_row({label, AsciiTable::num(load, 1),
                       AsciiTable::num(res.mean_delay, 2),
                       AsciiTable::num(res.throughput, 3),
                       std::to_string(res.fabric_blocked)});
        }
    }
    t.print(std::cout);
    std::cout << "(the non-blocking Clos reproduces the crossbar exactly; "
                 "halving the middle stage caps throughput near m/k)\n";
    return 0;
}
