// Quantifies the §3 fairness claims on a live switch: minimum per-flow
// service under a persistent all-ones backlog for every scheduler, the
// b/n² floor of lcf_central_rr, and the §3 starvation example under
// pure throughput-optimal scheduling.

#include <algorithm>
#include <iostream>
#include <limits>

#include "core/factory.hpp"
#include "sched/scheduler.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using lcf::sched::Matching;
using lcf::sched::RequestMatrix;
using lcf::util::AsciiTable;

struct FlowStats {
    std::uint64_t min_service = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_service = 0;
    std::uint64_t starved_flows = 0;
    double total = 0;
};

FlowStats measure(lcf::sched::Scheduler& s, const RequestMatrix& r,
                  std::size_t cycles) {
    const std::size_t n = r.inputs();
    std::vector<std::uint64_t> counts(n * n, 0);
    Matching m;
    for (std::size_t c = 0; c < cycles; ++c) {
        s.schedule(r, m);
        for (std::size_t i = 0; i < n; ++i) {
            if (m.output_of(i) != lcf::sched::kUnmatched) {
                ++counts[i * n + static_cast<std::size_t>(m.output_of(i))];
            }
        }
    }
    FlowStats f;
    for (std::size_t k = 0; k < counts.size(); ++k) {
        if (!r.get(k / n, k % n)) continue;  // only requested flows
        f.min_service = std::min(f.min_service, counts[k]);
        f.max_service = std::max(f.max_service, counts[k]);
        if (counts[k] == 0) ++f.starved_flows;
        f.total += static_cast<double>(counts[k]);
    }
    return f;
}

}  // namespace

int main(int argc, char** argv) {
    std::uint64_t ports = 16;
    std::uint64_t cycles = 25600;  // 100 diagonal periods at n = 16
    lcf::util::CliParser cli(
        "§3 fairness: per-flow service under persistent backlog");
    cli.flag("ports", "switch radix", &ports)
        .flag("cycles", "scheduling cycles to run", &cycles);
    if (!cli.parse(argc, argv)) return cli.exit_code();
    const auto n = static_cast<std::size_t>(ports);

    RequestMatrix full(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) full.set(i, j);
    }

    std::cout << "All-ones backlog, " << n << "x" << n << " switch, "
              << cycles << " cycles. b/n^2 floor = " << cycles / (n * n)
              << " grants; fair share = " << cycles / n << " grants.\n\n";
    AsciiTable t;
    t.header({"scheduler", "min service", "max service", "starved flows",
              "throughput/port", "meets b/n^2 floor"});
    for (const auto& name : lcf::core::scheduler_names()) {
        auto s = lcf::core::make_scheduler(
            name, lcf::sched::SchedulerConfig{.iterations = 4, .seed = 7});
        s->reset(n, n);
        const auto f = measure(*s, full, cycles);
        const bool floor_ok = f.min_service >= cycles / (n * n);
        t.add_row({name, std::to_string(f.min_service),
                   std::to_string(f.max_service),
                   std::to_string(f.starved_flows),
                   AsciiTable::num(f.total / static_cast<double>(cycles) /
                                       static_cast<double>(n),
                                   3),
                   floor_ok ? "yes" : "NO"});
    }
    t.print(std::cout);
    std::cout << "(paper: the RR diagonal guarantees b/n^2 per request "
                 "position; pure LCF and maximum-size matching trade that "
                 "away for throughput)\n\n";

    // §3's worked starvation example (the Figure 3 backlog, persistent).
    const RequestMatrix fig3 = lcf::sched::make_requests(
        4, {{0, 1}, {0, 2}, {1, 0}, {1, 2}, {1, 3}, {2, 0}, {2, 2}, {2, 3},
            {3, 1}});
    std::cout << "Figure 3 backlog held persistent for " << cycles
              << " cycles (4x4):\n";
    AsciiTable t3;
    t3.header({"scheduler", "starved flows", "min service"});
    for (const auto* name : {"maxsize", "lcf_central", "lcf_central_rr"}) {
        auto s = lcf::core::make_scheduler(name);
        s->reset(4, 4);
        const auto f = measure(*s, fig3, cycles);
        t3.add_row({name, std::to_string(f.starved_flows),
                    std::to_string(f.min_service)});
    }
    t3.print(std::cout);
    std::cout << "(maximum-size matching permanently ignores contended "
                 "requests such as [I0,T1]; lcf_central_rr serves every "
                 "position)\n";
    return 0;
}
