// Exercises the Clint cluster-interconnect substrate (§4): the LCF-
// scheduled bulk channel and the best-effort quick channel side by
// side, across offered load and link bit-error rates, plus the
// precalculated-schedule multicast path. This regenerates the §1/§4
// design narrative — scheduled throughput vs best-effort latency — as
// measured series.

#include <iostream>

#include "clint/clint_sim.hpp"
#include "traffic/traffic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    std::uint64_t hosts = 16;
    std::uint64_t slots = 20000;
    lcf::util::CliParser cli("Clint cluster: bulk vs quick channel");
    cli.flag("hosts", "cluster size (<= 16)", &hosts)
        .flag("slots", "simulated slots per point", &slots);
    if (!cli.parse(argc, argv)) return cli.exit_code();

    using lcf::util::AsciiTable;

    std::cout << "Bulk (LCF-scheduled) vs quick (best-effort) channel, "
              << hosts << " hosts, " << slots << " slots per point.\n\n";

    std::cout << "Load sweep (error-free links):\n";
    AsciiTable t;
    t.header({"load", "bulk delay", "bulk goodput", "quick delay",
              "quick delivery", "quick collisions"});
    for (const double load : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        lcf::clint::ClintConfig c;
        c.hosts = hosts;
        c.slots = slots;
        c.warmup_slots = slots / 10;
        c.bulk_load = load;
        c.quick_load = load;
        const auto r = lcf::clint::run_clint(c);
        t.add_row({AsciiTable::num(load, 1),
                   AsciiTable::num(r.bulk.mean_delay, 2),
                   AsciiTable::num(r.bulk.goodput, 3),
                   AsciiTable::num(r.quick.mean_delay, 2),
                   AsciiTable::num(r.quick.delivery_ratio, 3),
                   std::to_string(r.quick.collisions)});
    }
    t.print(std::cout);
    std::cout << "(quick wins on latency at light load; bulk sustains "
                 "throughput under contention where quick collides and "
                 "drops)\n\n";

    std::cout << "Bit-error-rate sweep (load 0.4 on both channels):\n";
    AsciiTable e;
    e.header({"BER", "cfg CRC errs", "bulk data losses", "bulk retrans",
              "bulk delivered", "quick retrans", "quick delivery"});
    for (const double ber : {0.0, 1e-7, 1e-6, 1e-5, 5e-5}) {
        lcf::clint::ClintConfig c;
        c.hosts = hosts;
        c.slots = slots;
        c.warmup_slots = slots / 10;
        c.bulk_load = 0.4;
        c.quick_load = 0.4;
        c.bit_error_rate = ber;
        const auto r = lcf::clint::run_clint(c);
        char ber_str[32];
        std::snprintf(ber_str, sizeof(ber_str), "%.0e", ber);
        e.add_row({ber_str, std::to_string(r.bulk.config_crc_errors),
                   std::to_string(r.bulk.data_corruptions),
                   std::to_string(r.bulk.retransmissions),
                   std::to_string(r.bulk.delivered_unique),
                   std::to_string(r.quick.retransmissions),
                   AsciiTable::num(r.quick.delivery_ratio, 3)});
    }
    e.print(std::cout);
    std::cout << "(CRC-protected control packets plus ack timeouts recover "
                 "from link errors on both channels)\n\n";

    std::cout << "Integrated mode: bulk acknowledgments riding the quick "
                 "channel (§4.1), quick data load 0.15:\n";
    AsciiTable g;
    g.header({"bulk load", "acks on quick ch.", "data preemptions",
              "quick delay", "quick delay (isolated)"});
    for (const double bulk_load : {0.1, 0.5, 0.9}) {
        lcf::clint::ClintConfig c;
        c.hosts = hosts;
        c.slots = slots;
        c.warmup_slots = slots / 10;
        c.bulk_load = bulk_load;
        c.quick_load = 0.15;
        c.integrated = true;
        const auto r = lcf::clint::run_clint(c);
        c.integrated = false;
        const auto iso = lcf::clint::run_clint(c);
        g.add_row({AsciiTable::num(bulk_load, 1),
                   std::to_string(r.quick_control_sent),
                   std::to_string(r.quick_control_preemptions),
                   AsciiTable::num(r.quick.mean_delay, 2),
                   AsciiTable::num(iso.quick.mean_delay, 2)});
    }
    g.print(std::cout);
    std::cout << "(the segregated channels are not fully independent: bulk "
                 "throughput taxes quick-channel latency through its ack "
                 "stream)\n\n";

    std::cout << "Precalculated multicast (§4.3) through the bulk "
                 "pipeline:\n";
    {
        lcf::clint::BulkChannelConfig bc;
        bc.hosts = hosts;
        bc.slots = 2000;
        bc.warmup_slots = 0;
        lcf::clint::BulkChannelSim sim(
            bc, lcf::traffic::make_traffic("uniform", 0.3));
        constexpr int kMulticasts = 100;
        for (int k = 0; k < kMulticasts; ++k) {
            // Three-way multicast from rotating sources.
            const auto src = static_cast<std::size_t>(k) % hosts;
            const auto mask = static_cast<std::uint16_t>(
                (1U << ((src + 1) % hosts)) | (1U << ((src + 3) % hosts)) |
                (1U << ((src + 5) % hosts)));
            sim.enqueue_multicast(src, mask);
        }
        const auto r = sim.run();
        std::cout << "  " << kMulticasts << " three-way multicasts injected; "
                  << r.multicast_copies << " per-target copies delivered "
                  << "alongside " << r.delivered_unique << " unicast packets\n";
    }
    return 0;
}
