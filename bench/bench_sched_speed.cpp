// google-benchmark microbenchmarks: raw schedule() computation cost per
// scheduler and radix, on random request matrices of fixed density.
// This is the software analogue of §6.2's speed comparison (O(n)
// sequential central scheduler vs O(log n)-iteration distributed one).
//
// The BM_*Reference benchmarks run the pre-optimization per-bit LCF
// transcriptions kept behind the factory's `*_reference` names, so one
// run of this binary yields matched before/after numbers for the
// word-parallel rewrite (see docs/performance.md).
//
// Usage: bench_sched_speed [--json <path>] [google-benchmark flags...]
// --json <path> is shorthand for
// --benchmark_out=<path> --benchmark_out_format=json.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/factory.hpp"
#include "hw/rtl_central.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace {

using lcf::sched::Matching;
using lcf::sched::RequestMatrix;

std::vector<RequestMatrix> make_inputs(std::size_t n, double density,
                                       std::size_t count) {
    lcf::util::Xoshiro256 rng(n * 1000 + 17);
    std::vector<RequestMatrix> inputs;
    inputs.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
        RequestMatrix r(n);
        for (std::size_t i = 0; i < n; ++i) {
            // 64 Bernoulli(density) bits per draw; set_word() trims the
            // bits beyond the row length.
            auto& row = r.row(i);
            for (std::size_t wi = 0; wi < row.word_count(); ++wi) {
                row.set_word(wi, rng.next_bernoulli_word(density));
            }
        }
        inputs.push_back(std::move(r));
    }
    return inputs;
}

void run_scheduler(benchmark::State& state, const std::string& name) {
    const auto n = static_cast<std::size_t>(state.range(0));
    auto s = lcf::core::make_scheduler(
        name, lcf::sched::SchedulerConfig{.iterations = 4, .seed = 2});
    s->reset(n, n);
    const auto inputs = make_inputs(n, 0.35, 32);
    Matching m;
    std::size_t k = 0;
    for (auto _ : state) {
        s->schedule(inputs[k], m);
        benchmark::DoNotOptimize(m);
        k = (k + 1) % inputs.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_LcfCentral(benchmark::State& state) {
    run_scheduler(state, "lcf_central");
}
void BM_LcfCentralRr(benchmark::State& state) {
    run_scheduler(state, "lcf_central_rr");
}
void BM_LcfDist(benchmark::State& state) { run_scheduler(state, "lcf_dist"); }
void BM_LcfDistRr(benchmark::State& state) {
    run_scheduler(state, "lcf_dist_rr");
}
void BM_LcfCentralReference(benchmark::State& state) {
    run_scheduler(state, "lcf_central_reference");
}
void BM_LcfCentralRrReference(benchmark::State& state) {
    run_scheduler(state, "lcf_central_rr_reference");
}
void BM_LcfDistReference(benchmark::State& state) {
    run_scheduler(state, "lcf_dist_reference");
}
void BM_LcfDistRrReference(benchmark::State& state) {
    run_scheduler(state, "lcf_dist_rr_reference");
}
void BM_Pim(benchmark::State& state) { run_scheduler(state, "pim"); }
void BM_Islip(benchmark::State& state) { run_scheduler(state, "islip"); }
void BM_Wavefront(benchmark::State& state) { run_scheduler(state, "wfront"); }
void BM_MaxSize(benchmark::State& state) { run_scheduler(state, "maxsize"); }

void BM_RtlDatapath(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    lcf::hw::RtlCentralScheduler s;
    s.reset(n, n);
    const auto inputs = make_inputs(n, 0.35, 32);
    Matching m;
    std::size_t k = 0;
    for (auto _ : state) {
        s.schedule(inputs[k], m);
        benchmark::DoNotOptimize(m);
        k = (k + 1) % inputs.size();
    }
}

constexpr std::int64_t kRadices[] = {8, 16, 32, 64, 128, 256};

void radix_args(benchmark::internal::Benchmark* b) {
    for (const auto n : kRadices) b->Arg(n);
}

BENCHMARK(BM_LcfCentral)->Apply(radix_args);
BENCHMARK(BM_LcfCentralRr)->Apply(radix_args);
BENCHMARK(BM_LcfDist)->Apply(radix_args);
BENCHMARK(BM_LcfDistRr)->Apply(radix_args);
BENCHMARK(BM_LcfCentralReference)->Apply(radix_args);
BENCHMARK(BM_LcfCentralRrReference)->Apply(radix_args);
BENCHMARK(BM_LcfDistReference)->Apply(radix_args);
BENCHMARK(BM_LcfDistRrReference)->Apply(radix_args);
BENCHMARK(BM_Pim)->Apply(radix_args);
BENCHMARK(BM_Islip)->Apply(radix_args);
BENCHMARK(BM_Wavefront)->Apply(radix_args);
BENCHMARK(BM_MaxSize)->Apply(radix_args);
BENCHMARK(BM_RtlDatapath)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
    // Translate the repo-conventional `--json <path>` into
    // google-benchmark's output flags before Initialize() sees argv.
    std::vector<std::string> storage;
    storage.reserve(static_cast<std::size_t>(argc) + 2);
    for (int i = 0; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--json" && i + 1 < argc) {
            storage.emplace_back(std::string("--benchmark_out=") + argv[i + 1]);
            storage.emplace_back("--benchmark_out_format=json");
            ++i;
        } else {
            storage.emplace_back(argv[i]);
        }
    }
    std::vector<char*> args;
    args.reserve(storage.size());
    for (auto& s : storage) args.push_back(s.data());
    int new_argc = static_cast<int>(args.size());
    benchmark::Initialize(&new_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
