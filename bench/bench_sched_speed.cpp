// google-benchmark microbenchmarks: raw schedule() computation cost per
// scheduler and radix, on random request matrices of fixed density.
// This is the software analogue of §6.2's speed comparison (O(n)
// sequential central scheduler vs O(log n)-iteration distributed one).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/factory.hpp"
#include "hw/rtl_central.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace {

using lcf::sched::Matching;
using lcf::sched::RequestMatrix;

std::vector<RequestMatrix> make_inputs(std::size_t n, double density,
                                       std::size_t count) {
    lcf::util::Xoshiro256 rng(n * 1000 + 17);
    std::vector<RequestMatrix> inputs;
    inputs.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
        RequestMatrix r(n);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                if (rng.next_bool(density)) r.set(i, j);
            }
        }
        inputs.push_back(std::move(r));
    }
    return inputs;
}

void run_scheduler(benchmark::State& state, const std::string& name) {
    const auto n = static_cast<std::size_t>(state.range(0));
    auto s = lcf::core::make_scheduler(
        name, lcf::sched::SchedulerConfig{.iterations = 4, .seed = 2});
    s->reset(n, n);
    const auto inputs = make_inputs(n, 0.35, 32);
    Matching m;
    std::size_t k = 0;
    for (auto _ : state) {
        s->schedule(inputs[k], m);
        benchmark::DoNotOptimize(m);
        k = (k + 1) % inputs.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_LcfCentral(benchmark::State& state) {
    run_scheduler(state, "lcf_central");
}
void BM_LcfCentralRr(benchmark::State& state) {
    run_scheduler(state, "lcf_central_rr");
}
void BM_LcfDist(benchmark::State& state) { run_scheduler(state, "lcf_dist"); }
void BM_LcfDistRr(benchmark::State& state) {
    run_scheduler(state, "lcf_dist_rr");
}
void BM_Pim(benchmark::State& state) { run_scheduler(state, "pim"); }
void BM_Islip(benchmark::State& state) { run_scheduler(state, "islip"); }
void BM_Wavefront(benchmark::State& state) { run_scheduler(state, "wfront"); }
void BM_MaxSize(benchmark::State& state) { run_scheduler(state, "maxsize"); }

void BM_RtlDatapath(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    lcf::hw::RtlCentralScheduler s;
    s.reset(n, n);
    const auto inputs = make_inputs(n, 0.35, 32);
    Matching m;
    std::size_t k = 0;
    for (auto _ : state) {
        s.schedule(inputs[k], m);
        benchmark::DoNotOptimize(m);
        k = (k + 1) % inputs.size();
    }
}

constexpr std::int64_t kRadices[] = {8, 16, 32, 64};

void radix_args(benchmark::internal::Benchmark* b) {
    for (const auto n : kRadices) b->Arg(n);
}

BENCHMARK(BM_LcfCentral)->Apply(radix_args);
BENCHMARK(BM_LcfCentralRr)->Apply(radix_args);
BENCHMARK(BM_LcfDist)->Apply(radix_args);
BENCHMARK(BM_LcfDistRr)->Apply(radix_args);
BENCHMARK(BM_Pim)->Apply(radix_args);
BENCHMARK(BM_Islip)->Apply(radix_args);
BENCHMARK(BM_Wavefront)->Apply(radix_args);
BENCHMARK(BM_MaxSize)->Apply(radix_args);
BENCHMARK(BM_RtlDatapath)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
