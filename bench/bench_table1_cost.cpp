// Regenerates Table 1 of the paper: gate and register counts of the
// central LCF scheduler implementation, partitioned into the per-
// requester slices (the "distributed" logic that can live on line
// cards) and the shared central part — plus the scaling the paper's
// FPGA prototype could not show.

#include <iostream>

#include "hw/gate_model.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    std::uint64_t ports = 16;
    lcf::util::CliParser cli(
        "Table 1: gate/register counts of the LCF scheduler");
    cli.flag("ports", "switch radix for the detail table", &ports);
    if (!cli.parse(argc, argv)) return cli.exit_code();

    using lcf::hw::GateModel;
    using lcf::util::AsciiTable;
    const auto n = static_cast<std::size_t>(ports);

    std::cout << "Table 1 reproduction (n = " << n << ")\n";
    AsciiTable t1;
    t1.header({"", "Distributed", "Central", "Total"});
    const auto slice = GateModel::slice(n);
    const auto central = GateModel::central(n);
    const auto total = GateModel::total(n);
    t1.add_row({"Gate count",
                std::to_string(n) + "x" + std::to_string(slice.gates) + "=" +
                    std::to_string(n * slice.gates),
                std::to_string(central.gates), std::to_string(total.gates)});
    t1.add_row({"Reg. count",
                std::to_string(n) + "x" + std::to_string(slice.registers) +
                    "=" + std::to_string(n * slice.registers),
                std::to_string(central.registers),
                std::to_string(total.registers)});
    t1.print(std::cout);
    std::cout << "(paper, n=16: 16x450=7200 / 767 / 7967 gates; "
                 "16x86=1376 / 216 / 1592 registers)\n\n";

    std::cout << "Scaling (model extrapolation beyond the paper's n = 16):\n";
    AsciiTable scaling;
    scaling.header({"n", "slice gates", "slice regs", "central gates",
                    "central regs", "total gates", "total regs",
                    "XCV600 util"});
    for (const std::size_t radix : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        const auto s = GateModel::slice(radix);
        const auto c = GateModel::central(radix);
        const auto tot = GateModel::total(radix);
        scaling.add_row({std::to_string(radix), std::to_string(s.gates),
                         std::to_string(s.registers), std::to_string(c.gates),
                         std::to_string(c.registers),
                         std::to_string(tot.gates),
                         std::to_string(tot.registers),
                         AsciiTable::num(
                             100.0 * GateModel::xcv600_utilization(radix), 1) +
                             "%"});
    }
    scaling.print(std::cout);
    std::cout << "(the paper reports the n=16 design uses 15% of the "
                 "XCV600's logic resources)\n";
    return 0;
}
