// Ablation beyond the paper: the Figure 12 comparison repeated under
// non-uniform traffic (bursty on/off, hotspot, diagonal). The paper
// simulates only uniform Bernoulli arrivals; this bench shows where the
// LCF advantage grows or shrinks when arrivals are correlated or
// asymmetric.

#include <iostream>
#include <map>

#include "core/factory.hpp"
#include "sim/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    std::uint64_t ports = 16;
    std::uint64_t slots = 50000;
    std::uint64_t threads = 0;
    lcf::util::CliParser cli("Traffic-pattern ablation (bursty / hotspot / "
                             "diagonal vs uniform)");
    cli.flag("ports", "switch radix", &ports)
        .flag("slots", "simulated slots per point", &slots)
        .flag("threads", "worker threads (0 = all cores)", &threads);
    if (!cli.parse(argc, argv)) return cli.exit_code();

    using lcf::util::AsciiTable;
    lcf::sim::SimConfig config;
    config.ports = ports;
    config.slots = slots;
    config.warmup_slots = slots / 10;

    const std::vector<std::string> names = {
        "lcf_central", "lcf_central_rr", "lcf_dist", "pim",
        "islip",       "wfront",         "fifo",     "outbuf"};

    for (const auto* traffic : {"uniform", "bursty", "pareto", "hotspot", "diagonal"}) {
        for (const double load : {0.5, 0.8}) {
            const auto points =
                lcf::sim::sweep(names, {load}, config, traffic,
                                lcf::sched::SchedulerConfig{}, threads);
            AsciiTable t;
            t.header({"scheduler", "mean delay", "p99 delay", "throughput",
                      "dropped"});
            for (const auto& p : points) {
                t.add_row({p.config_name,
                           AsciiTable::num(p.result.mean_delay, 2),
                           AsciiTable::num(p.result.p99_delay, 1),
                           AsciiTable::num(p.result.throughput, 3),
                           std::to_string(p.result.dropped)});
            }
            std::cout << "Traffic " << traffic << ", load " << load << ":\n";
            t.print(std::cout);
            std::cout << "\n";
        }
    }
    std::cout << "(uniform reproduces Figure 12's ordering; bursty inflates "
                 "all delays; hotspot/diagonal limit achievable throughput "
                 "for every scheduler)\n";
    return 0;
}
