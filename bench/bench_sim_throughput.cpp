// google-benchmark end-to-end simulation throughput: whole SwitchSim
// runs (arrivals -> PQ/VOQ -> scheduling -> transfer -> metrics) in
// slots per second, not just raw schedule() calls. This is the number a
// Figure 12 sweep, a replication batch, or a soak run actually pays
// per grid point, and the regression gate for the batched-arrival /
// hot-slot-path work (see docs/performance.md).
//
// Grid: VOQ lcf_central / lcf_dist / islip, n in {16, 64, 256},
// uniform and bursty traffic, offered loads 0.7 / 0.9 / 1.0.
// Benchmark names encode the point as
//   BM_SimThroughput/<scheduler>/<traffic>/<n>/<load%>
// and each run reports items/sec == simulated slots/sec.
//
// Usage: bench_sim_throughput [--json <path>] [google-benchmark flags...]
// --json <path> is shorthand for
// --benchmark_out=<path> --benchmark_out_format=json.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/runner.hpp"

namespace {

// One benchmark iteration simulates this many slots: enough to amortise
// construction and fill the queues past the warm-up transient, small
// enough that google-benchmark still gets several iterations per repeat.
constexpr std::uint64_t kSlots = 2048;
constexpr std::uint64_t kWarmup = 256;

void run_sim_point(benchmark::State& state, const std::string& sched,
                   const std::string& traffic, std::size_t ports,
                   double load) {
    lcf::sim::SimConfig config;
    config.ports = ports;
    config.slots = kSlots;
    config.warmup_slots = kWarmup;
    config.seed = 42;
    const lcf::sched::SchedulerConfig sched_config{.iterations = 4,
                                                   .seed = 17};
    for (auto _ : state) {
        const auto result =
            lcf::sim::run_named(sched, config, traffic, load, sched_config);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kSlots));
}

void register_grid() {
    const std::vector<std::string> scheds = {"lcf_central", "lcf_dist",
                                             "islip"};
    const std::vector<std::string> traffics = {"uniform", "bursty"};
    const std::vector<std::size_t> radices = {16, 64, 256};
    const std::vector<int> load_pcts = {70, 90, 100};
    for (const auto& sched : scheds) {
        for (const auto& traffic : traffics) {
            for (const std::size_t n : radices) {
                for (const int pct : load_pcts) {
                    const std::string name =
                        "BM_SimThroughput/" + sched + "/" + traffic + "/" +
                        std::to_string(n) + "/" + std::to_string(pct);
                    benchmark::RegisterBenchmark(
                        name.c_str(),
                        [sched, traffic, n, pct](benchmark::State& state) {
                            run_sim_point(state, sched, traffic, n,
                                          static_cast<double>(pct) / 100.0);
                        })
                        ->Unit(benchmark::kMillisecond);
                }
            }
        }
    }
}

}  // namespace

int main(int argc, char** argv) {
    // Translate the repo-conventional `--json <path>` into
    // google-benchmark's output flags before Initialize() sees argv.
    std::vector<std::string> storage;
    storage.reserve(static_cast<std::size_t>(argc) + 2);
    for (int i = 0; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--json" && i + 1 < argc) {
            storage.emplace_back(std::string("--benchmark_out=") + argv[i + 1]);
            storage.emplace_back("--benchmark_out_format=json");
            ++i;
        } else {
            storage.emplace_back(argv[i]);
        }
    }
    std::vector<char*> args;
    args.reserve(storage.size());
    for (auto& s : storage) args.push_back(s.data());
    int new_argc = static_cast<int>(args.size());
    register_grid();
    benchmark::Initialize(&new_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
