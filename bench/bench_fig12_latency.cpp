// Regenerates Figure 12 of the paper: mean queuing delay versus offered
// load for the nine switch/scheduler configurations (12a), and the same
// data relative to the output-buffered switch (12b).
//
// Paper parameters (§6.3): 16 ports, VOQ = 256 entries, PQ = 1000
// entries, 4 iterations for the iterative schedulers, 256-entry output
// buffers, uniform Bernoulli traffic.
//
//   ./bench_fig12_latency                  # paper configuration
//   ./bench_fig12_latency --slots 20000    # quicker, noisier
//   ./bench_fig12_latency --csv fig12.csv  # machine-readable series

#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "core/factory.hpp"
#include "sim/runner.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using lcf::util::AsciiTable;

int run(int argc, const char* const* argv) {
    std::uint64_t ports = 16;
    std::uint64_t slots = 100000;
    std::uint64_t iterations = 4;
    std::uint64_t seed = 42;
    std::uint64_t threads = 0;
    std::string traffic = "uniform";
    std::string csv_path;
    bool paranoid = false;
    std::string trace_path;

    lcf::util::CliParser cli(
        "Figure 12: mean queuing delay vs load, nine configurations");
    cli.flag("ports", "switch radix n", &ports)
        .flag("slots", "simulated slots per point", &slots)
        .flag("iterations", "iterations for pim/lcf_dist[_rr]/islip",
              &iterations)
        .flag("seed", "simulation seed", &seed)
        .flag("threads", "worker threads (0 = all cores)", &threads)
        .flag("traffic", "traffic pattern", &traffic)
        .flag("csv", "also write the series to this CSV file", &csv_path)
        .flag("paranoid", "validate scheduler invariants every cycle",
              &paranoid)
        .flag("trace",
              "record the lcf_central_rr run at the highest load and write "
              "its per-cycle trace to this CSV file",
              &trace_path);
    if (!cli.parse(argc, argv)) return cli.exit_code();

    lcf::sim::SimConfig config;
    config.ports = ports;
    config.slots = slots;
    config.warmup_slots = slots / 10;
    config.seed = seed;
    config.paranoid = paranoid;

    const auto names = lcf::core::figure12_names();
    const auto loads = lcf::sim::figure12_loads();
    std::cout << "Figure 12 reproduction: " << ports << "-port switch, "
              << slots << " slots/point, " << traffic << " traffic, "
              << iterations << " iterations\n\n";

    const auto points = lcf::sim::sweep(
        names, loads, config, traffic,
        lcf::sched::SchedulerConfig{.iterations = iterations, .seed = seed},
        threads);

    // Index results: delay[config][load].
    std::map<std::string, std::map<double, double>> delay;
    for (const auto& p : points) {
        delay[p.config_name][p.load] = p.result.mean_delay;
    }

    AsciiTable fig12a;
    {
        std::vector<std::string> header = {"load"};
        header.insert(header.end(), names.begin(), names.end());
        fig12a.header(header);
        for (const double load : loads) {
            std::vector<std::string> row = {AsciiTable::num(load, 2)};
            for (const auto& name : names) {
                row.push_back(AsciiTable::num(delay[name][load], 2));
            }
            fig12a.add_row(row);
        }
    }
    std::cout << "Figure 12a: mean queuing delay [packet time slots]\n";
    fig12a.print(std::cout);

    AsciiTable fig12b;
    {
        std::vector<std::string> header = {"load"};
        header.insert(header.end(), names.begin(), names.end());
        fig12b.header(header);
        for (const double load : loads) {
            std::vector<std::string> row = {AsciiTable::num(load, 2)};
            const double base = delay["outbuf"][load];
            for (const auto& name : names) {
                row.push_back(base > 0.0
                                  ? AsciiTable::num(delay[name][load] / base, 3)
                                  : "-");
            }
            fig12b.add_row(row);
        }
    }
    std::cout << "\nFigure 12b: latency relative to outbuf\n";
    fig12b.print(std::cout);

    // Render both panels as the paper draws them (12a clipped to the
    // published 0..25-slot axis; 12b to the 1..3 band).
    {
        lcf::util::AsciiPlot plot(76, 24);
        plot.y_label("Figure 12a (plot): latency [packets], axis clipped "
                     "at 25 as published");
        plot.x_label("load");
        plot.y_limit(25.0);
        for (const auto& name : names) {
            lcf::util::PlotSeries s{name, {}};
            for (const double load : loads) {
                s.points.emplace_back(load, delay[name][load]);
            }
            plot.add_series(std::move(s));
        }
        std::cout << '\n';
        plot.print(std::cout);
    }
    {
        lcf::util::AsciiPlot plot(76, 18);
        plot.y_label("Figure 12b (plot): latency relative to outbuf, "
                     "clipped at 3 as published");
        plot.x_label("load");
        plot.y_limit(3.0);
        for (const auto& name : names) {
            if (name == "fifo") continue;  // off the published axis
            lcf::util::PlotSeries s{name, {}};
            for (const double load : loads) {
                const double base = delay["outbuf"][load];
                if (base > 0) s.points.emplace_back(load, delay[name][load] / base);
            }
            plot.add_series(std::move(s));
        }
        std::cout << '\n';
        plot.print(std::cout);
    }

    // The paper's headline comparisons, extracted from the sweep.
    const double hi = 0.9;
    std::cout << "\nHeadline checks (load " << hi << "):\n"
              << "  lcf_central / outbuf latency ratio: "
              << AsciiTable::num(delay["lcf_central"][hi] / delay["outbuf"][hi],
                                 2)
              << "  (paper: ~1.4 at high load)\n"
              << "  lcf_dist vs pim: "
              << AsciiTable::num(delay["lcf_dist"][hi], 2) << " vs "
              << AsciiTable::num(delay["pim"][hi], 2)
              << "  (paper: lcf_dist lower up to ~0.9)\n"
              << "  islip vs wfront: "
              << AsciiTable::num(delay["islip"][hi], 2) << " vs "
              << AsciiTable::num(delay["wfront"][hi], 2)
              << "  (paper: similar)\n";

    if (paranoid) {
        const auto totals = lcf::sim::aggregate_counters(points);
        std::cout << "\nParanoid mode: " << totals.cycles
                  << " scheduling cycles validated, "
                  << totals.paranoid_violations << " violations, max "
                  << "starvation age " << totals.max_starvation_age << "\n";
    }

    if (!csv_path.empty()) {
        std::ofstream out(csv_path);
        if (!out) {
            std::cerr << "error: cannot write CSV file " << csv_path << "\n";
            return 1;
        }
        lcf::util::CsvWriter csv(out);
        csv.row("traffic", "scheduler", "load", "mean_delay", "p99_delay",
                "throughput", "dropped", "sched_cycles", "mean_matching",
                "max_starvation_age");
        for (const auto& p : points) {
            csv.row(traffic, p.config_name, p.load, p.result.mean_delay,
                    p.result.p99_delay, p.result.throughput,
                    p.result.dropped, p.result.sched.cycles,
                    p.result.sched.mean_matching(),
                    p.result.sched.max_starvation_age);
        }
        std::cout << "\nCSV series written to " << csv_path << "\n";
    }

    if (!trace_path.empty()) {
        // One extra instrumented run: the paper's flagship scheduler at
        // the sweep's highest load, with the trace ring sized to keep
        // every cycle.
        lcf::sim::SimConfig traced = config;
        traced.trace_capacity = traced.slots;
        auto scheduler = lcf::core::make_scheduler(
            "lcf_central_rr",
            lcf::sched::SchedulerConfig{.iterations = iterations, .seed = seed});
        auto gen = lcf::traffic::make_traffic(traffic, loads.back());
        lcf::sim::SwitchSim sim(traced, std::move(scheduler), std::move(gen));
        sim.run();
        std::ofstream out(trace_path);
        if (!out) {
            std::cerr << "error: cannot write trace file " << trace_path
                      << "\n";
            return 1;
        }
        sim.trace()->export_csv(out);
        std::cout << "Per-cycle trace of lcf_central_rr at load "
                  << AsciiTable::num(loads.back(), 2) << " written to "
                  << trace_path << " (" << sim.trace()->size()
                  << " cycles)\n";
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
