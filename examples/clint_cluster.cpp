// Simulates the Clint cluster interconnect of §4: sixteen hosts on a
// star topology with two physically separate channels — the bulk
// channel, scheduled collision-free by the central LCF scheduler
// through the three-stage pipeline of Figure 5 (configuration/grant,
// transfer, acknowledgment), and the quick channel, which sends
// immediately and drops on collision. Includes CRC-protected control
// packets and optional link-error injection.
//
//   ./clint_cluster
//   ./clint_cluster --hosts 8 --bulk-load 0.8 --ber 1e-6

#include <iostream>

#include "clint/clint_sim.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    std::uint64_t hosts = 16;
    std::uint64_t slots = 20000;
    double bulk_load = 0.6;
    double quick_load = 0.2;
    double ber = 0.0;
    lcf::util::CliParser cli("Clint cluster simulation (bulk + quick "
                             "channels)");
    cli.flag("hosts", "cluster size (<= 16)", &hosts)
        .flag("slots", "slots to simulate (8.5 us each on real Clint)",
              &slots)
        .flag("bulk-load", "bulk packets per host per slot", &bulk_load)
        .flag("quick-load", "quick packets per host per slot", &quick_load)
        .flag("ber", "link bit-error rate", &ber);
    if (!cli.parse(argc, argv)) return cli.exit_code();

    lcf::clint::ClintConfig config;
    config.hosts = hosts;
    config.slots = slots;
    config.warmup_slots = slots / 10;
    config.bulk_load = bulk_load;
    config.quick_load = quick_load;
    config.bit_error_rate = ber;

    std::cout << "Clint cluster: " << hosts << " hosts, " << slots
              << " slots, bulk load " << bulk_load << ", quick load "
              << quick_load << ", BER " << ber << "\n\n";

    const auto r = lcf::clint::run_clint(config);

    using lcf::util::AsciiTable;
    AsciiTable t;
    t.header({"metric", "bulk (LCF-scheduled)", "quick (best-effort)"});
    t.add_row({"generated", std::to_string(r.bulk.generated),
               std::to_string(r.quick.generated)});
    t.add_row({"delivered", std::to_string(r.bulk.delivered_unique),
               std::to_string(r.quick.delivered_unique)});
    t.add_row({"mean delay [slots]", AsciiTable::num(r.bulk.mean_delay, 2),
               AsciiTable::num(r.quick.mean_delay, 2)});
    t.add_row({"goodput / delivery", AsciiTable::num(r.bulk.goodput, 3),
               AsciiTable::num(r.quick.delivery_ratio, 3)});
    t.add_row({"collisions", "0 (scheduled)",
               std::to_string(r.quick.collisions)});
    t.add_row({"retransmissions", std::to_string(r.bulk.retransmissions),
               std::to_string(r.quick.retransmissions)});
    t.add_row({"CRC errors seen",
               std::to_string(r.bulk.config_crc_errors +
                              r.bulk.grant_crc_errors),
               std::to_string(r.quick.corruptions)});
    t.print(std::cout);

    std::cout << "\nOn the real Clint prototype a slot is 8.5 us (16-port, "
                 "32 Gbit/s aggregate); the LCF scheduler computes each "
                 "bulk schedule in 1.26 us of that window (Table 2).\n"
              << "The segregated design gives bulk traffic collision-free "
                 "throughput while quick traffic keeps single-slot latency "
                 "whenever its target is uncontended.\n";
    return 0;
}
