// §4.3's motivating use of the precalculated schedule: real-time
// traffic. A periodic flow needs one switch slot every P cycles with
// bounded jitter. Under regular LCF scheduling the flow competes with
// background traffic and its service times jitter; reserving its slot
// through the precalculated schedule makes service exactly periodic —
// the reservation wins stage 1 before any LCF decision is taken.
//
//   ./realtime_reservation
//   ./realtime_reservation --period 8 --background 0.9

#include <cmath>
#include <iostream>
#include <vector>

#include "core/lcf_central.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using lcf::core::LcfCentralScheduler;
using lcf::core::MulticastResult;
using lcf::core::PrecalcSchedule;
using lcf::sched::RequestMatrix;

struct JitterStats {
    lcf::util::RunningStat gaps;  // cycles between consecutive services
    std::uint64_t services = 0;
};

/// Run `cycles` scheduling cycles with random background backlog; the
/// real-time flow is [rt_input, rt_output], persistently backlogged.
/// When `reserve` is true it claims its slot via the precalculated
/// schedule every `period` cycles; otherwise it is an ordinary request.
JitterStats run(std::size_t n, std::size_t cycles, double background,
                std::size_t period, bool reserve, std::uint64_t seed) {
    constexpr std::size_t kRtInput = 0;
    constexpr std::size_t kRtOutput = 0;

    LcfCentralScheduler scheduler(
        lcf::core::LcfCentralOptions{.variant = lcf::core::RrVariant::kNone});
    scheduler.reset(n, n);
    lcf::util::Xoshiro256 rng(seed);

    JitterStats stats;
    std::uint64_t last_service = 0;
    bool seen_first = false;
    for (std::size_t c = 0; c < cycles; ++c) {
        RequestMatrix requests(n);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                if (rng.next_bool(background)) requests.set(i, j);
            }
        }
        requests.set(kRtInput, kRtOutput);  // the flow is always backlogged

        PrecalcSchedule pre(n);
        if (reserve && c % period == 0) {
            pre.claim(kRtInput, kRtOutput);
        }
        MulticastResult out;
        scheduler.schedule_with_precalc(requests, pre, out);

        if (out.fanout[kRtOutput] == static_cast<std::int32_t>(kRtInput)) {
            if (seen_first) {
                stats.gaps.add(static_cast<double>(c - last_service));
            }
            last_service = c;
            seen_first = true;
            ++stats.services;
        }
    }
    return stats;
}

}  // namespace

int main(int argc, char** argv) {
    std::uint64_t ports = 16;
    std::uint64_t cycles = 20000;
    std::uint64_t period = 4;
    double background = 0.8;
    lcf::util::CliParser cli("Real-time slot reservation via the "
                             "precalculated schedule (§4.3)");
    cli.flag("ports", "switch radix", &ports)
        .flag("cycles", "scheduling cycles", &cycles)
        .flag("period", "reserve one slot every P cycles", &period)
        .flag("background", "background request density", &background);
    if (!cli.parse(argc, argv)) return cli.exit_code();

    std::cout << "Real-time flow [I0 -> T0] on a " << ports
              << "-port switch, background density " << background
              << ", target period " << period << " cycles.\n\n";

    lcf::util::AsciiTable t;
    t.header({"mode", "services", "mean gap", "gap stddev (jitter)",
              "max gap"});
    for (const bool reserve : {false, true}) {
        const auto s = run(ports, cycles, background, period, reserve, 99);
        t.add_row({reserve ? "precalc reservation" : "best effort (pure LCF)",
                   std::to_string(s.services),
                   lcf::util::AsciiTable::num(s.gaps.mean(), 2),
                   lcf::util::AsciiTable::num(s.gaps.stddev(), 2),
                   lcf::util::AsciiTable::num(s.gaps.max(), 0)});
    }
    t.print(std::cout);
    std::cout << "\nWith the reservation, the flow is served on a hard "
                 "schedule: the precalculated stage admits it before any "
                 "LCF decision, so jitter collapses (extra best-effort "
                 "services may still occur between reservations).\n"
                 "Without it, service depends on the competition: gaps "
                 "vary and can stretch far beyond the target period.\n";
    return 0;
}
