// Drives the Clint bulk channel through a deterministic fault storm —
// staggered host crash/restart cycles, control-link outages, payload
// and acknowledgment loss epochs, bit-error bursts, and scheduler
// stalls — with paranoid invariant checking on, then prints what the
// recovery machinery did about it: retransmissions, recoveries and
// their latency, duplicate suppression, abandonment, and the exact
// conservation identity the accounting maintains.
//
//   ./fault_storm
//   ./fault_storm --hosts 8 --slots 50000 --ber 1e-5 --crash-every 4000

#include <iostream>

#include "clint/bulk_channel.hpp"
#include "traffic/bernoulli.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    std::uint64_t hosts = 8;
    std::uint64_t slots = 30000;
    double load = 0.5;
    double ber = 1e-6;
    std::uint64_t crash_every = 5000;
    std::uint64_t outage = 1000;
    double loss = 0.05;
    lcf::util::CliParser cli(
        "Clint bulk channel under a deterministic fault storm");
    cli.flag("hosts", "cluster size (<= 16)", &hosts)
        .flag("slots", "slots to simulate", &slots)
        .flag("load", "bulk packets per host per slot", &load)
        .flag("ber", "baseline link bit-error rate", &ber)
        .flag("crash-every", "one host crashes every this many slots "
                             "(0 = no crashes)", &crash_every)
        .flag("outage", "length of each link-down burst in slots", &outage)
        .flag("loss", "packet-loss probability during storm epochs", &loss);
    if (!cli.parse(argc, argv)) return cli.exit_code();

    lcf::clint::BulkChannelConfig config;
    config.hosts = hosts;
    config.slots = slots;
    config.warmup_slots = slots / 10;
    config.bit_error_rate = ber;
    config.max_retries = 16;
    config.exponential_backoff = true;
    config.paranoid = true;

    // The storm: rotate crashes through the hosts, knock one uplink and
    // one downlink out for a burst, and lay loss epochs over the data
    // and ack paths for the middle half of the run.
    auto& plan = config.fault_plan;
    if (crash_every > 0) {
        std::size_t victim = 0;
        for (std::uint64_t at = crash_every; at + crash_every / 2 < slots;
             at += crash_every) {
            plan.add_host_crash(victim, at, at + crash_every / 2);
            victim = (victim + 1) % hosts;
        }
    }
    plan.add_link_down({lcf::fault::LinkKind::kUplink, 1}, slots / 4,
                       slots / 4 + outage);
    plan.add_link_down({lcf::fault::LinkKind::kDownlink, 2}, slots / 2,
                       slots / 2 + outage);
    plan.add_packet_loss({lcf::fault::LinkKind::kData, lcf::fault::kAllLinks},
                         slots / 4, 3 * slots / 4, loss);
    plan.add_packet_loss({lcf::fault::LinkKind::kAck, lcf::fault::kAllLinks},
                         slots / 4, 3 * slots / 4, loss);
    plan.add_scheduler_stall(slots / 3, slots / 3 + 64);

    std::cout << "Fault storm: " << hosts << " hosts, " << slots
              << " slots, load " << load << ", baseline BER " << ber
              << ", storm loss " << loss << "\n\n";

    lcf::clint::BulkChannelSim sim(
        config, std::make_unique<lcf::traffic::BernoulliUniform>(load));
    const auto r = sim.run();
    const auto a = sim.accounting();

    using lcf::util::AsciiTable;
    AsciiTable t;
    t.header({"metric", "value"});
    t.add_row({"generated", std::to_string(r.generated)});
    t.add_row({"delivered (unique)", std::to_string(r.delivered_unique)});
    t.add_row({"duplicates suppressed",
               std::to_string(r.duplicate_deliveries)});
    t.add_row({"retransmissions", std::to_string(r.retransmissions)});
    t.add_row({"recovered deliveries", std::to_string(r.recovered)});
    t.add_row({"mean recovery delay [slots]",
               AsciiTable::num(r.mean_recovery_delay, 2)});
    t.add_row({"abandoned (undelivered)", std::to_string(r.abandoned)});
    t.add_row({"lost to crashes", std::to_string(r.crash_lost)});
    t.add_row({"configs / grants lost",
               std::to_string(r.configs_lost) + " / " +
                   std::to_string(r.grants_lost)});
    t.add_row({"fault crashes / restarts",
               std::to_string(r.faults.crashes) + " / " +
                   std::to_string(r.faults.restarts)});
    t.add_row({"fault packet drops", std::to_string(r.faults.packets_dropped)});
    t.add_row({"stalled scheduler slots",
               std::to_string(r.sched.stalled_cycles)});
    t.add_row({"p50 / p99 delay [slots]",
               std::to_string(r.p50_delay) + " / " +
                   std::to_string(r.p99_delay)});
    t.add_row({"goodput", AsciiTable::num(r.goodput, 3)});
    t.print(std::cout);

    std::cout << "\nConservation: " << a.generated << " generated = "
              << a.delivered_unique << " delivered + " << a.queued
              << " queued + " << a.in_flight << " in flight + " << a.dropped
              << " dropped + " << a.abandoned << " abandoned -> "
              << (a.balanced() ? "EXACT" : "VIOLATED") << "\n";
    if (!a.balanced()) return 1;
    std::cout << "Paranoid invariant checks: "
              << (r.sched.paranoid_violations == 0 ? "clean" : "VIOLATIONS")
              << "\n";
    return r.sched.paranoid_violations == 0 ? 0 : 1;
}
