// Capstone example tying every model in the library together: for a
// given switch radix and target load, compare the central and
// distributed LCF designs the way §6 of the paper does — implementation
// cost (Table 1 model), scheduling time (Table 2 model), communication
// cost (§6.2 model, analytic and measured), and simulated queuing delay
// — and print a design-recommendation summary.
//
//   ./design_explorer --ports 32 --load 0.85

#include <iostream>

#include "core/factory.hpp"
#include "hw/comm_model.hpp"
#include "hw/dist_message_sim.hpp"
#include "hw/gate_model.hpp"
#include "hw/timing_model.hpp"
#include "sim/runner.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    std::uint64_t ports = 16;
    double load = 0.85;
    std::uint64_t iterations = 4;
    std::uint64_t slots = 40000;
    lcf::util::CliParser cli("LCF switch design explorer");
    cli.flag("ports", "switch radix", &ports)
        .flag("load", "design-point offered load", &load)
        .flag("iterations", "distributed-scheduler iterations", &iterations)
        .flag("slots", "simulation length", &slots);
    if (!cli.parse(argc, argv)) return cli.exit_code();

    using lcf::util::AsciiTable;
    const auto n = static_cast<std::size_t>(ports);
    const auto iters = static_cast<std::size_t>(iterations);

    std::cout << "LCF design point: " << n << " ports at load " << load
              << "\n\n";

    lcf::sim::SimConfig config;
    config.ports = n;
    config.slots = slots;
    config.warmup_slots = slots / 10;

    const auto central =
        lcf::sim::run_named("lcf_central_rr", config, "uniform", load);
    const auto dist = lcf::sim::run_named(
        "lcf_dist_rr", config, "uniform", load,
        lcf::sched::SchedulerConfig{.iterations = iters});
    const auto outbuf = lcf::sim::run_named("outbuf", config, "uniform", load);

    const lcf::hw::TimingModel timing;
    const auto gates = lcf::hw::GateModel::total(n);

    AsciiTable t;
    t.header({"criterion", "central LCF (rr)", "distributed LCF (rr)",
              "reference"});
    t.add_row({"mean delay [slots]", AsciiTable::num(central.mean_delay, 2),
               AsciiTable::num(dist.mean_delay, 2),
               AsciiTable::num(outbuf.mean_delay, 2) + " (outbuf)"});
    t.add_row({"p99 delay [slots]", AsciiTable::num(central.p99_delay, 0),
               AsciiTable::num(dist.p99_delay, 0),
               AsciiTable::num(outbuf.p99_delay, 0) + " (outbuf)"});
    t.add_row({"scheduling time",
               AsciiTable::num(
                   timing.seconds(lcf::hw::TimingModel::total_cycles(n)) * 1e9,
                   0) + " ns (5n+3 cyc)",
               std::to_string(iters) + " iterations (O(log2 n))",
               "66 MHz clock"});
    t.add_row({"logic cost (gates)", std::to_string(gates.gates),
               std::to_string(n) + " slices on line cards",
               AsciiTable::num(100 * lcf::hw::GateModel::xcv600_utilization(n),
                               1) + "% of XCV600"});
    t.add_row({"control traffic/cycle",
               std::to_string(lcf::hw::CommModel::central_bits(n)) + " bits",
               std::to_string(lcf::hw::CommModel::distributed_bits(n, iters)) +
                   " bits (bound)",
               AsciiTable::num(lcf::hw::CommModel::overhead_ratio(n, iters),
                               1) + "x"});
    t.add_row({"fairness floor", "b/n^2 (hard)", "bounded (RR position)",
               "paper §3/§5"});
    t.print(std::cout);

    // Measured control traffic at this load for the distributed design.
    {
        lcf::hw::DistMessageSim msg(iters);
        msg.reset(n, n);
        // Approximate the request density the simulated load produces.
        lcf::sched::Matching m;
        lcf::util::Xoshiro256 rng(7);
        for (int cycle = 0; cycle < 400; ++cycle) {
            lcf::sched::RequestMatrix r(n);
            for (std::size_t i = 0; i < n; ++i) {
                for (std::size_t j = 0; j < n; ++j) {
                    if (rng.next_bool(load / static_cast<double>(n) * 4)) {
                        r.set(i, j);
                    }
                }
            }
            msg.schedule(r, m);
        }
        std::cout << "\nMeasured distributed control traffic at this "
                     "operating point: "
                  << AsciiTable::num(msg.bits_per_cycle(), 0)
                  << " bits/cycle ("
                  << AsciiTable::num(
                         100.0 * msg.bits_per_cycle() /
                             static_cast<double>(
                                 lcf::hw::CommModel::distributed_bits(n,
                                                                      iters)),
                         1)
                  << "% of the worst-case bound).\n";
    }

    std::cout << "\nRule of thumb (the paper's §5/§6 conclusion): up to "
                 "~16-32 ports the central scheduler wins on delay and "
                 "wiring; beyond that, O(n) scheduling time and the "
                 "backplane pin count favour the distributed design "
                 "despite its control-traffic overhead.\n";
    return 0;
}
