// Demonstrates the throughput/fairness trade-off of §3 interactively:
// holds the paper's Figure 3 backlog on a 4x4 switch and shows, flow by
// flow, how maximum-size matching and pure LCF permanently starve
// contended requests while the round-robin variants serve every flow —
// with the achieved switch throughput printed alongside, so the price
// of each guarantee is visible.

#include <iomanip>
#include <iostream>
#include <optional>
#include <vector>

#include "core/factory.hpp"
#include "obs/paranoid_checker.hpp"
#include "sched/scheduler.hpp"
#include "util/cli.hpp"

namespace {

using lcf::sched::Matching;
using lcf::sched::RequestMatrix;

void show_service(lcf::sched::Scheduler& s, const RequestMatrix& r,
                  std::size_t cycles, bool paranoid) {
    const std::size_t n = r.inputs();
    std::vector<std::uint64_t> counts(n * n, 0);
    std::uint64_t grants = 0;
    // Pure LCF and maxsize starve flows by design here, so only the
    // structural invariants are checked — the fairness window applies
    // to the round-robin variants alone (options_for knows which).
    std::optional<lcf::obs::ParanoidChecker> checker;
    if (paranoid) {
        checker.emplace(lcf::obs::ParanoidChecker::options_for(
            s.name(), s.iteration_limit()));
        checker->reset(n, n);
    }
    Matching m;
    for (std::size_t c = 0; c < cycles; ++c) {
        s.schedule(r, m);
        if (checker) {
            checker->check_cycle(r, m);
            checker->check_iterations(s.last_iterations());
        }
        for (std::size_t i = 0; i < n; ++i) {
            if (m.output_of(i) != lcf::sched::kUnmatched) {
                ++counts[i * n + static_cast<std::size_t>(m.output_of(i))];
                ++grants;
            }
        }
    }
    std::cout << "  service matrix (grants per flow over " << cycles
              << " cycles; '.' = no request):\n";
    for (std::size_t i = 0; i < n; ++i) {
        std::cout << "    I" << i << ": ";
        for (std::size_t j = 0; j < n; ++j) {
            if (!r.get(i, j)) {
                std::cout << std::setw(7) << ".";
            } else {
                std::cout << std::setw(7) << counts[i * n + j]
                          << (counts[i * n + j] == 0 ? "*" : " ");
            }
        }
        std::cout << "\n";
    }
    std::cout << "  mean grants/cycle: "
              << static_cast<double>(grants) / static_cast<double>(cycles)
              << "   (* = starved flow)\n";
    if (checker) {
        std::cout << "  paranoid: " << checker->cycles_checked()
                  << " cycles validated, " << checker->violation_count()
                  << " violations, max starvation age "
                  << checker->max_starvation_age() << "\n";
    }
    std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
    std::uint64_t cycles = 16000;
    bool paranoid = false;
    lcf::util::CliParser cli("Starvation demo on the paper's Figure 3 "
                             "backlog");
    cli.flag("cycles", "scheduling cycles to run", &cycles)
        .flag("paranoid", "validate scheduler invariants every cycle",
              &paranoid);
    if (!cli.parse(argc, argv)) return cli.exit_code();

    // The Figure 3 request pattern, held persistent: every VOQ that is
    // non-empty stays non-empty (saturated flows).
    const RequestMatrix backlog = lcf::sched::make_requests(
        4, {{0, 1}, {0, 2}, {1, 0}, {1, 2}, {1, 3}, {2, 0}, {2, 2}, {2, 3},
            {3, 1}});

    std::cout << "Persistent backlog (Figure 3): I0->{T1,T2}, "
                 "I1->{T0,T2,T3}, I2->{T0,T2,T3}, I3->{T1}\n\n";
    std::cout << "A maximum-size matching always grants 4 connections here, "
                 "but the only size-4 matchings route T1 to I3 -- so I0's "
                 "request for T1 waits forever (§3's starvation argument).\n\n";

    for (const auto* name :
         {"maxsize", "lcf_central", "lcf_central_rr", "lcf_dist_rr"}) {
        auto s = lcf::core::make_scheduler(name);
        s->reset(4, 4);
        std::cout << name << ":\n";
        show_service(*s, backlog, cycles, paranoid);
    }

    std::cout << "lcf_central_rr trades ~maximum matchings for the hard "
                 "b/n^2 floor: every flow above is served at least "
              << cycles / 16 << " times.\n";
    return 0;
}
