// Record a stochastic workload to a CSV trace, then replay it through
// different schedulers — apples-to-apples comparison on *identical*
// arrivals, and a template for feeding externally captured traces into
// the simulator.
//
//   ./record_replay                     # record, save, replay, compare
//   ./record_replay --trace my.csv      # choose the trace file path

#include <fstream>
#include <iostream>

#include "core/factory.hpp"
#include "sim/switch_sim.hpp"
#include "traffic/bernoulli.hpp"
#include "traffic/trace_io.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    std::string trace_path = "recorded_trace.csv";
    std::uint64_t ports = 16;
    std::uint64_t slots = 20000;
    double load = 0.85;
    lcf::util::CliParser cli("Record a workload, replay it across "
                             "schedulers");
    cli.flag("trace", "trace CSV path", &trace_path)
        .flag("ports", "switch radix", &ports)
        .flag("slots", "slots to record", &slots)
        .flag("load", "offered load while recording", &load);
    if (!cli.parse(argc, argv)) return cli.exit_code();

    using namespace lcf;
    sim::SimConfig config;
    config.ports = ports;
    config.slots = slots;
    config.warmup_slots = slots / 10;

    // 1. Record: run one simulation with a recording decorator around
    //    the Bernoulli generator and save the tape.
    auto recording = std::make_unique<traffic::RecordingTraffic>(
        std::make_unique<traffic::BernoulliUniform>(load));
    traffic::RecordingTraffic* tape = recording.get();
    sim::SwitchSim recorder(config, core::make_scheduler("lcf_central_rr"),
                            std::move(recording));
    recorder.run();
    {
        std::ofstream out(trace_path);
        traffic::write_trace_csv(out, tape->entries());
    }
    std::cout << "Recorded " << tape->entries().size() << " arrivals to "
              << trace_path << "\n\n";

    // 2. Replay: load the trace back and run every scheduler on the
    //    exact same arrival sequence.
    std::ifstream in(trace_path);
    const auto entries = traffic::read_trace_csv(in);

    util::AsciiTable t;
    t.header({"scheduler", "mean delay", "p99 delay", "delivered"});
    for (const auto* name :
         {"lcf_central", "lcf_central_rr", "lcf_dist", "pim", "islip",
          "wfront"}) {
        sim::SwitchSim replay(config, core::make_scheduler(name),
                              std::make_unique<traffic::TraceTraffic>(entries));
        const auto r = replay.run();
        t.add_row({name, util::AsciiTable::num(r.mean_delay, 2),
                   util::AsciiTable::num(r.p99_delay, 0),
                   std::to_string(r.delivered)});
    }
    t.print(std::cout);
    std::cout << "\nIdentical arrivals for every row: the delay spread is "
                 "pure scheduling quality, with zero traffic noise.\n";
    return 0;
}
