// Walks through the precalculated-schedule mechanism of §4.3: multicast
// connections claimed ahead of the regular LCF pass, the integrity
// check that drops conflicting claims, and the two-stage schedule that
// fills the remaining ports — first standalone (Figure 7), then through
// the full Clint bulk pipeline with configuration packets.

#include <iostream>

#include "clint/bulk_channel.hpp"
#include "core/lcf_central.hpp"
#include "traffic/traffic.hpp"

namespace {

void print_fanout(const lcf::core::MulticastResult& result) {
    for (std::size_t j = 0; j < result.fanout.size(); ++j) {
        std::cout << "    T" << j << " <- ";
        if (result.fanout[j] == lcf::sched::kUnmatched) {
            std::cout << "(idle)";
        } else {
            std::cout << "I" << result.fanout[j];
        }
        std::cout << "\n";
    }
    for (const auto& [input, output] : result.dropped) {
        std::cout << "    dropped precalculated claim I" << input << " -> T"
                  << output << " (integrity check)\n";
    }
}

}  // namespace

int main() {
    using namespace lcf;

    // ------------------------------------------------------------------
    // 1. Figure 7: a multicast connection precalculated from I3 to T1
    //    and T3, with unicast requests competing for the other targets.
    core::LcfCentralScheduler scheduler;
    scheduler.reset(4, 4);

    sched::RequestMatrix requests(4);
    requests.set(0, 0);
    requests.set(0, 2);
    requests.set(1, 0);
    requests.set(1, 2);
    requests.set(2, 0);
    requests.set(2, 2);

    core::PrecalcSchedule precalc(4);
    precalc.claim(3, 1);
    precalc.claim(3, 3);  // I3 multicasts to T1 and T3

    core::MulticastResult result;
    scheduler.schedule_with_precalc(requests, precalc, result);
    std::cout << "Figure 7: multicast I3 -> {T1, T3} plus unicast "
                 "requests:\n";
    print_fanout(result);

    // ------------------------------------------------------------------
    // 2. Conflicting precalculated claims: the scheduler keeps one and
    //    drops the rest (§4.3's integrity check).
    core::PrecalcSchedule conflicting(4);
    conflicting.claim(0, 2);
    conflicting.claim(1, 2);  // both claim T2
    scheduler.schedule_with_precalc(sched::RequestMatrix(4), conflicting,
                                    result);
    std::cout << "\nConflicting claims on T2:\n";
    print_fanout(result);

    // ------------------------------------------------------------------
    // 3. The same mechanism end to end through the Clint bulk channel:
    //    multicasts ride the configuration packets' `pre` field and are
    //    admitted by the switch's precalculated stage alongside unicast
    //    traffic.
    clint::BulkChannelConfig config;
    config.hosts = 8;
    config.slots = 1000;
    config.warmup_slots = 0;
    clint::BulkChannelSim sim(config, traffic::make_traffic("uniform", 0.3));
    for (int k = 0; k < 20; ++k) {
        sim.enqueue_multicast(static_cast<std::size_t>(k % 8),
                              0b0101'0000);  // to T4 and T6
    }
    const auto stats = sim.run();
    std::cout << "\nClint bulk channel, 8 hosts, 1000 slots, 20 two-way "
                 "multicasts injected:\n"
              << "  multicast copies delivered: " << stats.multicast_copies
              << "\n  unicast packets delivered: " << stats.delivered_unique
              << "\n  mean unicast delay:        " << stats.mean_delay
              << " slots\n";
    std::cout << "\nThe precalculated schedule reuses the scheduler's "
                 "existing logic (2n+1 extra cycles, Table 2) and costs "
                 "regular traffic nothing when idle.\n";
    return 0;
}
