// Quickstart: schedule one cycle of a 4x4 switch by hand with the
// central LCF scheduler (the paper's Figure 3 example), then run a
// complete 16-port switch simulation under uniform traffic and print
// the headline metrics.
//
//   $ cmake -B build -G Ninja && cmake --build build
//   $ ./build/examples/quickstart

#include <fstream>
#include <iostream>
#include <string_view>

#include "core/factory.hpp"
#include "core/lcf_central.hpp"
#include "sim/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace lcf;

    bool paranoid = false;
    std::string trace_path;
    util::CliParser cli("Quickstart: Figure 3 by hand + a 16-port simulation");
    cli.flag("paranoid", "validate scheduler invariants every cycle",
             &paranoid)
        .flag("trace", "write lcf_central's per-cycle trace to this JSONL file",
              &trace_path);
    if (!cli.parse(argc, argv)) return cli.exit_code();

    // ------------------------------------------------------------------
    // 1. One scheduling cycle, by hand — the paper's Figure 3.
    //
    // Initiators (inputs) request targets (outputs):
    //   I0 -> {T1, T2}    I1 -> {T0, T2, T3}
    //   I2 -> {T0, T2, T3}    I3 -> {T1}
    sched::RequestMatrix requests(4);
    requests.set(0, 1);
    requests.set(0, 2);
    requests.set(1, 0);
    requests.set(1, 2);
    requests.set(1, 3);
    requests.set(2, 0);
    requests.set(2, 2);
    requests.set(2, 3);
    requests.set(3, 1);

    core::LcfCentralScheduler scheduler;  // lcf_central_rr by default
    scheduler.reset(4, 4);
    scheduler.set_diagonal(1, 0);  // Figure 3's round-robin diagonal

    sched::Matching matching;
    scheduler.schedule(requests, matching);

    std::cout << "Figure 3 schedule (input -> output): "
              << matching.to_string() << "\n";
    std::cout << "  granted " << matching.size() << "/4 connections; "
              << "maximal: " << std::boolalpha
              << matching.maximal_for(requests) << "\n\n";

    // ------------------------------------------------------------------
    // 2. A full switch simulation: 16 ports, uniform Bernoulli traffic
    //    at 90% load — the high-load regime where Figure 12 separates
    //    the schedulers.
    sim::SimConfig config;          // paper defaults: VOQ 256, PQ 1000
    config.ports = 16;
    config.slots = 50000;
    config.warmup_slots = 5000;
    config.paranoid = paranoid;

    for (const auto* name : {"lcf_central", "islip", "outbuf"}) {
        const auto result = sim::run_named(name, config, "uniform", 0.9);
        std::cout << name << ": mean delay "
                  << util::AsciiTable::num(result.mean_delay, 2)
                  << " slots, p99 "
                  << util::AsciiTable::num(result.p99_delay, 0)
                  << ", throughput "
                  << util::AsciiTable::num(result.throughput, 3) << "\n";
        if (paranoid && name != std::string_view("outbuf")) {
            std::cout << "  paranoid: " << result.sched.cycles
                      << " cycles validated, "
                      << result.sched.paranoid_violations << " violations\n";
        }
    }

    if (!trace_path.empty()) {
        sim::SimConfig traced = config;
        traced.slots = 1000;
        traced.warmup_slots = 0;
        traced.trace_capacity = traced.slots;
        sim::SwitchSim sim(traced, core::make_scheduler("lcf_central"),
                           traffic::make_traffic("uniform", 0.9));
        sim.run();
        std::ofstream out(trace_path);
        if (!out) {
            std::cerr << "error: cannot write trace file " << trace_path
                      << "\n";
            return 1;
        }
        sim.trace()->export_jsonl(out);
        std::cout << "\nPer-cycle trace (" << sim.trace()->size()
                  << " cycles) written to " << trace_path << "\n";
    }
    std::cout << "\nThe LCF scheduler tracks the output-buffered ideal far "
                 "closer than iSLIP at high load -- the paper's headline "
                 "result.\n";
    return 0;
}
