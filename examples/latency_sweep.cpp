// Latency-versus-load sweep for any subset of the Figure 12
// configurations, with CSV output — the programmable version of
// bench_fig12_latency for users who want their own grids, traffic
// patterns, or switch geometries.
//
//   ./latency_sweep --schedulers lcf_central,islip,outbuf
//                   --loads 0.5,0.8,0.95 --traffic bursty --csv out.csv
// (one command line; wrapped here for width)

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "sim/runner.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

std::vector<std::string> split(const std::string& s) {
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty()) out.push_back(item);
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    std::string schedulers = "lcf_central,lcf_central_rr,islip,pim,outbuf";
    std::string loads_arg = "0.1,0.3,0.5,0.7,0.8,0.9,0.95,1.0";
    std::string traffic = "uniform";
    std::string csv_path;
    // Flagship CLI contract (tools/lint_contracts.py, rule
    // config-surface): every scalar SimConfig knob is exposed as a flag
    // here, so any simulation the library can run is reachable from the
    // command line. Defaults mirror SimConfig's (paper values).
    lcf::sim::SimConfig defaults;
    std::uint64_t ports = defaults.ports;
    std::uint64_t slots = 50000;
    std::uint64_t warmup_slots = 0;  // 0 = slots / 10
    std::uint64_t seed = defaults.seed;
    std::uint64_t voq_capacity = defaults.voq_capacity;
    std::uint64_t pq_capacity = defaults.pq_capacity;
    std::uint64_t fifo_capacity = defaults.fifo_capacity;
    std::uint64_t outbuf_capacity = defaults.outbuf_capacity;
    std::uint64_t speedup = defaults.speedup;
    std::uint64_t clos_middle = defaults.clos_middle;
    std::uint64_t clos_group = defaults.clos_group;
    std::uint64_t trace_capacity = defaults.trace_capacity;
    std::uint64_t iterations = 4;
    std::uint64_t threads = 0;
    bool record_service_matrix = defaults.record_service_matrix;
    bool paranoid = false;

    lcf::util::CliParser cli("Custom latency-vs-load sweep");
    cli.flag("schedulers", "comma-separated Figure 12 names", &schedulers)
        .flag("loads", "comma-separated offered loads", &loads_arg)
        .flag("traffic", "uniform|bursty|hotspot|diagonal|permutation",
              &traffic)
        .flag("csv", "write results to this CSV file", &csv_path)
        .flag("ports", "switch radix", &ports)
        .flag("slots", "slots per grid point", &slots)
        .flag("warmup-slots", "slots excluded from statistics (0 = slots/10)",
              &warmup_slots)
        .flag("seed", "simulation RNG seed", &seed)
        .flag("voq-capacity", "entries per virtual output queue",
              &voq_capacity)
        .flag("pq-capacity", "entries per input packet queue", &pq_capacity)
        .flag("fifo-capacity", "per-input FIFO depth (fifo mode)",
              &fifo_capacity)
        .flag("outbuf-capacity", "per-output buffer depth", &outbuf_capacity)
        .flag("speedup", "crossbar speedup s (scheduler runs s times/slot)",
              &speedup)
        .flag("clos-middle", "Clos middle switches (0 = ideal crossbar)",
              &clos_middle)
        .flag("clos-group", "Clos ports per ingress/egress switch",
              &clos_group)
        .flag("trace-capacity", "per-cycle trace ring size (0 = off)",
              &trace_capacity)
        .flag("record-service-matrix", "record per-flow delivery counts",
              &record_service_matrix)
        .flag("iterations", "iterative-scheduler iterations", &iterations)
        .flag("threads", "worker threads (0 = all cores)", &threads)
        .flag("paranoid", "validate scheduler invariants every cycle",
              &paranoid);
    if (!cli.parse(argc, argv)) return cli.exit_code();

    const auto names = split(schedulers);
    std::vector<double> loads;
    for (const auto& l : split(loads_arg)) loads.push_back(std::stod(l));
    for (const auto& name : names) {
        if (name != "outbuf" && !lcf::core::is_scheduler_name(name)) {
            std::cerr << "unknown scheduler: " << name << "\n";
            return 2;
        }
    }

    lcf::sim::SimConfig config;
    config.ports = ports;
    config.slots = slots;
    config.warmup_slots = warmup_slots != 0 ? warmup_slots : slots / 10;
    config.seed = seed;
    config.voq_capacity = voq_capacity;
    config.pq_capacity = pq_capacity;
    config.fifo_capacity = fifo_capacity;
    config.outbuf_capacity = outbuf_capacity;
    config.speedup = speedup;
    config.clos_middle = clos_middle;
    config.clos_group = clos_group;
    config.trace_capacity = trace_capacity;
    config.record_service_matrix = record_service_matrix;
    config.paranoid = paranoid;

    const auto points = lcf::sim::sweep(
        names, loads, config, traffic,
        lcf::sched::SchedulerConfig{.iterations = iterations}, threads);

    lcf::util::AsciiTable t;
    t.header({"scheduler", "load", "mean delay", "p50", "p99", "throughput",
              "dropped"});
    for (const auto& p : points) {
        t.add_row({p.config_name, lcf::util::AsciiTable::num(p.load, 2),
                   lcf::util::AsciiTable::num(p.result.mean_delay, 2),
                   lcf::util::AsciiTable::num(p.result.p50_delay, 0),
                   lcf::util::AsciiTable::num(p.result.p99_delay, 0),
                   lcf::util::AsciiTable::num(p.result.throughput, 3),
                   std::to_string(p.result.dropped)});
    }
    t.print(std::cout);

    if (paranoid) {
        const auto totals = lcf::sim::aggregate_counters(points);
        std::cout << "paranoid: " << totals.cycles
                  << " scheduling cycles validated across all points, "
                  << totals.paranoid_violations << " violations, max "
                  << "starvation age " << totals.max_starvation_age << "\n";
    }

    if (!csv_path.empty()) {
        std::ofstream out(csv_path);
        if (!out) {
            std::cerr << "error: cannot write CSV file " << csv_path << "\n";
            return 1;
        }
        lcf::util::CsvWriter csv(out);
        csv.row("scheduler", "traffic", "load", "mean_delay", "p50_delay",
                "p99_delay", "throughput", "generated", "delivered",
                "dropped");
        for (const auto& p : points) {
            csv.row(p.config_name, traffic, p.load, p.result.mean_delay,
                    p.result.p50_delay, p.result.p99_delay,
                    p.result.throughput, p.result.generated,
                    p.result.delivered, p.result.dropped);
        }
        std::cout << "CSV written to " << csv_path << "\n";
    }
    return 0;
}
