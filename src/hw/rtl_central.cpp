#include "hw/rtl_central.hpp"

#include <cassert>
#include <stdexcept>

namespace lcf::hw {

void RtlCentralScheduler::reset(std::size_t inputs, std::size_t outputs) {
    if (inputs != outputs) {
        throw std::invalid_argument("RTL model supports square switches only");
    }
    if (inputs > 63) {
        // The unary bus registers are modelled in one 64-bit word; the
        // real hardware is n bits wide and Clint builds n = 16.
        throw std::invalid_argument("RTL model supports up to 63 ports");
    }
    n_ = inputs;
    slices_.assign(n_, Slice{});
    for (std::size_t i = 0; i < n_; ++i) {
        slices_[i].request = util::BitVec(n_);
    }
    prio_anchor_ = 0;
    res_anchor_ = 0;
    cycles_ = 0;
    schedules_ = 0;
}

void RtlCentralScheduler::load_requests(const sched::RequestMatrix& requests) {
    // Cycle 1 of the schedule: configuration packets load R; each slice
    // sums its requests into NRQ (inverse-unary) and arms NGT. Cycle 2:
    // PRIO ranks are established relative to the rotating anchor.
    for (std::size_t i = 0; i < n_; ++i) {
        Slice& s = slices_[i];
        s.request = requests.row(i);
        s.nrq_unary = unary(s.request.count());
        const std::size_t rank = (i + n_ - prio_anchor_) % n_;
        s.prio_unary = unary(rank);
        s.res = res_anchor_;
        s.ngt = true;
        s.cp = false;
        s.gnt = sched::kUnmatched;
    }
    cycles_ += 2;
}

void RtlCentralScheduler::schedule_one_resource() {
    const std::size_t res = slices_.empty() ? 0 : slices_[0].res;

    // Phase 1 (one cycle): NRQ comparison on the open-collector bus.
    // Drivers are the not-yet-granted slices requesting `res`; the bus
    // wire-ANDs the unary counts, keeping the minimum.
    std::uint64_t bus = ~std::uint64_t{0};
    bool any_driver = false;
    for (Slice& s : slices_) {
        if (s.ngt && s.request.test(res)) {
            bus &= s.nrq_unary;
            any_driver = true;
        }
    }
    for (Slice& s : slices_) {
        s.cp = s.ngt && s.request.test(res) && s.nrq_unary == bus;
    }
    ++cycles_;

    // Phase 2 (one cycle): PRIO arbitration among CP slices; the rank-0
    // slice participates regardless of CP (round-robin position wins).
    std::uint64_t prio_bus = ~std::uint64_t{0};
    [[maybe_unused]] bool any_part = false;  // consumed by the debug assert
    for (Slice& s : slices_) {
        const bool rr_override = s.prio_unary == 0 && s.ngt && s.request.test(res);
        if (s.cp || rr_override) {
            prio_bus &= s.prio_unary;
            any_part = true;
        }
    }
    if (any_driver) {
        assert(any_part);
        for (Slice& s : slices_) {
            const bool rr_override =
                s.prio_unary == 0 && s.ngt && s.request.test(res);
            if ((s.cp || rr_override) && s.prio_unary == prio_bus) {
                s.gnt = static_cast<std::int32_t>(res);
                s.ngt = false;
                break;  // unary ranks are unique: exactly one winner
            }
        }
    }
    ++cycles_;

    // Update phase (one cycle): NRQ of every remaining requester of
    // `res` shifts down one; PRIO rotates; RES increments.
    for (Slice& s : slices_) {
        if (s.ngt && s.request.test(res)) s.nrq_unary >>= 1;
        // Rotate rank r -> (r - 1) mod n in unary: rank 0 wraps to n-1.
        if (s.prio_unary == 0) {
            s.prio_unary = unary(n_ - 1);
        } else {
            s.prio_unary >>= 1;
        }
        s.res = (s.res + 1) % n_;
    }
    ++cycles_;
}

void RtlCentralScheduler::schedule(const sched::RequestMatrix& requests,
                                   sched::Matching& out) {
    if (requests.inputs() != n_ || requests.outputs() != n_) {
        reset(requests.inputs(), requests.outputs());
    }
    out.reset(n_, n_);
    if (n_ == 0) return;

    load_requests(requests);
    for (std::size_t step = 0; step < n_; ++step) {
        schedule_one_resource();
    }

    for (std::size_t i = 0; i < n_; ++i) {
        if (slices_[i].gnt != sched::kUnmatched) {
            out.match(i, static_cast<std::size_t>(slices_[i].gnt));
        }
    }

    // End of schedule: one extra PRIO shift moves the diagonal's input
    // anchor; one extra RES increment every n schedules moves its output
    // anchor (§4.2).
    prio_anchor_ = (prio_anchor_ + 1) % n_;
    ++schedules_;
    if (schedules_ % n_ == 0) {
        res_anchor_ = (res_anchor_ + 1) % n_;
    }
}

}  // namespace lcf::hw
