#pragma once
// Message-level model of the distributed LCF scheduler (Figure 10b):
// per-port scheduler slices that communicate *only* through explicit
// request / grant / accept messages whose field widths are counted in
// bits. Two purposes:
//
//  1. Executable validation of §6.2's communication-cost formula — the
//     analytic bound i·n²·(2·log₂n+3) counts the worst case where every
//     pair exchanges every message; this model counts the bits actually
//     sent, so the bound and the measured traffic can be compared.
//  2. A second, structurally different implementation of the
//     distributed LCF algorithm. It must compute exactly the matchings
//     of core::LcfDistScheduler (without the round-robin position),
//     which the test suite verifies — a transcription check analogous
//     to the central scheduler's RTL equivalence.

#include <cstdint>
#include <vector>

#include "sched/scheduler.hpp"

namespace lcf::hw {

/// Per-run message statistics.
struct MessageStats {
    std::uint64_t request_messages = 0;
    std::uint64_t grant_messages = 0;
    std::uint64_t accept_messages = 0;
    std::uint64_t bits = 0;  ///< total payload bits across all messages

    [[nodiscard]] std::uint64_t total_messages() const noexcept {
        return request_messages + grant_messages + accept_messages;
    }
};

/// Distributed LCF as communicating slices. The tie-break rotation is
/// seeded per cycle exactly like core::LcfDistScheduler's, so the two
/// implementations stay in lockstep across a whole simulation.
class DistMessageSim final : public sched::Scheduler {
public:
    explicit DistMessageSim(std::size_t iterations = 4)
        : iterations_(iterations) {}

    void reset(std::size_t inputs, std::size_t outputs) override;
    void schedule(const sched::RequestMatrix& requests,
                  sched::Matching& out) override;
    [[nodiscard]] std::string_view name() const noexcept override {
        return "lcf_dist_msg";
    }

    /// Message statistics accumulated since reset().
    [[nodiscard]] const MessageStats& stats() const noexcept { return stats_; }
    /// Scheduling cycles executed since reset().
    [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }
    /// Measured bits per cycle, for comparison with
    /// CommModel::distributed_bits().
    [[nodiscard]] double bits_per_cycle() const noexcept;

private:
    struct RequestMsg {
        std::size_t from;  // initiator slice
        std::size_t nrq;   // accompanying request count
    };
    struct GrantMsg {
        std::size_t from;  // target slice
        std::size_t ngt;   // accompanying received-request count
    };

    std::size_t iterations_;
    std::size_t n_in_ = 0;
    std::size_t n_out_ = 0;
    std::size_t index_bits_ = 1;
    std::uint64_t cycles_ = 0;
    MessageStats stats_;
};

}  // namespace lcf::hw
