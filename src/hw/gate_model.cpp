#include "hw/gate_model.hpp"

namespace lcf::hw {

namespace {
// Per-slice register inventory (structural, from Figure 6):
//   R        n bits   request register
//   NRQ      n bits   inverse-unary request count (shift register)
//   PRIO     n bits   inverse-unary rotating priority (shift register)
//   bus      n bits   sampled open-collector bus value
//   GNT      log2 n   granted resource
//   RES      log2 n   resource pointer
//   CP, NGT  2 bits   compare-pass and not-granted flags
//   control  kSliceCtrlRegs  FSM/pipeline state (calibrated)
constexpr std::uint64_t kSliceCtrlRegs = 12;

// Per-slice gate costs (two-input gates per bit of the component):
//   request sum + NRQ shift/load network, PRIO shift network,
//   comparator against the bus, bus drivers and samplers, grant decode.
constexpr std::uint64_t kSliceGatesPerBit = 24;
constexpr std::uint64_t kSliceGatesPerIndexBit = 8;
constexpr std::uint64_t kSliceCtrlGates = 34;

// Central part: round-robin anchors (I, J), master RES, per-requester
// grant collection/valid logic, grant encoder, and the configuration /
// grant packet staging registers — costs linear in n with calibrated
// constants.
constexpr std::uint64_t kCentralRegsPerPort = 12;
constexpr std::uint64_t kCentralRegsPerIndexBit = 4;
constexpr std::uint64_t kCentralCtrlRegs = 8;
constexpr std::uint64_t kCentralGatesPerPort = 40;
constexpr std::uint64_t kCentralGatesPerIndexBit = 25;
constexpr std::uint64_t kCentralCtrlGates = 27;

// XCV600 utilisation anchor: Table 1's design is 15 % of the device.
constexpr double kXcv600GatesAt15Pct = 7967.0;
}  // namespace

std::size_t GateModel::index_bits(std::size_t n) noexcept {
    std::size_t bits = 1;
    while ((std::size_t{1} << bits) < n) ++bits;
    return bits;
}

GateCount GateModel::slice(std::size_t n) noexcept {
    const auto nn = static_cast<std::uint64_t>(n);
    const auto lg = static_cast<std::uint64_t>(index_bits(n));
    GateCount c;
    c.registers = 4 * nn + 2 * lg + 2 + kSliceCtrlRegs;
    c.gates = kSliceGatesPerBit * nn + kSliceGatesPerIndexBit * lg +
              kSliceCtrlGates;
    return c;
}

GateCount GateModel::central(std::size_t n) noexcept {
    const auto nn = static_cast<std::uint64_t>(n);
    const auto lg = static_cast<std::uint64_t>(index_bits(n));
    GateCount c;
    c.registers = kCentralRegsPerPort * nn + kCentralRegsPerIndexBit * lg +
                  kCentralCtrlRegs;
    c.gates = kCentralGatesPerPort * nn + kCentralGatesPerIndexBit * lg +
              kCentralCtrlGates;
    return c;
}

GateCount GateModel::total(std::size_t n) noexcept {
    return static_cast<std::uint64_t>(n) * slice(n) + central(n);
}

double GateModel::xcv600_utilization(std::size_t n) noexcept {
    return 0.15 * static_cast<double>(total(n).gates) / kXcv600GatesAt15Pct;
}

}  // namespace lcf::hw
