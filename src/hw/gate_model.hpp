#pragma once
// Implementation-cost model of the central LCF scheduler (§6.1 Table 1).
//
// The Clint scheduler is partitioned into n identical *requester slices*
// (the per-input logic of Figure 6: request register R, NRQ and PRIO
// inverse-unary shift registers, bus drivers/samplers, comparator, GNT
// and RES registers) and a *central* part (round-robin control, bus
// pull-ups, grant collection and encoding, packet staging).
//
// Register counts are structural: every storage element in Figure 6 is
// enumerated, plus a fitted constant for control/pipeline state. Gate
// counts (two-input gates, as Table 1 counts them) use per-component
// linear costs with constants calibrated so n = 16 reproduces Table 1
// exactly: slice 450 gates / 86 registers, central 767 gates / 216
// registers, total 16×450+767 = 7967 gates and 16×86+216 = 1592
// registers. The model's value is its *scaling*: how cost grows with
// the port count n.

#include <cstddef>
#include <cstdint>

namespace lcf::hw {

/// Gate/register counts for one configuration.
struct GateCount {
    std::uint64_t gates = 0;
    std::uint64_t registers = 0;

    friend GateCount operator+(GateCount a, GateCount b) noexcept {
        return {a.gates + b.gates, a.registers + b.registers};
    }
    friend GateCount operator*(std::uint64_t k, GateCount c) noexcept {
        return {k * c.gates, k * c.registers};
    }
    friend bool operator==(GateCount, GateCount) noexcept = default;
};

/// Cost model for an n-port central LCF scheduler.
class GateModel {
public:
    /// Cost of one requester slice (the distributed part, replicated n
    /// times; may live on the line cards).
    [[nodiscard]] static GateCount slice(std::size_t n) noexcept;
    /// Cost of the shared central part.
    [[nodiscard]] static GateCount central(std::size_t n) noexcept;
    /// Full scheduler: n slices plus the central part.
    [[nodiscard]] static GateCount total(std::size_t n) noexcept;

    /// ceil(log2(n)), the width of a port index (>= 1).
    [[nodiscard]] static std::size_t index_bits(std::size_t n) noexcept;

    /// Approximate share of a Xilinx XCV600's logic this design uses
    /// (the paper reports 15 % at n = 16; we scale that measurement
    /// linearly in gate count).
    [[nodiscard]] static double xcv600_utilization(std::size_t n) noexcept;
};

}  // namespace lcf::hw
