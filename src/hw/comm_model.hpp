#pragma once
// Communication-cost model (§6.2, Figure 10): how many bits the
// scheduler exchanges with the ports per scheduling cycle.
//
// Central scheduler (Figure 10a): every input sends its n-bit request
// vector and receives a log2(n)-bit grant plus a valid bit:
//     n · (n + log2 n + 1) bits.
//
// Distributed scheduler (Figure 10b): in each of i iterations every
// (input, resource) pair may exchange req(1) + nrq(log2 n) toward the
// resource and gnt(1) + ngt(log2 n) + acc(1) back:
//     i · n² · (2·log2 n + 3) bits.

#include <cstddef>
#include <cstdint>

namespace lcf::hw {

/// Bit-count formulas of §6.2.
class CommModel {
public:
    /// Bits per scheduling cycle for the central scheduler.
    [[nodiscard]] static std::uint64_t central_bits(std::size_t n) noexcept;
    /// Bits per scheduling cycle for the distributed scheduler running
    /// `iterations` request/grant/accept iterations.
    [[nodiscard]] static std::uint64_t distributed_bits(
        std::size_t n, std::size_t iterations) noexcept;
    /// distributed_bits / central_bits — the paper's observation that the
    /// distributed scheme has "significantly higher communication
    /// demands".
    [[nodiscard]] static double overhead_ratio(std::size_t n,
                                               std::size_t iterations) noexcept;

    /// ceil(log2 n) with a minimum of 1 (width of a port index).
    [[nodiscard]] static std::size_t log2_bits(std::size_t n) noexcept;
};

}  // namespace lcf::hw
