#pragma once
// Execution-time model of the central LCF scheduler hardware (§4.2,
// §6.1 Table 2). The Clint implementation schedules a resource in three
// clock cycles (two bus phases plus a register-update phase), plus two
// setup cycles per schedule; checking the precalculated schedule costs
// two cycles per resource plus one.

#include <cstddef>
#include <cstdint>

namespace lcf::hw {

/// Clock frequency of the Clint FPGA implementation (§6.1).
inline constexpr double kClintClockHz = 66.0e6;
/// Clint reschedules the bulk switch every 8.5 µs (§1).
inline constexpr double kClintSlotSeconds = 8.5e-6;

/// Closed-form cycle counts for the LCF scheduler's tasks as functions
/// of the port count n (Table 2's "Decomposition" column).
class TimingModel {
public:
    /// `clock_hz` defaults to Clint's 66 MHz.
    explicit TimingModel(double clock_hz = kClintClockHz) noexcept
        : clock_hz_(clock_hz) {}

    /// Cycles to integrity-check the precalculated schedule: 2n+1.
    [[nodiscard]] static std::uint64_t precalc_cycles(std::size_t n) noexcept {
        return 2 * static_cast<std::uint64_t>(n) + 1;
    }
    /// Cycles to calculate the LCF schedule: 3n+2.
    ///
    /// Note: §4.2's prose quotes "2n+1 cycles ... to execute the LCF
    /// algorithm"; Table 2 (which this model follows) decomposes the
    /// total of 5n+3 as (2n+1) + (3n+2), and only Table 2's numbers are
    /// consistent with the 1.3 µs scheduling time quoted in §1.
    [[nodiscard]] static std::uint64_t lcf_cycles(std::size_t n) noexcept {
        return 3 * static_cast<std::uint64_t>(n) + 2;
    }
    /// Total cycles per scheduling operation: 5n+3.
    [[nodiscard]] static std::uint64_t total_cycles(std::size_t n) noexcept {
        return precalc_cycles(n) + lcf_cycles(n);
    }

    /// Seconds for `cycles` at this model's clock.
    [[nodiscard]] double seconds(std::uint64_t cycles) const noexcept {
        return static_cast<double>(cycles) / clock_hz_;
    }
    /// Nanoseconds, rounded to the nearest integer as Table 2 reports.
    [[nodiscard]] std::uint64_t nanoseconds(std::uint64_t cycles) const noexcept;

    [[nodiscard]] double clock_hz() const noexcept { return clock_hz_; }

    /// Fraction of the Clint slot (8.5 µs) spent scheduling an n-port
    /// switch — the paper's pipelining argument: scheduling overlaps
    /// packet forwarding, so this must stay below 1.
    [[nodiscard]] double slot_fraction(std::size_t n) const noexcept {
        return seconds(total_cycles(n)) / kClintSlotSeconds;
    }

private:
    double clock_hz_;
};

}  // namespace lcf::hw
