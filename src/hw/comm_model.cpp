#include "hw/comm_model.hpp"

namespace lcf::hw {

std::size_t CommModel::log2_bits(std::size_t n) noexcept {
    std::size_t bits = 1;
    while ((std::size_t{1} << bits) < n) ++bits;
    return bits;
}

std::uint64_t CommModel::central_bits(std::size_t n) noexcept {
    const auto nn = static_cast<std::uint64_t>(n);
    return nn * (nn + log2_bits(n) + 1);
}

std::uint64_t CommModel::distributed_bits(std::size_t n,
                                          std::size_t iterations) noexcept {
    const auto nn = static_cast<std::uint64_t>(n);
    return static_cast<std::uint64_t>(iterations) * nn * nn *
           (2 * log2_bits(n) + 3);
}

double CommModel::overhead_ratio(std::size_t n,
                                 std::size_t iterations) noexcept {
    return static_cast<double>(distributed_bits(n, iterations)) /
           static_cast<double>(central_bits(n));
}

}  // namespace lcf::hw
