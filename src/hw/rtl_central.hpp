#pragma once
// Cycle- and bit-level model of the Clint central LCF scheduler hardware
// (Figure 6). Each requester slice owns request register R, an
// inverse-unary NRQ shift register, an inverse-unary PRIO shift
// register, a bus sample register, CP/NGT flags, and GNT/RES registers;
// the slices arbitrate over a shared open-collector bus (modelled as a
// wired-AND of the driven unary vectors).
//
// One resource is scheduled in two bus phases:
//   phase 1 — every not-yet-granted slice with a request for the current
//             resource drives its request count (unary) onto the bus;
//             the wired-AND keeps the minimum; slices whose own count
//             equals the sampled bus set CP ("I am among the fewest-
//             choices requesters").
//   phase 2 — CP slices drive their PRIO rank (unary) onto the bus; the
//             slice whose rank survives wins and latches RES into GNT.
//             The slice holding rank 0 participates regardless of CP and
//             therefore wins whenever it has a request — this is how the
//             round-robin diagonal position is realised in hardware.
// Between resources, PRIO rotates by one, NRQ of the affected slices
// shifts down, and RES increments; one extra PRIO shift per schedule and
// one extra RES increment every n schedules move the diagonal anchor
// exactly like the pseudocode's I/J update.
//
// The model is a sched::Scheduler, and the test suite proves it computes
// bit-identical matchings to core::LcfCentralScheduler (round-robin
// variant) on exhaustive small and randomised large request matrices.

#include "sched/scheduler.hpp"

#include <cstdint>
#include <vector>

#include "util/bitvec.hpp"

namespace lcf::hw {

/// Hardware (Figure 6) model of the central LCF scheduler with the
/// round-robin diagonal. Only square switches are supported, matching
/// the hardware.
class RtlCentralScheduler final : public sched::Scheduler {
public:
    void reset(std::size_t inputs, std::size_t outputs) override;
    void schedule(const sched::RequestMatrix& requests,
                  sched::Matching& out) override;
    [[nodiscard]] std::string_view name() const noexcept override {
        return "lcf_central_rtl";
    }

    /// Modelled clock cycles consumed so far (3n+2 per schedule, the
    /// Table 2 cost of the LCF calculation task).
    [[nodiscard]] std::uint64_t cycles_consumed() const noexcept {
        return cycles_;
    }
    /// Number of schedule() calls so far.
    [[nodiscard]] std::uint64_t schedules_run() const noexcept {
        return schedules_;
    }

private:
    struct Slice {
        util::BitVec request;      // R[i, 0..n-1]
        std::uint64_t nrq_unary;   // NRQ as unary mask: k requests -> k ones
        std::uint64_t prio_unary;  // PRIO rank as unary mask
        std::size_t res;           // RES resource pointer
        bool ngt;                  // not-granted flag
        bool cp;                   // compare-pass flag
        std::int32_t gnt;          // granted resource or kUnmatched
    };

    /// Unary mask with `k` low ones (k <= 63 given the bus width bound).
    [[nodiscard]] static std::uint64_t unary(std::size_t k) noexcept {
        return (std::uint64_t{1} << k) - 1;
    }

    void load_requests(const sched::RequestMatrix& requests);
    void schedule_one_resource();

    std::size_t n_ = 0;
    std::vector<Slice> slices_;
    std::size_t prio_anchor_ = 0;  // slice currently holding rank 0
    std::size_t res_anchor_ = 0;   // RES value at the start of a schedule
    std::uint64_t cycles_ = 0;
    std::uint64_t schedules_ = 0;
};

}  // namespace lcf::hw
