#include "hw/timing_model.hpp"

#include <cmath>

namespace lcf::hw {

std::uint64_t TimingModel::nanoseconds(std::uint64_t cycles) const noexcept {
    return static_cast<std::uint64_t>(
        std::llround(seconds(cycles) * 1e9));
}

}  // namespace lcf::hw
