#include "hw/dist_message_sim.hpp"

#include "hw/comm_model.hpp"

namespace lcf::hw {

void DistMessageSim::reset(std::size_t inputs, std::size_t outputs) {
    n_in_ = inputs;
    n_out_ = outputs;
    index_bits_ = CommModel::log2_bits(std::max(inputs, outputs));
    cycles_ = 0;
    stats_ = MessageStats{};
}

double DistMessageSim::bits_per_cycle() const noexcept {
    return cycles_ == 0 ? 0.0
                        : static_cast<double>(stats_.bits) /
                              static_cast<double>(cycles_);
}

void DistMessageSim::schedule(const sched::RequestMatrix& requests,
                              sched::Matching& out) {
    out.reset(n_in_, n_out_);
    if (n_in_ == 0 || n_out_ == 0) return;
    const std::uint64_t req_bits = 1 + index_bits_;  // req flag + nrq
    const std::uint64_t gnt_bits = 1 + index_bits_;  // gnt flag + ngt
    const std::uint64_t acc_bits = 1;                // acc flag

    // Per-target mailboxes of request messages; per-initiator mailboxes
    // of grant messages (keyed by target).
    std::vector<std::vector<RequestMsg>> target_mail(n_out_);
    std::vector<std::vector<std::pair<std::size_t, GrantMsg>>> init_mail(
        n_in_);

    for (std::size_t iter = 0; iter < iterations_; ++iter) {
        // Request phase: every unmatched initiator messages every
        // unmatched target it has a packet for, tagged with its NRQ.
        for (auto& m : target_mail) m.clear();
        bool any_request = false;
        for (std::size_t i = 0; i < n_in_; ++i) {
            if (out.input_matched(i)) continue;
            const auto& row = requests.row(i);
            std::size_t nrq = 0;
            for (std::size_t j = row.find_first(); j != util::BitVec::npos;
                 j = row.find_next(j)) {
                if (!out.output_matched(j)) ++nrq;
            }
            if (nrq == 0) continue;
            for (std::size_t j = row.find_first(); j != util::BitVec::npos;
                 j = row.find_next(j)) {
                if (out.output_matched(j)) continue;
                target_mail[j].push_back(RequestMsg{i, nrq});
                ++stats_.request_messages;
                stats_.bits += req_bits;
                any_request = true;
            }
        }
        if (!any_request) break;

        // Grant phase: each target grants the lowest-NRQ request; ties
        // break along the rotating chain starting at (cycle + j), the
        // same rule as core::LcfDistScheduler.
        for (auto& m : init_mail) m.clear();
        for (std::size_t j = 0; j < n_out_; ++j) {
            if (target_mail[j].empty()) continue;
            const std::size_t ngt = target_mail[j].size();
            std::size_t best_rank = n_in_;
            std::size_t best_from = 0;
            std::size_t min_nrq = n_out_ + 1;
            for (const RequestMsg& msg : target_mail[j]) {
                const std::size_t rank =
                    (msg.from + n_in_ - (cycles_ + j) % n_in_) % n_in_;
                if (msg.nrq < min_nrq ||
                    (msg.nrq == min_nrq && rank < best_rank)) {
                    min_nrq = msg.nrq;
                    best_rank = rank;
                    best_from = msg.from;
                }
            }
            init_mail[best_from].emplace_back(j, GrantMsg{j, ngt});
            ++stats_.grant_messages;
            stats_.bits += gnt_bits;
        }

        // Accept phase: each initiator accepts the lowest-NGT grant
        // (rotating chain from (cycle + i)) and messages the target.
        for (std::size_t i = 0; i < n_in_; ++i) {
            if (init_mail[i].empty()) continue;
            std::size_t best_rank = n_out_;
            std::size_t best_target = 0;
            std::size_t min_ngt = n_in_ + 1;
            for (const auto& [j, msg] : init_mail[i]) {
                const std::size_t rank =
                    (j + n_out_ - (cycles_ + i) % n_out_) % n_out_;
                if (msg.ngt < min_ngt ||
                    (msg.ngt == min_ngt && rank < best_rank)) {
                    min_ngt = msg.ngt;
                    best_rank = rank;
                    best_target = j;
                }
            }
            out.match(i, best_target);
            ++stats_.accept_messages;
            stats_.bits += acc_bits;
        }
    }
    ++cycles_;
}

}  // namespace lcf::hw
