#include "sched/pim.hpp"

namespace lcf::sched {

PimScheduler::PimScheduler(const SchedulerConfig& config)
    : iterations_(config.iterations), rng_(config.seed), seed_(config.seed) {}

void PimScheduler::reset(std::size_t inputs, std::size_t /*outputs*/) {
    rng_ = util::Xoshiro256(seed_);
    grants_.assign(inputs, {});
}

void PimScheduler::schedule(const RequestMatrix& requests, Matching& out) {
    const std::size_t n_in = requests.inputs();
    const std::size_t n_out = requests.outputs();
    out.reset(n_in, n_out);
    if (grants_.size() != n_in) grants_.assign(n_in, {});

    last_iterations_ = 0;
    for (std::size_t iter = 0; iter < iterations_; ++iter) {
        ++last_iterations_;
        // Grant: each unmatched output picks uniformly at random among the
        // unmatched inputs requesting it (reservoir sampling over the
        // column avoids materialising contender lists).
        for (auto& g : grants_) g.clear();
        bool any_grant = false;
        for (std::size_t j = 0; j < n_out; ++j) {
            if (out.output_matched(j)) continue;
            std::int32_t chosen = kUnmatched;
            std::uint64_t seen = 0;
            for (std::size_t i = 0; i < n_in; ++i) {
                if (out.input_matched(i) || !requests.get(i, j)) continue;
                ++seen;
                if (rng_.next_below(seen) == 0) {
                    chosen = static_cast<std::int32_t>(i);
                }
            }
            if (chosen != kUnmatched) {
                grants_[static_cast<std::size_t>(chosen)].push_back(
                    static_cast<std::int32_t>(j));
                any_grant = true;
            }
        }
        if (!any_grant) break;  // converged: no augmenting grants possible

        // Accept: each input with grants picks one uniformly at random.
        for (std::size_t i = 0; i < n_in; ++i) {
            const auto& g = grants_[i];
            if (g.empty()) continue;
            const std::size_t pick =
                g.size() == 1 ? 0
                              : static_cast<std::size_t>(rng_.next_below(g.size()));
            out.match(i, static_cast<std::size_t>(g[pick]));
        }
    }
}

}  // namespace lcf::sched
