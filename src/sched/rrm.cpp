#include "sched/rrm.hpp"

namespace lcf::sched {

RrmScheduler::RrmScheduler(const SchedulerConfig& config)
    : iterations_(config.iterations) {}

void RrmScheduler::reset(std::size_t inputs, std::size_t outputs) {
    grant_ptr_.assign(outputs, 0);
    accept_ptr_.assign(inputs, 0);
}

void RrmScheduler::schedule(const RequestMatrix& requests, Matching& out) {
    const std::size_t n_in = requests.inputs();
    const std::size_t n_out = requests.outputs();
    out.reset(n_in, n_out);
    grant_to_.assign(n_out, kUnmatched);

    for (std::size_t iter = 0; iter < iterations_; ++iter) {
        bool any_grant = false;
        for (std::size_t j = 0; j < n_out; ++j) {
            grant_to_[j] = kUnmatched;
            if (out.output_matched(j)) continue;
            for (std::size_t k = 0; k < n_in; ++k) {
                const std::size_t i = (grant_ptr_[j] + k) % n_in;
                if (!out.input_matched(i) && requests.get(i, j)) {
                    grant_to_[j] = static_cast<std::int32_t>(i);
                    any_grant = true;
                    break;
                }
            }
        }
        if (!any_grant) break;

        for (std::size_t i = 0; i < n_in; ++i) {
            if (out.input_matched(i)) continue;
            for (std::size_t k = 0; k < n_out; ++k) {
                const std::size_t j = (accept_ptr_[i] + k) % n_out;
                if (grant_to_[j] == static_cast<std::int32_t>(i)) {
                    out.match(i, j);
                    if (iter == 0) {
                        // RRM's defining flaw: pointers advance one
                        // past the *granted/accepted* position whether
                        // or not anything was accepted elsewhere, so
                        // under symmetric load every grant pointer
                        // moves in lock-step.
                        grant_ptr_[j] = (static_cast<std::size_t>(i) + 1) %
                                        n_in;
                        accept_ptr_[i] = (j + 1) % n_out;
                    }
                    break;
                }
            }
        }
        // Unconditional advance for outputs whose grant was NOT
        // accepted — this is what desynchronising iSLIP removes.
        if (iter == 0) {
            for (std::size_t j = 0; j < n_out; ++j) {
                if (grant_to_[j] != kUnmatched &&
                    out.input_of(j) != grant_to_[j]) {
                    grant_ptr_[j] =
                        (static_cast<std::size_t>(grant_to_[j]) + 1) % n_in;
                }
            }
        }
    }
}

}  // namespace lcf::sched
