#pragma once
// Abstract interface every switch scheduler implements: given the request
// matrix of one scheduling cycle, compute a conflict-free matching.
// Schedulers are stateful across cycles (round-robin pointers, rotating
// diagonals), which is why reset() exists and instances are not shared
// between concurrently simulated switches.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

#include "sched/matching.hpp"
#include "sched/request_matrix.hpp"

namespace lcf::sched {

/// Per-scheduler configuration knobs. Only the fields a given algorithm
/// uses are consulted; the rest are ignored.
struct SchedulerConfig {
    /// Iteration count for iterative matchers (PIM, iSLIP, distributed
    /// LCF). The paper's Figure 12 uses 4.
    std::size_t iterations = 4;
    /// Seed for randomized algorithms (PIM).
    std::uint64_t seed = 1;
};

/// One switch scheduler. schedule() must produce a matching that is valid
/// for the given request matrix (every matched pair backed by a request);
/// all algorithms in this library additionally produce *maximal* matchings
/// except iteration-limited iterative ones.
class Scheduler {
public:
    virtual ~Scheduler();

    /// Prepare for a fresh simulation over an inputs × outputs switch.
    /// Clears all round-robin state.
    virtual void reset(std::size_t inputs, std::size_t outputs) = 0;

    /// Compute the matching for one time slot. `out` is resized by the
    /// implementation; `requests` reflects VOQ occupancy this slot.
    virtual void schedule(const RequestMatrix& requests, Matching& out) = 0;

    /// Stable identifier, e.g. "islip" or "lcf_central_rr"; matches the
    /// names used in the paper's Figure 12 legend.
    [[nodiscard]] virtual std::string_view name() const noexcept = 0;

    /// Iterations executed by the most recent schedule() call (1 for
    /// single-pass algorithms). Iterative matchers override this so the
    /// observability layer can verify they respect their budget.
    [[nodiscard]] virtual std::size_t last_iterations() const noexcept {
        return 1;
    }
    /// Configured iteration cap, or 0 when the algorithm is not
    /// iteration-limited.
    [[nodiscard]] virtual std::size_t iteration_limit() const noexcept {
        return 0;
    }

    /// Weight-aware schedulers (e.g. iLQF) return true; the simulator
    /// then calls observe_queue_lengths() before every schedule().
    [[nodiscard]] virtual bool wants_queue_lengths() const noexcept {
        return false;
    }
    /// Row-major inputs × outputs VOQ occupancy snapshot; `outputs` is
    /// the row stride. Only called when wants_queue_lengths() is true.
    /// The span is valid only for the duration of the call.
    virtual void observe_queue_lengths(std::span<const std::uint32_t> lengths,
                                       std::size_t outputs);
};

}  // namespace lcf::sched
