#include "sched/scheduler.hpp"

namespace lcf::sched {

Scheduler::~Scheduler() = default;

void Scheduler::observe_queue_lengths(std::span<const std::uint32_t>,
                                      std::size_t) {}

}  // namespace lcf::sched
