#include "sched/request_matrix.hpp"

namespace lcf::sched {

RequestMatrix::RequestMatrix(std::size_t inputs, std::size_t outputs)
    : rows_(inputs, util::BitVec(outputs)), outputs_(outputs) {}

void RequestMatrix::clear() noexcept {
    for (auto& r : rows_) r.clear();
    if (cols_valid_) {
        for (auto& c : cols_) c.clear();
    }
}

void RequestMatrix::rebuild_columns() const {
    const std::size_t n_in = rows_.size();
    if (cols_.size() != outputs_ ||
        (outputs_ > 0 && cols_[0].size() != n_in)) {
        cols_.assign(outputs_, util::BitVec(n_in));
    } else {
        for (auto& c : cols_) c.clear();
    }
    for (std::size_t i = 0; i < n_in; ++i) {
        for (const std::size_t j : rows_[i].set_bits()) {
            cols_[j].set(i);
        }
    }
    cols_valid_ = true;
}

std::size_t RequestMatrix::col_count(std::size_t output) const noexcept {
    return col(output).count();
}

std::size_t RequestMatrix::total() const noexcept {
    std::size_t n = 0;
    for (const auto& r : rows_) n += r.count();
    return n;
}

RequestMatrix make_requests(
    std::size_t ports,
    const std::vector<std::pair<std::size_t, std::size_t>>& pairs) {
    RequestMatrix m(ports);
    for (const auto& [i, j] : pairs) m.set(i, j);
    return m;
}

}  // namespace lcf::sched
