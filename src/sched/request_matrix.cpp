#include "sched/request_matrix.hpp"

namespace lcf::sched {

RequestMatrix::RequestMatrix(std::size_t inputs, std::size_t outputs)
    : rows_(inputs, util::BitVec(outputs)), outputs_(outputs) {}

void RequestMatrix::clear() noexcept {
    for (auto& r : rows_) r.clear();
}

std::size_t RequestMatrix::col_count(std::size_t output) const noexcept {
    std::size_t n = 0;
    for (const auto& r : rows_) {
        if (r.test(output)) ++n;
    }
    return n;
}

std::size_t RequestMatrix::total() const noexcept {
    std::size_t n = 0;
    for (const auto& r : rows_) n += r.count();
    return n;
}

RequestMatrix make_requests(
    std::size_t ports,
    const std::vector<std::pair<std::size_t, std::size_t>>& pairs) {
    RequestMatrix m(ports);
    for (const auto& [i, j] : pairs) m.set(i, j);
    return m;
}

}  // namespace lcf::sched
