#include "sched/wavefront.hpp"

namespace lcf::sched {

void WavefrontScheduler::reset(std::size_t /*inputs*/, std::size_t /*outputs*/) {
    priority_diag_ = 0;
}

void WavefrontScheduler::schedule(const RequestMatrix& requests, Matching& out) {
    const std::size_t n_in = requests.inputs();
    const std::size_t n_out = requests.outputs();
    out.reset(n_in, n_out);
    if (n_in == 0 || n_out == 0) return;

    // Wrapped diagonal d holds cells (i, j) with (i + j) mod n_out == d
    // (square switches in practice; rectangular ones sweep per-row).
    // Only still-free inputs are visited: set bits iterate in ascending
    // row order, so each diagonal matches exactly the cells the naive
    // full scan would.
    if (free_inputs_.size() != n_in) free_inputs_ = util::BitVec(n_in);
    free_inputs_.fill();
    const std::size_t diags = n_out;
    for (std::size_t step = 0; step < diags && free_inputs_.any(); ++step) {
        const std::size_t d = (priority_diag_ + step) % diags;
        for (const std::size_t i : free_inputs_.set_bits()) {
            const std::size_t j = (d + n_out - (i % n_out)) % n_out;
            if (!out.output_matched(j) && requests.get(i, j)) {
                out.match(i, j);
                free_inputs_.reset(i);
            }
        }
    }
    priority_diag_ = (priority_diag_ + 1) % diags;
}

}  // namespace lcf::sched
