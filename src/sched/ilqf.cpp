#include "sched/ilqf.hpp"

namespace lcf::sched {

IlqfScheduler::IlqfScheduler(const SchedulerConfig& config)
    : iterations_(config.iterations) {}

void IlqfScheduler::reset(std::size_t /*inputs*/, std::size_t outputs) {
    outputs_ = outputs;
    lengths_.clear();
    cycle_ = 0;
}

void IlqfScheduler::observe_queue_lengths(
    std::span<const std::uint32_t> lengths, std::size_t outputs) {
    outputs_ = outputs;
    lengths_.assign(lengths.begin(), lengths.end());
}

std::uint32_t IlqfScheduler::weight(std::size_t input,
                                    std::size_t output) const noexcept {
    if (lengths_.empty()) return 1;  // standalone use: unweighted
    return lengths_[input * outputs_ + output];
}

void IlqfScheduler::schedule(const RequestMatrix& requests, Matching& out) {
    const std::size_t n_in = requests.inputs();
    const std::size_t n_out = requests.outputs();
    out.reset(n_in, n_out);
    grant_to_.assign(n_out, kUnmatched);

    for (std::size_t iter = 0; iter < iterations_; ++iter) {
        // Grant: each unmatched output grants the requesting unmatched
        // input with the longest VOQ; the rotating chain breaks ties.
        bool any_grant = false;
        for (std::size_t j = 0; j < n_out; ++j) {
            grant_to_[j] = kUnmatched;
            if (out.output_matched(j)) continue;
            std::uint32_t best = 0;
            for (std::size_t k = 0; k < n_in; ++k) {
                const std::size_t i = (cycle_ + j + k) % n_in;
                if (out.input_matched(i) || !requests.get(i, j)) continue;
                const std::uint32_t w = weight(i, j);
                if (grant_to_[j] == kUnmatched || w > best) {
                    grant_to_[j] = static_cast<std::int32_t>(i);
                    best = w;
                }
            }
            any_grant = any_grant || grant_to_[j] != kUnmatched;
        }
        if (!any_grant) break;

        // Accept: each input accepts the granting output whose VOQ is
        // longest (drain the worst backlog first).
        for (std::size_t i = 0; i < n_in; ++i) {
            if (out.input_matched(i)) continue;
            std::int32_t best_out = kUnmatched;
            std::uint32_t best = 0;
            for (std::size_t k = 0; k < n_out; ++k) {
                const std::size_t j = (cycle_ + i + k) % n_out;
                if (grant_to_[j] != static_cast<std::int32_t>(i)) continue;
                const std::uint32_t w = weight(i, j);
                if (best_out == kUnmatched || w > best) {
                    best_out = static_cast<std::int32_t>(j);
                    best = w;
                }
            }
            if (best_out != kUnmatched) {
                out.match(i, static_cast<std::size_t>(best_out));
            }
        }
    }
    ++cycle_;
}

}  // namespace lcf::sched
