#include "sched/maxsize.hpp"

#include <limits>

namespace lcf::sched {

namespace {
constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
}

void MaxSizeScheduler::reset(std::size_t inputs, std::size_t outputs) {
    match_in_.assign(inputs, kUnmatched);
    match_out_.assign(outputs, kUnmatched);
}

bool MaxSizeScheduler::bfs(const RequestMatrix& requests) {
    queue_.clear();
    for (std::size_t i = 0; i < match_in_.size(); ++i) {
        if (match_in_[i] == kUnmatched) {
            layer_[i] = 0;
            queue_.push_back(i);
        } else {
            layer_[i] = kInf;
        }
    }
    bool found_free_output = false;
    for (std::size_t head = 0; head < queue_.size(); ++head) {
        const std::size_t i = queue_[head];
        const auto& row = requests.row(i);
        for (std::size_t j = row.find_first(); j != util::BitVec::npos;
             j = row.find_next(j)) {
            const std::int32_t owner = match_out_[j];
            if (owner == kUnmatched) {
                found_free_output = true;
            } else if (layer_[static_cast<std::size_t>(owner)] == kInf) {
                layer_[static_cast<std::size_t>(owner)] = layer_[i] + 1;
                queue_.push_back(static_cast<std::size_t>(owner));
            }
        }
    }
    return found_free_output;
}

bool MaxSizeScheduler::dfs(const RequestMatrix& requests, std::size_t input) {
    const auto& row = requests.row(input);
    for (std::size_t j = row.find_first(); j != util::BitVec::npos;
         j = row.find_next(j)) {
        const std::int32_t owner = match_out_[j];
        if (owner == kUnmatched ||
            (layer_[static_cast<std::size_t>(owner)] == layer_[input] + 1 &&
             dfs(requests, static_cast<std::size_t>(owner)))) {
            match_in_[input] = static_cast<std::int32_t>(j);
            match_out_[j] = static_cast<std::int32_t>(input);
            return true;
        }
    }
    layer_[input] = kInf;  // dead end: prune this vertex for this phase
    return false;
}

void MaxSizeScheduler::schedule(const RequestMatrix& requests, Matching& out) {
    const std::size_t n_in = requests.inputs();
    const std::size_t n_out = requests.outputs();
    match_in_.assign(n_in, kUnmatched);
    match_out_.assign(n_out, kUnmatched);
    layer_.assign(n_in, kInf);

    while (bfs(requests)) {
        for (std::size_t i = 0; i < n_in; ++i) {
            if (match_in_[i] == kUnmatched) {
                dfs(requests, i);
            }
        }
    }

    out.reset(n_in, n_out);
    for (std::size_t i = 0; i < n_in; ++i) {
        if (match_in_[i] != kUnmatched) {
            out.match(i, static_cast<std::size_t>(match_in_[i]));
        }
    }
}

std::size_t MaxSizeScheduler::maximum_matching_size(
    const RequestMatrix& requests) {
    MaxSizeScheduler s;
    Matching m;
    s.reset(requests.inputs(), requests.outputs());
    s.schedule(requests, m);
    return m.size();
}

}  // namespace lcf::sched
