#pragma once
// Maximum-size bipartite matching via Hopcroft–Karp (O(E·sqrt(V))).
//
// The paper's introduction cites maximum-size matching as the throughput-
// optimal but impractically slow and starvation-prone reference point; we
// implement it as a baseline so tests and benches can compare every
// heuristic scheduler's matching size against the true optimum.

#include "sched/scheduler.hpp"

#include <vector>

namespace lcf::sched {

/// Hopcroft–Karp maximum matching presented through the Scheduler
/// interface. Stateless across slots (no fairness mechanism whatsoever —
/// the starvation examples in the tests exploit exactly that).
class MaxSizeScheduler final : public Scheduler {
public:
    void reset(std::size_t inputs, std::size_t outputs) override;
    void schedule(const RequestMatrix& requests, Matching& out) override;
    [[nodiscard]] std::string_view name() const noexcept override {
        return "maxsize";
    }

    /// Size of a maximum matching for `requests` (utility for tests).
    static std::size_t maximum_matching_size(const RequestMatrix& requests);

private:
    // Hopcroft–Karp working state, kept as members to avoid per-slot
    // allocation in long simulations.
    std::vector<std::int32_t> match_in_;   // input  -> output
    std::vector<std::int32_t> match_out_;  // output -> input
    std::vector<std::uint32_t> layer_;     // BFS layers over inputs
    std::vector<std::size_t> queue_;

    bool bfs(const RequestMatrix& requests);
    bool dfs(const RequestMatrix& requests, std::size_t input);
};

}  // namespace lcf::sched
