#pragma once
// A conflict-free schedule for one time slot: a (partial) matching of
// inputs to outputs. Both directions of the map are maintained so the
// crossbar and the metrics code can query either side in O(1).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/bitvec.hpp"

namespace lcf::sched {

class RequestMatrix;

/// Sentinel for "unmatched" in Matching.
inline constexpr std::int32_t kUnmatched = -1;

/// Partial bipartite matching between inputs and outputs.
/// Invariant: in_to_out[i] == j  <=>  out_to_in[j] == i.
class Matching {
public:
    Matching() = default;
    /// Empty matching over `inputs` × `outputs` ports.
    Matching(std::size_t inputs, std::size_t outputs);
    explicit Matching(std::size_t ports) : Matching(ports, ports) {}

    [[nodiscard]] std::size_t inputs() const noexcept { return in_to_out_.size(); }
    [[nodiscard]] std::size_t outputs() const noexcept { return out_to_in_.size(); }

    /// Reset all pairs to unmatched; also used to resize between slots.
    void reset(std::size_t inputs, std::size_t outputs);

    /// Connect input i to output j (both must currently be unmatched).
    void match(std::size_t input, std::size_t output) noexcept;
    /// Remove the pair containing `input` if present.
    void unmatch_input(std::size_t input) noexcept;

    /// Output matched to `input`, or kUnmatched.
    [[nodiscard]] std::int32_t output_of(std::size_t input) const noexcept {
        return in_to_out_[input];
    }
    /// Input matched to `output`, or kUnmatched.
    [[nodiscard]] std::int32_t input_of(std::size_t output) const noexcept {
        return out_to_in_[output];
    }
    [[nodiscard]] bool input_matched(std::size_t input) const noexcept {
        return in_to_out_[input] != kUnmatched;
    }
    [[nodiscard]] bool output_matched(std::size_t output) const noexcept {
        return out_to_in_[output] != kUnmatched;
    }

    /// Bit j set iff output j is matched — maintained incrementally so
    /// the crossbar's transfer loop can scan only the matched outputs
    /// (matched_outputs().set_bits()) instead of probing all n.
    [[nodiscard]] const util::BitVec& matched_outputs() const noexcept {
        return matched_outputs_;
    }

    /// Number of matched pairs.
    [[nodiscard]] std::size_t size() const noexcept {
        return matched_outputs_.count();
    }

    /// True when every matched pair is backed by a request in `requests`
    /// and the two direction maps are mutually consistent.
    [[nodiscard]] bool valid_for(const RequestMatrix& requests) const noexcept;

    /// True when no request pair (i, j) exists with both i and j
    /// unmatched — i.e. the matching is maximal w.r.t. `requests`.
    [[nodiscard]] bool maximal_for(const RequestMatrix& requests) const noexcept;

    /// "0->2 1->- ..." rendering for diagnostics.
    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const Matching&, const Matching&) = default;

private:
    std::vector<std::int32_t> in_to_out_;
    std::vector<std::int32_t> out_to_in_;
    util::BitVec matched_outputs_;
};

}  // namespace lcf::sched
