#pragma once
// The paper's `fifo` baseline: one FIFO queue per input port (no VOQs),
// served round-robin. Each input therefore requests at most one output —
// the destination of its head-of-line packet — and suffers head-of-line
// blocking, capping uniform-traffic throughput near 58.6 % [Karol 87].

#include "sched/scheduler.hpp"

#include <vector>

namespace lcf::sched {

/// Round-robin arbitration over head-of-line requests.
///
/// The simulator presents a request matrix whose rows each contain at most
/// one set bit (the HOL destination). Each output picks among its
/// contenders with a rotating grant pointer that advances past the granted
/// input, so persistent contenders share the output evenly.
class FifoRrScheduler final : public Scheduler {
public:
    void reset(std::size_t inputs, std::size_t outputs) override;
    void schedule(const RequestMatrix& requests, Matching& out) override;
    [[nodiscard]] std::string_view name() const noexcept override {
        return "fifo";
    }

private:
    std::vector<std::size_t> grant_ptr_;  // per-output rotating pointer
    std::size_t inputs_ = 0;
};

}  // namespace lcf::sched
