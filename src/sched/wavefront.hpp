#pragma once
// Wrapped Wave Front Arbiter (Tamir & Chi 1993): the request matrix is
// swept as n wrapped diagonals; the cells of one wrapped diagonal touch
// distinct rows and columns, so a hardware array evaluates each diagonal
// in a single step and the whole schedule in n steps. The diagonal that
// is swept first rotates every slot, which provides round-robin fairness.

#include "sched/scheduler.hpp"

namespace lcf::sched {

/// Wrapped wavefront arbiter (`wfront` in the paper's Figure 12).
class WavefrontScheduler final : public Scheduler {
public:
    void reset(std::size_t inputs, std::size_t outputs) override;
    void schedule(const RequestMatrix& requests, Matching& out) override;
    [[nodiscard]] std::string_view name() const noexcept override {
        return "wfront";
    }

private:
    std::size_t priority_diag_ = 0;  // diagonal swept first this slot
};

}  // namespace lcf::sched
