#pragma once
// Wrapped Wave Front Arbiter (Tamir & Chi 1993): the request matrix is
// swept as n wrapped diagonals; the cells of one wrapped diagonal touch
// distinct rows and columns, so a hardware array evaluates each diagonal
// in a single step and the whole schedule in n steps. The diagonal that
// is swept first rotates every slot, which provides round-robin fairness.

#include "sched/scheduler.hpp"
#include "util/bitvec.hpp"

namespace lcf::sched {

/// Wrapped wavefront arbiter (`wfront` in the paper's Figure 12).
///
/// The software sweep keeps a free-inputs bit vector and walks only the
/// still-unmatched rows of each diagonal (in ascending row order, so the
/// result is identical to the naive full scan), terminating early once
/// every input is matched.
class WavefrontScheduler final : public Scheduler {
public:
    void reset(std::size_t inputs, std::size_t outputs) override;
    void schedule(const RequestMatrix& requests, Matching& out) override;
    [[nodiscard]] std::string_view name() const noexcept override {
        return "wfront";
    }

private:
    std::size_t priority_diag_ = 0;  // diagonal swept first this slot
    util::BitVec free_inputs_;       // scratch: inputs not yet matched
};

}  // namespace lcf::sched
