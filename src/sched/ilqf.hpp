#pragma once
// Iterative Longest Queue First (iLQF, McKeown 1995) — the natural
// counterpoint to Least Choice First: where LCF grants the input with
// the *fewest alternatives*, iLQF grants the input whose VOQ for the
// contested output is *longest*, draining backlog hot spots first.
// Implemented as a request/grant/accept matcher like PIM/iSLIP, with
// queue lengths as both grant and accept weights and rotating pointers
// breaking ties. Included as an extension baseline (not in the paper's
// Figure 12) for the bench ablations.

#include "sched/scheduler.hpp"

#include <vector>

namespace lcf::sched {

/// iLQF with configurable iteration count. When no queue-length
/// snapshot has been observed (standalone use on bare request
/// matrices), every request weighs 1 and the scheduler degenerates to
/// rotating-pointer request/grant/accept matching.
class IlqfScheduler final : public Scheduler {
public:
    explicit IlqfScheduler(const SchedulerConfig& config = {});

    void reset(std::size_t inputs, std::size_t outputs) override;
    void schedule(const RequestMatrix& requests, Matching& out) override;
    [[nodiscard]] std::string_view name() const noexcept override {
        return "ilqf";
    }

    [[nodiscard]] bool wants_queue_lengths() const noexcept override {
        return true;
    }
    void observe_queue_lengths(std::span<const std::uint32_t> lengths,
                               std::size_t outputs) override;

private:
    [[nodiscard]] std::uint32_t weight(std::size_t input,
                                       std::size_t output) const noexcept;

    std::size_t iterations_;
    std::size_t outputs_ = 0;
    std::vector<std::uint32_t> lengths_;  // row-major snapshot, may be empty
    std::size_t cycle_ = 0;               // rotates the tie-break chains
    std::vector<std::int32_t> grant_to_;  // scratch: output -> granted input
};

}  // namespace lcf::sched
