#pragma once
// The n_in × n_out boolean request matrix R: R[i,j] is set when input
// (requester/initiator) i has at least one packet queued for output
// (resource/target) j. This is the sole input every scheduler sees,
// mirroring the paper's model where each initiator sends a request
// vector per scheduling cycle.

#include <cstddef>
#include <vector>

#include "util/bitvec.hpp"

namespace lcf::sched {

/// Boolean request matrix with per-row bit vectors.
///
/// Row r is the request vector of input r (one bit per output), so
/// schedulers can intersect/scan rows word-parallel. Output-centric
/// algorithms (wavefront, central LCF, the distributed grant stage) use
/// col(): a lazily maintained transposed view whose column j is the bit
/// vector of j's requesters, rebuilt at most once per mutation burst so
/// a scheduling cycle pays O(requests) for all its column scans instead
/// of O(n) single-bit tests per column.
class RequestMatrix {
public:
    RequestMatrix() = default;
    /// All-clear matrix with `inputs` rows and `outputs` columns.
    RequestMatrix(std::size_t inputs, std::size_t outputs);
    /// Square all-clear matrix (the common case: n × n switch).
    explicit RequestMatrix(std::size_t ports)
        : RequestMatrix(ports, ports) {}

    [[nodiscard]] std::size_t inputs() const noexcept { return rows_.size(); }
    [[nodiscard]] std::size_t outputs() const noexcept { return outputs_; }

    /// Read request bit [input, output].
    [[nodiscard]] bool get(std::size_t input, std::size_t output) const noexcept {
        return rows_[input].test(output);
    }
    /// Write request bit [input, output].
    void set(std::size_t input, std::size_t output, bool value = true) noexcept {
        rows_[input].set(output, value);
        if (cols_valid_) cols_[output].set(input, value);
    }
    /// Clear every bit.
    void clear() noexcept;

    /// Row `input` as a bit vector over outputs.
    [[nodiscard]] const util::BitVec& row(std::size_t input) const noexcept {
        return rows_[input];
    }
    /// Mutable row access (the simulator rebuilds rows in place).
    /// Invalidates the column view — it is rebuilt on the next col() call.
    [[nodiscard]] util::BitVec& row(std::size_t input) noexcept {
        cols_valid_ = false;
        return rows_[input];
    }

    /// Column `output` as a bit vector over inputs, from the transposed
    /// view (rebuilt lazily after mutations). The reference is
    /// invalidated by any mutation. Like all lazy caches this is not
    /// safe against concurrent first reads — every simulated switch owns
    /// its matrix, so sharing a matrix across threads requires an
    /// explicit sync_columns() beforehand.
    [[nodiscard]] const util::BitVec& col(std::size_t output) const noexcept {
        if (!cols_valid_) rebuild_columns();
        return cols_[output];
    }
    /// Force the column view up to date (e.g. before sharing the matrix
    /// read-only across threads).
    void sync_columns() const {
        if (!cols_valid_) rebuild_columns();
    }

    /// Number of requests issued by `input` (NRQ in the paper).
    [[nodiscard]] std::size_t row_count(std::size_t input) const noexcept {
        return rows_[input].count();
    }
    /// Number of requesters of `output` (NGT in the paper).
    [[nodiscard]] std::size_t col_count(std::size_t output) const noexcept;
    /// Total number of set request bits.
    [[nodiscard]] std::size_t total() const noexcept;

    /// Equality over the request bits (the lazily built column cache is
    /// not observable state).
    friend bool operator==(const RequestMatrix& a,
                           const RequestMatrix& b) noexcept {
        return a.outputs_ == b.outputs_ && a.rows_ == b.rows_;
    }

private:
    void rebuild_columns() const;

    std::vector<util::BitVec> rows_;
    std::size_t outputs_ = 0;
    // Transposed view, maintained lazily: rebuilt on first col() access
    // after a mutation through clear()/row(); set() updates it in place.
    mutable std::vector<util::BitVec> cols_;
    mutable bool cols_valid_ = false;
};

/// Build a matrix from an initializer-style vector of (input, output)
/// pairs — convenient in tests for transcribing the paper's figures.
RequestMatrix make_requests(std::size_t ports,
                            const std::vector<std::pair<std::size_t, std::size_t>>& pairs);

}  // namespace lcf::sched
