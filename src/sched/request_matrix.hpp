#pragma once
// The n_in × n_out boolean request matrix R: R[i,j] is set when input
// (requester/initiator) i has at least one packet queued for output
// (resource/target) j. This is the sole input every scheduler sees,
// mirroring the paper's model where each initiator sends a request
// vector per scheduling cycle.

#include <cstddef>
#include <vector>

#include "util/bitvec.hpp"

namespace lcf::sched {

/// Boolean request matrix with per-row bit vectors.
///
/// Row r is the request vector of input r (one bit per output), so
/// schedulers can intersect/scan rows word-parallel. Column access is
/// provided for output-centric algorithms (wavefront, central LCF).
class RequestMatrix {
public:
    RequestMatrix() = default;
    /// All-clear matrix with `inputs` rows and `outputs` columns.
    RequestMatrix(std::size_t inputs, std::size_t outputs);
    /// Square all-clear matrix (the common case: n × n switch).
    explicit RequestMatrix(std::size_t ports)
        : RequestMatrix(ports, ports) {}

    [[nodiscard]] std::size_t inputs() const noexcept { return rows_.size(); }
    [[nodiscard]] std::size_t outputs() const noexcept { return outputs_; }

    /// Read request bit [input, output].
    [[nodiscard]] bool get(std::size_t input, std::size_t output) const noexcept {
        return rows_[input].test(output);
    }
    /// Write request bit [input, output].
    void set(std::size_t input, std::size_t output, bool value = true) noexcept {
        rows_[input].set(output, value);
    }
    /// Clear every bit.
    void clear() noexcept;

    /// Row `input` as a bit vector over outputs.
    [[nodiscard]] const util::BitVec& row(std::size_t input) const noexcept {
        return rows_[input];
    }
    /// Mutable row access (the simulator rebuilds rows in place).
    [[nodiscard]] util::BitVec& row(std::size_t input) noexcept {
        return rows_[input];
    }

    /// Number of requests issued by `input` (NRQ in the paper).
    [[nodiscard]] std::size_t row_count(std::size_t input) const noexcept {
        return rows_[input].count();
    }
    /// Number of requesters of `output` (NGT in the paper).
    [[nodiscard]] std::size_t col_count(std::size_t output) const noexcept;
    /// Total number of set request bits.
    [[nodiscard]] std::size_t total() const noexcept;

    friend bool operator==(const RequestMatrix&, const RequestMatrix&) = default;

private:
    std::vector<util::BitVec> rows_;
    std::size_t outputs_ = 0;
};

/// Build a matrix from an initializer-style vector of (input, output)
/// pairs — convenient in tests for transcribing the paper's figures.
RequestMatrix make_requests(std::size_t ports,
                            const std::vector<std::pair<std::size_t, std::size_t>>& pairs);

}  // namespace lcf::sched
