#include "sched/matching.hpp"

#include <cassert>

#include "sched/request_matrix.hpp"

namespace lcf::sched {

Matching::Matching(std::size_t inputs, std::size_t outputs)
    : in_to_out_(inputs, kUnmatched),
      out_to_in_(outputs, kUnmatched),
      matched_outputs_(outputs) {}

void Matching::reset(std::size_t inputs, std::size_t outputs) {
    in_to_out_.assign(inputs, kUnmatched);
    out_to_in_.assign(outputs, kUnmatched);
    if (matched_outputs_.size() == outputs) {
        matched_outputs_.clear();
    } else {
        matched_outputs_ = util::BitVec(outputs);
    }
}

void Matching::match(std::size_t input, std::size_t output) noexcept {
    assert(in_to_out_[input] == kUnmatched);
    assert(out_to_in_[output] == kUnmatched);
    in_to_out_[input] = static_cast<std::int32_t>(output);
    out_to_in_[output] = static_cast<std::int32_t>(input);
    matched_outputs_.set(output);
}

void Matching::unmatch_input(std::size_t input) noexcept {
    const std::int32_t out = in_to_out_[input];
    if (out != kUnmatched) {
        out_to_in_[static_cast<std::size_t>(out)] = kUnmatched;
        in_to_out_[input] = kUnmatched;
        matched_outputs_.reset(static_cast<std::size_t>(out));
    }
}

bool Matching::valid_for(const RequestMatrix& requests) const noexcept {
    if (in_to_out_.size() != requests.inputs() ||
        out_to_in_.size() != requests.outputs()) {
        return false;
    }
    for (std::size_t i = 0; i < in_to_out_.size(); ++i) {
        const std::int32_t j = in_to_out_[i];
        if (j == kUnmatched) continue;
        const auto ju = static_cast<std::size_t>(j);
        if (ju >= out_to_in_.size()) return false;
        if (out_to_in_[ju] != static_cast<std::int32_t>(i)) return false;
        if (!requests.get(i, ju)) return false;
    }
    for (std::size_t j = 0; j < out_to_in_.size(); ++j) {
        const std::int32_t i = out_to_in_[j];
        if (i == kUnmatched) continue;
        const auto iu = static_cast<std::size_t>(i);
        if (iu >= in_to_out_.size()) return false;
        if (in_to_out_[iu] != static_cast<std::int32_t>(j)) return false;
    }
    return true;
}

bool Matching::maximal_for(const RequestMatrix& requests) const noexcept {
    for (std::size_t i = 0; i < in_to_out_.size(); ++i) {
        if (in_to_out_[i] != kUnmatched) continue;
        const auto& row = requests.row(i);
        for (std::size_t j = row.find_first(); j != util::BitVec::npos;
             j = row.find_next(j)) {
            if (out_to_in_[j] == kUnmatched) return false;
        }
    }
    return true;
}

std::string Matching::to_string() const {
    std::string s;
    for (std::size_t i = 0; i < in_to_out_.size(); ++i) {
        if (i != 0) s += ' ';
        s += std::to_string(i);
        s += "->";
        if (in_to_out_[i] == kUnmatched) {
            s += '-';
        } else {
            s += std::to_string(in_to_out_[i]);
        }
    }
    return s;
}

}  // namespace lcf::sched
