#pragma once
// Parallel Iterative Matching (Anderson, Owicki, Saxe, Thacker 1993):
// iterative request / grant / accept with *uniform random* selection at
// both the grant and accept steps. The direct ancestor of the distributed
// LCF scheduler, which replaces randomness with request-count priorities.

#include "sched/scheduler.hpp"

#include <vector>

#include "util/rng.hpp"

namespace lcf::sched {

/// PIM with a configurable iteration count (paper's Figure 12 uses 4).
class PimScheduler final : public Scheduler {
public:
    explicit PimScheduler(const SchedulerConfig& config = {});

    void reset(std::size_t inputs, std::size_t outputs) override;
    void schedule(const RequestMatrix& requests, Matching& out) override;
    [[nodiscard]] std::string_view name() const noexcept override {
        return "pim";
    }
    [[nodiscard]] std::size_t last_iterations() const noexcept override {
        return last_iterations_;
    }
    [[nodiscard]] std::size_t iteration_limit() const noexcept override {
        return iterations_;
    }

private:
    std::size_t iterations_;
    std::size_t last_iterations_ = 0;
    util::Xoshiro256 rng_;
    std::uint64_t seed_;
    // Scratch reused across slots to avoid per-slot allocation.
    std::vector<std::int32_t> grant_of_input_;   // output that granted input i
    std::vector<std::vector<std::int32_t>> grants_;  // grants received per input
};

}  // namespace lcf::sched
