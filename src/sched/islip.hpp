#pragma once
// iSLIP (McKeown 1999): iterative request / grant / accept with rotating
// priority pointers instead of PIM's randomness. Grant pointers (one per
// output) and accept pointers (one per input) advance one position beyond
// the granted/accepted port, and only when the match was made in the
// first iteration — the property that desynchronises the pointers and
// yields 100 % throughput under uniform traffic.

#include "sched/scheduler.hpp"

#include <vector>

namespace lcf::sched {

/// iSLIP with a configurable iteration count.
class IslipScheduler final : public Scheduler {
public:
    explicit IslipScheduler(const SchedulerConfig& config = {});

    void reset(std::size_t inputs, std::size_t outputs) override;
    void schedule(const RequestMatrix& requests, Matching& out) override;
    [[nodiscard]] std::string_view name() const noexcept override {
        return "islip";
    }
    [[nodiscard]] std::size_t last_iterations() const noexcept override {
        return last_iterations_;
    }
    [[nodiscard]] std::size_t iteration_limit() const noexcept override {
        return iterations_;
    }

private:
    std::size_t iterations_;
    std::size_t last_iterations_ = 0;
    std::vector<std::size_t> grant_ptr_;   // per-output g[j]
    std::vector<std::size_t> accept_ptr_;  // per-input a[i]
    std::vector<std::int32_t> grant_to_;   // output -> granted input, per iter
};

}  // namespace lcf::sched
