#include "sched/islip.hpp"

namespace lcf::sched {

IslipScheduler::IslipScheduler(const SchedulerConfig& config)
    : iterations_(config.iterations) {}

void IslipScheduler::reset(std::size_t inputs, std::size_t outputs) {
    grant_ptr_.assign(outputs, 0);
    accept_ptr_.assign(inputs, 0);
}

void IslipScheduler::schedule(const RequestMatrix& requests, Matching& out) {
    const std::size_t n_in = requests.inputs();
    const std::size_t n_out = requests.outputs();
    out.reset(n_in, n_out);
    if (grant_ptr_.size() != n_out) grant_ptr_.assign(n_out, 0);
    if (accept_ptr_.size() != n_in) accept_ptr_.assign(n_in, 0);
    grant_to_.assign(n_out, kUnmatched);

    last_iterations_ = 0;
    for (std::size_t iter = 0; iter < iterations_; ++iter) {
        ++last_iterations_;
        // Grant: each unmatched output grants the first unmatched
        // requesting input at or after its pointer. Pointers are NOT
        // moved here; they move only on first-iteration accepts.
        bool any_grant = false;
        for (std::size_t j = 0; j < n_out; ++j) {
            grant_to_[j] = kUnmatched;
            if (out.output_matched(j)) continue;
            for (std::size_t k = 0; k < n_in; ++k) {
                const std::size_t i = (grant_ptr_[j] + k) % n_in;
                if (!out.input_matched(i) && requests.get(i, j)) {
                    grant_to_[j] = static_cast<std::int32_t>(i);
                    any_grant = true;
                    break;
                }
            }
        }
        if (!any_grant) break;

        // Accept: each input accepts the first granting output at or
        // after its accept pointer.
        for (std::size_t i = 0; i < n_in; ++i) {
            if (out.input_matched(i)) continue;
            for (std::size_t k = 0; k < n_out; ++k) {
                const std::size_t j = (accept_ptr_[i] + k) % n_out;
                if (grant_to_[j] == static_cast<std::int32_t>(i)) {
                    out.match(i, j);
                    if (iter == 0) {
                        grant_ptr_[j] = (i + 1) % n_in;
                        accept_ptr_[i] = (j + 1) % n_out;
                    }
                    break;
                }
            }
        }
    }
}

}  // namespace lcf::sched
