#pragma once
// Round-Robin Matching (RRM) — iSLIP's direct predecessor (McKeown
// 1995): identical request/grant/accept structure and rotating
// pointers, but the pointers advance *unconditionally* past the
// granted/accepted position every cycle. Under uniform full load the
// grant pointers synchronise and throughput collapses toward ~63 %;
// iSLIP's only change (move pointers solely on first-iteration
// accepts) fixes exactly this. Included as an extension baseline so
// the ablation benches can show the synchronisation effect.

#include "sched/scheduler.hpp"

#include <vector>

namespace lcf::sched {

/// RRM with configurable iteration count.
class RrmScheduler final : public Scheduler {
public:
    explicit RrmScheduler(const SchedulerConfig& config = {});

    void reset(std::size_t inputs, std::size_t outputs) override;
    void schedule(const RequestMatrix& requests, Matching& out) override;
    [[nodiscard]] std::string_view name() const noexcept override {
        return "rrm";
    }

private:
    std::size_t iterations_;
    std::vector<std::size_t> grant_ptr_;   // per-output
    std::vector<std::size_t> accept_ptr_;  // per-input
    std::vector<std::int32_t> grant_to_;   // scratch
};

}  // namespace lcf::sched
