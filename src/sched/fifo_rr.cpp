#include "sched/fifo_rr.hpp"

namespace lcf::sched {

void FifoRrScheduler::reset(std::size_t inputs, std::size_t outputs) {
    inputs_ = inputs;
    grant_ptr_.assign(outputs, 0);
}

void FifoRrScheduler::schedule(const RequestMatrix& requests, Matching& out) {
    out.reset(requests.inputs(), requests.outputs());
    // In FIFO mode each input requests at most its head-of-line
    // destination, so grants never conflict on the input side. The
    // matched-input guard makes the arbiter well-defined on general
    // request matrices too (it then acts as a greedy row-exclusive
    // round-robin arbiter).
    for (std::size_t j = 0; j < requests.outputs(); ++j) {
        for (std::size_t k = 0; k < requests.inputs(); ++k) {
            const std::size_t i = (grant_ptr_[j] + k) % requests.inputs();
            if (!out.input_matched(i) && requests.get(i, j)) {
                out.match(i, j);
                grant_ptr_[j] = (i + 1) % requests.inputs();
                break;
            }
        }
    }
}

}  // namespace lcf::sched
