#pragma once
// Three-stage Clos network fabric (Clos 1953), the alternative
// non-blocking fabric §2 of the paper admits in place of the crossbar.
//
// Geometry C(k, m, r): r ingress switches of k external ports each, m
// middle switches (r × r), r egress switches. Total ports N = k·r.
// Every ingress switch has one link to every middle switch, and every
// middle switch one link to every egress switch, so routing a set of
// connections means assigning each connection a middle switch such
// that no two connections sharing an ingress switch — and no two
// sharing an egress switch — use the same middle switch.
//
// That is exactly edge colouring of the bipartite multigraph whose
// vertices are ingress/egress switches and whose edges are the
// connections: with at most k connections per switch, k colours always
// suffice (Kőnig), so the network is *rearrangeably non-blocking* when
// m ≥ k (Slepian–Duguid). The router below implements the classic
// augmenting-path (colour-swap) algorithm and therefore always
// succeeds for m ≥ k; for m < k it reports the connections it had to
// reject — letting the simulator quantify the throughput a
// under-provisioned fabric loses.

#include <cstdint>
#include <optional>
#include <vector>

#include "sched/matching.hpp"

namespace lcf::fabric {

/// A routed schedule: the middle switch carrying each connection.
struct ClosRoute {
    /// Middle switch index per input port, or -1 when the port is idle
    /// or its connection was rejected.
    std::vector<std::int32_t> middle_of_input;
    /// Connections (input ports) that could not be routed (m < k only).
    std::vector<std::size_t> rejected_inputs;

    [[nodiscard]] bool complete() const noexcept {
        return rejected_inputs.empty();
    }
};

/// A C(k, m, r) Clos network over N = k·r ports.
class ClosNetwork {
public:
    /// `ports_per_switch` = k, `middle_switches` = m, `switch_count` = r.
    ClosNetwork(std::size_t ports_per_switch, std::size_t middle_switches,
                std::size_t switch_count);

    [[nodiscard]] std::size_t total_ports() const noexcept {
        return ports_per_switch_ * switch_count_;
    }
    [[nodiscard]] std::size_t ports_per_switch() const noexcept {
        return ports_per_switch_;
    }
    [[nodiscard]] std::size_t middle_switches() const noexcept {
        return middle_switches_;
    }
    [[nodiscard]] std::size_t switch_count() const noexcept {
        return switch_count_;
    }
    /// True when the network is rearrangeably non-blocking (m >= k):
    /// route() then never rejects a valid matching.
    [[nodiscard]] bool rearrangeably_nonblocking() const noexcept {
        return middle_switches_ >= ports_per_switch_;
    }

    /// Ingress/egress switch owning a port.
    [[nodiscard]] std::size_t switch_of(std::size_t port) const noexcept {
        return port / ports_per_switch_;
    }

    /// Assign middle switches to every connection of `matching` (which
    /// must span total_ports() on both sides). Greedy assignment with
    /// augmenting-path colour swaps; connections that cannot be routed
    /// (possible only when m < k) are listed in `rejected_inputs`.
    [[nodiscard]] ClosRoute route(const sched::Matching& matching) const;

    /// Check that `route` is conflict-free for `matching`: every routed
    /// connection has a middle switch, and no middle switch is used
    /// twice by one ingress or one egress switch.
    [[nodiscard]] bool verify(const sched::Matching& matching,
                              const ClosRoute& route) const;

private:
    std::size_t ports_per_switch_;
    std::size_t middle_switches_;
    std::size_t switch_count_;
};

}  // namespace lcf::fabric
