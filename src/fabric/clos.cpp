#include "fabric/clos.hpp"

#include <cassert>
#include <stdexcept>

namespace lcf::fabric {

namespace {
constexpr std::int32_t kNone = -1;
}

ClosNetwork::ClosNetwork(std::size_t ports_per_switch,
                         std::size_t middle_switches,
                         std::size_t switch_count)
    : ports_per_switch_(ports_per_switch),
      middle_switches_(middle_switches),
      switch_count_(switch_count) {
    if (ports_per_switch == 0 || middle_switches == 0 || switch_count == 0) {
        throw std::invalid_argument("Clos geometry parameters must be positive");
    }
}

ClosRoute ClosNetwork::route(const sched::Matching& matching) const {
    const std::size_t n = total_ports();
    assert(matching.inputs() == n && matching.outputs() == n);
    const std::size_t m = middle_switches_;
    const std::size_t r = switch_count_;

    // Connection records: one per matched input port.
    struct Connection {
        std::size_t input_port;
        std::size_t ingress;  // ingress switch
        std::size_t egress;   // egress switch
        std::int32_t colour = kNone;  // assigned middle switch
    };
    std::vector<Connection> conns;
    conns.reserve(n);
    for (std::size_t p = 0; p < n; ++p) {
        const std::int32_t q = matching.output_of(p);
        if (q == sched::kUnmatched) continue;
        conns.push_back(Connection{p, switch_of(p),
                                   switch_of(static_cast<std::size_t>(q)),
                                   kNone});
    }

    // colour -> connection index, per ingress and per egress switch.
    std::vector<std::int32_t> in_use(r * m, kNone);
    std::vector<std::int32_t> eg_use(r * m, kNone);
    const auto in_at = [&](std::size_t sw, std::size_t c) -> std::int32_t& {
        return in_use[sw * m + c];
    };
    const auto eg_at = [&](std::size_t sw, std::size_t c) -> std::int32_t& {
        return eg_use[sw * m + c];
    };
    const auto free_colour = [&](const std::vector<std::int32_t>& table,
                                 std::size_t sw) -> std::int32_t {
        for (std::size_t c = 0; c < m; ++c) {
            if (table[sw * m + c] == kNone) return static_cast<std::int32_t>(c);
        }
        return kNone;
    };

    ClosRoute result;
    result.middle_of_input.assign(n, kNone);

    for (std::size_t e = 0; e < conns.size(); ++e) {
        Connection& conn = conns[e];
        // Fast path: a colour free at both endpoints.
        std::int32_t chosen = kNone;
        for (std::size_t c = 0; c < m; ++c) {
            if (in_at(conn.ingress, c) == kNone &&
                eg_at(conn.egress, c) == kNone) {
                chosen = static_cast<std::int32_t>(c);
                break;
            }
        }
        if (chosen == kNone) {
            // Augmenting path: alpha free at the ingress side, beta free
            // at the egress side. With m >= k both always exist (each
            // switch carries at most k connections); otherwise reject.
            const std::int32_t alpha = free_colour(in_use, conn.ingress);
            const std::int32_t beta = free_colour(eg_use, conn.egress);
            if (alpha == kNone || beta == kNone) {
                result.rejected_inputs.push_back(conn.input_port);
                continue;
            }
            // Collect the maximal alpha/beta alternating chain starting
            // with the alpha edge at conn.egress, then swap the two
            // colours along it. After the swap alpha is free at
            // conn.egress, and it stays free at conn.ingress because
            // the chain cannot reach conn.ingress (edges entering an
            // ingress switch along the chain are alpha-coloured, and
            // conn.ingress has no alpha edge — Kőnig's argument).
            const auto a = static_cast<std::size_t>(alpha);
            const auto b = static_cast<std::size_t>(beta);
            std::vector<std::int32_t> path;
            std::int32_t walk = eg_at(conn.egress, a);
            bool last_was_alpha = true;
            while (walk != kNone) {
                path.push_back(walk);
                const Connection& edge = conns[static_cast<std::size_t>(walk)];
                walk = last_was_alpha ? in_at(edge.ingress, b)
                                      : eg_at(edge.egress, a);
                last_was_alpha = !last_was_alpha;
            }
            // Unregister every chain edge, swap its colour, re-register.
            for (const std::int32_t idx : path) {
                const Connection& edge = conns[static_cast<std::size_t>(idx)];
                const auto old = static_cast<std::size_t>(edge.colour);
                in_at(edge.ingress, old) = kNone;
                eg_at(edge.egress, old) = kNone;
            }
            for (const std::int32_t idx : path) {
                Connection& edge = conns[static_cast<std::size_t>(idx)];
                edge.colour = edge.colour == alpha ? beta : alpha;
                const auto now = static_cast<std::size_t>(edge.colour);
                assert(in_at(edge.ingress, now) == kNone);
                assert(eg_at(edge.egress, now) == kNone);
                in_at(edge.ingress, now) = idx;
                eg_at(edge.egress, now) = idx;
            }
            chosen = alpha;
        }
        conn.colour = chosen;
        const auto c = static_cast<std::size_t>(chosen);
        assert(in_at(conn.ingress, c) == kNone);
        assert(eg_at(conn.egress, c) == kNone);
        in_at(conn.ingress, c) = static_cast<std::int32_t>(e);
        eg_at(conn.egress, c) = static_cast<std::int32_t>(e);
    }

    for (const Connection& conn : conns) {
        result.middle_of_input[conn.input_port] = conn.colour;
    }
    return result;
}

bool ClosNetwork::verify(const sched::Matching& matching,
                         const ClosRoute& route) const {
    const std::size_t n = total_ports();
    if (route.middle_of_input.size() != n) return false;
    const std::size_t m = middle_switches_;
    const std::size_t r = switch_count_;
    std::vector<bool> in_used(r * m, false);
    std::vector<bool> eg_used(r * m, false);
    for (std::size_t p = 0; p < n; ++p) {
        const std::int32_t q = matching.output_of(p);
        const std::int32_t c = route.middle_of_input[p];
        if (q == sched::kUnmatched) {
            if (c != kNone) return false;
            continue;
        }
        if (c == kNone) continue;  // rejected connection — allowed
        if (c < 0 || static_cast<std::size_t>(c) >= m) return false;
        const std::size_t in_key =
            switch_of(p) * m + static_cast<std::size_t>(c);
        const std::size_t eg_key =
            switch_of(static_cast<std::size_t>(q)) * m +
            static_cast<std::size_t>(c);
        if (in_used[in_key] || eg_used[eg_key]) return false;
        in_used[in_key] = true;
        eg_used[eg_key] = true;
    }
    return true;
}

}  // namespace lcf::fabric
