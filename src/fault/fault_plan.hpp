#pragma once
// Declarative fault plans for the Clint protocol stack and the switch
// simulator. A FaultPlan is plain data — a seeded, slot-indexed schedule
// of everything that can go wrong on a cluster: per-link bit-error
// epochs, whole-packet loss and truncation, link up/down intervals,
// host crash/restart schedules, and scheduler-stall slots. The
// fault::FaultInjector executes a plan deterministically; the same plan
// and seed always produce the same fault sequence, so every soak
// failure replays exactly.
//
// All intervals are half-open [begin, end) in slot numbers; an `end` of
// kForever means the fault never clears.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lcf::fault {

/// Sentinel for intervals that never end (a host that never restarts, a
/// link that stays down).
inline constexpr std::uint64_t kForever = ~std::uint64_t{0};

/// Which link of a simulated channel a wire-level fault applies to. The
/// channels map these onto their own topology: the bulk channel has one
/// uplink (configuration packets) and one downlink (grant packets) per
/// host plus the abstract data/ack paths; the quick channel uses only
/// the data/ack paths.
enum class LinkKind : std::uint8_t {
    kUplink = 0,    ///< host -> switch control (bulk: configuration packets)
    kDownlink = 1,  ///< switch -> host control (bulk: grant packets)
    kData = 2,      ///< payload path (bulk transfer / quick data)
    kAck = 3,       ///< acknowledgment path
};
inline constexpr std::size_t kLinkKinds = 4;

/// Selects the links a fault applies to: one (kind, index) pair, or
/// every link of the kind when `index` is kAllLinks.
inline constexpr std::int32_t kAllLinks = -1;
struct LinkSelector {
    LinkKind kind = LinkKind::kData;
    std::int32_t index = kAllLinks;  ///< host/port index, or kAllLinks

    [[nodiscard]] bool matches(LinkKind k, std::size_t i) const noexcept {
        return kind == k && (index == kAllLinks ||
                             static_cast<std::size_t>(index) == i);
    }
};

/// During [begin, end), the selected links flip each transmitted bit
/// with an *additional* probability `bit_error_rate` on top of whatever
/// baseline the channel already models — the burst regime layered over
/// the quiescent one.
struct BitErrorEpoch {
    LinkSelector link;
    std::uint64_t begin = 0;
    std::uint64_t end = kForever;
    double bit_error_rate = 0.0;
};

/// During [begin, end), each packet on the selected links is lost whole
/// with probability `loss`, and (if it survives) truncated to a random
/// strictly shorter length with probability `truncation`.
struct PacketLossEpoch {
    LinkSelector link;
    std::uint64_t begin = 0;
    std::uint64_t end = kForever;
    double loss = 0.0;
    double truncation = 0.0;
};

/// The selected links carry nothing during [begin, end): every packet
/// is absorbed.
struct LinkDownInterval {
    LinkSelector link;
    std::uint64_t begin = 0;
    std::uint64_t end = kForever;
};

/// Host `host` crashes at `crash_slot` (losing all buffered protocol
/// state) and restarts empty at `restart_slot` (kForever = never). While
/// down it neither transmits nor receives; the switch masks it out of
/// the request matrix so scheduling degrades to the surviving ports.
struct HostCrash {
    std::size_t host = 0;
    std::uint64_t crash_slot = 0;
    std::uint64_t restart_slot = kForever;
};

/// The scheduler produces no grants during [begin, end): every slot in
/// the interval passes without a matching (a hardware stall / config
/// upset in the switch core).
struct SchedulerStall {
    std::uint64_t begin = 0;
    std::uint64_t end = kForever;
};

/// A complete, declarative fault schedule. Plain data: build one with
/// designated initializers or helper methods, hand it to a simulation
/// config, done. validate() throws std::invalid_argument on malformed
/// entries (probabilities outside [0,1], end < begin).
struct FaultPlan {
    std::vector<BitErrorEpoch> bit_error_epochs;
    std::vector<PacketLossEpoch> packet_loss_epochs;
    std::vector<LinkDownInterval> link_down_intervals;
    std::vector<HostCrash> host_crashes;
    std::vector<SchedulerStall> scheduler_stalls;
    /// Seed for the injector's per-link RNG streams, independent of the
    /// simulation's own seed so fault realisations don't perturb
    /// traffic or baseline-error draws.
    std::uint64_t seed = 0x0F4117;

    /// True when the plan schedules nothing — simulations skip injector
    /// construction entirely and behave bit-identically to a build
    /// without the fault layer.
    [[nodiscard]] bool empty() const noexcept {
        return bit_error_epochs.empty() && packet_loss_epochs.empty() &&
               link_down_intervals.empty() && host_crashes.empty() &&
               scheduler_stalls.empty();
    }

    /// Throw std::invalid_argument on malformed entries.
    void validate() const;

    // Fluent helpers for the common cases (return *this for chaining).
    FaultPlan& add_bit_error_epoch(LinkSelector link, std::uint64_t begin,
                                   std::uint64_t end, double ber);
    FaultPlan& add_packet_loss(LinkSelector link, std::uint64_t begin,
                               std::uint64_t end, double loss,
                               double truncation = 0.0);
    FaultPlan& add_link_down(LinkSelector link, std::uint64_t begin,
                             std::uint64_t end);
    FaultPlan& add_host_crash(std::size_t host, std::uint64_t crash_slot,
                              std::uint64_t restart_slot = kForever);
    FaultPlan& add_scheduler_stall(std::uint64_t begin, std::uint64_t end);
};

}  // namespace lcf::fault
