#include "fault/fault_plan.hpp"

#include <stdexcept>
#include <string>

namespace lcf::fault {

namespace {

void check_interval(std::uint64_t begin, std::uint64_t end,
                    const char* what) {
    if (end < begin) {
        throw std::invalid_argument(std::string(what) +
                                    ": interval end precedes begin");
    }
}

void check_probability(double p, const char* what) {
    if (!(p >= 0.0 && p <= 1.0)) {
        throw std::invalid_argument(std::string(what) +
                                    ": probability outside [0, 1]");
    }
}

}  // namespace

void FaultPlan::validate() const {
    for (const auto& e : bit_error_epochs) {
        check_interval(e.begin, e.end, "bit_error_epoch");
        check_probability(e.bit_error_rate, "bit_error_epoch");
    }
    for (const auto& e : packet_loss_epochs) {
        check_interval(e.begin, e.end, "packet_loss_epoch");
        check_probability(e.loss, "packet_loss_epoch.loss");
        check_probability(e.truncation, "packet_loss_epoch.truncation");
    }
    for (const auto& e : link_down_intervals) {
        check_interval(e.begin, e.end, "link_down_interval");
    }
    for (const auto& c : host_crashes) {
        check_interval(c.crash_slot, c.restart_slot, "host_crash");
    }
    for (const auto& s : scheduler_stalls) {
        check_interval(s.begin, s.end, "scheduler_stall");
    }
}

FaultPlan& FaultPlan::add_bit_error_epoch(LinkSelector link,
                                          std::uint64_t begin,
                                          std::uint64_t end, double ber) {
    bit_error_epochs.push_back(BitErrorEpoch{link, begin, end, ber});
    return *this;
}

FaultPlan& FaultPlan::add_packet_loss(LinkSelector link, std::uint64_t begin,
                                      std::uint64_t end, double loss,
                                      double truncation) {
    packet_loss_epochs.push_back(
        PacketLossEpoch{link, begin, end, loss, truncation});
    return *this;
}

FaultPlan& FaultPlan::add_link_down(LinkSelector link, std::uint64_t begin,
                                    std::uint64_t end) {
    link_down_intervals.push_back(LinkDownInterval{link, begin, end});
    return *this;
}

FaultPlan& FaultPlan::add_host_crash(std::size_t host,
                                     std::uint64_t crash_slot,
                                     std::uint64_t restart_slot) {
    host_crashes.push_back(HostCrash{host, crash_slot, restart_slot});
    return *this;
}

FaultPlan& FaultPlan::add_scheduler_stall(std::uint64_t begin,
                                          std::uint64_t end) {
    scheduler_stalls.push_back(SchedulerStall{begin, end});
    return *this;
}

}  // namespace lcf::fault
