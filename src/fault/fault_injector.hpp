#pragma once
// Deterministic execution of a FaultPlan. One FaultInjector accompanies
// one simulated channel/switch; the channel routes every wire through
// transmit() (which wraps the channel's own ErrorLink transforms with
// the plan's epoch faults) and consults the host/scheduler predicates
// each slot. All randomness comes from per-link RNG streams derived
// from the plan's seed, so fault realisations are independent of the
// simulation's traffic and baseline-error draws — adding a fault plan
// never perturbs what the underlying run would have done, and the same
// plan replays bit-identically.

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault_plan.hpp"
#include "util/rng.hpp"

namespace lcf::fault {

/// Everything the injector did to a run. Plain sums, mergeable across
/// runs/threads like obs::SchedCounters.
struct FaultCounters {
    std::uint64_t packets_dropped = 0;    ///< absorbed whole (loss or link down)
    std::uint64_t packets_truncated = 0;  ///< cut short in flight
    std::uint64_t packets_corrupted = 0;  ///< suffered >= 1 epoch bit flip
    std::uint64_t bits_flipped = 0;       ///< epoch-injected flips
    std::uint64_t crashes = 0;            ///< host crash transitions
    std::uint64_t restarts = 0;           ///< host restart transitions
    std::uint64_t stalled_slots = 0;      ///< scheduler-stall slots observed

    void merge(const FaultCounters& other) noexcept;
    friend bool operator==(const FaultCounters&,
                           const FaultCounters&) = default;
};

/// Executes one FaultPlan against one simulated channel. Deterministic:
/// queries draw from per-link Xoshiro256 streams seeded from the plan.
class FaultInjector {
public:
    /// Validates the plan (throws std::invalid_argument when malformed).
    explicit FaultInjector(FaultPlan plan);

    /// Prepare for a run over `hosts` hosts/ports: derives one RNG
    /// stream per (link kind, index) and forgets all counters.
    void reset(std::size_t hosts);

    /// Per-slot bookkeeping: counts crash/restart transitions occurring
    /// at `slot` and scheduler-stall slots, exactly once each. Call once
    /// per simulated slot, in slot order.
    void begin_slot(std::uint64_t slot);

    /// False while `host` is inside a crash interval.
    [[nodiscard]] bool host_up(std::size_t host,
                               std::uint64_t slot) const noexcept;
    /// False while the link is inside a down interval.
    [[nodiscard]] bool link_up(LinkKind kind, std::size_t index,
                               std::uint64_t slot) const noexcept;
    /// True while `slot` falls in a scheduler-stall interval.
    [[nodiscard]] bool scheduler_stalled(std::uint64_t slot) const noexcept;
    /// Additional bit-error probability active on the link at `slot`
    /// (independent epochs compose: 1 - prod(1 - ber_k)).
    [[nodiscard]] double extra_ber(LinkKind kind, std::size_t index,
                                   std::uint64_t slot) const noexcept;

    /// Wire path: apply the plan's faults for this link and slot to
    /// `wire` in place. Returns false when the packet is absorbed whole
    /// (link down or a loss draw); otherwise the packet may have been
    /// truncated and/or had epoch bit errors applied.
    bool transmit(LinkKind kind, std::size_t index, std::uint64_t slot,
                  std::vector<std::uint8_t>& wire);

    /// Abstract path, for payloads modelled by nominal size without
    /// materialised bytes: link-down check plus a whole-packet loss
    /// draw. True when the packet is lost. (Epoch bit errors on
    /// abstract paths are folded into the channel's own corruption
    /// probability via extra_ber().)
    bool packet_lost(LinkKind kind, std::size_t index, std::uint64_t slot);

    [[nodiscard]] const FaultCounters& counters() const noexcept {
        return counters_;
    }
    [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
    [[nodiscard]] std::size_t hosts() const noexcept { return hosts_; }

private:
    [[nodiscard]] util::Xoshiro256& rng_for(LinkKind kind,
                                            std::size_t index) noexcept;
    /// Combined loss / truncation probabilities on a link at `slot`.
    [[nodiscard]] double loss_probability(LinkKind kind, std::size_t index,
                                          std::uint64_t slot) const noexcept;
    [[nodiscard]] double truncation_probability(
        LinkKind kind, std::size_t index, std::uint64_t slot) const noexcept;

    FaultPlan plan_;
    std::size_t hosts_ = 0;
    std::vector<util::Xoshiro256> rngs_;  // kLinkKinds * hosts_
    FaultCounters counters_;
};

}  // namespace lcf::fault
