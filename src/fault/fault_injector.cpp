#include "fault/fault_injector.hpp"

#include <cassert>

#include "util/bitflip.hpp"

namespace lcf::fault {

namespace {

constexpr bool in_interval(std::uint64_t slot, std::uint64_t begin,
                           std::uint64_t end) noexcept {
    return slot >= begin && slot < end;
}

}  // namespace

void FaultCounters::merge(const FaultCounters& other) noexcept {
    packets_dropped += other.packets_dropped;
    packets_truncated += other.packets_truncated;
    packets_corrupted += other.packets_corrupted;
    bits_flipped += other.bits_flipped;
    crashes += other.crashes;
    restarts += other.restarts;
    stalled_slots += other.stalled_slots;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
    plan_.validate();
}

void FaultInjector::reset(std::size_t hosts) {
    hosts_ = hosts;
    rngs_.clear();
    rngs_.reserve(kLinkKinds * hosts);
    for (std::size_t kind = 0; kind < kLinkKinds; ++kind) {
        for (std::size_t index = 0; index < hosts; ++index) {
            rngs_.emplace_back(
                util::derive_seed(plan_.seed, kind * 4096 + index));
        }
    }
    counters_ = FaultCounters{};
}

util::Xoshiro256& FaultInjector::rng_for(LinkKind kind,
                                         std::size_t index) noexcept {
    assert(index < hosts_);
    return rngs_[static_cast<std::size_t>(kind) * hosts_ + index];
}

void FaultInjector::begin_slot(std::uint64_t slot) {
    for (const auto& c : plan_.host_crashes) {
        if (c.crash_slot == slot) ++counters_.crashes;
        if (c.restart_slot == slot && c.restart_slot != kForever) {
            ++counters_.restarts;
        }
    }
    if (scheduler_stalled(slot)) ++counters_.stalled_slots;
}

bool FaultInjector::host_up(std::size_t host,
                            std::uint64_t slot) const noexcept {
    for (const auto& c : plan_.host_crashes) {
        if (c.host == host && in_interval(slot, c.crash_slot, c.restart_slot)) {
            return false;
        }
    }
    return true;
}

bool FaultInjector::link_up(LinkKind kind, std::size_t index,
                            std::uint64_t slot) const noexcept {
    for (const auto& d : plan_.link_down_intervals) {
        if (d.link.matches(kind, index) && in_interval(slot, d.begin, d.end)) {
            return false;
        }
    }
    return true;
}

bool FaultInjector::scheduler_stalled(std::uint64_t slot) const noexcept {
    for (const auto& s : plan_.scheduler_stalls) {
        if (in_interval(slot, s.begin, s.end)) return true;
    }
    return false;
}

double FaultInjector::extra_ber(LinkKind kind, std::size_t index,
                                std::uint64_t slot) const noexcept {
    double keep = 1.0;
    for (const auto& e : plan_.bit_error_epochs) {
        if (e.link.matches(kind, index) && in_interval(slot, e.begin, e.end)) {
            keep *= 1.0 - e.bit_error_rate;
        }
    }
    return 1.0 - keep;
}

double FaultInjector::loss_probability(LinkKind kind, std::size_t index,
                                       std::uint64_t slot) const noexcept {
    double keep = 1.0;
    for (const auto& e : plan_.packet_loss_epochs) {
        if (e.link.matches(kind, index) && in_interval(slot, e.begin, e.end)) {
            keep *= 1.0 - e.loss;
        }
    }
    return 1.0 - keep;
}

double FaultInjector::truncation_probability(
    LinkKind kind, std::size_t index, std::uint64_t slot) const noexcept {
    double keep = 1.0;
    for (const auto& e : plan_.packet_loss_epochs) {
        if (e.link.matches(kind, index) && in_interval(slot, e.begin, e.end)) {
            keep *= 1.0 - e.truncation;
        }
    }
    return 1.0 - keep;
}

bool FaultInjector::transmit(LinkKind kind, std::size_t index,
                             std::uint64_t slot,
                             std::vector<std::uint8_t>& wire) {
    if (!link_up(kind, index, slot)) {
        ++counters_.packets_dropped;
        return false;
    }
    const double p_loss = loss_probability(kind, index, slot);
    if (p_loss > 0.0 && rng_for(kind, index).next_bool(p_loss)) {
        ++counters_.packets_dropped;
        return false;
    }
    const double p_trunc = truncation_probability(kind, index, slot);
    if (p_trunc > 0.0 && !wire.empty() &&
        rng_for(kind, index).next_bool(p_trunc)) {
        // Cut to a strictly shorter length, possibly zero bytes.
        wire.resize(rng_for(kind, index).next_below(wire.size()));
        ++counters_.packets_truncated;
    }
    const double ber = extra_ber(kind, index, slot);
    if (ber > 0.0 && !wire.empty()) {
        const std::uint64_t flips =
            util::flip_bits({wire.data(), wire.size()}, ber,
                            rng_for(kind, index));
        if (flips > 0) {
            counters_.bits_flipped += flips;
            ++counters_.packets_corrupted;
        }
    }
    return true;
}

bool FaultInjector::packet_lost(LinkKind kind, std::size_t index,
                                std::uint64_t slot) {
    if (!link_up(kind, index, slot)) {
        ++counters_.packets_dropped;
        return true;
    }
    const double p_loss = loss_probability(kind, index, slot);
    if (p_loss > 0.0 && rng_for(kind, index).next_bool(p_loss)) {
        ++counters_.packets_dropped;
        return true;
    }
    return false;
}

}  // namespace lcf::fault
