#include "clint/clint_sim.hpp"

#include "traffic/traffic.hpp"
#include "util/rng.hpp"

namespace lcf::clint {

ClintResult run_clint(const ClintConfig& config) {
    BulkChannelConfig bulk;
    bulk.hosts = config.hosts;
    bulk.slots = config.slots;
    bulk.warmup_slots = config.warmup_slots;
    bulk.seed = util::derive_seed(config.seed, 1);
    bulk.bit_error_rate = config.bit_error_rate;
    bulk.fault_plan = config.bulk_faults;

    QuickChannelConfig quick;
    quick.hosts = config.hosts;
    quick.slots = config.slots;
    quick.warmup_slots = config.warmup_slots;
    quick.seed = util::derive_seed(config.seed, 2);
    quick.bit_error_rate = config.bit_error_rate;
    quick.fault_plan = config.quick_faults;

    ClintResult result;
    if (config.integrated) {
        BulkChannelSim bulk_sim(
            bulk, traffic::make_traffic(config.traffic, config.bulk_load));
        QuickChannelSim quick_sim(
            quick, traffic::make_traffic(config.traffic, config.quick_load));
        for (std::uint64_t t = 0; t < config.slots; ++t) {
            bulk_sim.step();
            for (const auto& [target, initiator] : bulk_sim.last_acks()) {
                quick_sim.inject_control(target, initiator);
            }
            quick_sim.step();
        }
        result.bulk = bulk_sim.result();
        result.quick = quick_sim.result();
        result.quick_control_sent = quick_sim.control_sent();
        result.quick_control_preemptions = quick_sim.control_preemptions();
    } else {
        {
            BulkChannelSim sim(bulk,
                               traffic::make_traffic(config.traffic,
                                                     config.bulk_load));
            result.bulk = sim.run();
        }
        {
            QuickChannelSim sim(quick,
                                traffic::make_traffic(config.traffic,
                                                      config.quick_load));
            result.quick = sim.run();
        }
    }
    return result;
}

}  // namespace lcf::clint
