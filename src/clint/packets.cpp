#include "clint/packets.hpp"

#include "clint/crc16.hpp"

namespace lcf::clint {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t at) {
    return static_cast<std::uint16_t>((in[at] << 8) | in[at + 1]);
}

void append_crc(std::vector<std::uint8_t>& out) {
    const std::uint16_t crc = crc16({out.data(), out.size()});
    put_u16(out, crc);
}

bool crc_ok(std::span<const std::uint8_t> wire) {
    // A buffer too short to even hold the CRC field cannot check out;
    // without this guard `wire.size() - 2` underflows and the subspan
    // is UB. Truncation faults produce exactly such buffers.
    if (wire.size() < 2) return false;
    const std::size_t body = wire.size() - 2;
    return crc16(wire.subspan(0, body)) == get_u16(wire, body);
}

}  // namespace

std::vector<std::uint8_t> ConfigPacket::encode() const {
    std::vector<std::uint8_t> out;
    out.reserve(kWireSize);
    out.push_back(static_cast<std::uint8_t>(PacketType::kConfig));
    put_u16(out, req);
    put_u16(out, pre);
    put_u16(out, ben);
    put_u16(out, qen);
    append_crc(out);
    return out;
}

std::optional<ConfigPacket> ConfigPacket::decode(
    std::span<const std::uint8_t> wire) {
    if (wire.size() != kWireSize) return std::nullopt;
    if (wire[0] != static_cast<std::uint8_t>(PacketType::kConfig)) {
        return std::nullopt;
    }
    if (!crc_ok(wire)) return std::nullopt;
    ConfigPacket p;
    p.req = get_u16(wire, 1);
    p.pre = get_u16(wire, 3);
    p.ben = get_u16(wire, 5);
    p.qen = get_u16(wire, 7);
    return p;
}

std::vector<std::uint8_t> GrantPacket::encode() const {
    std::vector<std::uint8_t> out;
    out.reserve(kWireSize);
    out.push_back(static_cast<std::uint8_t>(PacketType::kGrant));
    out.push_back(static_cast<std::uint8_t>(((node_id & 0x0F) << 4) |
                                            (gnt & 0x0F)));
    out.push_back(static_cast<std::uint8_t>((gnt_val ? 0x4 : 0) |
                                            (link_err ? 0x2 : 0) |
                                            (crc_err ? 0x1 : 0)));
    append_crc(out);
    return out;
}

std::optional<GrantPacket> GrantPacket::decode(
    std::span<const std::uint8_t> wire) {
    if (wire.size() != kWireSize) return std::nullopt;
    if (wire[0] != static_cast<std::uint8_t>(PacketType::kGrant)) {
        return std::nullopt;
    }
    if (!crc_ok(wire)) return std::nullopt;
    // Reserved flag bits must be zero: the encoder never sets them, and
    // accepting them would let a CRC-colliding corruption smuggle a
    // non-canonical frame past the round-trip property the fuzz harness
    // pins (encode(decode(wire)) == wire).
    if ((wire[2] & ~0x07) != 0) return std::nullopt;
    GrantPacket p;
    p.node_id = static_cast<std::uint8_t>(wire[1] >> 4);
    p.gnt = static_cast<std::uint8_t>(wire[1] & 0x0F);
    p.gnt_val = (wire[2] & 0x4) != 0;
    p.link_err = (wire[2] & 0x2) != 0;
    p.crc_err = (wire[2] & 0x1) != 0;
    return p;
}

}  // namespace lcf::clint
