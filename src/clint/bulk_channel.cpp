#include "clint/bulk_channel.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace lcf::clint {

namespace {

/// Independent-bit corruption probability for `bits` bits at `ber`.
double corruption_probability(double ber, std::size_t bits) noexcept {
    return 1.0 - std::pow(1.0 - ber, static_cast<double>(bits));
}

}  // namespace

BulkChannelSim::BulkChannelSim(
    const BulkChannelConfig& config,
    std::unique_ptr<traffic::TrafficGenerator> traffic)
    : config_(config),
      traffic_(std::move(traffic)),
      scheduler_(core::LcfCentralOptions{.variant = core::RrVariant::kInterleaved}),
      data_rng_(util::derive_seed(config.seed, 0xDA7A)) {
    if (config_.hosts == 0 || config_.hosts > 16) {
        throw std::invalid_argument("bulk channel supports 1..16 hosts");
    }
    if (traffic_ == nullptr) {
        throw std::invalid_argument("traffic generator required");
    }
    traffic_->reset(config_.hosts, config_.hosts, config_.seed);
    arrival_buf_.assign(config_.hosts, traffic::kNoArrival);
    scheduler_.reset(config_.hosts, config_.hosts);
    hosts_.resize(config_.hosts);
    for (std::size_t h = 0; h < config_.hosts; ++h) {
        hosts_[h].voqs = sim::VoqBank(config_.hosts, config_.voq_capacity);
        hosts_[h].committed.assign(config_.hosts, 0);
        uplinks_.emplace_back(config_.bit_error_rate,
                              util::derive_seed(config_.seed, 100 + h));
        downlinks_.emplace_back(config_.bit_error_rate,
                                util::derive_seed(config_.seed, 200 + h));
    }
    seq_.reset(config_.hosts * config_.hosts);
    next_flow_seq_.assign(config_.hosts * config_.hosts, 0);
    switch_crc_flag_.assign(config_.hosts, false);
    switch_link_flag_.assign(config_.hosts, false);
    host_up_.assign(config_.hosts, true);
    if (!config_.fault_plan.empty()) {
        injector_.emplace(config_.fault_plan);
        injector_->reset(config_.hosts);
    }
    if (config_.paranoid) {
        // Default options only: the diagonal-fairness check is
        // deliberately left off because precalculated multicast claims
        // (§4.3) may occupy an output — including the diagonal's —
        // indefinitely without violating the protocol.
        checker_.emplace(obs::ParanoidOptions{});
        checker_->reset(config_.hosts, config_.hosts);
    }
    // Independent-bit corruption over the nominal payload / ack sizes.
    p_data_corrupt_ =
        corruption_probability(config_.bit_error_rate, config_.payload_bits);
    p_ack_corrupt_ =
        corruption_probability(config_.bit_error_rate, config_.ack_bits);
}

void BulkChannelSim::enqueue_multicast(std::size_t host,
                                       std::uint16_t target_mask) {
    hosts_[host].multicast.push_back(
        MulticastEntry{target_mask, next_packet_id_++, slot_});
}

void BulkChannelSim::set_bulk_enable_report(std::size_t host,
                                            std::uint16_t ben_mask) {
    hosts_[host].ben_report = ben_mask;
}

bool BulkChannelSim::host_up(std::size_t host) const noexcept {
    return host_up_[host];
}

std::uint64_t BulkChannelSim::retry_window(
    std::uint32_t retries) const noexcept {
    if (!config_.exponential_backoff) return config_.ack_timeout;
    if (retries >= 63) return config_.backoff_cap;
    const std::uint64_t window = config_.ack_timeout << retries;
    // Catch shift overflow past the cap as well as plain growth.
    if (window > config_.backoff_cap ||
        (window >> retries) != config_.ack_timeout) {
        return config_.backoff_cap;
    }
    return window;
}

std::uint16_t BulkChannelSim::request_mask(const Host& h) const {
    // A VOQ contributes a request only for packets not already committed
    // to an in-flight grant; lost transfers waiting in the retransmit
    // queue re-request their target.
    std::uint16_t mask = 0;
    for (std::size_t j = 0; j < config_.hosts; ++j) {
        if (h.voqs.queue(j).size() > h.committed[j]) {
            mask = static_cast<std::uint16_t>(mask | (1U << j));
        }
    }
    for (const auto& p : h.retransmit) {
        mask = static_cast<std::uint16_t>(mask | (1U << p.packet.destination));
    }
    return mask;
}

void BulkChannelSim::crash_host(std::size_t host) {
    Host& h = hosts_[host];
    // Everything the host buffered dies with it. Undelivered packets are
    // accounted as crash losses and their sequence holes closed so the
    // receiver-side trackers keep advancing; copies whose delivery
    // already landed (only the ack was pending) just disappear.
    for (std::size_t j = 0; j < config_.hosts; ++j) {
        while (!h.voqs.queue(j).empty()) {
            const sim::Packet p = h.voqs.pop(j);
            ++stats_.crash_lost;
            seq_.skip(flow_of(p), p.flow_seq);
        }
    }
    for (const auto& r : h.retransmit) {
        if (!r.delivered) {
            ++stats_.crash_lost;
            seq_.skip(flow_of(r.packet), r.packet.flow_seq);
        }
    }
    h.retransmit.clear();
    for (const auto& o : h.outstanding) {
        if (!o.delivered) {
            ++stats_.crash_lost;
            seq_.skip(flow_of(o.packet), o.packet.flow_seq);
        }
    }
    h.outstanding.clear();
    stats_.multicast_lost += h.multicast.size();
    h.multicast.clear();
    h.committed.assign(config_.hosts, 0);
    h.pending_grant.reset();
    h.pending_multicast = false;
    h.pending_fanout.clear();
}

void BulkChannelSim::apply_host_faults() {
    for (std::size_t h = 0; h < config_.hosts; ++h) {
        const bool up = injector_->host_up(h, slot_);
        if (host_up_[h] && !up) crash_host(h);
        host_up_[h] = up;
    }
}

void BulkChannelSim::step_arrivals() {
    traffic_->arrivals(slot_, arrival_buf_.data());
    for (std::size_t h = 0; h < config_.hosts; ++h) {
        const std::int32_t dst = arrival_buf_[h];
        if (dst == traffic::kNoArrival) continue;
        ++stats_.generated;
        sim::Packet p{next_packet_id_++, static_cast<std::uint32_t>(h),
                      static_cast<std::uint32_t>(dst), slot_};
        p.flow_seq = next_flow_seq_[flow_of(p)]++;
        if (!host_up_[h]) {
            // A crashed host generates into the void: the application
            // offered the packet, the dead protocol stack lost it.
            ++stats_.crash_lost;
            seq_.skip(flow_of(p), p.flow_seq);
            continue;
        }
        if (!hosts_[h].voqs.push(p)) {
            ++stats_.dropped_voq;
            seq_.skip(flow_of(p), p.flow_seq);
        }
    }
}

void BulkChannelSim::step_timeouts() {
    for (auto& h : hosts_) {
        for (std::size_t k = 0; k < h.outstanding.size();) {
            OutstandingTransfer& o = h.outstanding[k];
            if (slot_ - o.sent_slot < retry_window(o.retries)) {
                ++k;
                continue;
            }
            if (config_.max_retries != 0 && o.retries >= config_.max_retries) {
                // Give up. If the target never saw it, that is a real
                // loss; if only the ack kept vanishing, the delivery
                // already counted and the copy simply dies.
                if (!o.delivered) {
                    ++stats_.abandoned;
                    seq_.skip(flow_of(o.packet), o.packet.flow_seq);
                }
            } else {
                h.retransmit.push_back(PendingRetransmit{
                    o.packet, o.first_sent, o.retries + 1, o.delivered});
                ++stats_.retransmissions;
            }
            h.outstanding.erase(h.outstanding.begin() +
                                static_cast<std::ptrdiff_t>(k));
        }
    }
}

bool BulkChannelSim::deliver(const sim::Packet& p, std::uint64_t first_sent,
                             std::uint32_t retries) {
    if (!seq_.deliver(flow_of(p), p.flow_seq)) {
        ++stats_.duplicate_deliveries;
        return false;
    }
    ++stats_.delivered_unique;
    const std::uint64_t delay = slot_ + 1 - p.generated_slot;
    if (p.generated_slot >= config_.warmup_slots) {
        delay_.add(static_cast<double>(delay));
        delay_hist_.add(delay);
    }
    if (slot_ >= config_.warmup_slots) ++delivered_after_warmup_;
    if (retries > 0) {
        ++stats_.recovered;
        recovery_delay_.add(static_cast<double>(slot_ + 1 - first_sent));
    }
    return true;
}

void BulkChannelSim::step_transfers() {
    // Transfer + acknowledge stages for the grants issued last slot.
    for (std::size_t hi = 0; hi < config_.hosts; ++hi) {
        Host& h = hosts_[hi];

        // Multicast fan-out admitted by the precalculated stage.
        if (h.pending_multicast) {
            assert(!h.multicast.empty());
            const MulticastEntry mc = h.multicast.front();
            h.multicast.pop_front();
            for (const std::size_t target : h.pending_fanout) {
                double p_corrupt = p_data_corrupt_;
                if (injector_) {
                    const double extra =
                        injector_->extra_ber(fault::LinkKind::kData, hi, slot_);
                    if (extra > 0.0) {
                        p_corrupt = 1.0 - (1.0 - p_data_corrupt_) *
                                              std::pow(1.0 - extra,
                                                       static_cast<double>(
                                                           config_.payload_bits));
                    }
                }
                if (data_rng_.next_bool(p_corrupt)) {
                    ++stats_.data_corruptions;
                } else if (injector_ &&
                           (!host_up_[target] ||
                            injector_->packet_lost(fault::LinkKind::kData, hi,
                                                   slot_))) {
                    ++stats_.multicast_lost;
                } else {
                    ++stats_.multicast_copies;
                }
            }
            (void)mc;
            h.pending_multicast = false;
            h.pending_fanout.clear();
        }

        if (!h.pending_grant) continue;
        const std::size_t target = *h.pending_grant;
        h.pending_grant.reset();
        assert(h.committed[target] > 0);
        --h.committed[target];

        // Pick the packet for this target: lost transfers first, then
        // the VOQ head.
        sim::Packet packet;
        std::uint64_t first_sent = slot_;
        std::uint32_t retries = 0;
        bool delivered_before = false;
        const auto rit = std::find_if(
            h.retransmit.begin(), h.retransmit.end(),
            [&](const PendingRetransmit& r) {
                return r.packet.destination == target;
            });
        if (rit != h.retransmit.end()) {
            packet = rit->packet;
            first_sent = rit->first_sent;
            retries = rit->retries;
            delivered_before = rit->delivered;
            h.retransmit.erase(rit);
        } else {
            assert(!h.voqs.queue(target).empty());
            packet = h.voqs.pop(target);
        }

        // Bulk data packet across the fabric.
        double p_corrupt = p_data_corrupt_;
        if (injector_) {
            const double extra =
                injector_->extra_ber(fault::LinkKind::kData, hi, slot_);
            if (extra > 0.0) {
                p_corrupt =
                    1.0 - (1.0 - p_data_corrupt_) *
                              std::pow(1.0 - extra,
                                       static_cast<double>(config_.payload_bits));
            }
        }
        if (data_rng_.next_bool(p_corrupt) ||
            (injector_ && (!host_up_[target] ||
                           injector_->packet_lost(fault::LinkKind::kData, hi,
                                                  slot_)))) {
            ++stats_.data_corruptions;
            // No ack will come; the timeout path retransmits.
            h.outstanding.push_back(OutstandingTransfer{
                packet, slot_, first_sent, retries, delivered_before});
            continue;
        }
        deliver(packet, first_sent, retries);

        // Acknowledgment back over the quick channel (sent by `target`).
        last_acks_.emplace_back(target, hi);
        double p_ack = p_ack_corrupt_;
        if (injector_) {
            const double extra =
                injector_->extra_ber(fault::LinkKind::kAck, target, slot_);
            if (extra > 0.0) {
                p_ack = 1.0 - (1.0 - p_ack_corrupt_) *
                                  std::pow(1.0 - extra,
                                           static_cast<double>(config_.ack_bits));
            }
        }
        if (data_rng_.next_bool(p_ack) ||
            (injector_ &&
             injector_->packet_lost(fault::LinkKind::kAck, target, slot_))) {
            ++stats_.ack_losses;
            h.outstanding.push_back(OutstandingTransfer{
                packet, slot_, first_sent, retries, true});
        }
        // Ack received: transfer complete, nothing outstanding.
    }
}

void BulkChannelSim::step_scheduling() {
    if (injector_ && injector_->scheduler_stalled(slot_)) {
        // The switch core is stalled: no configs are processed, no
        // grants issued. Pipeline commitments from earlier slots are
        // untouched; hosts simply see a grantless slot.
        ++counters_.stalled_cycles;
        return;
    }
    const std::size_t n = config_.hosts;
    sched::RequestMatrix requests(n);
    core::PrecalcSchedule precalc(n);
    std::vector<bool> config_ok(n, false);

    std::vector<std::optional<ConfigPacket>> decoded_cfgs(n);
    std::uint16_t ben_consensus = 0xFFFF;
    for (std::size_t h = 0; h < n; ++h) {
        if (!host_up_[h]) {
            // A crashed host sends nothing; the switch reports linkErr
            // in the grant it would have returned.
            switch_link_flag_[h] = true;
            continue;
        }
        ConfigPacket cfg;
        cfg.req = request_mask(hosts_[h]);
        cfg.pre = hosts_[h].multicast.empty()
                      ? std::uint16_t{0}
                      : hosts_[h].multicast.front().target_mask;
        cfg.ben = hosts_[h].ben_report;
        cfg.qen = 0xFFFF;
        auto wire = uplinks_[h].transmit(cfg.encode());
        if (injector_ &&
            !injector_->transmit(fault::LinkKind::kUplink, h, slot_, wire)) {
            ++stats_.configs_lost;
            switch_link_flag_[h] = true;
            continue;  // absorbed whole: the switch hears silence
        }
        decoded_cfgs[h] = ConfigPacket::decode(wire);
        if (!decoded_cfgs[h]) {
            ++stats_.config_crc_errors;
            switch_crc_flag_[h] = true;
            continue;  // switch treats this host as requesting nothing
        }
        ben_consensus = static_cast<std::uint16_t>(ben_consensus &
                                                   decoded_cfgs[h]->ben);
    }
    // Fault isolation (§4.1): an initiator any host reported disabled
    // is fenced — its requests and precalculated claims are ignored.
    fenced_mask_ = static_cast<std::uint16_t>(~ben_consensus);
    for (std::size_t h = 0; h < n; ++h) {
        if (!decoded_cfgs[h]) continue;
        if (fenced_mask_ & (1U << h)) continue;
        config_ok[h] = true;
        for (std::size_t j = 0; j < n; ++j) {
            // Degraded-mode scheduling: crashed targets are masked out
            // of the request matrix, so the crossbar never wastes a
            // slot on a connection nobody can terminate.
            if (!host_up_[j]) continue;
            if (decoded_cfgs[h]->req & (1U << j)) requests.set(h, j);
            if (decoded_cfgs[h]->pre & (1U << j)) precalc.claim(h, j);
        }
    }

    core::MulticastResult schedule;
    scheduler_.schedule_with_precalc(requests, precalc, schedule);
    // Observe only the unicast matching: every one of its grants is
    // backed by a request bit, while precalculated fan-out connections
    // are admitted from the `pre` claims outside the request matrix.
    counters_.observe_cycle(requests.total(), schedule.unicast.size());
    if (checker_) checker_->check_cycle(requests, schedule.unicast);

    for (std::size_t h = 0; h < n; ++h) {
        if (!host_up_[h]) continue;  // nobody is listening for this grant
        GrantPacket gnt;
        gnt.node_id = static_cast<std::uint8_t>(h);
        const std::int32_t target = schedule.unicast.output_of(h);
        gnt.gnt_val = target != sched::kUnmatched;
        gnt.gnt = gnt.gnt_val ? static_cast<std::uint8_t>(target) : 0;
        gnt.crc_err = switch_crc_flag_[h];
        gnt.link_err = switch_link_flag_[h];
        switch_crc_flag_[h] = false;
        switch_link_flag_[h] = false;

        auto wire = downlinks_[h].transmit(gnt.encode());
        if (injector_ &&
            !injector_->transmit(fault::LinkKind::kDownlink, h, slot_, wire)) {
            ++stats_.grants_lost;
            continue;  // host misses its grant; the slot goes unused
        }
        const auto decoded = GrantPacket::decode(wire);
        if (!decoded) {
            ++stats_.grant_crc_errors;
            continue;  // host misses its grant; the slot goes unused
        }
        if (decoded->gnt_val) {
            hosts_[h].pending_grant = decoded->gnt;
            ++hosts_[h].committed[decoded->gnt];
        }
        // Precalculated fan-out: targets whose fanout names this host
        // but that are not part of the unicast matching.
        if (config_ok[h] && !hosts_[h].multicast.empty()) {
            std::vector<std::size_t> fan;
            for (std::size_t j = 0; j < n; ++j) {
                if (schedule.fanout[j] == static_cast<std::int32_t>(h) &&
                    schedule.unicast.input_of(j) == sched::kUnmatched) {
                    fan.push_back(j);
                }
            }
            if (!fan.empty()) {
                hosts_[h].pending_multicast = true;
                hosts_[h].pending_fanout = std::move(fan);
            }
        }
    }
}

void BulkChannelSim::step() {
    if (injector_) {
        injector_->begin_slot(slot_);
        apply_host_faults();
    }
    last_acks_.clear();
    step_arrivals();
    step_timeouts();
    step_transfers();
    step_scheduling();
    ++slot_;
}

std::size_t BulkChannelSim::buffered_total() const noexcept {
    std::size_t total = 0;
    for (const Host& h : hosts_) {
        total += h.voqs.total_buffered();
        total += h.retransmit.size();
        total += h.outstanding.size();
        total += h.multicast.size();
        if (h.pending_grant) {
            // The granted packet is still inside a VOQ or the
            // retransmit queue, so it is already counted.
        }
    }
    return total;
}

BulkAccounting BulkChannelSim::accounting() const noexcept {
    BulkAccounting a;
    a.generated = stats_.generated;
    a.delivered_unique = stats_.delivered_unique;
    a.dropped = stats_.dropped_voq + stats_.crash_lost;
    a.abandoned = stats_.abandoned;
    for (const Host& h : hosts_) {
        a.queued += h.voqs.total_buffered();
        for (const auto& r : h.retransmit) {
            if (!r.delivered) ++a.queued;
        }
        for (const auto& o : h.outstanding) {
            if (!o.delivered) ++a.in_flight;
        }
    }
    return a;
}

BulkChannelResult BulkChannelSim::run() {
    while (slot_ < config_.slots) step();
    return result();
}

BulkChannelResult BulkChannelSim::result() const {
    BulkChannelResult r = stats_;
    r.sched = counters_;
    if (checker_) {
        r.sched.max_starvation_age = std::max(r.sched.max_starvation_age,
                                              checker_->max_starvation_age());
        r.sched.paranoid_violations = checker_->violation_count();
    }
    if (injector_) r.faults = injector_->counters();
    r.mean_delay = delay_.mean();
    r.max_delay = delay_.count() ? delay_.max() : 0.0;
    r.p50_delay = delay_hist_.percentile(0.5);
    r.p99_delay = delay_hist_.percentile(0.99);
    r.mean_recovery_delay = recovery_delay_.mean();
    const std::uint64_t measured_slots =
        slot_ > config_.warmup_slots ? slot_ - config_.warmup_slots : 0;
    r.goodput = measured_slots == 0
                    ? 0.0
                    : static_cast<double>(delivered_after_warmup_) /
                          (static_cast<double>(measured_slots) *
                           static_cast<double>(config_.hosts));
    return r;
}

}  // namespace lcf::clint
