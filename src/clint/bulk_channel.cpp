#include "clint/bulk_channel.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace lcf::clint {

BulkChannelSim::BulkChannelSim(
    const BulkChannelConfig& config,
    std::unique_ptr<traffic::TrafficGenerator> traffic)
    : config_(config),
      traffic_(std::move(traffic)),
      scheduler_(core::LcfCentralOptions{.variant = core::RrVariant::kInterleaved}),
      data_rng_(util::derive_seed(config.seed, 0xDA7A)) {
    if (config_.hosts == 0 || config_.hosts > 16) {
        throw std::invalid_argument("bulk channel supports 1..16 hosts");
    }
    if (traffic_ == nullptr) {
        throw std::invalid_argument("traffic generator required");
    }
    traffic_->reset(config_.hosts, config_.hosts, config_.seed);
    scheduler_.reset(config_.hosts, config_.hosts);
    hosts_.resize(config_.hosts);
    for (std::size_t h = 0; h < config_.hosts; ++h) {
        hosts_[h].voqs = sim::VoqBank(config_.hosts, config_.voq_capacity);
        hosts_[h].committed.assign(config_.hosts, 0);
        uplinks_.emplace_back(config_.bit_error_rate,
                              util::derive_seed(config_.seed, 100 + h));
        downlinks_.emplace_back(config_.bit_error_rate,
                                util::derive_seed(config_.seed, 200 + h));
    }
    switch_crc_flag_.assign(config_.hosts, false);
    if (config_.paranoid) {
        // Default options only: the diagonal-fairness check is
        // deliberately left off because precalculated multicast claims
        // (§4.3) may occupy an output — including the diagonal's —
        // indefinitely without violating the protocol.
        checker_.emplace(obs::ParanoidOptions{});
        checker_->reset(config_.hosts, config_.hosts);
    }
    // Independent-bit corruption over the nominal payload / ack sizes.
    p_data_corrupt_ =
        1.0 - std::pow(1.0 - config_.bit_error_rate,
                       static_cast<double>(config_.payload_bits));
    p_ack_corrupt_ = 1.0 - std::pow(1.0 - config_.bit_error_rate, 64.0);
}

void BulkChannelSim::enqueue_multicast(std::size_t host,
                                       std::uint16_t target_mask) {
    hosts_[host].multicast.push_back(
        MulticastEntry{target_mask, next_packet_id_++, slot_});
}

void BulkChannelSim::set_bulk_enable_report(std::size_t host,
                                            std::uint16_t ben_mask) {
    hosts_[host].ben_report = ben_mask;
}

std::uint16_t BulkChannelSim::request_mask(const Host& h) const {
    // A VOQ contributes a request only for packets not already committed
    // to an in-flight grant; lost transfers waiting in the retransmit
    // queue re-request their target.
    std::uint16_t mask = 0;
    for (std::size_t j = 0; j < config_.hosts; ++j) {
        if (h.voqs.queue(j).size() > h.committed[j]) {
            mask = static_cast<std::uint16_t>(mask | (1U << j));
        }
    }
    for (const auto& p : h.retransmit) {
        mask = static_cast<std::uint16_t>(mask | (1U << p.destination));
    }
    return mask;
}

void BulkChannelSim::step_arrivals() {
    for (std::size_t h = 0; h < config_.hosts; ++h) {
        const std::int32_t dst = traffic_->arrival(h, slot_);
        if (dst == traffic::kNoArrival) continue;
        ++stats_.generated;
        const sim::Packet p{next_packet_id_++, static_cast<std::uint32_t>(h),
                            static_cast<std::uint32_t>(dst), slot_};
        if (!hosts_[h].voqs.push(p)) ++stats_.dropped_voq;
    }
}

void BulkChannelSim::step_timeouts() {
    for (auto& h : hosts_) {
        for (std::size_t k = 0; k < h.outstanding.size();) {
            if (slot_ - h.outstanding[k].sent_slot >= config_.ack_timeout) {
                h.retransmit.push_back(h.outstanding[k].packet);
                ++stats_.retransmissions;
                h.outstanding.erase(h.outstanding.begin() +
                                    static_cast<std::ptrdiff_t>(k));
            } else {
                ++k;
            }
        }
    }
}

void BulkChannelSim::deliver(const sim::Packet& p, std::size_t target) {
    (void)target;
    if (delivered_ids_.insert(p.id).second) {
        ++stats_.delivered;
        const std::uint64_t delay = slot_ + 1 - p.generated_slot;
        if (p.generated_slot >= config_.warmup_slots) {
            delay_.add(static_cast<double>(delay));
        }
        if (slot_ >= config_.warmup_slots) ++delivered_after_warmup_;
    } else {
        ++stats_.duplicates;
    }
}

void BulkChannelSim::step_transfers() {
    // Transfer + acknowledge stages for the grants issued last slot.
    for (std::size_t hi = 0; hi < config_.hosts; ++hi) {
        Host& h = hosts_[hi];

        // Multicast fan-out admitted by the precalculated stage.
        if (h.pending_multicast) {
            assert(!h.multicast.empty());
            const MulticastEntry mc = h.multicast.front();
            h.multicast.pop_front();
            for (const std::size_t target : h.pending_fanout) {
                if (!data_rng_.next_bool(p_data_corrupt_)) {
                    ++stats_.multicast_copies;
                } else {
                    ++stats_.data_corruptions;
                }
                (void)target;
            }
            (void)mc;
            h.pending_multicast = false;
            h.pending_fanout.clear();
        }

        if (!h.pending_grant) continue;
        const std::size_t target = *h.pending_grant;
        h.pending_grant.reset();
        assert(h.committed[target] > 0);
        --h.committed[target];

        // Pick the packet for this target: lost transfers first, then
        // the VOQ head.
        sim::Packet packet;
        const auto rit = std::find_if(
            h.retransmit.begin(), h.retransmit.end(),
            [&](const sim::Packet& p) { return p.destination == target; });
        if (rit != h.retransmit.end()) {
            packet = *rit;
            h.retransmit.erase(rit);
        } else {
            assert(!h.voqs.queue(target).empty());
            packet = h.voqs.pop(target);
        }

        // Bulk data packet across the fabric.
        if (data_rng_.next_bool(p_data_corrupt_)) {
            ++stats_.data_corruptions;
            // No ack will come; the timeout path retransmits.
            h.outstanding.push_back(OutstandingTransfer{packet, slot_});
            continue;
        }
        deliver(packet, target);

        // Acknowledgment back over the quick channel.
        last_acks_.emplace_back(target, hi);
        if (data_rng_.next_bool(p_ack_corrupt_)) {
            ++stats_.ack_losses;
            h.outstanding.push_back(OutstandingTransfer{packet, slot_});
        }
        // Ack received: transfer complete, nothing outstanding.
    }
}

void BulkChannelSim::step_scheduling() {
    const std::size_t n = config_.hosts;
    sched::RequestMatrix requests(n);
    core::PrecalcSchedule precalc(n);
    std::vector<bool> config_ok(n, false);

    std::vector<std::optional<ConfigPacket>> decoded_cfgs(n);
    std::uint16_t ben_consensus = 0xFFFF;
    for (std::size_t h = 0; h < n; ++h) {
        ConfigPacket cfg;
        cfg.req = request_mask(hosts_[h]);
        cfg.pre = hosts_[h].multicast.empty()
                      ? std::uint16_t{0}
                      : hosts_[h].multicast.front().target_mask;
        cfg.ben = hosts_[h].ben_report;
        cfg.qen = 0xFFFF;
        const auto wire = uplinks_[h].transmit(cfg.encode());
        decoded_cfgs[h] = ConfigPacket::decode(wire);
        if (!decoded_cfgs[h]) {
            ++stats_.config_crc_errors;
            switch_crc_flag_[h] = true;
            continue;  // switch treats this host as requesting nothing
        }
        ben_consensus = static_cast<std::uint16_t>(ben_consensus &
                                                   decoded_cfgs[h]->ben);
    }
    // Fault isolation (§4.1): an initiator any host reported disabled
    // is fenced — its requests and precalculated claims are ignored.
    fenced_mask_ = static_cast<std::uint16_t>(~ben_consensus);
    for (std::size_t h = 0; h < n; ++h) {
        if (!decoded_cfgs[h]) continue;
        if (fenced_mask_ & (1U << h)) continue;
        config_ok[h] = true;
        for (std::size_t j = 0; j < n; ++j) {
            if (decoded_cfgs[h]->req & (1U << j)) requests.set(h, j);
            if (decoded_cfgs[h]->pre & (1U << j)) precalc.claim(h, j);
        }
    }

    core::MulticastResult schedule;
    scheduler_.schedule_with_precalc(requests, precalc, schedule);
    // Observe only the unicast matching: every one of its grants is
    // backed by a request bit, while precalculated fan-out connections
    // are admitted from the `pre` claims outside the request matrix.
    counters_.observe_cycle(requests.total(), schedule.unicast.size());
    if (checker_) checker_->check_cycle(requests, schedule.unicast);

    for (std::size_t h = 0; h < n; ++h) {
        GrantPacket gnt;
        gnt.node_id = static_cast<std::uint8_t>(h);
        const std::int32_t target = schedule.unicast.output_of(h);
        gnt.gnt_val = target != sched::kUnmatched;
        gnt.gnt = gnt.gnt_val ? static_cast<std::uint8_t>(target) : 0;
        gnt.crc_err = switch_crc_flag_[h];
        switch_crc_flag_[h] = false;

        const auto wire = downlinks_[h].transmit(gnt.encode());
        const auto decoded = GrantPacket::decode(wire);
        if (!decoded) {
            ++stats_.grant_crc_errors;
            continue;  // host misses its grant; the slot goes unused
        }
        if (decoded->gnt_val) {
            hosts_[h].pending_grant = decoded->gnt;
            ++hosts_[h].committed[decoded->gnt];
        }
        // Precalculated fan-out: targets whose fanout names this host
        // but that are not part of the unicast matching.
        if (config_ok[h] && !hosts_[h].multicast.empty()) {
            std::vector<std::size_t> fan;
            for (std::size_t j = 0; j < n; ++j) {
                if (schedule.fanout[j] == static_cast<std::int32_t>(h) &&
                    schedule.unicast.input_of(j) == sched::kUnmatched) {
                    fan.push_back(j);
                }
            }
            if (!fan.empty()) {
                hosts_[h].pending_multicast = true;
                hosts_[h].pending_fanout = std::move(fan);
            }
        }
    }
}

void BulkChannelSim::step() {
    last_acks_.clear();
    step_arrivals();
    step_timeouts();
    step_transfers();
    step_scheduling();
    ++slot_;
}

std::size_t BulkChannelSim::buffered_total() const noexcept {
    std::size_t total = 0;
    for (const Host& h : hosts_) {
        total += h.voqs.total_buffered();
        total += h.retransmit.size();
        total += h.outstanding.size();
        total += h.multicast.size();
        if (h.pending_grant) {
            // The granted packet is still inside a VOQ or the
            // retransmit queue, so it is already counted.
        }
    }
    return total;
}

BulkChannelResult BulkChannelSim::run() {
    while (slot_ < config_.slots) step();
    return result();
}

BulkChannelResult BulkChannelSim::result() const {
    BulkChannelResult r = stats_;
    r.sched = counters_;
    if (checker_) {
        r.sched.max_starvation_age = std::max(r.sched.max_starvation_age,
                                              checker_->max_starvation_age());
        r.sched.paranoid_violations = checker_->violation_count();
    }
    r.mean_delay = delay_.mean();
    r.max_delay = delay_.count() ? delay_.max() : 0.0;
    const std::uint64_t measured_slots =
        slot_ > config_.warmup_slots ? slot_ - config_.warmup_slots : 0;
    r.goodput = measured_slots == 0
                    ? 0.0
                    : static_cast<double>(delivered_after_warmup_) /
                          (static_cast<double>(measured_slots) *
                           static_cast<double>(config_.hosts));
    return r;
}

}  // namespace lcf::clint
