#include "clint/quick_channel.hpp"

#include <cmath>
#include <stdexcept>

namespace lcf::clint {

QuickChannelSim::QuickChannelSim(
    const QuickChannelConfig& config,
    std::unique_ptr<traffic::TrafficGenerator> traffic)
    : config_(config),
      traffic_(std::move(traffic)),
      rng_(util::derive_seed(config.seed, 0x41CC)) {
    if (config_.hosts == 0) {
        throw std::invalid_argument("hosts must be positive");
    }
    if (traffic_ == nullptr) {
        throw std::invalid_argument("traffic generator required");
    }
    traffic_->reset(config_.hosts, config_.hosts, config_.seed);
    hosts_.resize(config_.hosts);
    for (auto& h : hosts_) {
        h.queue = sim::PacketQueue(config_.queue_capacity);
    }
    target_priority_.assign(config_.hosts, 0);
    p_data_corrupt_ =
        1.0 - std::pow(1.0 - config_.bit_error_rate,
                       static_cast<double>(config_.payload_bits));
    p_ack_corrupt_ = 1.0 - std::pow(1.0 - config_.bit_error_rate, 64.0);
}

void QuickChannelSim::step() {
    // Arrivals into the send queues.
    for (std::size_t h = 0; h < config_.hosts; ++h) {
        const std::int32_t dst = traffic_->arrival(h, slot_);
        if (dst == traffic::kNoArrival) continue;
        ++stats_.generated;
        const sim::Packet p{next_packet_id_++, static_cast<std::uint32_t>(h),
                            static_cast<std::uint32_t>(dst), slot_};
        delivered_flag_.push_back(false);
        if (!hosts_[h].queue.push(p)) ++stats_.dropped_queue;
    }

    // Each host decides what to transmit this slot: a pending control
    // packet (bulk acknowledgment — highest priority, §4.1), a retry of
    // the in-flight data packet (on timeout), or a fresh head-of-queue
    // data packet.
    std::vector<std::int32_t> sender_of_target(config_.hosts, -1);
    std::vector<bool> transmitting(config_.hosts, false);
    for (std::size_t h = 0; h < config_.hosts; ++h) {
        Host& host = hosts_[h];
        host.sending_control = false;
        if (!host.control.empty()) {
            host.sending_control = true;
            host.control_target = host.control.front();
            host.control.pop_front();
            ++control_sent_;
            // Did the control packet displace a data opportunity?
            const bool data_ready =
                (host.inflight && !host.inflight->awaiting_ack &&
                 host.inflight->retries < config_.max_retries) ||
                (!host.inflight && !host.queue.empty());
            if (data_ready) ++control_preemptions_;
            continue;
        }
        if (host.inflight) {
            Outstanding& o = *host.inflight;
            if (o.awaiting_ack) continue;  // still inside the timeout window
            if (o.retries >= config_.max_retries) {
                ++stats_.abandoned;
                host.inflight.reset();
            } else {
                ++o.retries;
                ++stats_.retransmissions;
                o.sent_slot = slot_;
                o.awaiting_ack = true;
                transmitting[h] = true;
            }
        }
        if (!host.inflight && !host.queue.empty()) {
            host.inflight = Outstanding{host.queue.pop(), slot_, 0, true};
            transmitting[h] = true;
        }
    }

    // Switch: one winner per target, rotating priority among everything
    // heading there (data and control alike); losers dropped.
    const auto destination_of = [&](std::size_t h) -> std::int32_t {
        if (hosts_[h].sending_control) {
            return static_cast<std::int32_t>(hosts_[h].control_target);
        }
        if (transmitting[h]) {
            return static_cast<std::int32_t>(
                hosts_[h].inflight->packet.destination);
        }
        return -1;
    };
    for (std::size_t j = 0; j < config_.hosts; ++j) {
        std::int32_t winner = -1;
        for (std::size_t k = 0; k < config_.hosts; ++k) {
            const std::size_t h = (target_priority_[j] + k) % config_.hosts;
            if (destination_of(h) == static_cast<std::int32_t>(j)) {
                if (winner == -1) {
                    winner = static_cast<std::int32_t>(h);
                } else {
                    ++stats_.collisions;
                }
            }
        }
        sender_of_target[j] = winner;
        if (winner != -1) {
            target_priority_[j] = (static_cast<std::size_t>(winner) + 1) %
                                  config_.hosts;
        }
    }

    // Delivery and acknowledgment for the winners.
    for (std::size_t j = 0; j < config_.hosts; ++j) {
        if (sender_of_target[j] == -1) continue;
        Host& host = hosts_[static_cast<std::size_t>(sender_of_target[j])];
        if (host.sending_control) continue;  // fire-and-forget ack delivered
        Outstanding& o = *host.inflight;
        if (rng_.next_bool(p_data_corrupt_)) {
            ++stats_.corruptions;  // lost in flight; timeout will retry
            continue;
        }
        const sim::Packet& p = o.packet;
        if (!delivered_flag_[p.id]) {
            delivered_flag_[p.id] = true;
            ++stats_.delivered;
            if (p.generated_slot >= config_.warmup_slots) {
                delay_.add(static_cast<double>(slot_ + 1 - p.generated_slot));
            }
        } else {
            ++stats_.duplicates;
        }
        if (rng_.next_bool(p_ack_corrupt_)) {
            ++stats_.corruptions;  // ack lost; sender will retransmit
            continue;
        }
        host.inflight.reset();  // acknowledged
    }

    // Timeout bookkeeping: senders whose ack window expired become
    // eligible to retransmit in a later slot.
    for (auto& host : hosts_) {
        if (host.inflight && host.inflight->awaiting_ack &&
            slot_ + 1 - host.inflight->sent_slot >= config_.ack_timeout) {
            host.inflight->awaiting_ack = false;
        }
    }

    ++slot_;
}

void QuickChannelSim::inject_control(std::size_t host, std::size_t target) {
    hosts_[host].control.push_back(target);
}

QuickChannelResult QuickChannelSim::run() {
    while (slot_ < config_.slots) step();
    return result();
}

QuickChannelResult QuickChannelSim::result() const {
    QuickChannelResult r = stats_;
    r.mean_delay = delay_.mean();
    r.max_delay = delay_.count() ? delay_.max() : 0.0;
    r.delivery_ratio =
        r.generated == 0
            ? 0.0
            : static_cast<double>(r.delivered) / static_cast<double>(r.generated);
    return r;
}

}  // namespace lcf::clint
