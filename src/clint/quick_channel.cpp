#include "clint/quick_channel.hpp"

#include <cmath>
#include <stdexcept>

namespace lcf::clint {

QuickChannelSim::QuickChannelSim(
    const QuickChannelConfig& config,
    std::unique_ptr<traffic::TrafficGenerator> traffic)
    : config_(config),
      traffic_(std::move(traffic)),
      rng_(util::derive_seed(config.seed, 0x41CC)) {
    if (config_.hosts == 0) {
        throw std::invalid_argument("hosts must be positive");
    }
    if (traffic_ == nullptr) {
        throw std::invalid_argument("traffic generator required");
    }
    traffic_->reset(config_.hosts, config_.hosts, config_.seed);
    arrival_buf_.assign(config_.hosts, traffic::kNoArrival);
    hosts_.resize(config_.hosts);
    for (auto& h : hosts_) {
        h.queue = sim::PacketQueue(config_.queue_capacity);
    }
    target_priority_.assign(config_.hosts, 0);
    last_delivered_id_.assign(config_.hosts, kNoneDelivered);
    host_up_.assign(config_.hosts, true);
    if (!config_.fault_plan.empty()) {
        injector_.emplace(config_.fault_plan);
        injector_->reset(config_.hosts);
    }
    p_data_corrupt_ =
        1.0 - std::pow(1.0 - config_.bit_error_rate,
                       static_cast<double>(config_.payload_bits));
    p_ack_corrupt_ =
        1.0 - std::pow(1.0 - config_.bit_error_rate,
                       static_cast<double>(config_.ack_bits));
}

void QuickChannelSim::crash_host(std::size_t host) {
    Host& h = hosts_[host];
    // The send queue and the stop-and-wait window die with the host;
    // copies whose delivery already landed are complete, everything else
    // is a crash loss. Pending bulk acknowledgments vanish too — their
    // loss is the bulk channel's timeout problem.
    stats_.crash_lost += h.queue.size();
    h.queue.clear();
    if (h.inflight) {
        if (!h.inflight->delivered_once) ++stats_.crash_lost;
        h.inflight.reset();
    }
    control_lost_ += h.control.size();
    h.control.clear();
    h.sending_control = false;
}

void QuickChannelSim::apply_host_faults() {
    for (std::size_t h = 0; h < config_.hosts; ++h) {
        const bool up = injector_->host_up(h, slot_);
        if (host_up_[h] && !up) crash_host(h);
        host_up_[h] = up;
    }
}

void QuickChannelSim::step() {
    if (injector_) {
        injector_->begin_slot(slot_);
        apply_host_faults();
    }

    // Arrivals into the send queues (one batched generator call).
    traffic_->arrivals(slot_, arrival_buf_.data());
    for (std::size_t h = 0; h < config_.hosts; ++h) {
        const std::int32_t dst = arrival_buf_[h];
        if (dst == traffic::kNoArrival) continue;
        ++stats_.generated;
        const sim::Packet p{next_packet_id_++, static_cast<std::uint32_t>(h),
                            static_cast<std::uint32_t>(dst), slot_};
        if (!host_up_[h]) {
            ++stats_.crash_lost;  // offered to a dead protocol stack
            continue;
        }
        if (!hosts_[h].queue.push(p)) ++stats_.dropped_queue;
    }

    // Each host decides what to transmit this slot: a pending control
    // packet (bulk acknowledgment — highest priority, §4.1), a retry of
    // the in-flight data packet (on timeout), or a fresh head-of-queue
    // data packet.
    std::vector<std::int32_t> sender_of_target(config_.hosts, -1);
    std::vector<bool> transmitting(config_.hosts, false);
    for (std::size_t h = 0; h < config_.hosts; ++h) {
        Host& host = hosts_[h];
        host.sending_control = false;
        if (!host_up_[h]) continue;  // a crashed host transmits nothing
        if (!host.control.empty()) {
            host.sending_control = true;
            host.control_target = host.control.front();
            host.control.pop_front();
            ++control_sent_;
            // Did the control packet displace a data opportunity?
            const bool data_ready =
                (host.inflight && !host.inflight->awaiting_ack &&
                 host.inflight->retries < config_.max_retries) ||
                (!host.inflight && !host.queue.empty());
            if (data_ready) ++control_preemptions_;
            continue;
        }
        if (host.inflight) {
            Outstanding& o = *host.inflight;
            if (o.awaiting_ack) continue;  // still inside the timeout window
            if (o.retries >= config_.max_retries) {
                // Give up. A copy whose delivery already landed is not
                // data loss — only its acks kept vanishing; the older
                // accounting conflated the two.
                if (o.delivered_once) {
                    ++stats_.abandoned_delivered;
                } else {
                    ++stats_.abandoned;
                }
                host.inflight.reset();
            } else {
                ++o.retries;
                ++stats_.retransmissions;
                o.sent_slot = slot_;
                o.awaiting_ack = true;
                transmitting[h] = true;
            }
        }
        if (!host.inflight && !host.queue.empty()) {
            host.inflight = Outstanding{host.queue.pop(), slot_, 0, true};
            transmitting[h] = true;
        }
    }

    // Switch: one winner per target, rotating priority among everything
    // heading there (data and control alike); losers dropped.
    const auto destination_of = [&](std::size_t h) -> std::int32_t {
        if (hosts_[h].sending_control) {
            return static_cast<std::int32_t>(hosts_[h].control_target);
        }
        if (transmitting[h]) {
            return static_cast<std::int32_t>(
                hosts_[h].inflight->packet.destination);
        }
        return -1;
    };
    for (std::size_t j = 0; j < config_.hosts; ++j) {
        std::int32_t winner = -1;
        for (std::size_t k = 0; k < config_.hosts; ++k) {
            const std::size_t h = (target_priority_[j] + k) % config_.hosts;
            if (destination_of(h) == static_cast<std::int32_t>(j)) {
                if (winner == -1) {
                    winner = static_cast<std::int32_t>(h);
                } else {
                    ++stats_.collisions;
                }
            }
        }
        sender_of_target[j] = winner;
        if (winner != -1) {
            target_priority_[j] = (static_cast<std::size_t>(winner) + 1) %
                                  config_.hosts;
        }
    }

    // Delivery and acknowledgment for the winners.
    for (std::size_t j = 0; j < config_.hosts; ++j) {
        if (sender_of_target[j] == -1) continue;
        const std::size_t src = static_cast<std::size_t>(sender_of_target[j]);
        Host& host = hosts_[src];
        if (host.sending_control) {
            // Fire-and-forget ack: delivered unless a fault eats it.
            if (injector_ &&
                (!host_up_[j] ||
                 injector_->packet_lost(fault::LinkKind::kData, src, slot_))) {
                ++control_lost_;
            }
            continue;
        }
        Outstanding& o = *host.inflight;
        double p_data = p_data_corrupt_;
        if (injector_) {
            const double extra =
                injector_->extra_ber(fault::LinkKind::kData, src, slot_);
            if (extra > 0.0) {
                p_data = 1.0 - (1.0 - p_data_corrupt_) *
                                   std::pow(1.0 - extra,
                                            static_cast<double>(
                                                config_.payload_bits));
            }
        }
        if (rng_.next_bool(p_data)) {
            ++stats_.corruptions;  // lost in flight; timeout will retry
            continue;
        }
        if (injector_ &&
            (!host_up_[j] ||
             injector_->packet_lost(fault::LinkKind::kData, src, slot_))) {
            ++stats_.fault_losses;  // absorbed in flight; timeout will retry
            continue;
        }
        const sim::Packet& p = o.packet;
        // Stop-and-wait per host + FIFO send queues: each source's
        // packets arrive in increasing id order, so one remembered id
        // per source suffices for duplicate suppression.
        if (last_delivered_id_[src] == kNoneDelivered ||
            p.id > last_delivered_id_[src]) {
            last_delivered_id_[src] = p.id;
            o.delivered_once = true;
            ++stats_.delivered_unique;
            if (p.generated_slot >= config_.warmup_slots) {
                delay_.add(static_cast<double>(slot_ + 1 - p.generated_slot));
            }
        } else {
            ++stats_.duplicate_deliveries;
        }
        double p_ack = p_ack_corrupt_;
        if (injector_) {
            const double extra =
                injector_->extra_ber(fault::LinkKind::kAck, j, slot_);
            if (extra > 0.0) {
                p_ack = 1.0 - (1.0 - p_ack_corrupt_) *
                                  std::pow(1.0 - extra,
                                           static_cast<double>(config_.ack_bits));
            }
        }
        if (rng_.next_bool(p_ack)) {
            ++stats_.corruptions;  // ack lost; sender will retransmit
            continue;
        }
        if (injector_ &&
            injector_->packet_lost(fault::LinkKind::kAck, j, slot_)) {
            ++stats_.fault_losses;  // ack absorbed; sender will retransmit
            continue;
        }
        host.inflight.reset();  // acknowledged
    }

    // Timeout bookkeeping: senders whose ack window expired become
    // eligible to retransmit in a later slot.
    for (auto& host : hosts_) {
        if (host.inflight && host.inflight->awaiting_ack &&
            slot_ + 1 - host.inflight->sent_slot >= config_.ack_timeout) {
            host.inflight->awaiting_ack = false;
        }
    }

    ++slot_;
}

void QuickChannelSim::inject_control(std::size_t host, std::size_t target) {
    hosts_[host].control.push_back(target);
}

QuickAccounting QuickChannelSim::accounting() const noexcept {
    QuickAccounting a;
    a.generated = stats_.generated;
    a.delivered_unique = stats_.delivered_unique;
    a.dropped = stats_.dropped_queue + stats_.crash_lost;
    a.abandoned = stats_.abandoned;
    for (const Host& h : hosts_) {
        a.queued += h.queue.size();
        if (h.inflight && !h.inflight->delivered_once) ++a.in_flight;
    }
    return a;
}

QuickChannelResult QuickChannelSim::run() {
    while (slot_ < config_.slots) step();
    return result();
}

QuickChannelResult QuickChannelSim::result() const {
    QuickChannelResult r = stats_;
    if (injector_) r.faults = injector_->counters();
    r.mean_delay = delay_.mean();
    r.max_delay = delay_.count() ? delay_.max() : 0.0;
    r.delivery_ratio = r.generated == 0
                           ? 0.0
                           : static_cast<double>(r.delivered_unique) /
                                 static_cast<double>(r.generated);
    return r;
}

}  // namespace lcf::clint
