#pragma once
// CRC-16/CCITT-FALSE (polynomial 0x1021, init 0xFFFF) — the checksum
// protecting Clint's configuration and grant packets (§4.1).

#include <cstddef>
#include <cstdint>
#include <span>

namespace lcf::clint {

/// CRC over `data`; table-driven, one table shared process-wide.
[[nodiscard]] std::uint16_t crc16(std::span<const std::uint8_t> data) noexcept;

/// Incremental variant: continue a CRC with more data. Start with
/// crc = 0xFFFF.
[[nodiscard]] std::uint16_t crc16_update(std::uint16_t crc,
                                         std::span<const std::uint8_t> data) noexcept;

}  // namespace lcf::clint
