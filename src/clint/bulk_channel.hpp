#pragma once
// The Clint bulk channel (§4): a 16-port crossbar scheduled by the
// central LCF scheduler through a three-stage pipeline —
//
//   slot c    scheduling    hosts send configuration packets, the switch
//                           computes the LCF schedule and returns grants
//   slot c+1  transfer      granted hosts forward one bulk packet each
//   slot c+2  acknowledge   targets return acknowledgment packets
//
// The pipeline is fully overlapped: a new schedule is produced every
// slot. All control packets are CRC-protected and travel over
// bit-error-injecting links; the protocol recovers through the
// CRCErr/linkErr grant flags, acknowledgment timeouts, retransmission
// with optional bounded exponential backoff, and sequence-number
// duplicate suppression at the targets — all of which this model
// implements and its statistics expose.
//
// A fault::FaultPlan in the config layers deterministic fault storms on
// top: per-link bit-error epochs, whole-packet loss/truncation on the
// control wires, link down intervals, host crash/restart schedules, and
// scheduler stalls. With an empty plan the channel behaves
// bit-identically to a build without the fault layer.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "clint/link.hpp"
#include "clint/packets.hpp"
#include "clint/seq_tracker.hpp"
#include "core/lcf_central.hpp"
#include "fault/fault_injector.hpp"
#include "obs/paranoid_checker.hpp"
#include "sim/voq.hpp"
#include "traffic/traffic.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace lcf::clint {

/// Bulk-channel simulation parameters.
struct BulkChannelConfig {
    std::size_t hosts = 16;  ///< up to 16 (the packet formats carry 16 bits)
    std::size_t voq_capacity = 256;
    std::uint64_t slots = 10000;
    std::uint64_t warmup_slots = 1000;
    std::uint64_t seed = 1;
    double bit_error_rate = 0.0;  ///< per transmitted bit, on every link
    /// Nominal bulk payload size; data-packet corruption probability is
    /// 1-(1-ber)^bits for this many bits (control packets are modelled
    /// bit-exactly through their real encodings).
    std::size_t payload_bits = 16384;
    /// Nominal acknowledgment size; ack-loss probability is
    /// 1-(1-ber)^bits for this many bits.
    std::size_t ack_bits = 64;
    std::uint64_t ack_timeout = 4;  ///< slots before an unacked transfer retries
    /// Retransmission attempts before a transfer is abandoned; 0 means
    /// retry forever (the pre-fault-layer behavior).
    std::size_t max_retries = 0;
    /// Grow the retry timeout exponentially: attempt k waits
    /// min(ack_timeout << k, backoff_cap) slots for its ack. Off by
    /// default (every attempt waits ack_timeout).
    bool exponential_backoff = false;
    std::uint64_t backoff_cap = 64;  ///< ceiling for the backoff window
    /// Deterministic fault schedule; empty() means no injector runs.
    fault::FaultPlan fault_plan;
    /// Validate the scheduler's unicast matching every slot with an
    /// obs::ParanoidChecker (diagonal-fairness checking stays off:
    /// precalculated multicast claims may legitimately occupy an output
    /// indefinitely). Violations throw std::logic_error from step().
    bool paranoid = false;
};

/// Exact conservation snapshot of a bulk-channel run. Every generated
/// packet is in exactly one term on the right-hand side of
///   generated = delivered_unique + queued + in_flight
///             + dropped + abandoned
/// at every slot boundary; balanced() checks the identity.
struct BulkAccounting {
    std::uint64_t generated = 0;
    std::uint64_t delivered_unique = 0;
    std::uint64_t queued = 0;     ///< undelivered, in VOQs or retransmit queues
    std::uint64_t in_flight = 0;  ///< undelivered, awaiting acknowledgment
    std::uint64_t dropped = 0;    ///< VOQ overflow + destroyed by host crashes
    std::uint64_t abandoned = 0;  ///< gave up after max_retries, undelivered

    [[nodiscard]] bool balanced() const noexcept {
        return generated ==
               delivered_unique + queued + in_flight + dropped + abandoned;
    }
};

/// Measurements of one bulk-channel run.
struct BulkChannelResult {
    double mean_delay = 0.0;  ///< generation -> delivery, slots (post warm-up)
    double max_delay = 0.0;
    std::uint64_t p50_delay = 0;  ///< median first-delivery delay (post warm-up)
    std::uint64_t p99_delay = 0;
    std::uint64_t generated = 0;
    std::uint64_t delivered_unique = 0;  ///< first deliveries only
    std::uint64_t duplicate_deliveries = 0;  ///< suppressed re-deliveries
    std::uint64_t dropped_voq = 0;     ///< arrivals lost to full VOQs
    std::uint64_t config_crc_errors = 0;  ///< configs the switch rejected
    std::uint64_t grant_crc_errors = 0;   ///< grants the hosts rejected
    std::uint64_t configs_lost = 0;  ///< configs absorbed by the fault plan
    std::uint64_t grants_lost = 0;   ///< grants absorbed by the fault plan
    std::uint64_t data_corruptions = 0;   ///< bulk packets lost in flight
    std::uint64_t ack_losses = 0;         ///< acknowledgments lost in flight
    std::uint64_t retransmissions = 0;
    std::uint64_t abandoned = 0;   ///< undelivered, gave up after max_retries
    std::uint64_t crash_lost = 0;  ///< undelivered, destroyed by host crashes
    std::uint64_t recovered = 0;   ///< first deliveries that needed a retransmit
    /// Mean slots from first transmission to eventual first delivery,
    /// over recovered packets only.
    double mean_recovery_delay = 0.0;
    std::uint64_t multicast_copies = 0;  ///< per-target precalc deliveries
    std::uint64_t multicast_lost = 0;    ///< precalc copies lost to faults/crashes
    double goodput = 0.0;  ///< unique deliveries per host per post-warm-up slot
    /// Scheduler counters over the unicast matchings of every slot.
    obs::SchedCounters sched;
    /// What the fault plan did (all zero when the plan is empty).
    fault::FaultCounters faults;
};

/// Discrete-event simulation of the bulk channel.
class BulkChannelSim {
public:
    BulkChannelSim(const BulkChannelConfig& config,
                   std::unique_ptr<traffic::TrafficGenerator> traffic);

    /// Queue a multicast packet at `host` destined for every target in
    /// `target_mask`; it will be advertised through the configuration
    /// packet's `pre` field and admitted by the scheduler's
    /// precalculated stage (§4.3).
    void enqueue_multicast(std::size_t host, std::uint16_t target_mask);

    /// Set the bulk-enable mask `host` reports in its configuration
    /// packets (the §4.1 `ben` field — "hosts use these fields to
    /// disable malfunctioning hosts"). The switch ANDs the masks of all
    /// hosts whose configuration decoded correctly; an initiator whose
    /// bit is cleared anywhere is fenced off: its requests and
    /// precalculated claims are ignored until re-enabled. Defaults to
    /// all-enabled.
    void set_bulk_enable_report(std::size_t host, std::uint16_t ben_mask);

    /// Initiators currently fenced off by the ben consensus (as of the
    /// last scheduling stage).
    [[nodiscard]] std::uint16_t fenced_mask() const noexcept {
        return fenced_mask_;
    }

    /// Advance one slot.
    void step();
    /// Run the configured number of slots.
    BulkChannelResult run();

    [[nodiscard]] std::uint64_t current_slot() const noexcept { return slot_; }
    [[nodiscard]] BulkChannelResult result() const;

    /// Packets currently buffered anywhere in the channel: VOQs,
    /// retransmit queues, unacknowledged transfers, and queued
    /// multicasts. Supports conservation checks in the test suite.
    [[nodiscard]] std::size_t buffered_total() const noexcept;

    /// Conservation snapshot as of the last slot boundary.
    [[nodiscard]] BulkAccounting accounting() const noexcept;

    /// True while `host` is inside a fault-plan crash interval.
    [[nodiscard]] bool host_up(std::size_t host) const noexcept;

    /// Fault injector (engaged iff the config's plan is non-empty).
    [[nodiscard]] const std::optional<fault::FaultInjector>& fault_injector()
        const noexcept {
        return injector_;
    }

    /// Baseline per-transfer corruption probabilities implied by the
    /// configured bit-error rate: 1-(1-ber)^payload_bits and
    /// 1-(1-ber)^ack_bits. Exposed so tests can pin the formulas.
    [[nodiscard]] double data_corrupt_probability() const noexcept {
        return p_data_corrupt_;
    }
    [[nodiscard]] double ack_corrupt_probability() const noexcept {
        return p_ack_corrupt_;
    }

    /// Invariant checker (engaged iff config.paranoid).
    [[nodiscard]] const std::optional<obs::ParanoidChecker>& checker()
        const noexcept {
        return checker_;
    }

    /// Acknowledgment packets emitted during the most recent step(), as
    /// (acking target, acked initiator) pairs. §4.1 routes these over
    /// the quick channel; the integrated cluster simulation injects
    /// them there so they contend with quick data traffic.
    [[nodiscard]] const std::vector<std::pair<std::size_t, std::size_t>>&
    last_acks() const noexcept {
        return last_acks_;
    }

private:
    struct OutstandingTransfer {
        sim::Packet packet;
        std::uint64_t sent_slot = 0;   ///< most recent transmission
        std::uint64_t first_sent = 0;  ///< first transmission (recovery delay)
        std::uint32_t retries = 0;     ///< retransmissions so far
        bool delivered = false;  ///< target already has it (its ack was lost)
    };
    struct PendingRetransmit {
        sim::Packet packet;
        std::uint64_t first_sent = 0;
        std::uint32_t retries = 0;
        bool delivered = false;
    };
    struct MulticastEntry {
        std::uint16_t target_mask = 0;
        std::uint64_t id = 0;
        std::uint64_t generated_slot = 0;
    };
    struct Host {
        sim::VoqBank voqs;
        std::deque<PendingRetransmit> retransmit;  // timed-out, awaiting regrant
        std::vector<OutstandingTransfer> outstanding;  // awaiting ack
        std::vector<std::size_t> committed;   // grants not yet transferred, per target
        std::deque<MulticastEntry> multicast;
        std::optional<std::uint8_t> pending_grant;  // target granted last slot
        bool pending_multicast = false;  // last grant cycle admitted precalc
        std::vector<std::size_t> pending_fanout;    // admitted precalc targets
        std::uint16_t ben_report = 0xFFFF;  // bulk-enable mask this host sends
    };

    [[nodiscard]] std::size_t flow_of(const sim::Packet& p) const noexcept {
        return static_cast<std::size_t>(p.source) * config_.hosts +
               p.destination;
    }
    [[nodiscard]] std::uint64_t retry_window(std::uint32_t retries)
        const noexcept;
    [[nodiscard]] std::uint16_t request_mask(const Host& h) const;
    void apply_host_faults();
    void crash_host(std::size_t host);
    void step_arrivals();
    void step_timeouts();
    void step_transfers();
    void step_scheduling();
    /// Hand `p` to its target. Returns true on first delivery.
    bool deliver(const sim::Packet& p, std::uint64_t first_sent,
                 std::uint32_t retries);

    BulkChannelConfig config_;
    std::unique_ptr<traffic::TrafficGenerator> traffic_;
    core::LcfCentralScheduler scheduler_;
    std::vector<Host> hosts_;
    std::vector<ErrorLink> uplinks_;    // host -> switch (config packets)
    std::vector<ErrorLink> downlinks_;  // switch -> host (grant packets)
    util::Xoshiro256 data_rng_;         // payload/ack corruption draws
    double p_data_corrupt_ = 0.0;
    double p_ack_corrupt_ = 0.0;

    SeqTracker seq_;
    std::vector<std::uint64_t> next_flow_seq_;  // hosts * hosts
    std::vector<std::pair<std::size_t, std::size_t>> last_acks_;
    util::RunningStat delay_;
    util::Histogram delay_hist_{4096};
    util::RunningStat recovery_delay_;
    std::vector<bool> switch_crc_flag_;  // CRCErr to report per host
    std::vector<bool> switch_link_flag_;  // linkErr to report per host

    std::optional<fault::FaultInjector> injector_;
    std::vector<bool> host_up_;  // as of the last apply_host_faults()
    // Per-slot arrival destinations (one batched traffic_->arrivals()
    // call per slot instead of hosts virtual calls).
    std::vector<std::int32_t> arrival_buf_;

    std::optional<obs::ParanoidChecker> checker_;
    obs::SchedCounters counters_;

    std::uint64_t slot_ = 0;
    std::uint64_t next_packet_id_ = 0;
    std::uint16_t fenced_mask_ = 0;
    BulkChannelResult stats_;
    std::uint64_t delivered_after_warmup_ = 0;
};

}  // namespace lcf::clint
