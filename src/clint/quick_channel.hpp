#pragma once
// The Clint quick channel (§4): a best-effort, unscheduled crossbar
// optimised for low latency. Hosts transmit whenever they have a packet;
// when several packets head for the same target in one slot, one wins
// (rotating priority) and the others are dropped in the switch. Senders
// run stop-and-wait: a missing acknowledgment triggers retransmission
// after a timeout, up to a retry limit.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "sim/packet_queue.hpp"
#include "traffic/traffic.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace lcf::clint {

/// Quick-channel simulation parameters.
struct QuickChannelConfig {
    std::size_t hosts = 16;
    std::size_t queue_capacity = 64;  ///< per-host send queue
    std::uint64_t slots = 10000;
    std::uint64_t warmup_slots = 1000;
    std::uint64_t seed = 2;
    double bit_error_rate = 0.0;   ///< corrupts data and ack packets
    std::size_t payload_bits = 1024;  ///< nominal quick packet size
    std::uint64_t ack_timeout = 2;  ///< slots without ack before retry
    std::size_t max_retries = 16;   ///< give up (and count) after this many
};

/// Measurements of one quick-channel run.
struct QuickChannelResult {
    double mean_delay = 0.0;  ///< generation -> first delivery, slots
    double max_delay = 0.0;
    std::uint64_t generated = 0;
    std::uint64_t delivered = 0;      ///< unique packets delivered
    std::uint64_t dropped_queue = 0;  ///< arrivals lost to full send queues
    std::uint64_t collisions = 0;     ///< packets dropped in the switch
    std::uint64_t corruptions = 0;    ///< packets lost to bit errors
    std::uint64_t retransmissions = 0;
    std::uint64_t abandoned = 0;  ///< packets given up after max_retries
    std::uint64_t duplicates = 0; ///< re-deliveries after lost acks
    double delivery_ratio = 0.0;  ///< delivered / generated
};

/// Discrete-event simulation of the quick channel.
class QuickChannelSim {
public:
    QuickChannelSim(const QuickChannelConfig& config,
                    std::unique_ptr<traffic::TrafficGenerator> traffic);

    void step();
    QuickChannelResult run();

    [[nodiscard]] std::uint64_t current_slot() const noexcept { return slot_; }
    [[nodiscard]] QuickChannelResult result() const;

    /// Queue a control packet (a bulk acknowledgment, §4.1) at `host`
    /// destined for `target`. Control packets preempt the host's data
    /// transmission for the slot in which they are sent and are
    /// fire-and-forget (losses are the bulk channel's timeout problem,
    /// not retransmitted here).
    void inject_control(std::size_t host, std::size_t target);

    /// Control packets transmitted so far.
    [[nodiscard]] std::uint64_t control_sent() const noexcept {
        return control_sent_;
    }
    /// Data transmission opportunities lost to control preemption.
    [[nodiscard]] std::uint64_t control_preemptions() const noexcept {
        return control_preemptions_;
    }

private:
    struct Outstanding {
        sim::Packet packet;
        std::uint64_t sent_slot = 0;
        std::size_t retries = 0;
        bool awaiting_ack = false;  ///< sent this slot, ack pending
    };
    struct Host {
        sim::PacketQueue queue;
        std::optional<Outstanding> inflight;  // stop-and-wait window of 1
        std::deque<std::size_t> control;      // pending ack targets
        bool sending_control = false;         // this slot's transmission
        std::size_t control_target = 0;
    };

    QuickChannelConfig config_;
    std::unique_ptr<traffic::TrafficGenerator> traffic_;
    std::vector<Host> hosts_;
    std::vector<std::size_t> target_priority_;  // rotating winner pointer
    util::Xoshiro256 rng_;
    double p_data_corrupt_ = 0.0;
    double p_ack_corrupt_ = 0.0;

    std::vector<bool> delivered_flag_;  // dedupe by packet id (dense)
    util::RunningStat delay_;

    std::uint64_t slot_ = 0;
    std::uint64_t next_packet_id_ = 0;
    std::uint64_t control_sent_ = 0;
    std::uint64_t control_preemptions_ = 0;
    QuickChannelResult stats_;
};

}  // namespace lcf::clint
