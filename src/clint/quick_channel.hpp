#pragma once
// The Clint quick channel (§4): a best-effort, unscheduled crossbar
// optimised for low latency. Hosts transmit whenever they have a packet;
// when several packets head for the same target in one slot, one wins
// (rotating priority) and the others are dropped in the switch. Senders
// run stop-and-wait: a missing acknowledgment triggers retransmission
// after a timeout, up to a retry limit.
//
// A fault::FaultPlan in the config layers deterministic faults on top:
// extra bit-error epochs and packet loss on the data/ack paths plus host
// crash/restart schedules. (Scheduler stalls do not apply — the quick
// channel is unscheduled.) With an empty plan the channel behaves
// bit-identically to a build without the fault layer.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "fault/fault_injector.hpp"
#include "sim/packet_queue.hpp"
#include "traffic/traffic.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace lcf::clint {

/// Quick-channel simulation parameters.
struct QuickChannelConfig {
    std::size_t hosts = 16;
    std::size_t queue_capacity = 64;  ///< per-host send queue
    std::uint64_t slots = 10000;
    std::uint64_t warmup_slots = 1000;
    std::uint64_t seed = 2;
    double bit_error_rate = 0.0;   ///< corrupts data and ack packets
    std::size_t payload_bits = 1024;  ///< nominal quick packet size
    /// Nominal acknowledgment size; ack-loss probability is
    /// 1-(1-ber)^bits for this many bits.
    std::size_t ack_bits = 64;
    std::uint64_t ack_timeout = 2;  ///< slots without ack before retry
    std::size_t max_retries = 16;   ///< give up (and count) after this many
    /// Deterministic fault schedule; empty() means no injector runs.
    fault::FaultPlan fault_plan;
};

/// Exact conservation snapshot of a quick-channel run:
///   generated = delivered_unique + queued + in_flight
///             + dropped + abandoned
/// at every slot boundary (dropped = queue overflow + crash losses).
struct QuickAccounting {
    std::uint64_t generated = 0;
    std::uint64_t delivered_unique = 0;
    std::uint64_t queued = 0;     ///< undelivered, in send queues
    std::uint64_t in_flight = 0;  ///< undelivered, in stop-and-wait windows
    std::uint64_t dropped = 0;    ///< queue overflow + destroyed by crashes
    std::uint64_t abandoned = 0;  ///< gave up after max_retries, undelivered

    [[nodiscard]] bool balanced() const noexcept {
        return generated ==
               delivered_unique + queued + in_flight + dropped + abandoned;
    }
};

/// Measurements of one quick-channel run.
struct QuickChannelResult {
    double mean_delay = 0.0;  ///< generation -> first delivery, slots
    double max_delay = 0.0;
    std::uint64_t generated = 0;
    std::uint64_t delivered_unique = 0;  ///< first deliveries only
    std::uint64_t duplicate_deliveries = 0;  ///< re-deliveries after lost acks
    std::uint64_t dropped_queue = 0;  ///< arrivals lost to full send queues
    std::uint64_t collisions = 0;     ///< packets dropped in the switch
    std::uint64_t corruptions = 0;    ///< packets lost to bit errors
    std::uint64_t fault_losses = 0;   ///< data/acks absorbed by the fault plan
    std::uint64_t retransmissions = 0;
    std::uint64_t abandoned = 0;  ///< undelivered, gave up after max_retries
    /// Copies given up after max_retries whose delivery already landed
    /// (only the acks kept vanishing) — not data loss, and not part of
    /// `abandoned`, which older code conflated with it.
    std::uint64_t abandoned_delivered = 0;
    std::uint64_t crash_lost = 0;  ///< undelivered, destroyed by host crashes
    double delivery_ratio = 0.0;  ///< delivered_unique / generated
    /// What the fault plan did (all zero when the plan is empty).
    fault::FaultCounters faults;
};

/// Discrete-event simulation of the quick channel.
class QuickChannelSim {
public:
    QuickChannelSim(const QuickChannelConfig& config,
                    std::unique_ptr<traffic::TrafficGenerator> traffic);

    void step();
    QuickChannelResult run();

    [[nodiscard]] std::uint64_t current_slot() const noexcept { return slot_; }
    [[nodiscard]] QuickChannelResult result() const;

    /// Conservation snapshot as of the last slot boundary.
    [[nodiscard]] QuickAccounting accounting() const noexcept;

    /// Baseline per-packet corruption probabilities implied by the
    /// configured bit-error rate: 1-(1-ber)^payload_bits and
    /// 1-(1-ber)^ack_bits. Exposed so tests can pin the formulas.
    [[nodiscard]] double data_corrupt_probability() const noexcept {
        return p_data_corrupt_;
    }
    [[nodiscard]] double ack_corrupt_probability() const noexcept {
        return p_ack_corrupt_;
    }

    /// Fault injector (engaged iff the config's plan is non-empty).
    [[nodiscard]] const std::optional<fault::FaultInjector>& fault_injector()
        const noexcept {
        return injector_;
    }

    /// Queue a control packet (a bulk acknowledgment, §4.1) at `host`
    /// destined for `target`. Control packets preempt the host's data
    /// transmission for the slot in which they are sent and are
    /// fire-and-forget (losses are the bulk channel's timeout problem,
    /// not retransmitted here).
    void inject_control(std::size_t host, std::size_t target);

    /// Control packets transmitted so far.
    [[nodiscard]] std::uint64_t control_sent() const noexcept {
        return control_sent_;
    }
    /// Data transmission opportunities lost to control preemption.
    [[nodiscard]] std::uint64_t control_preemptions() const noexcept {
        return control_preemptions_;
    }
    /// Control packets absorbed by faults (crashed targets, lost wires).
    [[nodiscard]] std::uint64_t control_lost() const noexcept {
        return control_lost_;
    }

private:
    struct Outstanding {
        sim::Packet packet;
        std::uint64_t sent_slot = 0;
        std::size_t retries = 0;
        bool awaiting_ack = false;  ///< sent this slot, ack pending
        bool delivered_once = false;  ///< target has it; only acks were lost
    };
    struct Host {
        sim::PacketQueue queue;
        std::optional<Outstanding> inflight;  // stop-and-wait window of 1
        std::deque<std::size_t> control;      // pending ack targets
        bool sending_control = false;         // this slot's transmission
        std::size_t control_target = 0;
    };

    void apply_host_faults();
    void crash_host(std::size_t host);

    QuickChannelConfig config_;
    std::unique_ptr<traffic::TrafficGenerator> traffic_;
    std::vector<Host> hosts_;
    std::vector<std::size_t> target_priority_;  // rotating winner pointer
    util::Xoshiro256 rng_;
    double p_data_corrupt_ = 0.0;
    double p_ack_corrupt_ = 0.0;

    /// Duplicate suppression: the channel is stop-and-wait per host and
    /// send queues are FIFO, so each source's packets arrive in strictly
    /// increasing id order. One remembered id per source replaces the
    /// per-packet dense flag vector, whose memory grew with every packet
    /// ever generated. kNoneDelivered marks "nothing yet".
    static constexpr std::uint64_t kNoneDelivered = ~std::uint64_t{0};
    std::vector<std::uint64_t> last_delivered_id_;
    util::RunningStat delay_;

    std::optional<fault::FaultInjector> injector_;
    std::vector<bool> host_up_;  // as of the last apply_host_faults()
    // Per-slot arrival destinations (one batched traffic_->arrivals()
    // call per slot instead of hosts virtual calls).
    std::vector<std::int32_t> arrival_buf_;

    std::uint64_t slot_ = 0;
    std::uint64_t next_packet_id_ = 0;
    std::uint64_t control_sent_ = 0;
    std::uint64_t control_preemptions_ = 0;
    std::uint64_t control_lost_ = 0;
    QuickChannelResult stats_;
};

}  // namespace lcf::clint
