#include "clint/link.hpp"

#include <stdexcept>

namespace lcf::clint {

ErrorLink::ErrorLink(double bit_error_rate, std::uint64_t seed)
    : ber_(bit_error_rate), rng_(seed) {
    if (bit_error_rate < 0.0 || bit_error_rate > 1.0) {
        throw std::invalid_argument("bit_error_rate must be in [0, 1]");
    }
}

std::vector<std::uint8_t> ErrorLink::transmit(
    std::span<const std::uint8_t> wire) {
    std::vector<std::uint8_t> out(wire.begin(), wire.end());
    if (ber_ <= 0.0) return out;
    bool corrupted = false;
    for (auto& byte : out) {
        for (int bit = 0; bit < 8; ++bit) {
            if (rng_.next_bool(ber_)) {
                byte = static_cast<std::uint8_t>(byte ^ (1U << bit));
                ++flipped_bits_;
                corrupted = true;
            }
        }
    }
    if (corrupted) ++corrupted_;
    return out;
}

}  // namespace lcf::clint
