#include "clint/link.hpp"

#include <stdexcept>

#include "util/bitflip.hpp"

namespace lcf::clint {

ErrorLink::ErrorLink(double bit_error_rate, std::uint64_t seed)
    : ber_(bit_error_rate), rng_(seed) {
    if (bit_error_rate < 0.0 || bit_error_rate > 1.0) {
        throw std::invalid_argument("bit_error_rate must be in [0, 1]");
    }
}

std::vector<std::uint8_t> ErrorLink::transmit(
    std::span<const std::uint8_t> wire) {
    std::vector<std::uint8_t> out(wire.begin(), wire.end());
    if (ber_ <= 0.0) return out;
    // Geometric skip sampling (util::flip_bits): O(flips) RNG work per
    // packet instead of the previous 8 Bernoulli draws per byte, with
    // identical independent-flip semantics.
    const std::uint64_t flips =
        util::flip_bits({out.data(), out.size()}, ber_, rng_);
    if (flips > 0) {
        flipped_bits_ += flips;
        ++corrupted_;
    }
    return out;
}

}  // namespace lcf::clint
