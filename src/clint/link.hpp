#pragma once
// Serial link with independent random bit errors. Clint's protocol
// detects corruption through per-packet CRCs and reports it via the
// linkErr/CRCErr grant-packet flags; this model provides the faults.

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace lcf::clint {

/// A unidirectional link that flips each transmitted bit independently
/// with probability `bit_error_rate`.
class ErrorLink {
public:
    ErrorLink(double bit_error_rate, std::uint64_t seed);

    /// Transmit a packet; the returned buffer may differ from the input
    /// in corrupted bits. Increments error statistics when it does.
    [[nodiscard]] std::vector<std::uint8_t> transmit(
        std::span<const std::uint8_t> wire);

    /// Packets that suffered at least one bit flip so far.
    [[nodiscard]] std::uint64_t corrupted_packets() const noexcept {
        return corrupted_;
    }
    /// Total bit flips injected so far.
    [[nodiscard]] std::uint64_t flipped_bits() const noexcept {
        return flipped_bits_;
    }
    [[nodiscard]] double bit_error_rate() const noexcept { return ber_; }

private:
    double ber_;
    util::Xoshiro256 rng_;
    std::uint64_t corrupted_ = 0;
    std::uint64_t flipped_bits_ = 0;
};

}  // namespace lcf::clint
