#include "clint/crc16.hpp"

#include <array>

namespace lcf::clint {

namespace {

constexpr std::uint16_t kPoly = 0x1021;
constexpr std::uint16_t kInit = 0xFFFF;

constexpr std::array<std::uint16_t, 256> make_table() {
    std::array<std::uint16_t, 256> table{};
    for (std::uint32_t byte = 0; byte < 256; ++byte) {
        std::uint16_t crc = static_cast<std::uint16_t>(byte << 8);
        for (int bit = 0; bit < 8; ++bit) {
            crc = (crc & 0x8000)
                      ? static_cast<std::uint16_t>((crc << 1) ^ kPoly)
                      : static_cast<std::uint16_t>(crc << 1);
        }
        table[byte] = crc;
    }
    return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint16_t crc16_update(std::uint16_t crc,
                           std::span<const std::uint8_t> data) noexcept {
    for (const std::uint8_t b : data) {
        crc = static_cast<std::uint16_t>((crc << 8) ^
                                         kTable[((crc >> 8) ^ b) & 0xFF]);
    }
    return crc;
}

std::uint16_t crc16(std::span<const std::uint8_t> data) noexcept {
    return crc16_update(kInit, data);
}

}  // namespace lcf::clint
