#pragma once
// Clint control-packet formats (§4.1). Two packet types travel on the
// quick channel between hosts and the bulk scheduler:
//
//   configuration (host -> switch):
//     {type=cfg | req[15..0] | pre[15..0] | ben[15..0] | qen[15..0] |
//      CRC[15..0]}
//   grant (switch -> host):
//     {type=gnt | nodeId[3..0] | gnt[3..0] | gntVal | linkErr | CRCErr |
//      CRC[15..0]}
//
// The codecs here serialise to the wire byte layout, protect everything
// before the CRC field with CRC-16, and refuse to decode corrupted or
// mistyped buffers — exactly the behaviour the protocol relies on for
// its linkErr/CRCErr reporting.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace lcf::clint {

/// Wire type tags.
enum class PacketType : std::uint8_t {
    kConfig = 0xC5,
    kGrant = 0x6A,
};

/// Host -> switch configuration packet.
struct ConfigPacket {
    std::uint16_t req = 0;  ///< requested targets (bit j: VOQ j non-empty)
    std::uint16_t pre = 0;  ///< precalculated-schedule targets (§4.3)
    std::uint16_t ben = 0;  ///< bulk-enabled initiators (fault isolation)
    std::uint16_t qen = 0;  ///< quick-enabled initiators (fault isolation)

    /// Wire size in bytes (type + 4 fields + CRC).
    static constexpr std::size_t kWireSize = 11;

    /// Serialise including the trailing CRC.
    [[nodiscard]] std::vector<std::uint8_t> encode() const;
    /// Decode and CRC-check; nullopt when the buffer is not a valid
    /// configuration packet.
    [[nodiscard]] static std::optional<ConfigPacket> decode(
        std::span<const std::uint8_t> wire);

    friend bool operator==(const ConfigPacket&, const ConfigPacket&) = default;
};

/// Switch -> host grant packet.
struct GrantPacket {
    std::uint8_t node_id = 0;  ///< host id assignment (init time), 4 bits
    std::uint8_t gnt = 0;      ///< granted target, 4 bits
    bool gnt_val = false;      ///< gnt field is valid
    bool link_err = false;     ///< link error seen since last grant
    bool crc_err = false;      ///< last config packet bad or missing

    static constexpr std::size_t kWireSize = 5;

    [[nodiscard]] std::vector<std::uint8_t> encode() const;
    [[nodiscard]] static std::optional<GrantPacket> decode(
        std::span<const std::uint8_t> wire);

    friend bool operator==(const GrantPacket&, const GrantPacket&) = default;
};

}  // namespace lcf::clint
