#pragma once
// Whole-cluster Clint simulation: the segregated architecture of §4 with
// both transmission channels running side by side over a star topology
// of up to 16 hosts — the scheduled, collision-free bulk channel and the
// best-effort quick channel. This is the software stand-in for the Clint
// hardware prototype (see DESIGN.md, substitutions).

#include <cstdint>
#include <memory>
#include <string>

#include "clint/bulk_channel.hpp"
#include "clint/quick_channel.hpp"

namespace lcf::clint {

/// Cluster-level parameters; the per-channel loads are independent, as
/// in the real system (separate switches and links per channel).
struct ClintConfig {
    std::size_t hosts = 16;
    std::uint64_t slots = 10000;
    std::uint64_t warmup_slots = 1000;
    std::uint64_t seed = 7;
    double bulk_load = 0.6;     ///< bulk packets per host per slot
    double quick_load = 0.2;    ///< quick packets per host per slot
    double bit_error_rate = 0.0;
    std::string traffic = "uniform";
    /// When true the two channels are stepped in lockstep and every
    /// bulk acknowledgment is injected into the quick channel as a
    /// control packet (§4.1: "bulk acknowledgments ... use the quick
    /// channel"), where it preempts and collides with quick data. When
    /// false the channels run independently (ack bandwidth ignored).
    bool integrated = false;
    /// Deterministic fault schedules, one per channel (the real system
    /// has physically separate switches and links per channel, so a
    /// fault on one never touches the other). Empty plans cost nothing.
    fault::FaultPlan bulk_faults;
    fault::FaultPlan quick_faults;
};

/// Combined results of both channels.
struct ClintResult {
    BulkChannelResult bulk;
    QuickChannelResult quick;
    std::uint64_t quick_control_sent = 0;        ///< integrated mode only
    std::uint64_t quick_control_preemptions = 0; ///< integrated mode only
};

/// Run a full cluster simulation. Returns per-channel metrics; the
/// quickstart example and bench_clint print them side by side to show
/// the architecture's division of labour (scheduled throughput vs
/// best-effort latency).
ClintResult run_clint(const ClintConfig& config);

}  // namespace lcf::clint
