#pragma once
// Per-flow sequence-number duplicate suppression for the Clint
// channels. Each (source, destination) flow numbers its packets
// contiguously at generation (sim::Packet::flow_seq); a receiver-side
// SeqTracker then answers "first delivery or duplicate?" in O(log k)
// with memory bounded by the reorder window, unlike the delivered-id
// hash set it replaces, which grew with every packet ever delivered and
// made multi-million-slot soak runs accumulate without bound.
//
// The tracker keeps, per flow, a base sequence number (everything below
// it is accounted for) plus the sparse set of accounted-for sequence
// numbers at or above it. Retransmission reordering keeps the set small;
// packets destroyed before delivery (VOQ overflow, abandonment after
// max retries, host crashes) are skip()ed so their holes close and the
// base keeps advancing.

#include <cstddef>
#include <cstdint>
#include <set>
#include <vector>

namespace lcf::clint {

/// Receiver-side duplicate suppression over densely numbered flows.
class SeqTracker {
public:
    SeqTracker() = default;
    /// Track `flows` independent flows, all starting at sequence 0.
    explicit SeqTracker(std::size_t flows) : flows_(flows) {}

    void reset(std::size_t flows) {
        flows_.assign(flows, Flow{});
    }

    /// Record a delivery of `seq` on `flow`. True when this is the first
    /// time the sequence number is seen (count it delivered); false for
    /// a duplicate.
    bool deliver(std::size_t flow, std::uint64_t seq) {
        return account(flows_[flow], seq);
    }

    /// Mark `seq` as accounted for without a delivery — the packet was
    /// destroyed (dropped, abandoned, lost in a crash) and will never
    /// arrive, so its hole must not pin the flow's base forever.
    void skip(std::size_t flow, std::uint64_t seq) {
        account(flows_[flow], seq);
    }

    /// Packets at or above the base currently held out of order, summed
    /// over flows — the tracker's live memory footprint.
    [[nodiscard]] std::size_t pending() const noexcept {
        std::size_t n = 0;
        for (const Flow& f : flows_) n += f.ahead.size();
        return n;
    }

private:
    struct Flow {
        std::uint64_t base = 0;        // all seq < base are accounted for
        std::set<std::uint64_t> ahead; // accounted-for seqs >= base
    };

    /// Returns true when `seq` was not yet accounted for.
    static bool account(Flow& f, std::uint64_t seq) {
        if (seq < f.base) return false;
        if (seq == f.base) {
            ++f.base;
            for (auto it = f.ahead.begin();
                 it != f.ahead.end() && *it == f.base;
                 it = f.ahead.erase(it)) {
                ++f.base;
            }
            return true;
        }
        return f.ahead.insert(seq).second;
    }

    std::vector<Flow> flows_;
};

}  // namespace lcf::clint
