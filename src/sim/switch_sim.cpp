#include "sim/switch_sim.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace lcf::sim {

SwitchSim::SwitchSim(const SimConfig& config,
                     std::unique_ptr<sched::Scheduler> scheduler,
                     std::unique_ptr<traffic::TrafficGenerator> traffic)
    : config_(config),
      scheduler_(std::move(scheduler)),
      traffic_(std::move(traffic)),
      metrics_(config.ports, config.ports, config.warmup_slots,
               config.record_service_matrix),
      requests_(config.ports),
      matching_(config.ports) {
    if (config_.ports == 0) {
        throw std::invalid_argument("ports must be positive");
    }
    if (traffic_ == nullptr) {
        throw std::invalid_argument("traffic generator required");
    }
    if (config_.mode != SwitchMode::kOutputBuffered && scheduler_ == nullptr) {
        throw std::invalid_argument("scheduler required for input-queued modes");
    }

    traffic_->reset(config_.ports, config_.ports, config_.seed);
    arrival_buf_.assign(config_.ports, traffic::kNoArrival);
    if (config_.speedup == 0) {
        throw std::invalid_argument("speedup must be at least 1");
    }
    switch (config_.mode) {
        case SwitchMode::kVoq:
            input_queues_.assign(config_.ports,
                                 PacketQueue(config_.pq_capacity));
            voqs_.assign(config_.ports,
                         VoqBank(config_.ports, config_.voq_capacity));
            if (config_.speedup > 1) {
                output_buffers_.assign(config_.ports,
                                       PacketQueue(config_.outbuf_capacity));
            }
            break;
        case SwitchMode::kFifo:
            input_queues_.assign(config_.ports,
                                 PacketQueue(config_.fifo_capacity));
            break;
        case SwitchMode::kOutputBuffered:
            output_buffers_.assign(config_.ports,
                                   PacketQueue(config_.outbuf_capacity));
            break;
    }
    if (scheduler_ != nullptr) {
        scheduler_->reset(config_.ports, config_.ports);
        track_queue_lengths_ = scheduler_->wants_queue_lengths() &&
                               config_.mode == SwitchMode::kVoq;
        if (track_queue_lengths_) {
            queue_lengths_.assign(config_.ports * config_.ports, 0);
        }
        if (config_.trace_capacity > 0) {
            trace_.emplace(config_.ports, config_.ports,
                           config_.trace_capacity);
        }
        if (config_.paranoid) {
            checker_.emplace(obs::ParanoidChecker::options_for(
                scheduler_->name(), scheduler_->iteration_limit()));
            checker_->reset(config_.ports, config_.ports);
        }
    }
    port_up_.assign(config_.ports, true);
    if (!config_.fault_plan.empty()) {
        injector_.emplace(config_.fault_plan);
        injector_->reset(config_.ports);
    }
    if (config_.clos_middle > 0) {
        if (config_.clos_group == 0 ||
            config_.ports % config_.clos_group != 0) {
            throw std::invalid_argument(
                "ports must be a multiple of clos_group");
        }
        clos_.emplace(config_.clos_group, config_.clos_middle,
                      config_.ports / config_.clos_group);
    }
}

void SwitchSim::observe_schedule() {
    // Observe the matching as produced by the scheduler, before the
    // fabric may reject connections: the invariants being checked (and
    // the starvation ages) are properties of the scheduler itself.
    counters_.observe_cycle(requests_.total(), matching_.size());
    if (trace_) {
        trace_->record(counters_.cycles - 1, requests_, matching_);
    }
    if (checker_) {
        checker_->check_cycle(requests_, matching_);
        checker_->check_iterations(scheduler_->last_iterations());
    }
}

void SwitchSim::apply_fabric() {
    if (!clos_) return;
    const fabric::ClosRoute route = clos_->route(matching_);
    for (const std::size_t input : route.rejected_inputs) {
        matching_.unmatch_input(input);
        ++fabric_blocked_;
    }
}

void SwitchSim::deliver(const Packet& p) {
    // The packet crosses the output link during the current slot and is
    // gone at its end: delay = (slot_ + 1) - generated_slot, so a packet
    // forwarded in its generation slot has the minimum delay of 1.
    const std::uint64_t delay = slot_ + 1 - p.generated_slot;
    metrics_.on_delivered(p.generated_slot, delay, p.source, p.destination);
    if (slot_ >= config_.warmup_slots) ++departed_after_warmup_;
}

void SwitchSim::step_arrivals() {
    traffic_->arrivals(slot_, arrival_buf_.data());
    for (std::size_t i = 0; i < config_.ports; ++i) {
        const std::int32_t dst = arrival_buf_[i];
        if (dst == traffic::kNoArrival) continue;
        metrics_.on_generated();
        if (!port_up_[i]) {
            // A crashed host offers the packet into the void.
            metrics_.on_dropped();
            ++next_packet_id_;
            continue;
        }
        const Packet p{next_packet_id_++, static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(dst), slot_};
        bool accepted = false;
        switch (config_.mode) {
            case SwitchMode::kVoq:
            case SwitchMode::kFifo:
                accepted = input_queues_[i].push(p);
                break;
            case SwitchMode::kOutputBuffered:
                accepted = output_buffers_[p.destination].push(p);
                break;
        }
        if (!accepted) metrics_.on_dropped();
    }
}

void SwitchSim::step_voq_mode() {
    // PQ -> VOQ: move packets as long as the head's VOQ has space
    // ("buffered in the packet queues and next, if space permits, in the
    // virtual output queues").
    for (std::size_t i = 0; i < config_.ports; ++i) {
        auto& pq = input_queues_[i];
        while (!pq.empty() &&
               !voqs_[i].queue(pq.front().destination).full()) {
            const std::size_t dst = pq.front().destination;
            voqs_[i].push(pq.pop());
            if (track_queue_lengths_) {
                ++queue_lengths_[i * config_.ports + dst];
            }
        }
    }

    // A fault-plan stall freezes the switch core for the slot: no
    // scheduling phases run and no matching is produced. Buffered
    // packets stay put; only the output links (speedup drain below)
    // keep moving.
    const bool stalled = injector_ && injector_->scheduler_stalled(slot_);
    if (stalled) {
        ++counters_.stalled_cycles;
        matching_.reset(config_.ports, config_.ports);
    }
    for (std::size_t phase = 0; !stalled && phase < config_.speedup; ++phase) {
        // Request matrix from VOQ occupancy: a word copy of each bank's
        // incrementally maintained occupancy vector.
        for (std::size_t i = 0; i < config_.ports; ++i) {
            requests_.row(i) = voqs_[i].occupancy();
        }
        if (injector_) mask_down_ports();

        if (phase == 0 && slot_ >= config_.warmup_slots) {
            // "Choices" diagnostic: mean non-empty VOQs per input. Read
            // from the banks' incrementally maintained counts; with a
            // fault injector engaged the masked request rows differ from
            // raw occupancy, so fall back to counting the actual rows.
            std::size_t nonempty = 0;
            if (injector_) {
                for (std::size_t i = 0; i < config_.ports; ++i) {
                    nonempty += requests_.row(i).count();
                }
            } else {
                for (std::size_t i = 0; i < config_.ports; ++i) {
                    nonempty += voqs_[i].nonempty_count();
                }
            }
            choices_accum_ += static_cast<double>(nonempty) /
                              static_cast<double>(config_.ports);
            ++choices_slots_;
        }

        // Weight-aware schedulers (iLQF) additionally see the occupancy
        // counts behind the request bits (maintained at push/pop, not
        // gathered here).
        if (track_queue_lengths_) {
            scheduler_->observe_queue_lengths(queue_lengths_, config_.ports);
        }

        scheduler_->schedule(requests_, matching_);
        assert(matching_.valid_for(requests_));
        observe_schedule();
        apply_fabric();

        // Transfer the head-of-VOQ packet of every matched pair,
        // visiting only the matched outputs (set-bit scan — at high load
        // most outputs are matched, but at low load this skips nearly
        // the whole port range). At speedup 1 the packet crosses
        // straight onto the output link; with speedup the fabric outruns
        // the link, so packets land in the per-output buffer drained at
        // line rate below.
        for (const std::size_t j : matching_.matched_outputs().set_bits()) {
            const std::int32_t i = matching_.input_of(j);
            assert(i != sched::kUnmatched);
            auto& bank = voqs_[static_cast<std::size_t>(i)];
            assert(!bank.queue(j).empty());
            if (config_.speedup == 1) {
                deliver(bank.pop(j));
            } else if (!output_buffers_[j].full()) {
                output_buffers_[j].push(bank.pop(j));
            } else {
                continue;  // full output buffer leaves the packet in its VOQ
            }
            if (track_queue_lengths_) {
                --queue_lengths_[static_cast<std::size_t>(i) * config_.ports + j];
            }
        }
    }

    if (config_.speedup > 1) {
        for (std::size_t j = 0; j < config_.ports; ++j) {
            if (!output_buffers_[j].empty()) {
                deliver(output_buffers_[j].pop());
            }
        }
    }
}

void SwitchSim::mask_down_ports() {
    // Degraded-mode scheduling: crashed ports vanish from the request
    // matrix — their rows (as initiators) and their columns (as targets)
    // — so the scheduler matches only the surviving ports and never
    // wastes a grant on a connection nobody can terminate.
    for (std::size_t i = 0; i < config_.ports; ++i) {
        if (!port_up_[i]) {
            requests_.row(i).clear();
            continue;
        }
        for (std::size_t j = 0; j < config_.ports; ++j) {
            if (!port_up_[j]) requests_.set(i, j, false);
        }
    }
}

void SwitchSim::step_fifo_mode() {
    const bool stalled = injector_ && injector_->scheduler_stalled(slot_);
    if (stalled) {
        ++counters_.stalled_cycles;
        matching_.reset(config_.ports, config_.ports);
        return;
    }
    // Head-of-line requests: each input requests exactly the destination
    // of its FIFO head.
    requests_.clear();
    for (std::size_t i = 0; i < config_.ports; ++i) {
        if (!input_queues_[i].empty()) {
            requests_.set(i, input_queues_[i].front().destination);
        }
    }
    if (injector_) mask_down_ports();

    scheduler_->schedule(requests_, matching_);
    assert(matching_.valid_for(requests_));
    observe_schedule();
    apply_fabric();

    for (const std::size_t j : matching_.matched_outputs().set_bits()) {
        const std::int32_t i = matching_.input_of(j);
        assert(i != sched::kUnmatched);
        auto& q = input_queues_[static_cast<std::size_t>(i)];
        assert(!q.empty() && q.front().destination == j);
        deliver(q.pop());
    }
}

void SwitchSim::step_outbuf_mode() {
    // Arrivals were written straight into the output buffers (the fabric
    // of an output-buffered switch accepts up to n packets per output per
    // slot); each output link drains one packet per slot.
    for (std::size_t j = 0; j < config_.ports; ++j) {
        if (!output_buffers_[j].empty()) {
            deliver(output_buffers_[j].pop());
        }
    }
}

void SwitchSim::step() {
    if (injector_) {
        injector_->begin_slot(slot_);
        for (std::size_t i = 0; i < config_.ports; ++i) {
            port_up_[i] = injector_->host_up(i, slot_);
        }
    }
    step_arrivals();
    switch (config_.mode) {
        case SwitchMode::kVoq:
            step_voq_mode();
            break;
        case SwitchMode::kFifo:
            step_fifo_mode();
            break;
        case SwitchMode::kOutputBuffered:
            step_outbuf_mode();
            break;
    }
    ++slot_;
}

SimResult SwitchSim::run() {
    while (slot_ < config_.slots) step();
    return result();
}

SimResult SwitchSim::result() const {
    SimResult r;
    r.mean_delay = metrics_.delay_stat().mean();
    r.p50_delay = static_cast<double>(metrics_.delay_histogram().percentile(0.50));
    r.p99_delay = static_cast<double>(metrics_.delay_histogram().percentile(0.99));
    r.max_delay = metrics_.delay_stat().count() ? metrics_.delay_stat().max() : 0.0;
    r.offered_load = traffic_->offered_load();
    r.generated = metrics_.generated();
    r.delivered = metrics_.delivered();
    r.dropped = metrics_.dropped();
    r.measured = metrics_.measured();
    r.fabric_blocked = fabric_blocked_;
    r.mean_choices =
        choices_slots_ ? choices_accum_ / static_cast<double>(choices_slots_)
                       : 0.0;
    r.ports = config_.ports;
    r.sched = counters_;
    if (injector_) r.faults = injector_->counters();
    if (trace_) {
        r.sched.max_starvation_age = std::max(
            r.sched.max_starvation_age, trace_->ages().high_watermark());
    }
    if (checker_) {
        r.sched.max_starvation_age = std::max(r.sched.max_starvation_age,
                                              checker_->max_starvation_age());
        r.sched.paranoid_violations = checker_->violation_count();
    }
    const std::uint64_t measured_slots =
        slot_ > config_.warmup_slots ? slot_ - config_.warmup_slots : 0;
    r.throughput =
        measured_slots == 0
            ? 0.0
            : static_cast<double>(departed_after_warmup_) /
                  (static_cast<double>(measured_slots) *
                   static_cast<double>(config_.ports));
    if (metrics_.has_service_matrix()) {
        r.service.resize(config_.ports * config_.ports);
        for (std::size_t i = 0; i < config_.ports; ++i) {
            for (std::size_t j = 0; j < config_.ports; ++j) {
                r.service[i * config_.ports + j] = metrics_.service(i, j);
            }
        }
    }
    return r;
}

}  // namespace lcf::sim
