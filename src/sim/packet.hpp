#pragma once
// Fixed-size packet (cell) descriptor. The paper's switch forwards
// fixed-size packets in aligned time slots, so the payload never matters
// to the simulation — only identity, endpoints, and timing.

#include <cstdint>

namespace lcf::sim {

/// One fixed-size packet travelling through the simulated switch.
struct Packet {
    std::uint64_t id = 0;        ///< unique per simulation, in generation order
    std::uint32_t source = 0;    ///< input port that generated it
    std::uint32_t destination = 0;  ///< output port it is destined for
    std::uint64_t generated_slot = 0;  ///< slot in which the PG emitted it
    /// Position in its (source, destination) flow, assigned contiguously
    /// at generation. Protocol models use it for sequence-number
    /// duplicate suppression (clint::SeqTracker); the plain switch
    /// simulation ignores it.
    std::uint64_t flow_seq = 0;
};

}  // namespace lcf::sim
