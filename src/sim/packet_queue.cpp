#include "sim/packet_queue.hpp"

#include <algorithm>

namespace lcf::sim {

void PacketQueue::grow() {
    // Called only when the ring is packed (size_ == buffer_.size() <
    // capacity_). Double the storage (min 8 entries, never past the
    // bound) and linearize the ring so head_ restarts at 0.
    const std::size_t new_cap =
        std::min(capacity_, std::max<std::size_t>(8, buffer_.size() * 2));
    std::vector<Packet> next(new_cap);
    for (std::size_t k = 0; k < size_; ++k) {
        std::size_t idx = head_ + k;
        if (idx >= buffer_.size()) idx -= buffer_.size();
        next[k] = buffer_[idx];
    }
    buffer_ = std::move(next);
    head_ = 0;
}

}  // namespace lcf::sim
