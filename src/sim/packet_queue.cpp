#include "sim/packet_queue.hpp"

#include <cassert>

namespace lcf::sim {

PacketQueue::PacketQueue(std::size_t capacity) : buffer_(capacity) {}

bool PacketQueue::push(const Packet& p) noexcept {
    if (full()) return false;
    buffer_[(head_ + size_) % buffer_.size()] = p;
    ++size_;
    return true;
}

const Packet& PacketQueue::front() const noexcept {
    assert(!empty());
    return buffer_[head_];
}

Packet PacketQueue::pop() noexcept {
    assert(!empty());
    const Packet p = buffer_[head_];
    head_ = (head_ + 1) % buffer_.size();
    --size_;
    return p;
}

void PacketQueue::clear() noexcept {
    head_ = 0;
    size_ = 0;
}

}  // namespace lcf::sim
