#pragma once
// Bounded FIFO of packets, backed by a ring buffer. Used for the packet
// queues (PQ), the virtual output queues (VOQ), and the output buffers of
// the output-buffered switch model.

#include <cassert>
#include <cstddef>
#include <vector>

#include "sim/packet.hpp"

namespace lcf::sim {

/// Bounded FIFO with O(1) push/pop.
///
/// Storage grows geometrically up to the configured capacity instead of
/// being allocated eagerly: a VOQ bank holds ports² of these queues and
/// most stay near-empty in any stable simulation, so eager allocation
/// (capacity × ports² × sizeof(Packet)) would dominate construction
/// time and memory for short runs. Amortized push cost stays O(1);
/// `capacity()` is the bound, not the currently allocated storage.
class PacketQueue {
public:
    PacketQueue() = default;
    /// Queue holding at most `capacity` packets (storage allocated
    /// lazily as the queue actually fills).
    explicit PacketQueue(std::size_t capacity) : capacity_(capacity) {}

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] bool full() const noexcept { return size_ == capacity_; }

    /// Append `p`; returns false (and drops it) when full. May allocate
    /// (growing the ring), hence not noexcept.
    bool push(const Packet& p) {
        if (size_ == capacity_) return false;
        if (size_ == buffer_.size()) grow();
        std::size_t tail = head_ + size_;
        if (tail >= buffer_.size()) tail -= buffer_.size();
        buffer_[tail] = p;
        ++size_;
        return true;
    }

    /// Head of the queue (precondition: !empty()).
    [[nodiscard]] const Packet& front() const noexcept {
        assert(!empty());
        return buffer_[head_];
    }

    /// Remove and return the head (precondition: !empty()).
    Packet pop() noexcept {
        assert(!empty());
        const Packet p = buffer_[head_];
        if (++head_ == buffer_.size()) head_ = 0;
        --size_;
        return p;
    }

    /// Drop all contents (allocated storage is retained).
    void clear() noexcept {
        head_ = 0;
        size_ = 0;
    }

private:
    void grow();

    std::vector<Packet> buffer_;
    std::size_t capacity_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

}  // namespace lcf::sim
