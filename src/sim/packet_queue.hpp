#pragma once
// Bounded FIFO of packets, backed by a ring buffer. Used for the packet
// queues (PQ), the virtual output queues (VOQ), and the output buffers of
// the output-buffered switch model.

#include <cstddef>
#include <vector>

#include "sim/packet.hpp"

namespace lcf::sim {

/// Bounded FIFO with O(1) push/pop and no allocation after construction.
class PacketQueue {
public:
    PacketQueue() = default;
    /// Queue holding at most `capacity` packets.
    explicit PacketQueue(std::size_t capacity);

    [[nodiscard]] std::size_t capacity() const noexcept { return buffer_.size(); }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] bool full() const noexcept { return size_ == buffer_.size(); }

    /// Append `p`; returns false (and drops it) when full.
    bool push(const Packet& p) noexcept;
    /// Head of the queue (precondition: !empty()).
    [[nodiscard]] const Packet& front() const noexcept;
    /// Remove and return the head (precondition: !empty()).
    Packet pop() noexcept;
    /// Drop all contents.
    void clear() noexcept;

private:
    std::vector<Packet> buffer_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

}  // namespace lcf::sim
