#pragma once
// The slot-synchronous switch simulator of §6.3 (Figure 11):
//
//   PG ──► PQ ──► VOQ bank ──► crossbar (scheduler-driven) ──► output link
//
// plus the two alternative architectures of Figure 12: a FIFO
// input-queued switch (head-of-line blocking baseline) and an
// output-buffered switch (contention only at the output link).
//
// Each simulated slot performs: arrivals → PQ-to-VOQ transfer →
// scheduling → packet transfer. A packet generated in slot t that is
// forwarded immediately departs at the end of slot t, giving the minimum
// queuing delay of 1 slot. Clint's three-stage pipeline (§4.1) adds a
// constant two slots on top of every delay and is therefore omitted from
// the comparative simulation, exactly as in the paper.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "fabric/clos.hpp"
#include "fault/fault_injector.hpp"
#include "obs/paranoid_checker.hpp"
#include "obs/sched_trace.hpp"
#include "sched/scheduler.hpp"
#include "sim/metrics.hpp"
#include "sim/packet_queue.hpp"
#include "sim/voq.hpp"
#include "traffic/traffic.hpp"

namespace lcf::sim {

/// Which of the three switch architectures to simulate.
enum class SwitchMode {
    kVoq,             ///< VOQ input-buffered switch driven by a Scheduler
    kFifo,            ///< single FIFO per input (the paper's `fifo`)
    kOutputBuffered,  ///< ideal output-buffered switch (the paper's `outbuf`)
};

/// Simulation parameters. Defaults are the paper's Figure 12 settings.
struct SimConfig {
    std::size_t ports = 16;
    std::size_t voq_capacity = 256;    ///< entries per VOQ
    std::size_t pq_capacity = 1000;    ///< entries per packet queue
    std::size_t fifo_capacity = 1000;  ///< per-input FIFO in kFifo mode
    std::size_t outbuf_capacity = 256; ///< per-output buffer in kOutputBuffered
    std::uint64_t slots = 100000;      ///< simulated slots
    std::uint64_t warmup_slots = 10000;  ///< excluded from statistics
    std::uint64_t seed = 42;
    SwitchMode mode = SwitchMode::kVoq;
    bool record_service_matrix = false;  ///< per-flow delivery counts

    /// Crossbar speedup s (kVoq mode only): the scheduler runs s times
    /// per slot and up to s packets may be forwarded from each input
    /// and to each output per slot; forwarded packets land in per-
    /// output buffers (outbuf_capacity) drained at line rate. s = 1 is
    /// the paper's model (packets cross straight onto the link). The
    /// classic result this knob demonstrates: a VOQ switch with s = 2
    /// closely approaches output-buffered delay.
    std::size_t speedup = 1;

    /// Fabric selection (§2 allows non-blocking fabrics other than the
    /// crossbar). 0 = ideal crossbar. A positive value routes every
    /// matching through a three-stage Clos network with that many
    /// middle switches and `clos_group` ports per ingress/egress
    /// switch; with clos_middle >= clos_group the Clos fabric is
    /// rearrangeably non-blocking and behaves exactly like the
    /// crossbar, while smaller values block some connections (their
    /// packets stay queued and `SimResult::fabric_blocked` counts
    /// them).
    std::size_t clos_middle = 0;
    std::size_t clos_group = 4;  ///< k: ports per first/third-stage switch

    /// Validate cycle-level scheduler invariants every scheduling cycle
    /// (obs::ParanoidChecker). A violation throws std::logic_error from
    /// step(). Checks are configured from the scheduler's name: the
    /// rotating-diagonal variants additionally get the §3 fairness check
    /// (granted within n² cycles under a continuously asserted request),
    /// iterative matchers their iteration-budget check.
    bool paranoid = false;
    /// When > 0, keep an obs::SchedTrace ring of the most recent
    /// `trace_capacity` scheduling cycles, accessible via
    /// SwitchSim::trace() and exportable as CSV/JSONL.
    std::size_t trace_capacity = 0;

    /// Deterministic fault schedule (empty() = no injector runs).
    /// Interpretation in this model: a crashed host's port neither
    /// offers arrivals (they count generated + dropped) nor takes part
    /// in scheduling — its request row and its column are masked out of
    /// the request matrix, so matchings degrade to the surviving ports.
    /// Scheduler-stall slots produce no matching at all (counted in
    /// SchedCounters::stalled_cycles); packets the switch already
    /// buffered stay buffered and flow on once the fault clears.
    fault::FaultPlan fault_plan;
};

/// One switch simulation. Construct, then either run() to completion or
/// step() slot by slot (the introspection accessors support white-box
/// tests). The scheduler is unused (and may be null) in kOutputBuffered
/// mode.
class SwitchSim {
public:
    SwitchSim(const SimConfig& config,
              std::unique_ptr<sched::Scheduler> scheduler,
              std::unique_ptr<traffic::TrafficGenerator> traffic);

    /// Advance the simulation by one slot.
    void step();
    /// Run the configured number of slots and return the summary.
    SimResult run();

    /// Slots simulated so far.
    [[nodiscard]] std::uint64_t current_slot() const noexcept { return slot_; }
    /// Summary of everything measured so far.
    [[nodiscard]] SimResult result() const;

    [[nodiscard]] const SimConfig& config() const noexcept { return config_; }
    [[nodiscard]] const MetricsCollector& metrics() const noexcept {
        return metrics_;
    }
    /// VOQ bank of `input` (kVoq mode only).
    [[nodiscard]] const VoqBank& voq(std::size_t input) const noexcept {
        return voqs_[input];
    }
    /// Packet queue of `input` (kVoq mode), or its FIFO (kFifo mode).
    [[nodiscard]] const PacketQueue& input_queue(std::size_t input) const noexcept {
        return input_queues_[input];
    }
    /// Output buffer of `output` (kOutputBuffered mode only).
    [[nodiscard]] const PacketQueue& output_buffer(std::size_t output) const noexcept {
        return output_buffers_[output];
    }
    /// The matching applied in the most recent slot (kVoq/kFifo modes).
    [[nodiscard]] const sched::Matching& last_matching() const noexcept {
        return matching_;
    }
    /// Per-cycle trace ring (engaged iff config.trace_capacity > 0).
    [[nodiscard]] const std::optional<obs::SchedTrace>& trace() const noexcept {
        return trace_;
    }
    /// Invariant checker (engaged iff config.paranoid).
    [[nodiscard]] const std::optional<obs::ParanoidChecker>& checker() const noexcept {
        return checker_;
    }
    /// Structured scheduler counters accumulated so far.
    [[nodiscard]] const obs::SchedCounters& sched_counters() const noexcept {
        return counters_;
    }
    /// Fault injector (engaged iff the config's plan is non-empty).
    [[nodiscard]] const std::optional<fault::FaultInjector>& fault_injector()
        const noexcept {
        return injector_;
    }

private:
    void step_arrivals();
    /// Clear request rows/columns of crashed ports (injector engaged).
    void mask_down_ports();
    void step_voq_mode();
    void step_fifo_mode();
    void step_outbuf_mode();
    void deliver(const Packet& p);
    /// Route matching_ through the Clos fabric (if configured),
    /// unmatching any connection the fabric cannot carry.
    void apply_fabric();
    /// Feed the scheduler's raw matching (before the fabric may drop
    /// connections) to the counters, trace, and paranoid checker.
    void observe_schedule();

    SimConfig config_;
    std::unique_ptr<sched::Scheduler> scheduler_;
    std::unique_ptr<traffic::TrafficGenerator> traffic_;
    MetricsCollector metrics_;

    std::vector<PacketQueue> input_queues_;   // PQ (kVoq) or FIFO (kFifo)
    std::vector<VoqBank> voqs_;               // kVoq only
    std::vector<PacketQueue> output_buffers_; // kOutputBuffered only

    sched::RequestMatrix requests_;
    sched::Matching matching_;
    // Per-slot arrival destinations, filled by one batched
    // traffic_->arrivals() call instead of ports virtual calls per slot.
    std::vector<std::int32_t> arrival_buf_;
    // VOQ occupancy counts for iLQF-style (weight-aware) schedulers,
    // maintained incrementally at every VOQ push/pop instead of an
    // O(ports²) gather per scheduling phase. Only tracked when the
    // scheduler asks for queue lengths.
    std::vector<std::uint32_t> queue_lengths_;
    bool track_queue_lengths_ = false;

    std::optional<obs::SchedTrace> trace_;
    std::optional<obs::ParanoidChecker> checker_;
    obs::SchedCounters counters_;

    std::optional<fault::FaultInjector> injector_;
    std::vector<bool> port_up_;  // refreshed at the top of every step

    std::optional<fabric::ClosNetwork> clos_;
    std::uint64_t fabric_blocked_ = 0;
    double choices_accum_ = 0.0;     // sum over post-warm-up slots of
    std::uint64_t choices_slots_ = 0;  // mean non-empty VOQs per input

    std::uint64_t slot_ = 0;
    std::uint64_t next_packet_id_ = 0;
    std::uint64_t departed_after_warmup_ = 0;
};

}  // namespace lcf::sim
