#pragma once
// Convenience layer tying scheduler names, traffic patterns, and the
// simulator together — this is what the examples and benchmark harnesses
// call. A "configuration name" is one of the paper's nine Figure 12
// labels: the eight scheduler names plus "outbuf".

#include <string>
#include <string_view>
#include <vector>

#include "sched/scheduler.hpp"
#include "sim/metrics.hpp"
#include "sim/switch_sim.hpp"

namespace lcf::sim {

/// Run one simulation for the Figure 12 configuration `config_name`
/// ("fifo"/"outbuf" select their switch modes, everything else runs a
/// VOQ switch with that scheduler) under `traffic_name` traffic at
/// `load`. `base.mode` is overridden as needed. Unknown configuration
/// or traffic names throw std::invalid_argument listing the valid ones.
SimResult run_named(std::string_view config_name, const SimConfig& base,
                    std::string_view traffic_name, double load,
                    const sched::SchedulerConfig& sched_config = {});

/// One grid point of a sweep.
struct SweepPoint {
    std::string config_name;
    double load = 0.0;
    SimResult result;
};

/// Run the full (configuration × load) grid, using `threads` worker
/// threads (0 = the process-wide util::ThreadPool::shared(), so
/// repeated sweeps reuse one set of workers). Results are returned in
/// config-major, load-minor order regardless of completion order.
std::vector<SweepPoint> sweep(const std::vector<std::string>& config_names,
                              const std::vector<double>& loads,
                              const SimConfig& base,
                              std::string_view traffic_name,
                              const sched::SchedulerConfig& sched_config = {},
                              std::size_t threads = 0);

/// The load grid of Figure 12: 0.05 steps up to 0.9, then finer steps
/// through the high-load knee up to 1.0.
std::vector<double> figure12_loads();

/// Merge the per-run scheduler counters of every sweep point into one
/// aggregate (totals summed, maxima kept), regardless of which worker
/// thread produced each point.
obs::SchedCounters aggregate_counters(const std::vector<SweepPoint>& points);

}  // namespace lcf::sim
