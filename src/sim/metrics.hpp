#pragma once
// Measurement plumbing for one simulation run: delay statistics, packet
// accounting, and (optionally) the per-[input, output] service matrix
// used by the fairness analyses.

#include <cstdint>
#include <vector>

#include "fault/fault_injector.hpp"
#include "obs/counters.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace lcf::sim {

/// Collects per-run measurements. The simulator reports generation,
/// drop, and departure events; packets generated before the warm-up
/// cutoff are excluded from delay statistics (but still occupy queues).
class MetricsCollector {
public:
    MetricsCollector(std::size_t inputs, std::size_t outputs,
                     std::uint64_t warmup_slot, bool record_service_matrix);

    /// A packet was generated (enters accounting regardless of warm-up).
    void on_generated() noexcept { ++generated_; }
    /// A packet was dropped at the packet queue / FIFO / output buffer.
    void on_dropped() noexcept { ++dropped_; }
    /// A packet crossed the output link. `delay` is in slots;
    /// `generated_slot` decides warm-up exclusion. Inline so the warm-up
    /// fast path (a counter bump and one compare) costs no call in the
    /// simulator's transfer loop; the measured slow path stays
    /// out-of-line.
    void on_delivered(std::uint64_t generated_slot, std::uint64_t delay,
                      std::size_t input, std::size_t output) noexcept {
        ++delivered_;
        if (generated_slot < warmup_slot_) return;
        record_measured(delay, input, output);
    }

    [[nodiscard]] std::uint64_t generated() const noexcept { return generated_; }
    [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
    [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
    /// Delivered packets that count toward delay statistics.
    [[nodiscard]] std::uint64_t measured() const noexcept {
        return delay_.count();
    }

    [[nodiscard]] const util::RunningStat& delay_stat() const noexcept {
        return delay_stat_;
    }
    [[nodiscard]] const util::Histogram& delay_histogram() const noexcept {
        return delay_;
    }

    /// Post-warm-up deliveries of flow [input, output]; all zero unless
    /// service-matrix recording was requested.
    [[nodiscard]] std::uint64_t service(std::size_t input,
                                        std::size_t output) const noexcept;
    [[nodiscard]] bool has_service_matrix() const noexcept {
        return !service_.empty();
    }

private:
    void record_measured(std::uint64_t delay, std::size_t input,
                         std::size_t output) noexcept;

    std::uint64_t warmup_slot_;
    std::uint64_t generated_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t delivered_ = 0;
    util::RunningStat delay_stat_;
    util::Histogram delay_;
    std::size_t outputs_;
    std::vector<std::uint64_t> service_;  // row-major inputs × outputs
};

/// Summary of one finished run, cheap to copy around benches.
struct SimResult {
    double mean_delay = 0.0;    ///< slots, post-warm-up deliveries
    double p50_delay = 0.0;
    double p99_delay = 0.0;
    double max_delay = 0.0;
    double throughput = 0.0;    ///< delivered per output per post-warm-up slot
    double offered_load = 0.0;  ///< configured per-input load
    std::uint64_t generated = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t measured = 0;  ///< deliveries counted in delay stats
    std::uint64_t fabric_blocked = 0;  ///< connections a blocking Clos rejected
    /// Time-averaged number of non-empty VOQs per input (the
    /// scheduler's "choices"; §6.3 hypothesises the RR variant wins at
    /// high load by keeping this number up). 0 outside kVoq mode.
    double mean_choices = 0.0;
    std::vector<std::uint64_t> service;  ///< inputs × outputs, may be empty
    std::size_t ports = 0;
    /// Structured scheduler counters for this run (always collected;
    /// max_starvation_age and paranoid_violations are populated only
    /// when tracing or paranoid mode observed the run). Mergeable across
    /// the sweep's worker threads via obs::SchedCounters::merge.
    obs::SchedCounters sched;
    /// What the configured fault plan did (all zero when it was empty).
    fault::FaultCounters faults;

    /// Service count of flow [input, output] (0 when not recorded).
    [[nodiscard]] std::uint64_t service_of(std::size_t input,
                                           std::size_t output) const noexcept {
        return service.empty() ? 0 : service[input * ports + output];
    }
};

}  // namespace lcf::sim
