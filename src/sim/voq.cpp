#include "sim/voq.hpp"

namespace lcf::sim {

VoqBank::VoqBank(std::size_t outputs, std::size_t capacity)
    : queues_(outputs, PacketQueue(capacity)), occupancy_(outputs) {}

bool VoqBank::push(const Packet& p) noexcept {
    const bool accepted = queues_[p.destination].push(p);
    if (accepted) occupancy_.set(p.destination);
    return accepted;
}

Packet VoqBank::pop(std::size_t output) noexcept {
    Packet p = queues_[output].pop();
    if (queues_[output].empty()) occupancy_.reset(output);
    return p;
}

std::size_t VoqBank::total_buffered() const noexcept {
    std::size_t n = 0;
    for (const auto& q : queues_) n += q.size();
    return n;
}

}  // namespace lcf::sim
