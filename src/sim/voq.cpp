#include "sim/voq.hpp"

namespace lcf::sim {

VoqBank::VoqBank(std::size_t outputs, std::size_t capacity)
    : queues_(outputs, PacketQueue(capacity)), occupancy_(outputs) {}

bool VoqBank::push(const Packet& p) {
    auto& q = queues_[p.destination];
    const bool was_empty = q.empty();
    const bool accepted = q.push(p);
    if (accepted && was_empty) {
        occupancy_.set(p.destination);
        ++nonempty_;
    }
    return accepted;
}

Packet VoqBank::pop(std::size_t output) noexcept {
    Packet p = queues_[output].pop();
    if (queues_[output].empty()) {
        occupancy_.reset(output);
        --nonempty_;
    }
    return p;
}

std::size_t VoqBank::total_buffered() const noexcept {
    std::size_t n = 0;
    for (const auto& q : queues_) n += q.size();
    return n;
}

}  // namespace lcf::sim
