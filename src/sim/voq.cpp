#include "sim/voq.hpp"

namespace lcf::sim {

VoqBank::VoqBank(std::size_t outputs, std::size_t capacity)
    : queues_(outputs, PacketQueue(capacity)) {}

bool VoqBank::push(const Packet& p) noexcept {
    return queues_[p.destination].push(p);
}

util::BitVec VoqBank::request_vector() const {
    util::BitVec v(queues_.size());
    fill_request_vector(v);
    return v;
}

void VoqBank::fill_request_vector(util::BitVec& out) const noexcept {
    out.clear();
    for (std::size_t j = 0; j < queues_.size(); ++j) {
        if (!queues_[j].empty()) out.set(j);
    }
}

std::size_t VoqBank::total_buffered() const noexcept {
    std::size_t n = 0;
    for (const auto& q : queues_) n += q.size();
    return n;
}

}  // namespace lcf::sim
