#include "sim/runner.hpp"

#include <stdexcept>

#include "core/factory.hpp"
#include "util/thread_pool.hpp"

namespace lcf::sim {

SimResult run_named(std::string_view config_name, const SimConfig& base,
                    std::string_view traffic_name, double load,
                    const sched::SchedulerConfig& sched_config) {
    if (config_name != "outbuf" && !core::is_scheduler_name(config_name)) {
        std::string message = "unknown configuration name: " +
                              std::string(config_name) + " (valid names: outbuf";
        for (const auto& valid : core::scheduler_names()) {
            message += " " + valid;
        }
        throw std::invalid_argument(message + ")");
    }
    if (!traffic::is_traffic_name(traffic_name)) {
        std::string message = "unknown traffic name: " +
                              std::string(traffic_name) + " (valid names:";
        for (const auto& valid : traffic::traffic_names()) {
            message += " " + valid;
        }
        throw std::invalid_argument(message + ")");
    }
    SimConfig config = base;
    std::unique_ptr<sched::Scheduler> scheduler;
    if (config_name == "outbuf") {
        config.mode = SwitchMode::kOutputBuffered;
    } else if (config_name == "fifo") {
        config.mode = SwitchMode::kFifo;
        scheduler = core::make_scheduler("fifo", sched_config);
    } else {
        config.mode = SwitchMode::kVoq;
        scheduler = core::make_scheduler(config_name, sched_config);
    }
    auto traffic = traffic::make_traffic(traffic_name, load);
    SwitchSim sim(config, std::move(scheduler), std::move(traffic));
    return sim.run();
}

std::vector<SweepPoint> sweep(const std::vector<std::string>& config_names,
                              const std::vector<double>& loads,
                              const SimConfig& base,
                              std::string_view traffic_name,
                              const sched::SchedulerConfig& sched_config,
                              std::size_t threads) {
    std::vector<SweepPoint> points;
    points.reserve(config_names.size() * loads.size());
    for (const auto& name : config_names) {
        for (const double load : loads) {
            points.push_back(SweepPoint{name, load, {}});
        }
    }
    util::parallel_for_n(threads, 0, points.size(), [&](std::size_t k) {
        points[k].result = run_named(points[k].config_name, base, traffic_name,
                                     points[k].load, sched_config);
    });
    return points;
}

std::vector<double> figure12_loads() {
    std::vector<double> loads;
    for (int i = 1; i <= 18; ++i) {  // 0.05 .. 0.90
        loads.push_back(0.05 * i);
    }
    loads.insert(loads.end(), {0.92, 0.94, 0.96, 0.98, 1.0});
    return loads;
}

obs::SchedCounters aggregate_counters(const std::vector<SweepPoint>& points) {
    obs::SchedCounters total;
    for (const auto& point : points) total.merge(point.result.sched);
    return total;
}

}  // namespace lcf::sim
