#include "sim/metrics.hpp"

namespace lcf::sim {

namespace {
// Delay histogram resolution: delays up to PQ+VOQ worst cases fit; the
// rest land in the overflow bucket but still contribute exactly to the
// mean via the histogram's total accounting.
constexpr std::size_t kDelayBuckets = 1 << 14;
}  // namespace

MetricsCollector::MetricsCollector(std::size_t inputs, std::size_t outputs,
                                   std::uint64_t warmup_slot,
                                   bool record_service_matrix)
    : warmup_slot_(warmup_slot),
      delay_(kDelayBuckets),
      outputs_(outputs),
      service_(record_service_matrix ? inputs * outputs : 0, 0) {}

void MetricsCollector::record_measured(std::uint64_t delay, std::size_t input,
                                       std::size_t output) noexcept {
    delay_.add(delay);
    delay_stat_.add(static_cast<double>(delay));
    if (!service_.empty()) {
        ++service_[input * outputs_ + output];
    }
}

std::uint64_t MetricsCollector::service(std::size_t input,
                                        std::size_t output) const noexcept {
    return service_.empty() ? 0 : service_[input * outputs_ + output];
}

}  // namespace lcf::sim
