#pragma once
// The virtual-output-queue bank of one input port: one bounded FIFO per
// output, plus the occupancy bit vector the scheduler's request matrix is
// built from.

#include <cstddef>
#include <vector>

#include "sim/packet_queue.hpp"
#include "util/bitvec.hpp"

namespace lcf::sim {

/// Per-input VOQ bank: `outputs` bounded FIFOs.
class VoqBank {
public:
    VoqBank() = default;
    /// One queue of `capacity` entries per output.
    VoqBank(std::size_t outputs, std::size_t capacity);

    [[nodiscard]] std::size_t outputs() const noexcept { return queues_.size(); }

    /// Queue holding packets destined for `output`.
    [[nodiscard]] const PacketQueue& queue(std::size_t output) const noexcept {
        return queues_[output];
    }
    [[nodiscard]] PacketQueue& queue(std::size_t output) noexcept {
        return queues_[output];
    }

    /// Enqueue into the destination's queue; false (drop) when full.
    bool push(const Packet& p) noexcept;

    /// Occupancy bits: bit j set iff queue j is non-empty — exactly the
    /// request vector this input sends to the scheduler.
    [[nodiscard]] util::BitVec request_vector() const;
    /// Write occupancy bits into `out` (which must have size outputs()).
    void fill_request_vector(util::BitVec& out) const noexcept;

    /// Total packets buffered across all queues.
    [[nodiscard]] std::size_t total_buffered() const noexcept;

private:
    std::vector<PacketQueue> queues_;
};

}  // namespace lcf::sim
