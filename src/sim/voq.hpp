#pragma once
// The virtual-output-queue bank of one input port: one bounded FIFO per
// output, plus the occupancy bit vector the scheduler's request matrix is
// built from.

#include <cstddef>
#include <vector>

#include "sim/packet_queue.hpp"
#include "util/bitvec.hpp"

namespace lcf::sim {

/// Per-input VOQ bank: `outputs` bounded FIFOs.
///
/// The occupancy bit vector is maintained incrementally on push()/pop()
/// (one bit flip when a queue transitions empty <-> non-empty), so the
/// simulator's per-phase request-matrix rebuild is a word copy instead
/// of n per-queue emptiness probes. All mutations must therefore go
/// through the bank — queue() hands out const access only.
class VoqBank {
public:
    VoqBank() = default;
    /// One queue of `capacity` entries per output.
    VoqBank(std::size_t outputs, std::size_t capacity);

    [[nodiscard]] std::size_t outputs() const noexcept { return queues_.size(); }

    /// Queue holding packets destined for `output` (read-only; mutate
    /// via push()/pop()).
    [[nodiscard]] const PacketQueue& queue(std::size_t output) const noexcept {
        return queues_[output];
    }

    /// Enqueue into the destination's queue; false (drop) when full.
    /// May allocate (the queue's ring grows lazily), hence not noexcept.
    bool push(const Packet& p);
    /// Dequeue the head packet destined for `output` (precondition: the
    /// queue is non-empty).
    Packet pop(std::size_t output) noexcept;

    /// Occupancy bits: bit j set iff queue j is non-empty — exactly the
    /// request vector this input sends to the scheduler.
    [[nodiscard]] const util::BitVec& occupancy() const noexcept {
        return occupancy_;
    }
    /// Write occupancy bits into `out` (which must have size outputs()).
    void fill_request_vector(util::BitVec& out) const noexcept {
        out = occupancy_;
    }

    /// Number of non-empty queues (== occupancy().count(), maintained
    /// incrementally for the simulator's "choices" diagnostic).
    [[nodiscard]] std::size_t nonempty_count() const noexcept {
        return nonempty_;
    }

    /// Total packets buffered across all queues.
    [[nodiscard]] std::size_t total_buffered() const noexcept;

private:
    std::vector<PacketQueue> queues_;
    util::BitVec occupancy_;
    std::size_t nonempty_ = 0;
};

}  // namespace lcf::sim
