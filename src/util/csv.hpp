#pragma once
// Minimal CSV emission for benchmark harnesses (quoting per RFC 4180).

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace lcf::util {

/// Streams rows of comma-separated values with correct quoting.
/// Usage: CsvWriter w(out); w.row("load", "latency"); w.row(0.5, 1.73);
class CsvWriter {
public:
    explicit CsvWriter(std::ostream& out) : out_(out) {}

    /// Emit one row; each argument becomes a cell (numbers via to_string,
    /// strings quoted when they contain separators).
    template <typename... Cells>
    void row(const Cells&... cells) {
        bool first = true;
        ((write_cell(to_cell(cells), first), first = false), ...);
        out_ << '\n';
    }

    /// Emit a row from a vector of preformatted cells.
    void row_vec(const std::vector<std::string>& cells);

private:
    static std::string to_cell(const std::string& s) { return s; }
    static std::string to_cell(std::string_view s) { return std::string(s); }
    static std::string to_cell(const char* s) { return std::string(s); }
    static std::string to_cell(double v);
    static std::string to_cell(float v) { return to_cell(static_cast<double>(v)); }
    template <typename T>
    static std::string to_cell(T v)
        requires std::is_integral_v<T>
    {
        return std::to_string(v);
    }

    void write_cell(const std::string& cell, bool first);

    std::ostream& out_;
};

}  // namespace lcf::util
