#pragma once
// Fixed-width ASCII table rendering; the benchmark harnesses use it to
// print paper-style tables (Table 1, Table 2, Figure 12 series).

#include <ostream>
#include <string>
#include <vector>

namespace lcf::util {

/// Collects rows of string cells and renders them with aligned columns.
class AsciiTable {
public:
    /// Set the header row (may be called once, before rows).
    void header(std::vector<std::string> cells);
    /// Append a data row; row lengths may vary (short rows pad with "").
    void add_row(std::vector<std::string> cells);
    /// Render with column alignment and a rule under the header.
    void print(std::ostream& out) const;

    /// Format a double with `precision` digits after the point.
    static std::string num(double v, int precision = 2);

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace lcf::util
