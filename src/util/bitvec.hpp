#pragma once
// Dynamic fixed-capacity bit vector used for request-matrix rows and
// port masks. Sized at construction; word-parallel set operations and
// fast first-set/next-set scans are the operations the schedulers need.

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

// Precondition checking for the hot bit accessors. Defaults to on in
// debug builds (plain assert) and off in release; define
// LCF_BITVEC_CHECKS to 0/1 to force either way, e.g. when hunting an
// out-of-range index in an optimized build.
#ifndef LCF_BITVEC_CHECKS
#ifndef NDEBUG
#define LCF_BITVEC_CHECKS 1
#else
#define LCF_BITVEC_CHECKS 0
#endif
#endif

#if LCF_BITVEC_CHECKS
#define LCF_BITVEC_ASSERT(cond) assert(cond)
#else
#define LCF_BITVEC_ASSERT(cond) ((void)0)
#endif

namespace lcf::util {

/// A fixed-size vector of bits with word-parallel bulk operations.
///
/// Unlike std::vector<bool> it exposes find_first()/find_next() scans and
/// set-algebra operators, and unlike std::bitset its size is a runtime
/// value (switch radix n is a configuration parameter everywhere in this
/// library). Bits beyond size() are kept zero as a class invariant.
class BitVec {
public:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    /// Bits per storage word, for callers that fill vectors word-at-a-time.
    static constexpr std::size_t kWordBits = 64;

    BitVec() = default;
    /// Construct with `size` bits, all cleared.
    explicit BitVec(std::size_t size);

    /// Number of addressable bits.
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    /// True when size() == 0.
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

    /// Read bit `i` (precondition: i < size()).
    [[nodiscard]] bool test(std::size_t i) const noexcept;
    /// Set bit `i` to `value` (precondition: i < size()).
    void set(std::size_t i, bool value = true) noexcept;
    /// Clear bit `i` (precondition: i < size()).
    void reset(std::size_t i) noexcept;
    /// Clear all bits.
    void clear() noexcept;
    /// Set all bits in [0, size()).
    void fill() noexcept;

    /// Number of set bits.
    [[nodiscard]] std::size_t count() const noexcept;
    /// True when no bit is set.
    [[nodiscard]] bool none() const noexcept;
    /// True when at least one bit is set.
    [[nodiscard]] bool any() const noexcept { return !none(); }

    /// Index of the lowest set bit, or npos when none() holds.
    [[nodiscard]] std::size_t find_first() const noexcept;
    /// Index of the lowest set bit strictly greater than `pos`, or npos.
    /// Safe for any `pos` (including npos): out-of-range positions have
    /// no successor.
    [[nodiscard]] std::size_t find_next(std::size_t pos) const noexcept;
    /// Index of the first set bit at or after `pos`, wrapping around to
    /// [0, pos) when the tail holds none — the rotating-priority scan
    /// every round-robin tie-break in the schedulers needs, without any
    /// per-element `(k + offset) % n` arithmetic. Returns npos when the
    /// vector is empty or no bit is set. Precondition: pos < size() (an
    /// out-of-range pos is treated as 0 in release builds).
    [[nodiscard]] std::size_t find_first_from(std::size_t pos) const noexcept;

    /// Popcount of (*this & other) without materializing the
    /// intersection; both operands must have equal size.
    [[nodiscard]] std::size_t and_count(const BitVec& other) const noexcept;
    /// True when (*this & other) has at least one set bit.
    [[nodiscard]] bool intersects(const BitVec& other) const noexcept;

    /// In-place set intersection; both operands must have equal size.
    BitVec& operator&=(const BitVec& other) noexcept;
    /// In-place set union; both operands must have equal size.
    BitVec& operator|=(const BitVec& other) noexcept;
    /// In-place symmetric difference; both operands must have equal size.
    BitVec& operator^=(const BitVec& other) noexcept;
    /// In-place set subtraction (this &= ~other); equal sizes required.
    BitVec& subtract(const BitVec& other) noexcept;

    /// Masked assign without a temporary: *this = src & mask. All three
    /// vectors must have equal size (this may alias src or mask).
    void assign_and(const BitVec& src, const BitVec& mask) noexcept;
    /// Masked assign without a temporary: *this = src & ~mask.
    void assign_subtract(const BitVec& src, const BitVec& mask) noexcept;

    /// Number of 64-bit storage words.
    [[nodiscard]] std::size_t word_count() const noexcept {
        return (size_ + kWordBits - 1) / kWordBits;
    }
    /// Raw storage word `wi` (precondition: wi < word_count()).
    [[nodiscard]] std::uint64_t word(std::size_t wi) const noexcept {
        LCF_BITVEC_ASSERT(wi < words_.size());
        return words_[wi];
    }
    /// Overwrite storage word `wi`; bits beyond size() are masked off so
    /// the class invariant holds. Lets generators fill 64 bits per call.
    void set_word(std::size_t wi, std::uint64_t bits) noexcept;

    /// Word-level set-bit iterator: visits the indices of set bits in
    /// ascending order, consuming one word at a time with countr_zero
    /// instead of testing individual bits.
    class SetBitIterator {
    public:
        using value_type = std::size_t;

        SetBitIterator() = default;
        SetBitIterator(const std::uint64_t* words, std::size_t word_count,
                       std::size_t wi) noexcept
            : words_(words), word_count_(word_count), wi_(wi) {
            if (wi_ < word_count_) {
                current_ = words_[wi_];
                skip_zero_words();
            }
        }

        [[nodiscard]] std::size_t operator*() const noexcept {
            LCF_BITVEC_ASSERT(current_ != 0);
            return wi_ * kWordBits +
                   static_cast<std::size_t>(std::countr_zero(current_));
        }
        SetBitIterator& operator++() noexcept {
            current_ &= current_ - 1;  // clear the lowest set bit
            skip_zero_words();
            return *this;
        }
        friend bool operator==(const SetBitIterator& a,
                               const SetBitIterator& b) noexcept {
            return a.wi_ == b.wi_ && a.current_ == b.current_;
        }

    private:
        void skip_zero_words() noexcept {
            while (current_ == 0 && ++wi_ < word_count_) {
                current_ = words_[wi_];
            }
            if (wi_ >= word_count_) {
                wi_ = word_count_;
                current_ = 0;
            }
        }

        const std::uint64_t* words_ = nullptr;
        std::size_t word_count_ = 0;
        std::size_t wi_ = 0;
        std::uint64_t current_ = 0;  // words_[wi_] with consumed bits cleared
    };

    /// Range over the indices of set bits: `for (std::size_t j : v.set_bits())`.
    /// Clearing already-visited bits (including the one just yielded) is
    /// allowed mid-iteration — the iterator works on a cached copy of the
    /// current word — and the scheduler sweeps rely on it. Setting bits,
    /// or clearing bits the iterator has not reached yet, is unspecified.
    class SetBitRange {
    public:
        explicit SetBitRange(const BitVec& v) noexcept : v_(&v) {}
        [[nodiscard]] SetBitIterator begin() const noexcept {
            return {v_->words_.data(), v_->words_.size(), 0};
        }
        [[nodiscard]] SetBitIterator end() const noexcept {
            return {v_->words_.data(), v_->words_.size(), v_->words_.size()};
        }

    private:
        const BitVec* v_;
    };
    [[nodiscard]] SetBitRange set_bits() const noexcept {
        return SetBitRange(*this);
    }

    friend bool operator==(const BitVec& a, const BitVec& b) noexcept = default;

    /// "0101..." rendering, bit 0 first; for diagnostics and tests.
    [[nodiscard]] std::string to_string() const;

private:
    void trim() noexcept;  // re-establish the bits-beyond-size()-are-zero invariant

    std::size_t size_ = 0;
    std::vector<std::uint64_t> words_;
};

}  // namespace lcf::util
