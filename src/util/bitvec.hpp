#pragma once
// Dynamic fixed-capacity bit vector used for request-matrix rows and
// port masks. Sized at construction; word-parallel set operations and
// fast first-set/next-set scans are the operations the schedulers need.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lcf::util {

/// A fixed-size vector of bits with word-parallel bulk operations.
///
/// Unlike std::vector<bool> it exposes find_first()/find_next() scans and
/// set-algebra operators, and unlike std::bitset its size is a runtime
/// value (switch radix n is a configuration parameter everywhere in this
/// library). Bits beyond size() are kept zero as a class invariant.
class BitVec {
public:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    BitVec() = default;
    /// Construct with `size` bits, all cleared.
    explicit BitVec(std::size_t size);

    /// Number of addressable bits.
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    /// True when size() == 0.
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

    /// Read bit `i` (precondition: i < size()).
    [[nodiscard]] bool test(std::size_t i) const noexcept;
    /// Set bit `i` to `value` (precondition: i < size()).
    void set(std::size_t i, bool value = true) noexcept;
    /// Clear bit `i` (precondition: i < size()).
    void reset(std::size_t i) noexcept;
    /// Clear all bits.
    void clear() noexcept;
    /// Set all bits in [0, size()).
    void fill() noexcept;

    /// Number of set bits.
    [[nodiscard]] std::size_t count() const noexcept;
    /// True when no bit is set.
    [[nodiscard]] bool none() const noexcept;
    /// True when at least one bit is set.
    [[nodiscard]] bool any() const noexcept { return !none(); }

    /// Index of the lowest set bit, or npos when none() holds.
    [[nodiscard]] std::size_t find_first() const noexcept;
    /// Index of the lowest set bit strictly greater than `pos`, or npos.
    [[nodiscard]] std::size_t find_next(std::size_t pos) const noexcept;

    /// In-place set intersection; both operands must have equal size.
    BitVec& operator&=(const BitVec& other) noexcept;
    /// In-place set union; both operands must have equal size.
    BitVec& operator|=(const BitVec& other) noexcept;
    /// In-place symmetric difference; both operands must have equal size.
    BitVec& operator^=(const BitVec& other) noexcept;
    /// In-place set subtraction (this &= ~other); equal sizes required.
    BitVec& subtract(const BitVec& other) noexcept;

    friend bool operator==(const BitVec& a, const BitVec& b) noexcept = default;

    /// "0101..." rendering, bit 0 first; for diagnostics and tests.
    [[nodiscard]] std::string to_string() const;

private:
    static constexpr std::size_t kWordBits = 64;
    [[nodiscard]] std::size_t word_count() const noexcept {
        return (size_ + kWordBits - 1) / kWordBits;
    }
    void trim() noexcept;  // re-establish the bits-beyond-size()-are-zero invariant

    std::size_t size_ = 0;
    std::vector<std::uint64_t> words_;
};

}  // namespace lcf::util
