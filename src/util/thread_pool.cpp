#include "util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace lcf::util {

namespace {
// Pool whose worker_loop() is running on this thread (nullptr on
// non-pool threads). Read by parallel_for to refuse nested calls that
// would deadlock the pool.
thread_local const ThreadPool* tls_running_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::shared() {
    static ThreadPool pool(0);
    return pool;
}

void ThreadPool::worker_loop() {
    tls_running_pool = this;
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();
    }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
    if (tls_running_pool == this) {
        // A nested call would park this worker on futures only the
        // pool's (busy) workers could resolve — a silent deadlock once
        // every worker nests. Fail fast instead.
        throw std::logic_error(
            "ThreadPool::parallel_for called from inside one of this "
            "pool's own tasks; nested parallel_for on the same pool "
            "deadlocks");
    }
    if (end <= begin) return;
    const std::size_t n = end - begin;
    const std::size_t chunks = std::min(n, size() * 4);
    const std::size_t base = n / chunks;
    const std::size_t extra = n % chunks;  // first `extra` chunks get +1
    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    std::size_t lo = begin;
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t hi = lo + base + (c < extra ? 1 : 0);
        futures.push_back(submit([lo, hi, &fn] {
            for (std::size_t i = lo; i < hi; ++i) fn(i);
        }));
        lo = hi;
    }
    for (auto& f : futures) f.get();
}

void parallel_for_n(std::size_t threads, std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn) {
    if (threads == 0) {
        ThreadPool::shared().parallel_for(begin, end, fn);
    } else {
        ThreadPool pool(threads);
        pool.parallel_for(begin, end, fn);
    }
}

}  // namespace lcf::util
