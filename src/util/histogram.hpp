#pragma once
// Integer-valued histogram with exact low range and saturating overflow
// bucket; used for queue-occupancy and packet-delay distributions.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lcf::util {

/// Histogram over non-negative integer samples. Values in [0, capacity)
/// are counted exactly; larger values accumulate in an overflow bucket
/// (still contributing their exact value to mean/percentile interpolation
/// bounds via total_/count_ bookkeeping).
class Histogram {
public:
    /// `capacity` exact buckets (one per integer value).
    explicit Histogram(std::size_t capacity = 1024);

    /// Record one sample.
    void add(std::uint64_t value) noexcept;
    /// Merge another histogram of the same capacity.
    void merge(const Histogram& other);

    /// Total number of samples recorded.
    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    /// Exact mean over all samples (overflowed values included exactly).
    [[nodiscard]] double mean() const noexcept;
    /// Samples that landed in the overflow bucket.
    [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
    /// Count for exact bucket `v` (precondition: v < capacity()).
    [[nodiscard]] std::uint64_t bucket(std::size_t v) const noexcept {
        return buckets_[v];
    }
    [[nodiscard]] std::size_t capacity() const noexcept { return buckets_.size(); }

    /// Smallest value v such that at least `q` (in [0,1]) of the samples
    /// are <= v. Overflowed samples are treated as capacity(). Returns 0
    /// when empty.
    [[nodiscard]] std::uint64_t percentile(double q) const noexcept;

private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t overflow_ = 0;
    double total_ = 0.0;
};

}  // namespace lcf::util
