#pragma once
// Terminal line plots: multiple (x, y) series rendered on a character
// grid with axes and a legend. Used by the figure-regenerating bench
// harnesses so Figure 12 comes out as an actual figure, not only as a
// table.

#include <cstddef>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace lcf::util {

/// One plotted series: a label and its sample points.
struct PlotSeries {
    std::string label;
    std::vector<std::pair<double, double>> points;
};

/// Renders series as an ASCII chart. Each series is drawn with its own
/// marker character ('a', 'b', ...; the legend maps markers to labels).
/// Overlapping points show the later series' marker.
class AsciiPlot {
public:
    /// `width` × `height` interior plotting area in characters.
    AsciiPlot(std::size_t width = 72, std::size_t height = 24);

    /// Add one series (drawn in insertion order).
    void add_series(PlotSeries series);

    /// Optional axis titles.
    void x_label(std::string label) { x_label_ = std::move(label); }
    void y_label(std::string label) { y_label_ = std::move(label); }
    /// Clamp the plotted y range (e.g. to mirror a published figure's
    /// axis limits); points above are clipped to the top row.
    void y_limit(double max_y) { y_limit_ = max_y; }

    /// Render the chart with axes, tick labels, and legend.
    void print(std::ostream& out) const;

private:
    std::size_t width_;
    std::size_t height_;
    std::vector<PlotSeries> series_;
    std::string x_label_;
    std::string y_label_;
    std::optional<double> y_limit_;
};

}  // namespace lcf::util
