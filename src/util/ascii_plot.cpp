#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace lcf::util {

AsciiPlot::AsciiPlot(std::size_t width, std::size_t height)
    : width_(std::max<std::size_t>(width, 16)),
      height_(std::max<std::size_t>(height, 6)) {}

void AsciiPlot::add_series(PlotSeries series) {
    series_.push_back(std::move(series));
}

void AsciiPlot::print(std::ostream& out) const {
    double min_x = std::numeric_limits<double>::infinity();
    double max_x = -std::numeric_limits<double>::infinity();
    double min_y = std::numeric_limits<double>::infinity();
    double max_y = -std::numeric_limits<double>::infinity();
    bool any = false;
    for (const auto& s : series_) {
        for (const auto& [x, y] : s.points) {
            min_x = std::min(min_x, x);
            max_x = std::max(max_x, x);
            min_y = std::min(min_y, y);
            max_y = std::max(max_y, y);
            any = true;
        }
    }
    if (!any) {
        out << "(empty plot)\n";
        return;
    }
    if (y_limit_) max_y = std::min(max_y, *y_limit_);
    min_y = std::min(min_y, max_y);
    if (max_x == min_x) max_x = min_x + 1;
    if (max_y == min_y) max_y = min_y + 1;

    std::vector<std::string> grid(height_, std::string(width_, ' '));
    const auto col_of = [&](double x) {
        const double t = (x - min_x) / (max_x - min_x);
        return std::min(width_ - 1,
                        static_cast<std::size_t>(std::lround(
                            t * static_cast<double>(width_ - 1))));
    };
    const auto row_of = [&](double y) {
        const double clamped = std::min(y, max_y);
        const double t = (clamped - min_y) / (max_y - min_y);
        const auto from_bottom = static_cast<std::size_t>(std::lround(
            t * static_cast<double>(height_ - 1)));
        return height_ - 1 - std::min(height_ - 1, from_bottom);
    };

    for (std::size_t si = 0; si < series_.size(); ++si) {
        const char marker = static_cast<char>('a' + (si % 26));
        // Sort points by x and connect consecutive samples with linear
        // interpolation so curves read as lines, not scatter.
        auto pts = series_[si].points;
        std::sort(pts.begin(), pts.end());
        for (std::size_t k = 0; k < pts.size(); ++k) {
            const auto [x, y] = pts[k];
            grid[row_of(y)][col_of(x)] = marker;
            if (k + 1 < pts.size()) {
                const auto [x2, y2] = pts[k + 1];
                const std::size_t c1 = col_of(x);
                const std::size_t c2 = col_of(x2);
                for (std::size_t c = c1 + 1; c < c2; ++c) {
                    const double t =
                        (static_cast<double>(c) - static_cast<double>(c1)) /
                        (static_cast<double>(c2) - static_cast<double>(c1));
                    const double yi = y + t * (y2 - y);
                    auto& cell = grid[row_of(yi)][c];
                    if (cell == ' ') cell = marker;
                }
            }
        }
    }

    char buf[32];
    if (!y_label_.empty()) out << y_label_ << '\n';
    for (std::size_t r = 0; r < height_; ++r) {
        const double y =
            max_y - (max_y - min_y) * static_cast<double>(r) /
                        static_cast<double>(height_ - 1);
        if (r % 4 == 0 || r == height_ - 1) {
            std::snprintf(buf, sizeof(buf), "%8.2f |", y);
        } else {
            std::snprintf(buf, sizeof(buf), "%8s |", "");
        }
        out << buf << grid[r] << '\n';
    }
    out << std::string(9, ' ') << '+' << std::string(width_, '-') << '\n';
    std::snprintf(buf, sizeof(buf), "%8.2f", min_x);
    out << ' ' << buf;
    std::snprintf(buf, sizeof(buf), "%.2f", max_x);
    const std::string right(buf);
    const std::size_t pad =
        width_ > right.size() + 1 ? width_ - right.size() - 1 : 1;
    out << std::string(pad, ' ') << right;
    if (!x_label_.empty()) out << "  " << x_label_;
    out << '\n';

    out << "  legend:";
    for (std::size_t si = 0; si < series_.size(); ++si) {
        out << ' ' << static_cast<char>('a' + (si % 26)) << '='
            << series_[si].label;
    }
    out << '\n';
}

}  // namespace lcf::util
