#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace lcf::util {

void AsciiTable::header(std::vector<std::string> cells) {
    header_ = std::move(cells);
}

void AsciiTable::add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
}

std::string AsciiTable::num(double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

void AsciiTable::print(std::ostream& out) const {
    std::size_t cols = header_.size();
    for (const auto& r : rows_) cols = std::max(cols, r.size());
    std::vector<std::size_t> widths(cols, 0);
    auto widen = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            widths[i] = std::max(widths[i], row[i].size());
        }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < cols; ++i) {
            const std::string& cell = i < row.size() ? row[i] : std::string{};
            out << cell << std::string(widths[i] - cell.size(), ' ');
            if (i + 1 < cols) out << "  ";
        }
        out << '\n';
    };
    if (!header_.empty()) {
        print_row(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < cols; ++i) total += widths[i] + (i + 1 < cols ? 2 : 0);
        out << std::string(total, '-') << '\n';
    }
    for (const auto& r : rows_) print_row(r);
}

}  // namespace lcf::util
