#include "util/bitvec.hpp"

#include <bit>

namespace lcf::util {

BitVec::BitVec(std::size_t size) : size_(size), words_(word_count(), 0) {}

bool BitVec::test(std::size_t i) const noexcept {
    LCF_BITVEC_ASSERT(i < size_);
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1U;
}

void BitVec::set(std::size_t i, bool value) noexcept {
    LCF_BITVEC_ASSERT(i < size_);
    const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
    if (value) {
        words_[i / kWordBits] |= mask;
    } else {
        words_[i / kWordBits] &= ~mask;
    }
}

void BitVec::reset(std::size_t i) noexcept { set(i, false); }

void BitVec::clear() noexcept {
    for (auto& w : words_) w = 0;
}

void BitVec::fill() noexcept {
    for (auto& w : words_) w = ~std::uint64_t{0};
    trim();
}

void BitVec::trim() noexcept {
    const std::size_t tail = size_ % kWordBits;
    if (tail != 0 && !words_.empty()) {
        words_.back() &= (std::uint64_t{1} << tail) - 1;
    }
}

void BitVec::set_word(std::size_t wi, std::uint64_t bits) noexcept {
    LCF_BITVEC_ASSERT(wi < words_.size());
    words_[wi] = bits;
    if (wi + 1 == words_.size()) trim();
}

std::size_t BitVec::count() const noexcept {
    std::size_t total = 0;
    for (const auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
    return total;
}

bool BitVec::none() const noexcept {
    for (const auto w : words_) {
        if (w != 0) return false;
    }
    return true;
}

std::size_t BitVec::find_first() const noexcept {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
        if (words_[wi] != 0) {
            return wi * kWordBits +
                   static_cast<std::size_t>(std::countr_zero(words_[wi]));
        }
    }
    return npos;
}

std::size_t BitVec::find_next(std::size_t pos) const noexcept {
    // Guard before the +1: pos >= size() (including pos == npos) has no
    // successor, and npos + 1 would otherwise wrap to 0 and rescan.
    if (pos >= size_ || pos + 1 >= size_) return npos;
    std::size_t wi = (pos + 1) / kWordBits;
    const std::size_t bi = (pos + 1) % kWordBits;
    std::uint64_t w = words_[wi] & (~std::uint64_t{0} << bi);
    while (true) {
        if (w != 0) {
            return wi * kWordBits + static_cast<std::size_t>(std::countr_zero(w));
        }
        if (++wi >= words_.size()) return npos;
        w = words_[wi];
    }
}

std::size_t BitVec::find_first_from(std::size_t pos) const noexcept {
    if (size_ == 0) return npos;
    LCF_BITVEC_ASSERT(pos < size_);
    if (pos >= size_) pos = 0;
    // Tail segment [pos, size()): like find_next(pos - 1) but inclusive.
    std::size_t wi = pos / kWordBits;
    const std::size_t bi = pos % kWordBits;
    std::uint64_t w = words_[wi] & (~std::uint64_t{0} << bi);
    while (true) {
        if (w != 0) {
            return wi * kWordBits + static_cast<std::size_t>(std::countr_zero(w));
        }
        if (++wi >= words_.size()) break;
        w = words_[wi];
    }
    // Wrapped segment [0, pos).
    for (wi = 0; wi <= pos / kWordBits; ++wi) {
        w = words_[wi];
        if (wi == pos / kWordBits) w &= (std::uint64_t{1} << bi) - 1;
        if (w != 0) {
            return wi * kWordBits + static_cast<std::size_t>(std::countr_zero(w));
        }
    }
    return npos;
}

std::size_t BitVec::and_count(const BitVec& other) const noexcept {
    LCF_BITVEC_ASSERT(size_ == other.size_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        total += static_cast<std::size_t>(
            std::popcount(words_[i] & other.words_[i]));
    }
    return total;
}

bool BitVec::intersects(const BitVec& other) const noexcept {
    LCF_BITVEC_ASSERT(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
        if ((words_[i] & other.words_[i]) != 0) return true;
    }
    return false;
}

BitVec& BitVec::operator&=(const BitVec& other) noexcept {
    LCF_BITVEC_ASSERT(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
}

BitVec& BitVec::operator|=(const BitVec& other) noexcept {
    LCF_BITVEC_ASSERT(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
}

BitVec& BitVec::operator^=(const BitVec& other) noexcept {
    LCF_BITVEC_ASSERT(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
    return *this;
}

BitVec& BitVec::subtract(const BitVec& other) noexcept {
    LCF_BITVEC_ASSERT(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
    return *this;
}

void BitVec::assign_and(const BitVec& src, const BitVec& mask) noexcept {
    LCF_BITVEC_ASSERT(size_ == src.size_ && size_ == mask.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
        words_[i] = src.words_[i] & mask.words_[i];
    }
}

void BitVec::assign_subtract(const BitVec& src, const BitVec& mask) noexcept {
    LCF_BITVEC_ASSERT(size_ == src.size_ && size_ == mask.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
        words_[i] = src.words_[i] & ~mask.words_[i];
    }
}

std::string BitVec::to_string() const {
    std::string s;
    s.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) s.push_back(test(i) ? '1' : '0');
    return s;
}

}  // namespace lcf::util
