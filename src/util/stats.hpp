#pragma once
// Streaming statistics used by the simulator's metric collectors.

#include <cstddef>
#include <cstdint>

namespace lcf::util {

/// Single-pass mean / variance / extremes accumulator (Welford's method).
/// All operations are O(1); no samples are stored.
class RunningStat {
public:
    /// Fold one observation into the accumulator.
    void add(double x) noexcept;
    /// Merge another accumulator (parallel reduction support).
    void merge(const RunningStat& other) noexcept;

    /// Number of observations folded in so far.
    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    /// Sample mean; 0 when empty.
    [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
    /// Unbiased sample variance; 0 when fewer than two samples.
    [[nodiscard]] double variance() const noexcept;
    /// Square root of variance().
    [[nodiscard]] double stddev() const noexcept;
    /// Smallest observation; +inf when empty.
    [[nodiscard]] double min() const noexcept { return min_; }
    /// Largest observation; -inf when empty.
    [[nodiscard]] double max() const noexcept { return max_; }
    /// Sum of all observations.
    [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_;
    double max_;

public:
    RunningStat() noexcept;
};

}  // namespace lcf::util
