#include "util/rng.hpp"

#include <cassert>

namespace lcf::util {

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) noexcept {
    // `% bound` below divides by zero for bound == 0 — there is no value
    // "uniform in [0, 0)" to return. Callers must check emptiness first.
    assert(bound > 0 && "Xoshiro256::next_below requires bound > 0");
    // Lemire's multiply-shift with rejection on the low word.
    const std::uint64_t threshold = (0 - bound) % bound;
    while (true) {
        const std::uint64_t x = (*this)();
        const __uint128_t m = static_cast<__uint128_t>(x) * bound;
        const auto low = static_cast<std::uint64_t>(m);
        if (low >= threshold) {
            return static_cast<std::uint64_t>(m >> 64);
        }
    }
}

}  // namespace lcf::util
