#include "util/rng.hpp"

namespace lcf::util {

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift with rejection on the low word.
    const std::uint64_t threshold = (0 - bound) % bound;
    while (true) {
        const std::uint64_t x = (*this)();
        const __uint128_t m = static_cast<__uint128_t>(x) * bound;
        const auto low = static_cast<std::uint64_t>(m);
        if (low >= threshold) {
            return static_cast<std::uint64_t>(m >> 64);
        }
    }
}

}  // namespace lcf::util
