#include "util/csv.hpp"

#include <cmath>
#include <cstdio>

namespace lcf::util {

std::string CsvWriter::to_cell(double v) {
    if (std::nearbyint(v) == v && std::abs(v) < 1e15) {
        return std::to_string(static_cast<long long>(v));
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

void CsvWriter::write_cell(const std::string& cell, bool first) {
    if (!first) out_ << ',';
    const bool needs_quotes =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes) {
        out_ << cell;
        return;
    }
    out_ << '"';
    for (const char c : cell) {
        if (c == '"') out_ << '"';
        out_ << c;
    }
    out_ << '"';
}

void CsvWriter::row_vec(const std::vector<std::string>& cells) {
    bool first = true;
    for (const auto& c : cells) {
        write_cell(c, first);
        first = false;
    }
    out_ << '\n';
}

}  // namespace lcf::util
