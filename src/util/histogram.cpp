#include "util/histogram.hpp"

#include <algorithm>
#include <cassert>

namespace lcf::util {

Histogram::Histogram(std::size_t capacity) : buckets_(capacity, 0) {}

void Histogram::add(std::uint64_t value) noexcept {
    if (value < buckets_.size()) {
        ++buckets_[value];
    } else {
        ++overflow_;
    }
    ++count_;
    total_ += static_cast<double>(value);
}

void Histogram::merge(const Histogram& other) {
    assert(buckets_.size() == other.buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    overflow_ += other.overflow_;
    total_ += other.total_;
}

double Histogram::mean() const noexcept {
    return count_ ? total_ / static_cast<double>(count_) : 0.0;
}

std::uint64_t Histogram::percentile(double q) const noexcept {
    if (count_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank at least 1: with q == 0 (or small enough that the rounded
    // rank is 0) the answer is the smallest recorded value, not bucket
    // 0 — `seen >= 0` would accept the very first bucket unconditionally.
    const auto target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5));
    std::uint64_t seen = 0;
    for (std::size_t v = 0; v < buckets_.size(); ++v) {
        seen += buckets_[v];
        if (seen >= target) return v;
    }
    return buckets_.size();
}

}  // namespace lcf::util
