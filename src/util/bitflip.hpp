#pragma once
// Independent random bit flips over a byte buffer, sampled with geometric
// skips: instead of one Bernoulli draw per bit (8 draws per byte), draw
// the gap to the next flipped bit directly from the geometric
// distribution Geom(p). The cost is O(flips), not O(bits) — at the low
// bit-error rates the Clint links model (1e-6 .. 1e-3), that is a
// thousand-fold reduction in RNG work per packet. Shared by
// clint::ErrorLink and fault::FaultInjector so both fault paths flip
// bits with identical (exact, unquantised) per-bit semantics.

#include <cstdint>
#include <span>

#include "util/rng.hpp"

namespace lcf::util {

/// Flip each bit of `bytes` independently with probability `p`, drawing
/// from `rng`. Returns the number of bits flipped. Bit k of the buffer
/// is bit (k % 8) of byte (k / 8), matching a bit-serial wire. p <= 0
/// flips nothing; p >= 1 flips every bit.
std::uint64_t flip_bits(std::span<std::uint8_t> bytes, double p,
                        Xoshiro256& rng) noexcept;

}  // namespace lcf::util
