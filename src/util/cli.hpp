#pragma once
// Tiny command-line option parser for the examples and bench harnesses.
// Supports --name value and --name=value forms plus --help generation.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lcf::util {

/// Declarative flag registry: register options with defaults and help
/// strings, then parse(argc, argv). Unknown options are reported as errors.
class CliParser {
public:
    explicit CliParser(std::string program_description)
        : description_(std::move(program_description)) {}

    /// Register an option; `storage` must outlive parse(). Returns *this
    /// for chaining.
    CliParser& flag(std::string name, std::string help, std::string* storage);
    CliParser& flag(std::string name, std::string help, double* storage);
    CliParser& flag(std::string name, std::string help, std::int64_t* storage);
    CliParser& flag(std::string name, std::string help, std::uint64_t* storage);
    CliParser& flag(std::string name, std::string help, bool* storage);

    /// Parse argv. Returns true on success; on --help prints usage and
    /// returns false; on error prints a diagnostic to stderr and returns
    /// false with exit_code() == 2.
    bool parse(int argc, const char* const* argv);

    /// 0 after --help, 2 after a parse error, 0 otherwise.
    [[nodiscard]] int exit_code() const noexcept { return exit_code_; }

private:
    enum class Kind { kString, kDouble, kInt, kUint, kBool };
    struct Option {
        std::string name;
        std::string help;
        Kind kind;
        void* storage;
        std::string default_repr;
    };

    CliParser& add(std::string name, std::string help, Kind kind, void* storage,
                   std::string default_repr);
    [[nodiscard]] const Option* find(std::string_view name) const;
    bool assign(const Option& opt, std::string_view value);
    void print_help(std::string_view argv0) const;

    std::string description_;
    std::vector<Option> options_;
    int exit_code_ = 0;
};

}  // namespace lcf::util
