#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lcf::util {

RunningStat::RunningStat() noexcept
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void RunningStat::add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void RunningStat::merge(const RunningStat& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace lcf::util
