#pragma once
// Fixed-size worker pool with a blocking task queue and a parallel_for
// helper. The benchmark harnesses use it to run independent
// (scheduler, load) simulation grid points concurrently.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lcf::util {

/// A minimal thread pool. Tasks are std::function<void()>; submit()
/// returns a future for completion/exception propagation. The destructor
/// drains outstanding tasks before joining.
class ThreadPool {
public:
    /// Spawn `threads` workers (0 means hardware_concurrency, min 1).
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Number of worker threads.
    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueue a task; the returned future resolves when it finishes and
    /// rethrows any exception the task threw.
    template <typename F>
    std::future<void> submit(F&& fn) {
        auto task = std::make_shared<std::packaged_task<void()>>(
            std::forward<F>(fn));
        std::future<void> result = task->get_future();
        {
            std::lock_guard lock(mutex_);
            queue_.emplace([task]() { (*task)(); });
        }
        cv_.notify_one();
        return result;
    }

    /// Run fn(i) for every i in [begin, end) across the pool and wait.
    /// The first exception thrown by any invocation is rethrown here.
    void parallel_for(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& fn);

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

}  // namespace lcf::util
