#pragma once
// Fixed-size worker pool with a blocking task queue and a chunked
// parallel_for helper. The benchmark harnesses use it to run independent
// (scheduler, load) simulation grid points concurrently.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lcf::util {

/// A minimal thread pool. Tasks are std::function<void()>; submit()
/// returns a future for completion/exception propagation. The destructor
/// drains outstanding tasks before joining.
///
/// Nesting rule: parallel_for() must NOT be called from inside a task
/// running on the same pool. The call would block a worker waiting on
/// futures that only the (already occupied) workers can complete —
/// with every worker nested, the pool deadlocks silently. The pool
/// detects this and throws std::logic_error instead. Submitting to a
/// *different* pool from inside a task is fine.
class ThreadPool {
public:
    /// Spawn `threads` workers (0 means hardware_concurrency, min 1).
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Process-wide shared pool (hardware_concurrency workers), created
    /// on first use. sweep()/replicate()/soak-style harnesses that are
    /// called repeatedly share this instead of paying thread spawn +
    /// join on every call.
    static ThreadPool& shared();

    /// Number of worker threads.
    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueue a task; the returned future resolves when it finishes and
    /// rethrows any exception the task threw.
    template <typename F>
    std::future<void> submit(F&& fn) {
        auto task = std::make_shared<std::packaged_task<void()>>(
            std::forward<F>(fn));
        std::future<void> result = task->get_future();
        {
            std::lock_guard lock(mutex_);
            queue_.emplace([task]() { (*task)(); });
        }
        cv_.notify_one();
        return result;
    }

    /// Run fn(i) for every i in [begin, end) across the pool and wait.
    /// The range is split into at most 4 contiguous chunks per worker
    /// (one task + future per chunk, not per index), so the per-task
    /// queue/allocation overhead is amortized over the chunk. The first
    /// exception thrown by any invocation is rethrown here. Throws
    /// std::logic_error when called from inside one of this pool's own
    /// tasks (see the nesting rule above).
    void parallel_for(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& fn);

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/// Run fn(i) for every i in [begin, end) with `threads` workers: on the
/// process-wide shared() pool when threads == 0 (the "auto" default of
/// the sweep/replicate APIs), else on a transient pool of exactly
/// `threads` workers (tests pin thread counts to prove determinism).
void parallel_for_n(std::size_t threads, std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

}  // namespace lcf::util
