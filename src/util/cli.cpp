#include "util/cli.hpp"

#include <charconv>
#include <cstdio>
#include <iostream>

namespace lcf::util {

CliParser& CliParser::add(std::string name, std::string help, Kind kind,
                          void* storage, std::string default_repr) {
    options_.push_back(Option{std::move(name), std::move(help), kind, storage,
                              std::move(default_repr)});
    return *this;
}

CliParser& CliParser::flag(std::string name, std::string help,
                           std::string* storage) {
    return add(std::move(name), std::move(help), Kind::kString, storage, *storage);
}
CliParser& CliParser::flag(std::string name, std::string help, double* storage) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%g", *storage);
    return add(std::move(name), std::move(help), Kind::kDouble, storage, buf);
}
CliParser& CliParser::flag(std::string name, std::string help,
                           std::int64_t* storage) {
    return add(std::move(name), std::move(help), Kind::kInt, storage,
               std::to_string(*storage));
}
CliParser& CliParser::flag(std::string name, std::string help,
                           std::uint64_t* storage) {
    return add(std::move(name), std::move(help), Kind::kUint, storage,
               std::to_string(*storage));
}
CliParser& CliParser::flag(std::string name, std::string help, bool* storage) {
    return add(std::move(name), std::move(help), Kind::kBool, storage,
               *storage ? "true" : "false");
}

const CliParser::Option* CliParser::find(std::string_view name) const {
    for (const auto& o : options_) {
        if (o.name == name) return &o;
    }
    return nullptr;
}

bool CliParser::assign(const Option& opt, std::string_view value) {
    switch (opt.kind) {
        case Kind::kString:
            *static_cast<std::string*>(opt.storage) = std::string(value);
            return true;
        case Kind::kDouble: {
            double v{};
            const auto [p, ec] =
                std::from_chars(value.data(), value.data() + value.size(), v);
            if (ec != std::errc{} || p != value.data() + value.size()) return false;
            *static_cast<double*>(opt.storage) = v;
            return true;
        }
        case Kind::kInt: {
            std::int64_t v{};
            const auto [p, ec] =
                std::from_chars(value.data(), value.data() + value.size(), v);
            if (ec != std::errc{} || p != value.data() + value.size()) return false;
            *static_cast<std::int64_t*>(opt.storage) = v;
            return true;
        }
        case Kind::kUint: {
            std::uint64_t v{};
            const auto [p, ec] =
                std::from_chars(value.data(), value.data() + value.size(), v);
            if (ec != std::errc{} || p != value.data() + value.size()) return false;
            *static_cast<std::uint64_t*>(opt.storage) = v;
            return true;
        }
        case Kind::kBool: {
            if (value == "true" || value == "1" || value == "yes") {
                *static_cast<bool*>(opt.storage) = true;
                return true;
            }
            if (value == "false" || value == "0" || value == "no") {
                *static_cast<bool*>(opt.storage) = false;
                return true;
            }
            return false;
        }
    }
    return false;
}

void CliParser::print_help(std::string_view argv0) const {
    std::cout << description_ << "\n\nUsage: " << argv0 << " [options]\n\nOptions:\n";
    for (const auto& o : options_) {
        std::cout << "  --" << o.name;
        if (o.kind != Kind::kBool) std::cout << " <value>";
        std::cout << "\n        " << o.help << " (default: " << o.default_repr
                  << ")\n";
    }
    std::cout << "  --help\n        Show this message.\n";
}

bool CliParser::parse(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        std::string_view arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            print_help(argv[0]);
            exit_code_ = 0;
            return false;
        }
        if (!arg.starts_with("--")) {
            std::cerr << "error: unexpected positional argument '" << arg << "'\n";
            exit_code_ = 2;
            return false;
        }
        arg.remove_prefix(2);
        std::string_view name = arg;
        std::optional<std::string_view> inline_value;
        if (const auto eq = arg.find('='); eq != std::string_view::npos) {
            name = arg.substr(0, eq);
            inline_value = arg.substr(eq + 1);
        }
        const Option* opt = find(name);
        if (opt == nullptr) {
            std::cerr << "error: unknown option '--" << name << "'\n";
            exit_code_ = 2;
            return false;
        }
        std::string_view value;
        if (inline_value) {
            value = *inline_value;
        } else if (opt->kind == Kind::kBool) {
            value = "true";  // bare boolean flag
        } else if (i + 1 < argc) {
            value = argv[++i];
        } else {
            std::cerr << "error: option '--" << name << "' expects a value\n";
            exit_code_ = 2;
            return false;
        }
        if (!assign(*opt, value)) {
            std::cerr << "error: invalid value '" << value << "' for '--" << name
                      << "'\n";
            exit_code_ = 2;
            return false;
        }
    }
    return true;
}

}  // namespace lcf::util
