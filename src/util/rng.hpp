#pragma once
// Deterministic, fast pseudo-random generation for simulations.
//
// Every stochastic component in the library takes an explicit seed so runs
// are reproducible; xoshiro256** is used for speed (the simulator draws one
// to two variates per port per slot) and SplitMix64 for seed expansion.

#include <cstdint>
#include <limits>

namespace lcf::util {

/// SplitMix64: expands one 64-bit seed into a stream of well-mixed words.
/// Used only to seed Xoshiro256 so that nearby user seeds give unrelated
/// generator states.
class SplitMix64 {
public:
    explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Satisfies UniformRandomBitGenerator
/// so it can also feed <random> distributions where convenient.
class Xoshiro256 {
public:
    using result_type = std::uint64_t;

    /// Seed via SplitMix64 expansion; any seed value (including 0) is fine.
    explicit constexpr Xoshiro256(std::uint64_t seed = 0x9d2c5680u) noexcept {
        SplitMix64 sm(seed);
        for (auto& s : s_) s = sm.next();
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    constexpr result_type operator()() noexcept {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1) with 53 bits of precision.
    constexpr double next_double() noexcept {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// Uniform integer in [0, bound) without modulo bias (Lemire's method
    /// with rejection). Precondition: bound > 0.
    std::uint64_t next_below(std::uint64_t bound) noexcept;

    /// Bernoulli trial with success probability p (clamped to [0,1]).
    constexpr bool next_bool(double p) noexcept { return next_double() < p; }

    /// 64 independent Bernoulli(p) trials packed into one word, one per
    /// bit, with p quantised to 16 binary digits (q = round(p * 2^16)).
    ///
    /// Bit-sliced construction: starting from r = 0 (all-fail), each of
    /// the 16 digits of q folds in one uniform random word w —
    /// OR when the digit is 1, AND when it is 0 — which leaves every bit
    /// set with probability exactly q / 2^16. Sixteen RNG draws for 64
    /// trials, versus 64 draws (and 64 FP compares) bit by bit.
    constexpr std::uint64_t next_bernoulli_word(double p) noexcept {
        if (p <= 0.0) return 0;
        if (p >= 1.0) return ~0ULL;
        const auto q =
            static_cast<std::uint32_t>(p * 65536.0 + 0.5);  // p in 0.16 fixed point
        if (q == 0) return 0;
        if (q >= 65536) return ~0ULL;
        std::uint64_t r = 0;
        for (int k = 0; k < 16; ++k) {
            const std::uint64_t w = (*this)();
            r = (q >> k & 1u) ? (r | w) : (r & w);
        }
        return r;
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }
    std::uint64_t s_[4]{};
};

/// Derive a child seed from a parent seed and a stream index, so that the
/// per-port generators of one simulation are mutually independent.
constexpr std::uint64_t derive_seed(std::uint64_t parent,
                                    std::uint64_t stream) noexcept {
    SplitMix64 sm(parent ^ (0xA5A5A5A5DEADBEEFULL + stream * 0x9e3779b97f4a7c15ULL));
    sm.next();
    return sm.next();
}

}  // namespace lcf::util
