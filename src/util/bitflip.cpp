#include "util/bitflip.hpp"

#include <cmath>

namespace lcf::util {

std::uint64_t flip_bits(std::span<std::uint8_t> bytes, double p,
                        Xoshiro256& rng) noexcept {
    if (bytes.empty() || p <= 0.0) return 0;
    const std::uint64_t total_bits =
        static_cast<std::uint64_t>(bytes.size()) * 8;
    if (p >= 1.0) {
        for (auto& byte : bytes) byte = static_cast<std::uint8_t>(~byte);
        return total_bits;
    }
    // Geometric skip sampling: the gap G >= 0 to the next flipped bit
    // satisfies P(G = k) = (1-p)^k p, i.e. G = floor(ln(1-U) / ln(1-p))
    // for U uniform in [0, 1). Each draw advances past exactly one flip.
    const double denom = std::log1p(-p);  // ln(1-p) < 0
    std::uint64_t flips = 0;
    std::uint64_t bit = 0;
    while (true) {
        const double gap = std::floor(std::log1p(-rng.next_double()) / denom);
        // A huge gap (or the +inf from U == 0 being impossible but the
        // division underflowing) means no further flip in this buffer.
        if (gap >= static_cast<double>(total_bits - bit)) break;
        bit += static_cast<std::uint64_t>(gap);
        bytes[bit >> 3] =
            static_cast<std::uint8_t>(bytes[bit >> 3] ^ (1U << (bit & 7)));
        ++flips;
        if (++bit >= total_bits) break;
    }
    return flips;
}

}  // namespace lcf::util
