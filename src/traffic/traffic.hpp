#pragma once
// Traffic generation interface. The paper's Figure 12 uses Bernoulli
// arrivals with uniformly distributed destinations; the other generators
// here support the ablation benches (bursty, hotspot, diagonal,
// permutation, trace replay).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace lcf::traffic {

/// Sentinel returned by TrafficGenerator::arrival when no packet arrives.
inline constexpr std::int32_t kNoArrival = -1;

/// One traffic pattern. reset() is called once per simulation with the
/// switch geometry and a seed; arrival() is then called once per (slot,
/// input) in nondecreasing slot order and returns the destination port of
/// the packet generated at that input in that slot, or kNoArrival.
class TrafficGenerator {
public:
    virtual ~TrafficGenerator();

    /// Prepare for a run over an `inputs` × `outputs` switch. Generators
    /// derive independent per-input streams from `seed`.
    virtual void reset(std::size_t inputs, std::size_t outputs,
                       std::uint64_t seed) = 0;

    /// Destination of the packet generated at `input` in `slot`, or
    /// kNoArrival.
    virtual std::int32_t arrival(std::size_t input, std::uint64_t slot) = 0;

    /// Mean offered load per input in [0, 1] (packets per slot).
    [[nodiscard]] virtual double offered_load() const noexcept = 0;

    /// Stable identifier, e.g. "uniform" or "bursty".
    [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// Construct a generator by name: "uniform", "bursty", "hotspot",
/// "diagonal", "permutation". `load` is the per-input offered load.
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<TrafficGenerator> make_traffic(std::string_view name,
                                               double load);

/// All names accepted by make_traffic(), in documentation order.
const std::vector<std::string>& traffic_names();

/// True when `name` is accepted by make_traffic().
bool is_traffic_name(std::string_view name);

}  // namespace lcf::traffic
