#pragma once
// Traffic generation interface. The paper's Figure 12 uses Bernoulli
// arrivals with uniformly distributed destinations; the other generators
// here support the ablation benches (bursty, hotspot, diagonal,
// permutation, trace replay).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace lcf::traffic {

/// Sentinel returned by TrafficGenerator::arrival when no packet arrives.
inline constexpr std::int32_t kNoArrival = -1;

/// One traffic pattern. reset() is called once per simulation with the
/// switch geometry and a seed; arrivals are then drawn once per (slot,
/// input) in nondecreasing slot order — either one input at a time via
/// arrival(), or a whole slot at once via arrivals(). The two entry
/// points draw from the same per-input RNG streams in the same order,
/// so mixing them across slots (not within one slot) is well-defined
/// and a batched run is bit-identical to a scalar one.
class TrafficGenerator {
public:
    virtual ~TrafficGenerator();

    /// Prepare for a run over an `inputs` × `outputs` switch. Generators
    /// derive independent per-input streams from `seed`. Non-virtual:
    /// records the geometry for arrivals(), then dispatches to do_reset().
    void reset(std::size_t inputs, std::size_t outputs, std::uint64_t seed) {
        do_reset(inputs, outputs, seed);
        inputs_ = inputs;
    }

    /// Destination of the packet generated at `input` in `slot`, or
    /// kNoArrival.
    virtual std::int32_t arrival(std::size_t input, std::uint64_t slot) = 0;

    /// Batch form: out[i] = arrival(i, slot) for every input i in
    /// ascending order, in one virtual dispatch per slot instead of one
    /// per port. `out` must hold at least inputs() entries. Overrides
    /// MUST preserve the per-(input, slot) draw order of arrival() so
    /// batched and scalar runs stay bit-identical (pinned by the golden
    /// SimResult tests in tests/test_sim_golden.cpp).
    virtual void arrivals(std::uint64_t slot, std::int32_t* out);

    /// Inputs configured by the most recent reset() (0 before the first).
    [[nodiscard]] std::size_t inputs() const noexcept { return inputs_; }

    /// Mean offered load per input in [0, 1] (packets per slot).
    [[nodiscard]] virtual double offered_load() const noexcept = 0;

    /// Stable identifier, e.g. "uniform" or "bursty".
    [[nodiscard]] virtual std::string_view name() const noexcept = 0;

protected:
    /// Generator-specific part of reset().
    virtual void do_reset(std::size_t inputs, std::size_t outputs,
                          std::uint64_t seed) = 0;

private:
    std::size_t inputs_ = 0;
};

/// Construct a generator by name: "uniform", "bursty", "hotspot",
/// "diagonal", "permutation". `load` is the per-input offered load.
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<TrafficGenerator> make_traffic(std::string_view name,
                                               double load);

/// All names accepted by make_traffic(), in documentation order.
const std::vector<std::string>& traffic_names();

/// True when `name` is accepted by make_traffic().
bool is_traffic_name(std::string_view name);

}  // namespace lcf::traffic
