#pragma once
// Bernoulli arrivals with uniformly distributed destinations — the
// traffic model of the paper's Figure 12 ("Load is the probability that
// a host generates a packet in a given time slot. The destinations of
// the packets are uniformly distributed.").

#include "traffic/traffic.hpp"

#include <vector>

#include "util/rng.hpp"

namespace lcf::traffic {

/// i.i.d. Bernoulli(load) arrivals, destination uniform over all outputs
/// (self-traffic included; see DESIGN.md §6.4).
class BernoulliUniform final : public TrafficGenerator {
public:
    explicit BernoulliUniform(double load);

    std::int32_t arrival(std::size_t input, std::uint64_t slot) override;
    void arrivals(std::uint64_t slot, std::int32_t* out) override;
    [[nodiscard]] double offered_load() const noexcept override { return load_; }
    [[nodiscard]] std::string_view name() const noexcept override {
        return "uniform";
    }

protected:
    void do_reset(std::size_t inputs, std::size_t outputs,
                  std::uint64_t seed) override;

private:
    double load_;
    std::size_t outputs_ = 0;
    std::vector<util::Xoshiro256> rng_;  // one independent stream per input
};

}  // namespace lcf::traffic
