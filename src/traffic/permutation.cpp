#include "traffic/permutation.hpp"

#include <numeric>
#include <stdexcept>

namespace lcf::traffic {

PermutationTraffic::PermutationTraffic(double load) : load_(load) {
    if (load < 0.0 || load > 1.0) {
        throw std::invalid_argument("load must be in [0, 1]");
    }
}

void PermutationTraffic::do_reset(std::size_t inputs, std::size_t outputs,
                                  std::uint64_t seed) {
    if (inputs == 0 || outputs == 0) {
        throw std::invalid_argument(
            "permutation traffic requires a non-empty switch geometry");
    }
    if (outputs < inputs) {
        throw std::invalid_argument(
            "permutation traffic requires outputs >= inputs");
    }
    perm_.resize(outputs);
    std::iota(perm_.begin(), perm_.end(), std::size_t{0});
    util::Xoshiro256 rng(util::derive_seed(seed, 0xFEED));
    for (std::size_t i = outputs; i > 1; --i) {  // Fisher–Yates
        const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
        std::swap(perm_[i - 1], perm_[j]);
    }
    perm_.resize(inputs);
    rng_.clear();
    rng_.reserve(inputs);
    for (std::size_t i = 0; i < inputs; ++i) {
        rng_.emplace_back(util::derive_seed(seed, i));
    }
}

std::int32_t PermutationTraffic::arrival(std::size_t input,
                                         std::uint64_t /*slot*/) {
    if (!rng_[input].next_bool(load_)) return kNoArrival;
    return static_cast<std::int32_t>(perm_[input]);
}

void PermutationTraffic::arrivals(std::uint64_t /*slot*/, std::int32_t* out) {
    // Same per-port draws in the same order as arrival(i, slot).
    const double load = load_;
    const std::size_t n = rng_.size();
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = rng_[i].next_bool(load)
                     ? static_cast<std::int32_t>(perm_[i])
                     : kNoArrival;
    }
}

}  // namespace lcf::traffic
