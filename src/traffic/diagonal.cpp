#include "traffic/diagonal.hpp"

#include <stdexcept>

namespace lcf::traffic {

DiagonalTraffic::DiagonalTraffic(double load) : load_(load) {
    if (load < 0.0 || load > 1.0) {
        throw std::invalid_argument("load must be in [0, 1]");
    }
}

void DiagonalTraffic::do_reset(std::size_t inputs, std::size_t outputs,
                               std::uint64_t seed) {
    if (inputs == 0 || outputs == 0) {
        // arrival() maps destinations with `% outputs`.
        throw std::invalid_argument(
            "diagonal traffic requires a non-empty switch geometry");
    }
    outputs_ = outputs;
    rng_.clear();
    rng_.reserve(inputs);
    for (std::size_t i = 0; i < inputs; ++i) {
        rng_.emplace_back(util::derive_seed(seed, i));
    }
}

std::int32_t DiagonalTraffic::arrival(std::size_t input, std::uint64_t /*slot*/) {
    auto& rng = rng_[input];
    if (!rng.next_bool(load_)) return kNoArrival;
    const std::size_t dst = rng.next_bool(2.0 / 3.0)
                                ? input % outputs_
                                : (input + 1) % outputs_;
    return static_cast<std::int32_t>(dst);
}

void DiagonalTraffic::arrivals(std::uint64_t /*slot*/, std::int32_t* out) {
    // Same per-port draws in the same order as arrival(i, slot).
    const double load = load_;
    const std::size_t outputs = outputs_;
    const std::size_t n = rng_.size();
    for (std::size_t i = 0; i < n; ++i) {
        auto& rng = rng_[i];
        if (!rng.next_bool(load)) {
            out[i] = kNoArrival;
            continue;
        }
        const std::size_t dst =
            rng.next_bool(2.0 / 3.0) ? i % outputs : (i + 1) % outputs;
        out[i] = static_cast<std::int32_t>(dst);
    }
}

}  // namespace lcf::traffic
