#include "traffic/diagonal.hpp"

#include <stdexcept>

namespace lcf::traffic {

DiagonalTraffic::DiagonalTraffic(double load) : load_(load) {
    if (load < 0.0 || load > 1.0) {
        throw std::invalid_argument("load must be in [0, 1]");
    }
}

void DiagonalTraffic::reset(std::size_t inputs, std::size_t outputs,
                            std::uint64_t seed) {
    if (inputs == 0 || outputs == 0) {
        // arrival() maps destinations with `% outputs`.
        throw std::invalid_argument(
            "diagonal traffic requires a non-empty switch geometry");
    }
    outputs_ = outputs;
    rng_.clear();
    rng_.reserve(inputs);
    for (std::size_t i = 0; i < inputs; ++i) {
        rng_.emplace_back(util::derive_seed(seed, i));
    }
}

std::int32_t DiagonalTraffic::arrival(std::size_t input, std::uint64_t /*slot*/) {
    auto& rng = rng_[input];
    if (!rng.next_bool(load_)) return kNoArrival;
    const std::size_t dst = rng.next_bool(2.0 / 3.0)
                                ? input % outputs_
                                : (input + 1) % outputs_;
    return static_cast<std::int32_t>(dst);
}

}  // namespace lcf::traffic
