#pragma once
// Hotspot traffic: a configurable fraction of all packets target one hot
// output port; the remainder are uniform. Stresses the schedulers'
// behaviour under asymmetric contention.

#include "traffic/traffic.hpp"

#include <vector>

#include "util/rng.hpp"

namespace lcf::traffic {

/// Bernoulli arrivals; destination is the hotspot with probability
/// `hot_fraction`, otherwise uniform over all outputs.
class HotspotTraffic final : public TrafficGenerator {
public:
    HotspotTraffic(double load, double hot_fraction = 0.3,
                   std::size_t hot_port = 0);

    std::int32_t arrival(std::size_t input, std::uint64_t slot) override;
    void arrivals(std::uint64_t slot, std::int32_t* out) override;
    [[nodiscard]] double offered_load() const noexcept override { return load_; }
    [[nodiscard]] std::string_view name() const noexcept override {
        return "hotspot";
    }

protected:
    void do_reset(std::size_t inputs, std::size_t outputs,
                  std::uint64_t seed) override;

private:
    double load_;
    double hot_fraction_;
    std::size_t hot_port_;
    std::size_t outputs_ = 0;
    std::vector<util::Xoshiro256> rng_;
};

}  // namespace lcf::traffic
