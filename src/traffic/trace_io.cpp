#include "traffic/trace_io.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace lcf::traffic {

void write_trace_csv(std::ostream& out,
                     const std::vector<TraceEntry>& entries) {
    out << "slot,input,destination\n";
    for (const auto& e : entries) {
        out << e.slot << ',' << e.input << ',' << e.destination << '\n';
    }
}

namespace {

std::uint64_t parse_field(std::string_view field, std::size_t line_no) {
    std::uint64_t value{};
    const auto [p, ec] =
        std::from_chars(field.data(), field.data() + field.size(), value);
    if (ec != std::errc{} || p != field.data() + field.size()) {
        throw std::runtime_error("trace CSV: bad number on line " +
                                 std::to_string(line_no));
    }
    return value;
}

}  // namespace

std::vector<TraceEntry> read_trace_csv(std::istream& in) {
    std::vector<TraceEntry> entries;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        if (line_no == 1 && line.rfind("slot", 0) == 0) continue;  // header
        const auto c1 = line.find(',');
        const auto c2 = c1 == std::string::npos ? std::string::npos
                                                : line.find(',', c1 + 1);
        if (c1 == std::string::npos || c2 == std::string::npos) {
            throw std::runtime_error("trace CSV: expected 3 fields on line " +
                                     std::to_string(line_no));
        }
        TraceEntry e;
        e.slot = parse_field(std::string_view(line).substr(0, c1), line_no);
        e.input = parse_field(
            std::string_view(line).substr(c1 + 1, c2 - c1 - 1), line_no);
        e.destination =
            parse_field(std::string_view(line).substr(c2 + 1), line_no);
        entries.push_back(e);
    }
    return entries;
}

RecordingTraffic::RecordingTraffic(std::unique_ptr<TrafficGenerator> inner)
    : inner_(std::move(inner)) {
    if (inner_ == nullptr) {
        throw std::invalid_argument("recording traffic needs an inner generator");
    }
}

void RecordingTraffic::do_reset(std::size_t inputs, std::size_t outputs,
                                std::uint64_t seed) {
    inner_->reset(inputs, outputs, seed);
    entries_.clear();
}

std::int32_t RecordingTraffic::arrival(std::size_t input, std::uint64_t slot) {
    const std::int32_t dst = inner_->arrival(input, slot);
    if (dst != kNoArrival) {
        entries_.push_back(
            TraceEntry{slot, input, static_cast<std::size_t>(dst)});
    }
    return dst;
}

}  // namespace lcf::traffic
