#include "traffic/pareto.hpp"

#include <cmath>
#include <stdexcept>

namespace lcf::traffic {

ParetoBurstTraffic::ParetoBurstTraffic(double load, double alpha,
                                       double max_burst)
    : load_(load), alpha_(alpha), max_burst_(max_burst) {
    if (load < 0.0 || load > 1.0) {
        throw std::invalid_argument("load must be in [0, 1]");
    }
    if (alpha <= 1.0) {
        throw std::invalid_argument("alpha must exceed 1 for a finite mean");
    }
    if (max_burst < 1.0) {
        throw std::invalid_argument("max_burst must be >= 1");
    }
    // Mean of bounded Pareto(alpha, L=1, H=max_burst):
    //   E = (alpha L^alpha / (alpha-1)) * (1 - (L/H)^(alpha-1))
    //       / (1 - (L/H)^alpha)
    const double lh = 1.0 / max_burst_;
    mean_burst_ = alpha_ / (alpha_ - 1.0) *
                  (1.0 - std::pow(lh, alpha_ - 1.0)) /
                  (1.0 - std::pow(lh, alpha_));
    if (load_ <= 0.0) {
        p_start_ = 0.0;
    } else if (load_ >= 1.0) {
        p_start_ = 1.0;
    } else {
        const double mean_idle = mean_burst_ * (1.0 - load_) / load_;
        p_start_ = 1.0 / mean_idle;
    }
}

double ParetoBurstTraffic::sample_burst(util::Xoshiro256& rng) const noexcept {
    // Inverse-CDF sampling of the bounded Pareto: with U uniform,
    //   X = (1 - U (1 - (L/H)^alpha))^(-1/alpha), L = 1.
    const double u = rng.next_double();
    const double tail = std::pow(1.0 / max_burst_, alpha_);
    return std::pow(1.0 - u * (1.0 - tail), -1.0 / alpha_);
}

void ParetoBurstTraffic::do_reset(std::size_t inputs, std::size_t outputs,
                                  std::uint64_t seed) {
    if (inputs == 0 || outputs == 0) {
        throw std::invalid_argument(
            "pareto traffic requires a non-empty switch geometry");
    }
    outputs_ = outputs;
    ports_.assign(inputs, PortState{});
    for (std::size_t i = 0; i < inputs; ++i) {
        ports_[i].rng = util::Xoshiro256(util::derive_seed(seed, i));
    }
}

std::int32_t ParetoBurstTraffic::arrival(std::size_t input,
                                         std::uint64_t /*slot*/) {
    PortState& p = ports_[input];
    if (p.remaining_burst == 0) {
        if (!p.rng.next_bool(p_start_)) return kNoArrival;
        p.remaining_burst = static_cast<std::uint64_t>(
            std::llround(sample_burst(p.rng)));
        if (p.remaining_burst == 0) p.remaining_burst = 1;
        p.burst_dst = static_cast<std::int32_t>(p.rng.next_below(outputs_));
    }
    --p.remaining_burst;
    return p.burst_dst;
}

void ParetoBurstTraffic::arrivals(std::uint64_t /*slot*/, std::int32_t* out) {
    // Same per-port draws in the same order as arrival(i, slot).
    const double p_start = p_start_;
    const std::size_t outputs = outputs_;
    const std::size_t n = ports_.size();
    for (std::size_t i = 0; i < n; ++i) {
        PortState& p = ports_[i];
        if (p.remaining_burst == 0) {
            if (!p.rng.next_bool(p_start)) {
                out[i] = kNoArrival;
                continue;
            }
            p.remaining_burst = static_cast<std::uint64_t>(
                std::llround(sample_burst(p.rng)));
            if (p.remaining_burst == 0) p.remaining_burst = 1;
            p.burst_dst = static_cast<std::int32_t>(p.rng.next_below(outputs));
        }
        --p.remaining_burst;
        out[i] = p.burst_dst;
    }
}

}  // namespace lcf::traffic
