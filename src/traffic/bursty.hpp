#pragma once
// Two-state (on/off) Markov-modulated bursty traffic. During an ON burst
// the input generates one packet per slot, all to the same destination;
// OFF periods are idle. Burst and idle lengths are geometric with means
// chosen so the long-run offered load equals the configured value — the
// classic model for evaluating VOQ schedulers under correlated arrivals.

#include "traffic/traffic.hpp"

#include <vector>

#include "util/rng.hpp"

namespace lcf::traffic {

/// On/off bursty traffic with geometric burst lengths.
class BurstyTraffic final : public TrafficGenerator {
public:
    /// `mean_burst` is the average ON period in packets (>= 1).
    BurstyTraffic(double load, double mean_burst = 16.0);

    std::int32_t arrival(std::size_t input, std::uint64_t slot) override;
    void arrivals(std::uint64_t slot, std::int32_t* out) override;
    [[nodiscard]] double offered_load() const noexcept override { return load_; }
    [[nodiscard]] std::string_view name() const noexcept override {
        return "bursty";
    }

protected:
    void do_reset(std::size_t inputs, std::size_t outputs,
                  std::uint64_t seed) override;

private:
    struct PortState {
        util::Xoshiro256 rng{0};
        bool on = false;
        std::int32_t burst_dst = 0;
    };

    double load_;
    double mean_burst_;
    double p_end_burst_;   // P(burst ends after a slot)
    double p_start_burst_; // P(idle ends after a slot)
    std::size_t outputs_ = 0;
    std::vector<PortState> ports_;
};

}  // namespace lcf::traffic
