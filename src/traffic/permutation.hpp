#pragma once
// Permutation traffic: each input sends all of its packets to one fixed
// distinct output (a random permutation drawn at reset). Contention-free
// by construction, so any work-conserving scheduler should sustain full
// load — a useful sanity baseline.

#include "traffic/traffic.hpp"

#include <vector>

#include "util/rng.hpp"

namespace lcf::traffic {

/// Bernoulli arrivals along a fixed random permutation.
class PermutationTraffic final : public TrafficGenerator {
public:
    explicit PermutationTraffic(double load);

    std::int32_t arrival(std::size_t input, std::uint64_t slot) override;
    void arrivals(std::uint64_t slot, std::int32_t* out) override;
    [[nodiscard]] double offered_load() const noexcept override { return load_; }
    [[nodiscard]] std::string_view name() const noexcept override {
        return "permutation";
    }

    /// Destination assigned to `input` (exposed for tests).
    [[nodiscard]] std::size_t destination_of(std::size_t input) const {
        return perm_[input];
    }

protected:
    void do_reset(std::size_t inputs, std::size_t outputs,
                  std::uint64_t seed) override;

private:
    double load_;
    std::vector<std::size_t> perm_;
    std::vector<util::Xoshiro256> rng_;
};

}  // namespace lcf::traffic
