#include "traffic/hotspot.hpp"

#include <stdexcept>

namespace lcf::traffic {

HotspotTraffic::HotspotTraffic(double load, double hot_fraction,
                               std::size_t hot_port)
    : load_(load), hot_fraction_(hot_fraction), hot_port_(hot_port) {
    if (load < 0.0 || load > 1.0) {
        throw std::invalid_argument("load must be in [0, 1]");
    }
    if (hot_fraction < 0.0 || hot_fraction > 1.0) {
        throw std::invalid_argument("hot_fraction must be in [0, 1]");
    }
}

void HotspotTraffic::do_reset(std::size_t inputs, std::size_t outputs,
                              std::uint64_t seed) {
    if (inputs == 0 || outputs == 0) {
        throw std::invalid_argument(
            "hotspot traffic requires a non-empty switch geometry");
    }
    if (hot_port_ >= outputs) {
        throw std::invalid_argument("hot_port out of range");
    }
    outputs_ = outputs;
    rng_.clear();
    rng_.reserve(inputs);
    for (std::size_t i = 0; i < inputs; ++i) {
        rng_.emplace_back(util::derive_seed(seed, i));
    }
}

std::int32_t HotspotTraffic::arrival(std::size_t input, std::uint64_t /*slot*/) {
    auto& rng = rng_[input];
    if (!rng.next_bool(load_)) return kNoArrival;
    if (rng.next_bool(hot_fraction_)) {
        return static_cast<std::int32_t>(hot_port_);
    }
    return static_cast<std::int32_t>(rng.next_below(outputs_));
}

void HotspotTraffic::arrivals(std::uint64_t /*slot*/, std::int32_t* out) {
    // Same per-port draws in the same order as arrival(i, slot).
    const double load = load_;
    const double hot_fraction = hot_fraction_;
    const auto hot_port = static_cast<std::int32_t>(hot_port_);
    const std::size_t outputs = outputs_;
    const std::size_t n = rng_.size();
    for (std::size_t i = 0; i < n; ++i) {
        auto& rng = rng_[i];
        if (!rng.next_bool(load)) {
            out[i] = kNoArrival;
        } else if (rng.next_bool(hot_fraction)) {
            out[i] = hot_port;
        } else {
            out[i] = static_cast<std::int32_t>(rng.next_below(outputs));
        }
    }
}

}  // namespace lcf::traffic
