#include "traffic/hotspot.hpp"

#include <stdexcept>

namespace lcf::traffic {

HotspotTraffic::HotspotTraffic(double load, double hot_fraction,
                               std::size_t hot_port)
    : load_(load), hot_fraction_(hot_fraction), hot_port_(hot_port) {
    if (load < 0.0 || load > 1.0) {
        throw std::invalid_argument("load must be in [0, 1]");
    }
    if (hot_fraction < 0.0 || hot_fraction > 1.0) {
        throw std::invalid_argument("hot_fraction must be in [0, 1]");
    }
}

void HotspotTraffic::reset(std::size_t inputs, std::size_t outputs,
                           std::uint64_t seed) {
    if (inputs == 0 || outputs == 0) {
        throw std::invalid_argument(
            "hotspot traffic requires a non-empty switch geometry");
    }
    if (hot_port_ >= outputs) {
        throw std::invalid_argument("hot_port out of range");
    }
    outputs_ = outputs;
    rng_.clear();
    rng_.reserve(inputs);
    for (std::size_t i = 0; i < inputs; ++i) {
        rng_.emplace_back(util::derive_seed(seed, i));
    }
}

std::int32_t HotspotTraffic::arrival(std::size_t input, std::uint64_t /*slot*/) {
    auto& rng = rng_[input];
    if (!rng.next_bool(load_)) return kNoArrival;
    if (rng.next_bool(hot_fraction_)) {
        return static_cast<std::int32_t>(hot_port_);
    }
    return static_cast<std::int32_t>(rng.next_below(outputs_));
}

}  // namespace lcf::traffic
