#pragma once
// Heavy-tailed on/off traffic: burst lengths drawn from a bounded
// Pareto distribution. Aggregates of such sources exhibit the
// self-similarity observed in real LAN traffic (Leland et al. 1994) —
// a harsher regime than the geometric bursts of BurstyTraffic and far
// harsher than the paper's Bernoulli model.

#include "traffic/traffic.hpp"

#include <vector>

#include "util/rng.hpp"

namespace lcf::traffic {

/// On/off source with bounded-Pareto(alpha, 1, max_burst) ON periods
/// (one packet per slot to a per-burst destination) and geometric OFF
/// periods calibrated so the long-run load matches.
class ParetoBurstTraffic final : public TrafficGenerator {
public:
    /// `alpha` in (1, 2] gives finite mean but very high variance;
    /// default 1.5 with bursts capped at 10 000 slots.
    explicit ParetoBurstTraffic(double load, double alpha = 1.5,
                                double max_burst = 10000.0);

    std::int32_t arrival(std::size_t input, std::uint64_t slot) override;
    void arrivals(std::uint64_t slot, std::int32_t* out) override;
    [[nodiscard]] double offered_load() const noexcept override {
        return load_;
    }
    [[nodiscard]] std::string_view name() const noexcept override {
        return "pareto";
    }

    /// Mean of the bounded Pareto(alpha, 1, max_burst) distribution.
    [[nodiscard]] double mean_burst() const noexcept { return mean_burst_; }

    /// One bounded-Pareto draw (exposed for the distribution tests).
    [[nodiscard]] double sample_burst(util::Xoshiro256& rng) const noexcept;

protected:
    void do_reset(std::size_t inputs, std::size_t outputs,
                  std::uint64_t seed) override;

private:
    struct PortState {
        util::Xoshiro256 rng{0};
        std::uint64_t remaining_burst = 0;
        std::int32_t burst_dst = 0;
    };

    double load_;
    double alpha_;
    double max_burst_;
    double mean_burst_ = 1.0;
    double p_start_ = 0.0;  // P(burst starts per idle slot)
    std::size_t outputs_ = 0;
    std::vector<PortState> ports_;
};

}  // namespace lcf::traffic
