#include "traffic/traffic.hpp"

#include <stdexcept>

#include "traffic/bernoulli.hpp"
#include "traffic/bursty.hpp"
#include "traffic/pareto.hpp"
#include "traffic/diagonal.hpp"
#include "traffic/hotspot.hpp"
#include "traffic/permutation.hpp"

namespace lcf::traffic {

TrafficGenerator::~TrafficGenerator() = default;

void TrafficGenerator::arrivals(std::uint64_t slot, std::int32_t* out) {
    // Generic fallback: one virtual dispatch per input. Generators with
    // a native batch path override this with a devirtualised loop that
    // draws in exactly this order.
    for (std::size_t i = 0; i < inputs_; ++i) out[i] = arrival(i, slot);
}

std::unique_ptr<TrafficGenerator> make_traffic(std::string_view name,
                                               double load) {
    if (name == "uniform") return std::make_unique<BernoulliUniform>(load);
    if (name == "bursty") return std::make_unique<BurstyTraffic>(load);
    if (name == "pareto") return std::make_unique<ParetoBurstTraffic>(load);
    if (name == "hotspot") return std::make_unique<HotspotTraffic>(load);
    if (name == "diagonal") return std::make_unique<DiagonalTraffic>(load);
    if (name == "permutation") return std::make_unique<PermutationTraffic>(load);
    std::string message = "unknown traffic name: " + std::string(name) +
                          " (valid names:";
    for (const auto& valid : traffic_names()) message += " " + valid;
    throw std::invalid_argument(message + ")");
}

const std::vector<std::string>& traffic_names() {
    static const std::vector<std::string> names = {
        "uniform", "bursty", "pareto", "hotspot", "diagonal", "permutation",
    };
    return names;
}

bool is_traffic_name(std::string_view name) {
    for (const auto& valid : traffic_names()) {
        if (valid == name) return true;
    }
    return false;
}

}  // namespace lcf::traffic
