#pragma once
// Trace persistence and capture: save arrival traces to CSV, load them
// back, and record the output of any generator so that a stochastic
// workload can be replayed exactly (for bug reproduction, cross-
// scheduler comparisons on identical arrivals, or feeding external
// traces into the simulator).

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "traffic/trace.hpp"

namespace lcf::traffic {

/// Write entries as CSV with a `slot,input,destination` header.
void write_trace_csv(std::ostream& out, const std::vector<TraceEntry>& entries);

/// Parse a trace CSV (as produced by write_trace_csv; blank lines and
/// a header row are tolerated). Throws std::runtime_error on malformed
/// rows.
std::vector<TraceEntry> read_trace_csv(std::istream& in);

/// Decorator that forwards to an inner generator while recording every
/// arrival it produces. After a run, take() yields the trace.
class RecordingTraffic final : public TrafficGenerator {
public:
    explicit RecordingTraffic(std::unique_ptr<TrafficGenerator> inner);

    // Note: no arrivals() override — the inherited batch default
    // dispatches through arrival(), so batched callers are recorded too.
    std::int32_t arrival(std::size_t input, std::uint64_t slot) override;
    [[nodiscard]] double offered_load() const noexcept override {
        return inner_->offered_load();
    }
    [[nodiscard]] std::string_view name() const noexcept override {
        return "recording";
    }

    /// The arrivals recorded so far (in call order).
    [[nodiscard]] const std::vector<TraceEntry>& entries() const noexcept {
        return entries_;
    }
    /// Move the recorded trace out.
    [[nodiscard]] std::vector<TraceEntry> take() noexcept {
        return std::move(entries_);
    }

protected:
    void do_reset(std::size_t inputs, std::size_t outputs,
                  std::uint64_t seed) override;

private:
    std::unique_ptr<TrafficGenerator> inner_;
    std::vector<TraceEntry> entries_;
};

}  // namespace lcf::traffic
