#include "traffic/trace.hpp"

#include <stdexcept>

namespace lcf::traffic {

TraceTraffic::TraceTraffic(std::vector<TraceEntry> entries) {
    for (const auto& e : entries) {
        const auto [it, inserted] =
            arrivals_.emplace(std::make_pair(e.slot, e.input), e.destination);
        if (!inserted) {
            throw std::invalid_argument(
                "trace has two arrivals for one (slot, input)");
        }
    }
}

void TraceTraffic::do_reset(std::size_t inputs, std::size_t outputs,
                            std::uint64_t /*seed*/) {
    std::uint64_t max_slot = 0;
    for (const auto& [key, dst] : arrivals_) {
        if (key.second >= inputs) {
            throw std::invalid_argument("trace input out of range");
        }
        if (dst >= outputs) {
            throw std::invalid_argument("trace destination out of range");
        }
        max_slot = std::max(max_slot, key.first);
    }
    const double span = static_cast<double>((max_slot + 1) * inputs);
    offered_ = span > 0 ? static_cast<double>(arrivals_.size()) / span : 0.0;
}

std::int32_t TraceTraffic::arrival(std::size_t input, std::uint64_t slot) {
    const auto it = arrivals_.find({slot, input});
    if (it == arrivals_.end()) return kNoArrival;
    return static_cast<std::int32_t>(it->second);
}

}  // namespace lcf::traffic
