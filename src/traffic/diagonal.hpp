#pragma once
// Diagonal traffic: input i sends 2/3 of its packets to output i and 1/3
// to output (i+1) mod n. Every output is fully loaded as offered load
// approaches 1, but each input has only two choices — a hard pattern for
// match-size-oriented schedulers and a standard benchmark in the
// input-queued switch literature.

#include "traffic/traffic.hpp"

#include <vector>

#include "util/rng.hpp"

namespace lcf::traffic {

/// Two-destination diagonal pattern (2/3 to i, 1/3 to i+1).
class DiagonalTraffic final : public TrafficGenerator {
public:
    explicit DiagonalTraffic(double load);

    std::int32_t arrival(std::size_t input, std::uint64_t slot) override;
    void arrivals(std::uint64_t slot, std::int32_t* out) override;
    [[nodiscard]] double offered_load() const noexcept override { return load_; }
    [[nodiscard]] std::string_view name() const noexcept override {
        return "diagonal";
    }

protected:
    void do_reset(std::size_t inputs, std::size_t outputs,
                  std::uint64_t seed) override;

private:
    double load_;
    std::size_t outputs_ = 0;
    std::vector<util::Xoshiro256> rng_;
};

}  // namespace lcf::traffic
