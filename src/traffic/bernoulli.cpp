#include "traffic/bernoulli.hpp"

#include <algorithm>
#include <stdexcept>

namespace lcf::traffic {

BernoulliUniform::BernoulliUniform(double load) : load_(load) {
    if (load < 0.0 || load > 1.0) {
        throw std::invalid_argument("load must be in [0, 1]");
    }
}

void BernoulliUniform::do_reset(std::size_t inputs, std::size_t outputs,
                                std::uint64_t seed) {
    if (inputs == 0 || outputs == 0) {
        // arrival() draws destinations uniformly below `outputs`, which
        // is undefined for an empty geometry.
        throw std::invalid_argument(
            "uniform traffic requires a non-empty switch geometry");
    }
    outputs_ = outputs;
    rng_.clear();
    rng_.reserve(inputs);
    for (std::size_t i = 0; i < inputs; ++i) {
        rng_.emplace_back(util::derive_seed(seed, i));
    }
}

std::int32_t BernoulliUniform::arrival(std::size_t input,
                                       std::uint64_t /*slot*/) {
    auto& rng = rng_[input];
    if (!rng.next_bool(load_)) return kNoArrival;
    return static_cast<std::int32_t>(rng.next_below(outputs_));
}

void BernoulliUniform::arrivals(std::uint64_t /*slot*/, std::int32_t* out) {
    // Same draws in the same order as arrival(i, slot) for ascending i,
    // with the virtual dispatch and member reloads hoisted out.
    const double load = load_;
    const std::size_t outputs = outputs_;
    const std::size_t n = rng_.size();
    for (std::size_t i = 0; i < n; ++i) {
        auto& rng = rng_[i];
        out[i] = rng.next_bool(load)
                     ? static_cast<std::int32_t>(rng.next_below(outputs))
                     : kNoArrival;
    }
}

}  // namespace lcf::traffic
