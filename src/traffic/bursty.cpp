#include "traffic/bursty.hpp"

#include <stdexcept>

namespace lcf::traffic {

BurstyTraffic::BurstyTraffic(double load, double mean_burst)
    : load_(load), mean_burst_(mean_burst) {
    if (load < 0.0 || load > 1.0) {
        throw std::invalid_argument("load must be in [0, 1]");
    }
    if (mean_burst < 1.0) {
        throw std::invalid_argument("mean_burst must be >= 1");
    }
    p_end_burst_ = 1.0 / mean_burst_;
    // Long-run fraction of ON slots is E[on] / (E[on] + E[off]) = load,
    // with E[on] = mean_burst. Solving gives E[off] and its geometric
    // parameter; load <= 0 or >= 1 degenerate to always-off/always-on.
    if (load_ <= 0.0) {
        p_start_burst_ = 0.0;
    } else if (load_ >= 1.0) {
        p_start_burst_ = 1.0;
        p_end_burst_ = 0.0;
    } else {
        const double mean_idle = mean_burst_ * (1.0 - load_) / load_;
        p_start_burst_ = 1.0 / mean_idle;
    }
}

void BurstyTraffic::do_reset(std::size_t inputs, std::size_t outputs,
                             std::uint64_t seed) {
    if (inputs == 0 || outputs == 0) {
        throw std::invalid_argument(
            "bursty traffic requires a non-empty switch geometry");
    }
    outputs_ = outputs;
    ports_.assign(inputs, PortState{});
    for (std::size_t i = 0; i < inputs; ++i) {
        ports_[i].rng = util::Xoshiro256(util::derive_seed(seed, i));
    }
}

std::int32_t BurstyTraffic::arrival(std::size_t input, std::uint64_t /*slot*/) {
    PortState& p = ports_[input];
    if (!p.on) {
        if (!p.rng.next_bool(p_start_burst_)) return kNoArrival;
        p.on = true;
        p.burst_dst = static_cast<std::int32_t>(p.rng.next_below(outputs_));
    }
    const std::int32_t dst = p.burst_dst;
    if (p.rng.next_bool(p_end_burst_)) p.on = false;
    return dst;
}

void BurstyTraffic::arrivals(std::uint64_t /*slot*/, std::int32_t* out) {
    // Same per-port draws in the same order as arrival(i, slot).
    const double p_start = p_start_burst_;
    const double p_end = p_end_burst_;
    const std::size_t outputs = outputs_;
    const std::size_t n = ports_.size();
    for (std::size_t i = 0; i < n; ++i) {
        PortState& p = ports_[i];
        if (!p.on) {
            if (!p.rng.next_bool(p_start)) {
                out[i] = kNoArrival;
                continue;
            }
            p.on = true;
            p.burst_dst = static_cast<std::int32_t>(p.rng.next_below(outputs));
        }
        out[i] = p.burst_dst;
        if (p.rng.next_bool(p_end)) p.on = false;
    }
}

}  // namespace lcf::traffic
