#pragma once
// Trace replay: a deterministic list of (slot, input, destination)
// arrivals. Used by tests that need exact arrival patterns and available
// to users who want to feed recorded workloads through the simulator.

#include "traffic/traffic.hpp"

#include <map>
#include <utility>
#include <vector>

namespace lcf::traffic {

/// One recorded arrival.
struct TraceEntry {
    std::uint64_t slot;
    std::size_t input;
    std::size_t destination;
};

/// Replays a fixed arrival trace; at most one arrival per (slot, input).
class TraceTraffic final : public TrafficGenerator {
public:
    explicit TraceTraffic(std::vector<TraceEntry> entries);

    std::int32_t arrival(std::size_t input, std::uint64_t slot) override;
    /// Offered load is trace-dependent; reports arrivals per (input,
    /// slot) over the trace's span once reset() has validated it.
    [[nodiscard]] double offered_load() const noexcept override {
        return offered_;
    }
    [[nodiscard]] std::string_view name() const noexcept override {
        return "trace";
    }

protected:
    void do_reset(std::size_t inputs, std::size_t outputs,
                  std::uint64_t seed) override;

private:
    std::map<std::pair<std::uint64_t, std::size_t>, std::size_t> arrivals_;
    double offered_ = 0.0;
};

}  // namespace lcf::traffic
