#include "core/lcf_central.hpp"

#include <cassert>

namespace lcf::core {

LcfCentralScheduler::LcfCentralScheduler(const LcfCentralOptions& options)
    : options_(options) {}

std::string_view LcfCentralScheduler::name() const noexcept {
    switch (options_.variant) {
        case RrVariant::kNone:
            return "lcf_central";
        case RrVariant::kSingle:
            return "lcf_central_rr_single";
        case RrVariant::kInterleaved:
            return "lcf_central_rr";
        case RrVariant::kDiagonalFirst:
            return "lcf_central_rr_first";
    }
    return "lcf_central";
}

void LcfCentralScheduler::reset(std::size_t inputs, std::size_t outputs) {
    rr_input_ = 0;
    rr_output_ = 0;
    ensure_scratch(inputs, outputs);
}

void LcfCentralScheduler::ensure_scratch(std::size_t n_in, std::size_t n_out) {
    n_in_ = n_in;
    n_out_ = n_out;
    free_inputs_ = util::BitVec(n_in);
    cand_ = util::BitVec(n_in);
    masked_row_ = util::BitVec(n_out);
    nrq_.assign(n_in, 0);
}

void LcfCentralScheduler::set_diagonal(std::size_t input_offset,
                                       std::size_t output_offset) noexcept {
    rr_input_ = input_offset;
    rr_output_ = output_offset;
}

void LcfCentralScheduler::advance_diagonal() noexcept {
    // I := (I+1) mod MaxReq; if I = 0 then J := (J+1) mod MaxRes — so the
    // diagonal anchor visits all n² positions over n² scheduling cycles.
    if (n_in_ == 0 || n_out_ == 0) return;
    rr_input_ = (rr_input_ + 1) % n_in_;
    if (rr_input_ == 0) rr_output_ = (rr_output_ + 1) % n_out_;
}

void LcfCentralScheduler::schedule(const sched::RequestMatrix& requests,
                                   sched::Matching& out) {
    run_lcf(requests, nullptr, nullptr, out);
    advance_diagonal();
}

// Grant a pair and maintain the bookkeeping: the winner leaves the
// competition (one bit), and requests for the consumed output stop
// counting as choices (one walk of the candidate word's set bits —
// cand_ holds exactly the column's still-free requesters).
void LcfCentralScheduler::grant(std::size_t input, std::size_t col,
                                sched::Matching& out) {
    out.match(input, col);
    free_inputs_.reset(input);
    for (const std::size_t i : cand_.set_bits()) {
        if (i != input) {
            assert(nrq_[i] > 0);
            --nrq_[i];
        }
    }
}

void LcfCentralScheduler::run_lcf(const sched::RequestMatrix& requests,
                                  const util::BitVec* busy_inputs,
                                  const util::BitVec* busy_outputs,
                                  sched::Matching& out) {
    const std::size_t n_in = requests.inputs();
    const std::size_t n_out = requests.outputs();
    out.reset(n_in, n_out);
    if (n_in == 0 || n_out == 0) return;

    if (n_in_ != n_in || n_out_ != n_out) ensure_scratch(n_in, n_out);

    // Everyone not consumed by a precalculated stage competes; NRQ
    // starts as the (masked) row popcount. The request matrix itself is
    // never copied — candidate sets come from its lazily maintained
    // column view, masked by free_inputs_.
    free_inputs_.fill();
    if (busy_inputs != nullptr) free_inputs_.subtract(*busy_inputs);
    for (std::size_t i = 0; i < n_in; ++i) {
        if (!free_inputs_.test(i)) {
            nrq_[i] = 0;
        } else if (busy_outputs != nullptr) {
            masked_row_.assign_subtract(requests.row(i), *busy_outputs);
            nrq_[i] = masked_row_.count();
        } else {
            nrq_[i] = requests.row(i).count();
        }
    }

    // Diagonal-first variant: the entire round-robin diagonal is
    // admitted before any LCF priority is consulted (§3's b/n upper
    // bound).
    if (options_.variant == RrVariant::kDiagonalFirst) {
        for (std::size_t res = 0; res < n_out; ++res) {
            const std::size_t col = (rr_output_ + res) % n_out;
            if (busy_outputs != nullptr && busy_outputs->test(col)) continue;
            const std::size_t pos_input = (rr_input_ + res) % n_in;
            if (free_inputs_.test(pos_input) &&
                requests.get(pos_input, col)) {
                cand_.assign_and(requests.col(col), free_inputs_);
                grant(pos_input, col, out);
            }
        }
    }

    // Allocate resources one after the other (Figure 2 main loop).
    for (std::size_t res = 0; res < n_out; ++res) {
        const std::size_t col = (rr_output_ + res) % n_out;
        if (busy_outputs != nullptr && busy_outputs->test(col)) continue;
        if (out.output_matched(col)) continue;  // diagonal-first stage

        cand_.assign_and(requests.col(col), free_inputs_);
        if (cand_.none()) continue;

        const std::size_t rr_pos_input = (rr_input_ + res) % n_in;
        const bool rr_wins =
            (options_.variant == RrVariant::kInterleaved ||
             (options_.variant == RrVariant::kSingle && res == 0)) &&
            cand_.test(rr_pos_input);
        std::size_t gnt = rr_pos_input;  // the round-robin position wins
        if (!rr_wins) {
            // LCF: grant the requester with the fewest outstanding
            // requests — the candidate minimizing (NRQ, rotated rank),
            // where ranks rotate from the round-robin offset: exactly
            // the reference's rotating tie-break priority chain, in one
            // walk of the candidate set bits.
            const std::size_t start = rr_pos_input;
            std::size_t best_nrq = n_out + 1;
            std::size_t best_rank = n_in;
            for (const std::size_t i : cand_.set_bits()) {
                const std::size_t rank =
                    i >= start ? i - start : i + n_in - start;
                const std::size_t v = nrq_[i];
                if (v < best_nrq || (v == best_nrq && rank < best_rank)) {
                    gnt = i;
                    best_nrq = v;
                    best_rank = rank;
                }
            }
        }
        grant(gnt, col, out);
    }
}

void LcfCentralScheduler::schedule_with_precalc(
    const sched::RequestMatrix& requests, const PrecalcSchedule& precalc,
    MulticastResult& out) {
    const std::size_t n_in = requests.inputs();
    const std::size_t n_out = requests.outputs();
    assert(precalc.inputs() == n_in && precalc.outputs() == n_out);

    out.fanout.assign(n_out, sched::kUnmatched);
    out.dropped.clear();

    // Stage 1: integrity-check and admit the precalculated schedule. A
    // target claimed by several inputs is a violation: the first claimant
    // in the rotating priority order is accepted, the rest are dropped
    // (§4.3: "one request is accepted and the remaining ones are
    // dropped"). One transpose of the claim rows replaces the per-target
    // rotated scan over all inputs: each target's claimants are walked in
    // rotated order directly from its column's set bits.
    util::BitVec busy_inputs(n_in);
    util::BitVec busy_outputs(n_out);
    if (precalc_cols_.size() != n_out ||
        (n_out > 0 && precalc_cols_[0].size() != n_in)) {
        precalc_cols_.assign(n_out, util::BitVec(n_in));
    } else {
        for (auto& c : precalc_cols_) c.clear();
    }
    for (std::size_t i = 0; i < n_in; ++i) {
        for (const std::size_t j : precalc.row(i).set_bits()) {
            precalc_cols_[j].set(i);
        }
    }
    const std::size_t rot0 = n_in == 0 ? 0 : rr_input_ % n_in;
    for (std::size_t j = 0; j < n_out; ++j) {
        if (precalc_cols_[j].none()) continue;
        rot_scratch_.clear();
        for (const std::size_t i : precalc_cols_[j].set_bits()) {
            rot_scratch_.push_back(i);
        }
        // Rotated order from the diagonal anchor: indices >= rot0 first.
        for (const int pass : {0, 1}) {
            for (const std::size_t i : rot_scratch_) {
                if ((i >= rot0) != (pass == 0)) continue;
                if (out.fanout[j] == sched::kUnmatched) {
                    out.fanout[j] = static_cast<std::int32_t>(i);
                    busy_outputs.set(j);
                } else {
                    out.dropped.emplace_back(i, j);
                }
            }
        }
    }
    // An input that won any precalculated connection transmits that
    // packet this slot and does not take part in the LCF stage.
    for (std::size_t j = 0; j < n_out; ++j) {
        if (out.fanout[j] != sched::kUnmatched) {
            busy_inputs.set(static_cast<std::size_t>(out.fanout[j]));
        }
    }

    // Stage 2: regular LCF over the remaining requests and free ports.
    run_lcf(requests, &busy_inputs, &busy_outputs, out.unicast);
    for (std::size_t j = 0; j < n_out; ++j) {
        if (out.unicast.input_of(j) != sched::kUnmatched) {
            out.fanout[j] = out.unicast.input_of(j);
        }
    }
    advance_diagonal();
}

}  // namespace lcf::core
