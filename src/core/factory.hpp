#pragma once
// Name-based scheduler construction, covering the paper's entire
// Figure 12 line-up plus the maximum-size-matching reference. The
// `outbuf` configuration is not a scheduler (it is a different switch
// architecture) and is selected through sim::SwitchMode instead.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sched/scheduler.hpp"

namespace lcf::core {

/// Construct a scheduler by its Figure 12 name: "fifo", "pim", "islip",
/// "wfront", "maxsize", "lcf_central", "lcf_central_rr", "lcf_dist",
/// "lcf_dist_rr". Throws std::invalid_argument for unknown names.
std::unique_ptr<sched::Scheduler> make_scheduler(
    std::string_view name, const sched::SchedulerConfig& config = {});

/// True when `name` is accepted by make_scheduler().
bool is_scheduler_name(std::string_view name);

/// All constructible scheduler names, in the paper's Figure 12 legend
/// order (excluding "outbuf", which is a switch mode, and including the
/// "maxsize" reference at the end).
const std::vector<std::string>& scheduler_names();

/// The pre-optimization `*_reference` twins of the LCF schedulers:
/// per-bit transcriptions of the paper's pseudocode, bit-identical in
/// output to their word-parallel counterparts (the equivalence property
/// suite enforces this). Constructible through make_scheduler() and
/// accepted by is_scheduler_name(), but not part of scheduler_names()
/// so sweeps and figure harnesses do not enumerate them.
const std::vector<std::string>& reference_scheduler_names();

/// The nine Figure 12 configurations in legend order, "outbuf" included.
const std::vector<std::string>& figure12_names();

}  // namespace lcf::core
