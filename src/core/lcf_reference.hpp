#pragma once
// Reference (pre-optimization) implementations of the central and
// distributed LCF schedulers: straightforward per-bit transcriptions of
// the paper's pseudocode, kept verbatim from the first working version
// of this library.
//
// The word-parallel schedulers in lcf_central.hpp / lcf_dist.hpp must
// produce bit-identical matchings to these — the equivalence property
// suite (tests/test_sched_equivalence.cpp) pins every optimization to
// the paper's semantics via these twins, and bench_sched_speed reports
// them as the "before" lines of the committed perf baseline. They are
// constructible through the factory under the `*_reference` names but
// are deliberately kept out of scheduler_names() so sweeps and figure
// harnesses do not pay for them.

#include "sched/scheduler.hpp"

#include <cstdint>
#include <vector>

#include "core/lcf_central.hpp"
#include "core/lcf_dist.hpp"
#include "core/precalc.hpp"
#include "util/bitvec.hpp"

namespace lcf::core {

/// Reference central LCF scheduler: per-bit scans, O(n²) per cycle with
/// a rotation modulo per candidate probe (`lcf_central_reference` and
/// the rr variants' `*_reference` twins).
class LcfCentralReferenceScheduler final : public sched::Scheduler {
public:
    explicit LcfCentralReferenceScheduler(const LcfCentralOptions& options = {});

    void reset(std::size_t inputs, std::size_t outputs) override;
    void schedule(const sched::RequestMatrix& requests,
                  sched::Matching& out) override;
    [[nodiscard]] std::string_view name() const noexcept override;

    /// Two-stage precalculated scheduling, mirroring
    /// LcfCentralScheduler::schedule_with_precalc().
    void schedule_with_precalc(const sched::RequestMatrix& requests,
                               const PrecalcSchedule& precalc,
                               MulticastResult& out);

    [[nodiscard]] std::pair<std::size_t, std::size_t> diagonal() const noexcept {
        return {rr_input_, rr_output_};
    }
    void set_diagonal(std::size_t input_offset, std::size_t output_offset) noexcept;

private:
    void run_lcf(const sched::RequestMatrix& requests,
                 const util::BitVec* busy_inputs,
                 const util::BitVec* busy_outputs, sched::Matching& out);
    void advance_diagonal() noexcept;

    LcfCentralOptions options_;
    std::size_t rr_input_ = 0;
    std::size_t rr_output_ = 0;
    std::vector<util::BitVec> scratch_rows_;
    std::vector<std::size_t> nrq_;
};

/// Reference distributed LCF scheduler: the request/grant/accept loops
/// test every (input, output) bit through a rotated index
/// (`lcf_dist_reference` / `lcf_dist_rr_reference`).
class LcfDistReferenceScheduler final : public sched::Scheduler {
public:
    explicit LcfDistReferenceScheduler(const LcfDistOptions& options = {});

    void reset(std::size_t inputs, std::size_t outputs) override;
    void schedule(const sched::RequestMatrix& requests,
                  sched::Matching& out) override;
    [[nodiscard]] std::string_view name() const noexcept override {
        return options_.round_robin ? "lcf_dist_rr_reference"
                                    : "lcf_dist_reference";
    }

    std::size_t iterate(const sched::RequestMatrix& requests,
                        std::size_t iterations, sched::Matching& out) const;

    [[nodiscard]] std::size_t last_iterations() const noexcept override {
        return last_iterations_;
    }
    [[nodiscard]] std::size_t iteration_limit() const noexcept override {
        return options_.iterations;
    }

    void set_rr_position(std::size_t input, std::size_t output) noexcept {
        rr_input_ = input;
        rr_output_ = output;
    }

private:
    LcfDistOptions options_;
    std::size_t rr_input_ = 0;
    std::size_t rr_output_ = 0;
    std::size_t cycle_ = 0;
    std::size_t last_iterations_ = 0;
};

}  // namespace lcf::core
