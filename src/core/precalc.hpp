#pragma once
// Precalculated schedules (§4.3): hosts may pre-schedule connections —
// including multicast fan-outs — ahead of the regular LCF pass. The
// scheduler does not trust the hosts: it verifies the schedule's
// integrity (at most one input per target) and drops conflicting claims.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sched/matching.hpp"
#include "util/bitvec.hpp"

namespace lcf::core {

/// A precalculated schedule: for each input, the set of outputs it claims
/// this slot. A row with more than one bit is a multicast connection.
class PrecalcSchedule {
public:
    PrecalcSchedule() = default;
    /// Empty schedule over `inputs` × `outputs` ports.
    PrecalcSchedule(std::size_t inputs, std::size_t outputs);
    explicit PrecalcSchedule(std::size_t ports)
        : PrecalcSchedule(ports, ports) {}

    [[nodiscard]] std::size_t inputs() const noexcept { return rows_.size(); }
    [[nodiscard]] std::size_t outputs() const noexcept { return outputs_; }

    /// Claim output `output` for input `input`.
    void claim(std::size_t input, std::size_t output) noexcept {
        rows_[input].set(output);
    }
    [[nodiscard]] bool claimed(std::size_t input, std::size_t output) const noexcept {
        return rows_[input].test(output);
    }
    [[nodiscard]] const util::BitVec& row(std::size_t input) const noexcept {
        return rows_[input];
    }
    /// True when no input claims any output.
    [[nodiscard]] bool empty() const noexcept;

private:
    std::vector<util::BitVec> rows_;
    std::size_t outputs_ = 0;
};

/// Result of a two-stage (precalculated + LCF) scheduling cycle.
///
/// `fanout[j]` is the input that drives output j this slot (kUnmatched if
/// idle) — an input may drive several outputs when a multicast connection
/// was admitted. `unicast` holds the strictly one-to-one part (the LCF
/// stage plus unicast precalc rows), `dropped` the precalc claims rejected
/// by the integrity check.
struct MulticastResult {
    std::vector<std::int32_t> fanout;
    sched::Matching unicast;
    std::vector<std::pair<std::size_t, std::size_t>> dropped;

    /// Number of driven outputs.
    [[nodiscard]] std::size_t connections() const noexcept;
    /// True when no two outputs claim conflicting state and unicast is
    /// consistent with fanout.
    [[nodiscard]] bool consistent() const noexcept;
};

}  // namespace lcf::core
