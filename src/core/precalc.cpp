#include "core/precalc.hpp"

namespace lcf::core {

PrecalcSchedule::PrecalcSchedule(std::size_t inputs, std::size_t outputs)
    : rows_(inputs, util::BitVec(outputs)), outputs_(outputs) {}

bool PrecalcSchedule::empty() const noexcept {
    for (const auto& r : rows_) {
        if (r.any()) return false;
    }
    return true;
}

std::size_t MulticastResult::connections() const noexcept {
    std::size_t n = 0;
    for (const auto v : fanout) {
        if (v != sched::kUnmatched) ++n;
    }
    return n;
}

bool MulticastResult::consistent() const noexcept {
    for (std::size_t j = 0; j < fanout.size(); ++j) {
        const std::int32_t i = unicast.outputs() > j ? unicast.input_of(j)
                                                     : sched::kUnmatched;
        if (i != sched::kUnmatched && fanout[j] != i) return false;
    }
    return true;
}

}  // namespace lcf::core
