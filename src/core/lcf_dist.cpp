#include "core/lcf_dist.hpp"

namespace lcf::core {

LcfDistScheduler::LcfDistScheduler(const LcfDistOptions& options)
    : options_(options) {}

void LcfDistScheduler::reset(std::size_t /*inputs*/, std::size_t /*outputs*/) {
    rr_input_ = 0;
    rr_output_ = 0;
    cycle_ = 0;
}

std::size_t LcfDistScheduler::iterate(const sched::RequestMatrix& requests,
                                      std::size_t iterations,
                                      sched::Matching& out) const {
    const std::size_t n_in = requests.inputs();
    const std::size_t n_out = requests.outputs();

    std::vector<std::size_t> nrq(n_in, 0);
    std::vector<std::size_t> ngt(n_out, 0);
    std::vector<std::int32_t> grant_to(n_out, sched::kUnmatched);

    std::size_t executed = 0;
    for (std::size_t iter = 0; iter < iterations; ++iter) {
        ++executed;
        // Request: NRQ of an unmatched initiator = number of its requests
        // to still-unmatched targets (its remaining choices).
        for (std::size_t i = 0; i < n_in; ++i) {
            nrq[i] = 0;
            if (out.input_matched(i)) continue;
            const auto& row = requests.row(i);
            for (std::size_t j = row.find_first(); j != util::BitVec::npos;
                 j = row.find_next(j)) {
                if (!out.output_matched(j)) ++nrq[i];
            }
        }

        // Grant: each unmatched target grants the requester with the
        // lowest NRQ; the rotating chain starting at (cycle_ + j) breaks
        // ties. NGT records how many requests the target saw.
        bool any_grant = false;
        for (std::size_t j = 0; j < n_out; ++j) {
            grant_to[j] = sched::kUnmatched;
            ngt[j] = 0;
            if (out.output_matched(j)) continue;
            std::size_t min_nrq = n_out + 1;
            for (std::size_t k = 0; k < n_in; ++k) {
                const std::size_t i = (cycle_ + j + k) % n_in;
                if (out.input_matched(i) || !requests.get(i, j)) continue;
                ++ngt[j];
                if (nrq[i] < min_nrq) {
                    min_nrq = nrq[i];
                    grant_to[j] = static_cast<std::int32_t>(i);
                }
            }
            any_grant = any_grant || grant_to[j] != sched::kUnmatched;
        }
        if (!any_grant) break;  // converged

        // Accept: each initiator accepts the grant from the target with
        // the lowest NGT; rotating chain starting at (cycle_ + i) breaks
        // ties.
        for (std::size_t i = 0; i < n_in; ++i) {
            if (out.input_matched(i)) continue;
            std::int32_t best = sched::kUnmatched;
            std::size_t min_ngt = n_in + 1;
            for (std::size_t k = 0; k < n_out; ++k) {
                const std::size_t j = (cycle_ + i + k) % n_out;
                if (grant_to[j] != static_cast<std::int32_t>(i)) continue;
                if (ngt[j] < min_ngt) {
                    min_ngt = ngt[j];
                    best = static_cast<std::int32_t>(j);
                }
            }
            if (best != sched::kUnmatched) {
                out.match(i, static_cast<std::size_t>(best));
            }
        }
    }
    return executed;
}

void LcfDistScheduler::schedule(const sched::RequestMatrix& requests,
                                sched::Matching& out) {
    const std::size_t n_in = requests.inputs();
    const std::size_t n_out = requests.outputs();
    out.reset(n_in, n_out);
    last_iterations_ = 0;
    if (n_in == 0 || n_out == 0) return;

    if (options_.round_robin && requests.get(rr_input_, rr_output_)) {
        // The single round-robin position is granted before regular LCF
        // iterations take place (§5).
        out.match(rr_input_, rr_output_);
    }

    last_iterations_ = iterate(requests, options_.iterations, out);

    // Advance per-cycle round-robin state: the RR position walks all n²
    // matrix positions; the tie-break chains rotate by one.
    rr_input_ = (rr_input_ + 1) % n_in;
    if (rr_input_ == 0) rr_output_ = (rr_output_ + 1) % n_out;
    ++cycle_;
}

}  // namespace lcf::core
