#include "core/lcf_dist.hpp"

namespace lcf::core {

namespace {

/// Position of `idx` in the rotating priority chain that starts at
/// `start` (both < n): 0 for the start position itself, n-1 for the one
/// just before it. Replaces the reference's per-candidate `(base + k) % n`
/// scan with one conditional subtraction per set bit.
constexpr std::size_t rotated_rank(std::size_t idx, std::size_t start,
                                   std::size_t n) noexcept {
    return idx >= start ? idx - start : idx + n - start;
}

}  // namespace

LcfDistScheduler::LcfDistScheduler(const LcfDistOptions& options)
    : options_(options) {}

void LcfDistScheduler::reset(std::size_t /*inputs*/, std::size_t /*outputs*/) {
    rr_input_ = 0;
    rr_output_ = 0;
    cycle_ = 0;
}

std::size_t LcfDistScheduler::iterate(const sched::RequestMatrix& requests,
                                      std::size_t iterations,
                                      sched::Matching& out) const {
    const std::size_t n_in = requests.inputs();
    const std::size_t n_out = requests.outputs();

    // Free-port masks: candidates of target j are col(j) ∩ free_inputs,
    // and an initiator's NRQ is one word-parallel row ∩ free_outputs
    // popcount instead of a find_next walk over every request bit.
    util::BitVec free_inputs(n_in);
    util::BitVec free_outputs(n_out);
    for (std::size_t i = 0; i < n_in; ++i) {
        if (!out.input_matched(i)) free_inputs.set(i);
    }
    for (std::size_t j = 0; j < n_out; ++j) {
        if (!out.output_matched(j)) free_outputs.set(j);
    }

    std::vector<std::size_t> nrq(n_in, 0);
    std::vector<std::size_t> ngt(n_out, 0);
    std::vector<std::int32_t> grant_to(n_out, sched::kUnmatched);
    std::vector<std::size_t> granted;  // targets that issued a grant
    granted.reserve(n_out);
    // Per-initiator accept bookkeeping, reset each iteration.
    std::vector<std::int32_t> accept_of(n_in, sched::kUnmatched);
    std::vector<std::size_t> accept_ngt(n_in, 0);
    std::vector<std::size_t> accept_rank(n_in, 0);
    util::BitVec cand(n_in);

    std::size_t executed = 0;
    for (std::size_t iter = 0; iter < iterations; ++iter) {
        ++executed;
        // Request: NRQ of an unmatched initiator = number of its requests
        // to still-unmatched targets (its remaining choices).
        for (const std::size_t i : free_inputs.set_bits()) {
            nrq[i] = requests.row(i).and_count(free_outputs);
        }

        // Grant: each unmatched target grants the requester with the
        // lowest NRQ; the rotating chain starting at (cycle_ + j) breaks
        // ties. NGT records how many requests the target saw. One walk
        // of the candidate set bits replaces the rotated scan over all
        // inputs: the chain order is the (NRQ, rotated rank) minimum.
        granted.clear();
        for (const std::size_t j : free_outputs.set_bits()) {
            cand.assign_and(requests.col(j), free_inputs);
            const std::size_t seen = cand.count();
            if (seen == 0) continue;
            ngt[j] = seen;
            const std::size_t start = (cycle_ + j) % n_in;
            std::size_t best = 0;
            std::size_t best_nrq = n_out + 1;
            std::size_t best_rank = n_in;
            for (const std::size_t i : cand.set_bits()) {
                const std::size_t rank = rotated_rank(i, start, n_in);
                if (nrq[i] < best_nrq ||
                    (nrq[i] == best_nrq && rank < best_rank)) {
                    best = i;
                    best_nrq = nrq[i];
                    best_rank = rank;
                }
            }
            grant_to[j] = static_cast<std::int32_t>(best);
            granted.push_back(j);
        }
        if (granted.empty()) break;  // converged

        // Accept: each initiator accepts the grant from the target with
        // the lowest NGT; rotating chain starting at (cycle_ + i) breaks
        // ties. One pass over the issued grants replaces the per-input
        // scan over all targets.
        for (const std::size_t j : granted) {
            const auto i = static_cast<std::size_t>(grant_to[j]);
            const std::size_t start = (cycle_ + i) % n_out;
            const std::size_t rank = rotated_rank(j, start, n_out);
            if (accept_of[i] == sched::kUnmatched || ngt[j] < accept_ngt[i] ||
                (ngt[j] == accept_ngt[i] && rank < accept_rank[i])) {
                accept_of[i] = static_cast<std::int32_t>(j);
                accept_ngt[i] = ngt[j];
                accept_rank[i] = rank;
            }
        }
        for (const std::size_t j : granted) {
            const auto i = static_cast<std::size_t>(grant_to[j]);
            if (accept_of[i] == static_cast<std::int32_t>(j)) {
                out.match(i, j);
                free_inputs.reset(i);
                free_outputs.reset(j);
            }
        }
        for (const std::size_t j : granted) {  // reset for the next iteration
            accept_of[static_cast<std::size_t>(grant_to[j])] = sched::kUnmatched;
        }
    }
    return executed;
}

void LcfDistScheduler::schedule(const sched::RequestMatrix& requests,
                                sched::Matching& out) {
    const std::size_t n_in = requests.inputs();
    const std::size_t n_out = requests.outputs();
    out.reset(n_in, n_out);
    last_iterations_ = 0;
    if (n_in == 0 || n_out == 0) return;

    if (options_.round_robin && requests.get(rr_input_, rr_output_)) {
        // The single round-robin position is granted before regular LCF
        // iterations take place (§5).
        out.match(rr_input_, rr_output_);
    }

    last_iterations_ = iterate(requests, options_.iterations, out);

    // Advance per-cycle round-robin state: the RR position walks all n²
    // matrix positions; the tie-break chains rotate by one.
    rr_input_ = (rr_input_ + 1) % n_in;
    if (rr_input_ == 0) rr_output_ = (rr_output_ + 1) % n_out;
    ++cycle_;
}

}  // namespace lcf::core
