#include "core/factory.hpp"

#include <stdexcept>

#include "core/lcf_central.hpp"
#include "core/lcf_dist.hpp"
#include "core/lcf_reference.hpp"
#include "sched/fifo_rr.hpp"
#include "sched/ilqf.hpp"
#include "sched/islip.hpp"
#include "sched/maxsize.hpp"
#include "sched/pim.hpp"
#include "sched/rrm.hpp"
#include "sched/wavefront.hpp"

namespace lcf::core {

std::unique_ptr<sched::Scheduler> make_scheduler(
    std::string_view name, const sched::SchedulerConfig& config) {
    if (name == "fifo") return std::make_unique<sched::FifoRrScheduler>();
    if (name == "pim") return std::make_unique<sched::PimScheduler>(config);
    if (name == "islip") return std::make_unique<sched::IslipScheduler>(config);
    if (name == "wfront") return std::make_unique<sched::WavefrontScheduler>();
    if (name == "ilqf") return std::make_unique<sched::IlqfScheduler>(config);
    if (name == "rrm") return std::make_unique<sched::RrmScheduler>(config);
    if (name == "maxsize") return std::make_unique<sched::MaxSizeScheduler>();
    if (name == "lcf_central") {
        return std::make_unique<LcfCentralScheduler>(
            LcfCentralOptions{.variant = RrVariant::kNone});
    }
    if (name == "lcf_central_rr") {
        return std::make_unique<LcfCentralScheduler>(
            LcfCentralOptions{.variant = RrVariant::kInterleaved});
    }
    if (name == "lcf_central_rr_single") {
        return std::make_unique<LcfCentralScheduler>(
            LcfCentralOptions{.variant = RrVariant::kSingle});
    }
    if (name == "lcf_central_rr_first") {
        return std::make_unique<LcfCentralScheduler>(
            LcfCentralOptions{.variant = RrVariant::kDiagonalFirst});
    }
    if (name == "lcf_dist") {
        return std::make_unique<LcfDistScheduler>(LcfDistOptions{
            .iterations = config.iterations, .round_robin = false});
    }
    if (name == "lcf_dist_rr") {
        return std::make_unique<LcfDistScheduler>(LcfDistOptions{
            .iterations = config.iterations, .round_robin = true});
    }
    // Pre-optimization twins: per-bit transcriptions kept as differential
    // oracles for the equivalence suite and as perf-baseline "before"
    // lines. Deliberately absent from scheduler_names() so sweeps and
    // figure harnesses do not enumerate them.
    if (name == "lcf_central_reference") {
        return std::make_unique<LcfCentralReferenceScheduler>(
            LcfCentralOptions{.variant = RrVariant::kNone});
    }
    if (name == "lcf_central_rr_reference") {
        return std::make_unique<LcfCentralReferenceScheduler>(
            LcfCentralOptions{.variant = RrVariant::kInterleaved});
    }
    if (name == "lcf_central_rr_single_reference") {
        return std::make_unique<LcfCentralReferenceScheduler>(
            LcfCentralOptions{.variant = RrVariant::kSingle});
    }
    if (name == "lcf_central_rr_first_reference") {
        return std::make_unique<LcfCentralReferenceScheduler>(
            LcfCentralOptions{.variant = RrVariant::kDiagonalFirst});
    }
    if (name == "lcf_dist_reference") {
        return std::make_unique<LcfDistReferenceScheduler>(LcfDistOptions{
            .iterations = config.iterations, .round_robin = false});
    }
    if (name == "lcf_dist_rr_reference") {
        return std::make_unique<LcfDistReferenceScheduler>(LcfDistOptions{
            .iterations = config.iterations, .round_robin = true});
    }
    std::string message = "unknown scheduler name: " + std::string(name) +
                          " (valid names:";
    for (const auto& valid : scheduler_names()) message += " " + valid;
    throw std::invalid_argument(message + ")");
}

bool is_scheduler_name(std::string_view name) {
    for (const auto& s : scheduler_names()) {
        if (s == name) return true;
    }
    for (const auto& s : reference_scheduler_names()) {
        if (s == name) return true;
    }
    return false;
}

const std::vector<std::string>& reference_scheduler_names() {
    static const std::vector<std::string> names = {
        "lcf_central_reference",           "lcf_central_rr_reference",
        "lcf_central_rr_single_reference", "lcf_central_rr_first_reference",
        "lcf_dist_reference",              "lcf_dist_rr_reference"};
    return names;
}

const std::vector<std::string>& scheduler_names() {
    static const std::vector<std::string> names = {
        "lcf_central",           "lcf_central_rr", "lcf_dist_rr",
        "lcf_dist",              "pim",            "islip",
        "wfront",                "fifo",           "maxsize",
        "lcf_central_rr_single", "lcf_central_rr_first",
        "ilqf",                  "rrm"};
    return names;
}

const std::vector<std::string>& figure12_names() {
    static const std::vector<std::string> names = {
        "lcf_central", "lcf_central_rr", "lcf_dist_rr", "lcf_dist",
        "pim",         "islip",          "wfront",      "fifo",
        "outbuf"};
    return names;
}

}  // namespace lcf::core
