#pragma once
// The distributed Least Choice First scheduler (§5): an iterative
// request / grant / accept matcher in the style of PIM, but with
// least-choice priorities instead of randomness.
//
//   Request — each unmatched initiator requests every target it has a
//             packet for, accompanied by NRQ, the number of requests it
//             is sending.
//   Grant   — each unmatched target grants the request with the lowest
//             NRQ (round-robin tie-break), accompanied by NGT, the
//             number of requests the target received.
//   Accept  — each unmatched initiator accepts the grant with the lowest
//             NGT (round-robin tie-break).
//
// With round-robin enabled (`lcf_dist_rr`), one rotating position of the
// request matrix is granted before the iterations begin, bounding the
// time until any persistent request is served.

#include "sched/scheduler.hpp"

#include <cstdint>
#include <vector>

namespace lcf::core {

/// Configuration of the distributed LCF scheduler.
struct LcfDistOptions {
    /// Request/grant/accept iterations per scheduling cycle (paper: 4).
    std::size_t iterations = 4;
    /// Pre-match the rotating round-robin position each cycle
    /// (`lcf_dist_rr`).
    bool round_robin = false;
};

/// Distributed iterative LCF scheduler (`lcf_dist` / `lcf_dist_rr`).
///
/// NRQ counts an initiator's requests to still-unmatched targets (matched
/// targets cannot grant, so they are no longer "choices"); symmetrically
/// NGT counts requests a target received in the current iteration. The
/// paper does not pin down the round-robin pointer update rule; we rotate
/// every per-port tie-break pointer by one position each scheduling
/// cycle, mirroring the hardware's PRIO shift registers (§4.2).
///
/// Implementation: free-input/free-output BitVecs turn the NRQ
/// recomputation into one row ∩ free_outputs popcount per initiator, and
/// the grant/accept selections into walks over candidate set bits with a
/// rotated-rank tie-break — no per-bit `requests.get(i, j)` probing and
/// no `%` in the inner loops. Bit-identical to
/// LcfDistReferenceScheduler (enforced by the equivalence suite).
class LcfDistScheduler final : public sched::Scheduler {
public:
    explicit LcfDistScheduler(const LcfDistOptions& options = {});

    void reset(std::size_t inputs, std::size_t outputs) override;
    void schedule(const sched::RequestMatrix& requests,
                  sched::Matching& out) override;
    [[nodiscard]] std::string_view name() const noexcept override {
        return options_.round_robin ? "lcf_dist_rr" : "lcf_dist";
    }

    /// Run up to `iterations` iterations on `requests` starting from the
    /// partial matching `out` (exposed so tests can single-step the
    /// Figure 9 example). Does not advance round-robin state. Returns
    /// the number of iterations actually executed (fewer than the budget
    /// when the matcher converges early).
    std::size_t iterate(const sched::RequestMatrix& requests,
                        std::size_t iterations, sched::Matching& out) const;

    [[nodiscard]] std::size_t last_iterations() const noexcept override {
        return last_iterations_;
    }
    [[nodiscard]] std::size_t iteration_limit() const noexcept override {
        return options_.iterations;
    }

    /// Current round-robin position (exposed for tests).
    [[nodiscard]] std::pair<std::size_t, std::size_t> rr_position() const noexcept {
        return {rr_input_, rr_output_};
    }
    void set_rr_position(std::size_t input, std::size_t output) noexcept {
        rr_input_ = input;
        rr_output_ = output;
    }

private:
    LcfDistOptions options_;
    std::size_t rr_input_ = 0;
    std::size_t rr_output_ = 0;
    std::size_t cycle_ = 0;  // drives tie-break pointer rotation
    std::size_t last_iterations_ = 0;
};

}  // namespace lcf::core
