#pragma once
// The central Least Choice First scheduler — the paper's Figure 2
// pseudocode, implemented verbatim.
//
// Outputs (resources) are scheduled one after another. For each output the
// input (requester) with the *fewest outstanding requests* wins — an input
// with few requests has few choices, so serving it first maximises the
// total number of grants. Ties are broken by a rotating priority chain.
// With round-robin enabled (`lcf_central_rr`), the request at the rotating
// diagonal position is granted unconditionally before LCF priorities are
// consulted, which yields a hard fairness floor: every request position
// [i, j] is the very first scheduling decision once every n² cycles, so a
// persistently backlogged VOQ receives at least b/n² of its output's
// bandwidth.

#include "sched/scheduler.hpp"

#include <cstdint>
#include <vector>

#include "core/precalc.hpp"
#include "util/bitvec.hpp"

namespace lcf::core {

/// Round-robin flavour of the central scheduler — §3 discusses a whole
/// range of fairness/throughput trade-offs: "Variations of the
/// round-robin scheduler are possible in that a single position, a row
/// or column are covered every scheduling cycle", with guarantees
/// ranging from 0 (pure LCF) to b/n (diagonal scheduled before anything
/// else).
enum class RrVariant {
    /// Pure LCF (`lcf_central`): no position ever overrides the
    /// priorities; only the rotating tie-break chain remains. Bandwidth
    /// floor: none (starvation possible).
    kNone,
    /// Only the diagonal's anchor position [I, J] — the first scheduling
    /// decision of the cycle — wins unconditionally. Floor: b/n².
    kSingle,
    /// Figure 2's algorithm (`lcf_central_rr`): each diagonal position
    /// wins its column when that column is scheduled, unless its input
    /// was already consumed by an earlier column. Floor: b/n².
    kInterleaved,
    /// The whole diagonal is granted before any LCF decision is made.
    /// Floor: b/n — the §3 upper bound, bought with the largest
    /// throughput sacrifice.
    kDiagonalFirst,
};

/// Configuration of the central LCF scheduler.
struct LcfCentralOptions {
    RrVariant variant = RrVariant::kInterleaved;
};

/// Central LCF scheduler (`lcf_central` / `lcf_central_rr`).
class LcfCentralScheduler final : public sched::Scheduler {
public:
    explicit LcfCentralScheduler(const LcfCentralOptions& options = {});

    void reset(std::size_t inputs, std::size_t outputs) override;
    void schedule(const sched::RequestMatrix& requests,
                  sched::Matching& out) override;
    [[nodiscard]] std::string_view name() const noexcept override;

    /// Two-stage scheduling with a precalculated (possibly multicast)
    /// schedule, as used by Clint for real-time and multicast traffic
    /// (§4.3). Stage 1 admits the precalculated connections after an
    /// integrity check (conflicting claims on one target: one accepted,
    /// the rest dropped); stage 2 runs regular LCF over the remaining
    /// requests and free ports. Unicast results also appear in
    /// `out.unicast`; multicast fan-outs only in `out.fanout`.
    void schedule_with_precalc(const sched::RequestMatrix& requests,
                               const PrecalcSchedule& precalc,
                               MulticastResult& out);

    /// Current round-robin diagonal anchor [I, J] (exposed for the
    /// hardware-model equivalence tests).
    [[nodiscard]] std::pair<std::size_t, std::size_t> diagonal() const noexcept {
        return {rr_input_, rr_output_};
    }
    /// Force the diagonal anchor (tests transcribing the paper's figures).
    void set_diagonal(std::size_t input_offset, std::size_t output_offset) noexcept;

private:
    /// Core of Figure 2, shared by schedule() and stage 2 of
    /// schedule_with_precalc(). `busy_*` marks ports consumed by stage 1.
    ///
    /// Word-parallel formulation: instead of consumable per-bit request
    /// copies, a free-inputs bit vector plus the request matrix's lazily
    /// maintained column view reduce each output's candidate set to one
    /// masked AND (`col ∩ free_inputs`); the winner is the candidate
    /// minimizing (NRQ, rotated rank) in one walk of the candidate
    /// word's set bits — exactly the rotating tie-break chain, with no
    /// per-input scan and no `%` in the inner loop. NRQ is maintained
    /// incrementally: each grant decrements the consumed column's
    /// remaining candidates. Produces bit-identical matchings to
    /// LcfCentralReferenceScheduler (enforced by the equivalence
    /// property suite).
    void run_lcf(const sched::RequestMatrix& requests,
                 const util::BitVec* busy_inputs,
                 const util::BitVec* busy_outputs, sched::Matching& out);
    void advance_diagonal() noexcept;
    void ensure_scratch(std::size_t n_in, std::size_t n_out);
    /// Grant (input, col). Precondition: cand_ holds col's candidate set
    /// (col's requesters ∩ free inputs), winner included.
    void grant(std::size_t input, std::size_t col, sched::Matching& out);

    LcfCentralOptions options_;
    std::size_t rr_input_ = 0;   // I in the pseudocode
    std::size_t rr_output_ = 0;  // J in the pseudocode
    std::size_t n_in_ = 0;       // geometry the scratch is sized for
    std::size_t n_out_ = 0;
    // Scratch reused across slots.
    util::BitVec free_inputs_;         // inputs still competing
    util::BitVec cand_;                // current column ∩ free_inputs_
    util::BitVec masked_row_;          // precalc path: row & ~busy_outputs
    std::vector<std::size_t> nrq_;     // remaining choices per free input
    // schedule_with_precalc() stage-1 scratch.
    std::vector<util::BitVec> precalc_cols_;
    std::vector<std::size_t> rot_scratch_;
};

}  // namespace lcf::core
