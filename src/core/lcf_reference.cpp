#include "core/lcf_reference.hpp"

#include <cassert>

namespace lcf::core {

// ---------------------------------------------------------------------------
// Central reference — verbatim seed implementation of Figure 2.

LcfCentralReferenceScheduler::LcfCentralReferenceScheduler(
    const LcfCentralOptions& options)
    : options_(options) {}

std::string_view LcfCentralReferenceScheduler::name() const noexcept {
    switch (options_.variant) {
        case RrVariant::kNone:
            return "lcf_central_reference";
        case RrVariant::kSingle:
            return "lcf_central_rr_single_reference";
        case RrVariant::kInterleaved:
            return "lcf_central_rr_reference";
        case RrVariant::kDiagonalFirst:
            return "lcf_central_rr_first_reference";
    }
    return "lcf_central_reference";
}

void LcfCentralReferenceScheduler::reset(std::size_t inputs,
                                         std::size_t outputs) {
    rr_input_ = 0;
    rr_output_ = 0;
    scratch_rows_.assign(inputs, util::BitVec(outputs));
    nrq_.assign(inputs, 0);
}

void LcfCentralReferenceScheduler::set_diagonal(
    std::size_t input_offset, std::size_t output_offset) noexcept {
    rr_input_ = input_offset;
    rr_output_ = output_offset;
}

void LcfCentralReferenceScheduler::advance_diagonal() noexcept {
    const std::size_t n_in = scratch_rows_.size();
    const std::size_t n_out = scratch_rows_.empty() ? 0 : scratch_rows_[0].size();
    if (n_in == 0 || n_out == 0) return;
    rr_input_ = (rr_input_ + 1) % n_in;
    if (rr_input_ == 0) rr_output_ = (rr_output_ + 1) % n_out;
}

void LcfCentralReferenceScheduler::schedule(const sched::RequestMatrix& requests,
                                            sched::Matching& out) {
    run_lcf(requests, nullptr, nullptr, out);
    advance_diagonal();
}

void LcfCentralReferenceScheduler::run_lcf(const sched::RequestMatrix& requests,
                                           const util::BitVec* busy_inputs,
                                           const util::BitVec* busy_outputs,
                                           sched::Matching& out) {
    const std::size_t n_in = requests.inputs();
    const std::size_t n_out = requests.outputs();
    out.reset(n_in, n_out);
    if (n_in == 0 || n_out == 0) return;

    if (scratch_rows_.size() != n_in ||
        (n_in > 0 && scratch_rows_[0].size() != n_out)) {
        scratch_rows_.assign(n_in, util::BitVec(n_out));
        nrq_.assign(n_in, 0);
    }

    // Copy the request matrix (the algorithm consumes rows as it grants)
    // and mask away ports already consumed by a precalculated stage.
    for (std::size_t i = 0; i < n_in; ++i) {
        scratch_rows_[i] = requests.row(i);
        if (busy_inputs != nullptr && busy_inputs->test(i)) {
            scratch_rows_[i].clear();
        } else if (busy_outputs != nullptr) {
            scratch_rows_[i].subtract(*busy_outputs);
        }
        nrq_[i] = scratch_rows_[i].count();
    }

    // Grant a pair and maintain the NRQ bookkeeping: the winner's row
    // leaves the competition and requests for the consumed output stop
    // counting as choices.
    const auto grant = [&](std::size_t input, std::size_t col) {
        out.match(input, col);
        scratch_rows_[input].clear();
        nrq_[input] = 0;
        for (std::size_t i = 0; i < n_in; ++i) {
            if (scratch_rows_[i].test(col)) {
                assert(nrq_[i] > 0);
                --nrq_[i];
            }
        }
    };

    // Diagonal-first variant: the entire round-robin diagonal is
    // admitted before any LCF priority is consulted (§3's b/n upper
    // bound).
    if (options_.variant == RrVariant::kDiagonalFirst) {
        for (std::size_t res = 0; res < n_out; ++res) {
            const std::size_t col = (rr_output_ + res) % n_out;
            if (busy_outputs != nullptr && busy_outputs->test(col)) continue;
            const std::size_t pos_input = (rr_input_ + res) % n_in;
            if (scratch_rows_[pos_input].test(col)) {
                grant(pos_input, col);
            }
        }
    }

    // Allocate resources one after the other (Figure 2 main loop).
    for (std::size_t res = 0; res < n_out; ++res) {
        const std::size_t col = (rr_output_ + res) % n_out;
        if (busy_outputs != nullptr && busy_outputs->test(col)) continue;
        if (out.output_matched(col)) continue;  // diagonal-first stage

        std::int32_t gnt = sched::kUnmatched;
        const std::size_t rr_pos_input = (rr_input_ + res) % n_in;
        const bool rr_wins =
            (options_.variant == RrVariant::kInterleaved ||
             (options_.variant == RrVariant::kSingle && res == 0)) &&
            scratch_rows_[rr_pos_input].test(col);
        if (rr_wins) {
            // The round-robin position wins unconditionally.
            gnt = static_cast<std::int32_t>(rr_pos_input);
        } else {
            // LCF: grant the requester with the fewest outstanding
            // requests; the scan order starting at the round-robin offset
            // realises the rotating tie-break priority chain.
            std::size_t min_nrq = n_out + 1;
            for (std::size_t k = 0; k < n_in; ++k) {
                const std::size_t i = (k + rr_input_ + res) % n_in;
                if (scratch_rows_[i].test(col) && nrq_[i] < min_nrq) {
                    gnt = static_cast<std::int32_t>(i);
                    min_nrq = nrq_[i];
                }
            }
        }

        if (gnt != sched::kUnmatched) {
            grant(static_cast<std::size_t>(gnt), col);
        }
    }
}

void LcfCentralReferenceScheduler::schedule_with_precalc(
    const sched::RequestMatrix& requests, const PrecalcSchedule& precalc,
    MulticastResult& out) {
    const std::size_t n_in = requests.inputs();
    const std::size_t n_out = requests.outputs();
    assert(precalc.inputs() == n_in && precalc.outputs() == n_out);

    out.fanout.assign(n_out, sched::kUnmatched);
    out.dropped.clear();

    // Stage 1: integrity-check and admit the precalculated schedule.
    util::BitVec busy_inputs(n_in);
    util::BitVec busy_outputs(n_out);
    for (std::size_t j = 0; j < n_out; ++j) {
        for (std::size_t k = 0; k < n_in; ++k) {
            const std::size_t i = (rr_input_ + k) % n_in;
            if (!precalc.claimed(i, j)) continue;
            if (out.fanout[j] == sched::kUnmatched) {
                out.fanout[j] = static_cast<std::int32_t>(i);
                busy_outputs.set(j);
            } else {
                out.dropped.emplace_back(i, j);
            }
        }
    }
    for (std::size_t j = 0; j < n_out; ++j) {
        if (out.fanout[j] != sched::kUnmatched) {
            busy_inputs.set(static_cast<std::size_t>(out.fanout[j]));
        }
    }

    // Stage 2: regular LCF over the remaining requests and free ports.
    run_lcf(requests, &busy_inputs, &busy_outputs, out.unicast);
    for (std::size_t j = 0; j < n_out; ++j) {
        if (out.unicast.input_of(j) != sched::kUnmatched) {
            out.fanout[j] = out.unicast.input_of(j);
        }
    }
    advance_diagonal();
}

// ---------------------------------------------------------------------------
// Distributed reference — verbatim seed implementation of §5.

LcfDistReferenceScheduler::LcfDistReferenceScheduler(
    const LcfDistOptions& options)
    : options_(options) {}

void LcfDistReferenceScheduler::reset(std::size_t /*inputs*/,
                                      std::size_t /*outputs*/) {
    rr_input_ = 0;
    rr_output_ = 0;
    cycle_ = 0;
}

std::size_t LcfDistReferenceScheduler::iterate(
    const sched::RequestMatrix& requests, std::size_t iterations,
    sched::Matching& out) const {
    const std::size_t n_in = requests.inputs();
    const std::size_t n_out = requests.outputs();

    std::vector<std::size_t> nrq(n_in, 0);
    std::vector<std::size_t> ngt(n_out, 0);
    std::vector<std::int32_t> grant_to(n_out, sched::kUnmatched);

    std::size_t executed = 0;
    for (std::size_t iter = 0; iter < iterations; ++iter) {
        ++executed;
        // Request: NRQ of an unmatched initiator = number of its requests
        // to still-unmatched targets (its remaining choices).
        for (std::size_t i = 0; i < n_in; ++i) {
            nrq[i] = 0;
            if (out.input_matched(i)) continue;
            const auto& row = requests.row(i);
            for (std::size_t j = row.find_first(); j != util::BitVec::npos;
                 j = row.find_next(j)) {
                if (!out.output_matched(j)) ++nrq[i];
            }
        }

        // Grant: each unmatched target grants the requester with the
        // lowest NRQ; the rotating chain starting at (cycle_ + j) breaks
        // ties. NGT records how many requests the target saw.
        bool any_grant = false;
        for (std::size_t j = 0; j < n_out; ++j) {
            grant_to[j] = sched::kUnmatched;
            ngt[j] = 0;
            if (out.output_matched(j)) continue;
            std::size_t min_nrq = n_out + 1;
            for (std::size_t k = 0; k < n_in; ++k) {
                const std::size_t i = (cycle_ + j + k) % n_in;
                if (out.input_matched(i) || !requests.get(i, j)) continue;
                ++ngt[j];
                if (nrq[i] < min_nrq) {
                    min_nrq = nrq[i];
                    grant_to[j] = static_cast<std::int32_t>(i);
                }
            }
            any_grant = any_grant || grant_to[j] != sched::kUnmatched;
        }
        if (!any_grant) break;  // converged

        // Accept: each initiator accepts the grant from the target with
        // the lowest NGT; rotating chain starting at (cycle_ + i) breaks
        // ties.
        for (std::size_t i = 0; i < n_in; ++i) {
            if (out.input_matched(i)) continue;
            std::int32_t best = sched::kUnmatched;
            std::size_t min_ngt = n_in + 1;
            for (std::size_t k = 0; k < n_out; ++k) {
                const std::size_t j = (cycle_ + i + k) % n_out;
                if (grant_to[j] != static_cast<std::int32_t>(i)) continue;
                if (ngt[j] < min_ngt) {
                    min_ngt = ngt[j];
                    best = static_cast<std::int32_t>(j);
                }
            }
            if (best != sched::kUnmatched) {
                out.match(i, static_cast<std::size_t>(best));
            }
        }
    }
    return executed;
}

void LcfDistReferenceScheduler::schedule(const sched::RequestMatrix& requests,
                                         sched::Matching& out) {
    const std::size_t n_in = requests.inputs();
    const std::size_t n_out = requests.outputs();
    out.reset(n_in, n_out);
    last_iterations_ = 0;
    if (n_in == 0 || n_out == 0) return;

    if (options_.round_robin && requests.get(rr_input_, rr_output_)) {
        // The single round-robin position is granted before regular LCF
        // iterations take place (§5).
        out.match(rr_input_, rr_output_);
    }

    last_iterations_ = iterate(requests, options_.iterations, out);

    rr_input_ = (rr_input_ + 1) % n_in;
    if (rr_input_ == 0) rr_output_ = (rr_output_ + 1) % n_out;
    ++cycle_;
}

}  // namespace lcf::core
