#include "analysis/replicate.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace lcf::analysis {

double t_critical_95(std::size_t dof) {
    // Two-sided 95 % quantiles of Student's t.
    static constexpr double kTable[] = {
        0,     12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
        2.306, 2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
        2.120, 2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
        2.064, 2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
    if (dof == 0) {
        throw std::invalid_argument("t critical value needs dof >= 1");
    }
    if (dof <= 30) return kTable[dof];
    return 1.960;
}

namespace {

Estimate summarise(const util::RunningStat& stat) {
    Estimate e;
    e.replications = stat.count();
    e.mean = stat.mean();
    if (stat.count() > 1) {
        const double se =
            stat.stddev() / std::sqrt(static_cast<double>(stat.count()));
        e.half_width = t_critical_95(stat.count() - 1) * se;
    }
    return e;
}

}  // namespace

ReplicatedResult replicate(std::string_view config_name,
                           const sim::SimConfig& config,
                           std::string_view traffic_name, double load,
                           std::size_t replications,
                           const sched::SchedulerConfig& sched_config,
                           std::size_t threads) {
    if (replications == 0) {
        throw std::invalid_argument("replications must be positive");
    }
    ReplicatedResult result;
    result.runs.resize(replications);

    util::parallel_for_n(threads, 0, replications, [&](std::size_t k) {
        sim::SimConfig run_config = config;
        run_config.seed = util::derive_seed(config.seed, 1000 + k);
        sched::SchedulerConfig run_sched = sched_config;
        run_sched.seed = util::derive_seed(sched_config.seed, 2000 + k);
        result.runs[k] = sim::run_named(config_name, run_config, traffic_name,
                                        load, run_sched);
    });

    util::RunningStat delay, throughput;
    for (const auto& r : result.runs) {
        delay.add(r.mean_delay);
        throughput.add(r.throughput);
    }
    result.mean_delay = summarise(delay);
    result.throughput = summarise(throughput);
    return result;
}

}  // namespace lcf::analysis
