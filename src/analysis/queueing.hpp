#pragma once
// Closed-form queueing-theory reference results for the switch
// architectures the paper simulates. The test suite pins the simulator
// against these curves, so a regression in queue plumbing or delay
// accounting shows up as divergence from theory, not just as a changed
// number.

#include <cstddef>

namespace lcf::analysis {

/// Mean queuing delay (in slots, including the 1-slot transmission) of
/// one output of an ideal output-buffered n-port switch under i.i.d.
/// Bernoulli arrivals with uniform destinations at per-input load rho.
///
/// The output queue is discrete-time with binomial(n, rho/n) arrivals
/// and unit service; its mean wait is the classic
///     W = (n-1)/n * rho / (2 (1 - rho))
/// (Karol, Hluchyj & Morgan 1987, eq. for output queuing), to which we
/// add 1 slot of transmission time to match SimResult::mean_delay's
/// generation-to-link-crossing definition.
[[nodiscard]] double outbuf_mean_delay(std::size_t ports, double load);

/// Saturation throughput of a FIFO input-buffered switch (head-of-line
/// blocking) as n -> infinity: 2 - sqrt(2) ~= 0.586 (Karol et al.).
[[nodiscard]] double fifo_saturation_limit() noexcept;

/// Saturation throughput of a FIFO input-buffered switch with n ports
/// (exact small-n values from Karol et al.'s Markov analysis for
/// n <= 8, asymptote beyond).
[[nodiscard]] double fifo_saturation(std::size_t ports) noexcept;

/// Expected iterations for PIM to converge on an n-port switch:
/// O(log2 n) + O(1) (Anderson et al. 1993 prove E[iters] < log2 n + 4/3).
[[nodiscard]] double pim_expected_iterations(std::size_t ports);

/// The paper's fairness floor: fraction of one output's bandwidth
/// guaranteed to any persistent request under the Figure 2 round-robin
/// diagonal — 1/n².
[[nodiscard]] double lcf_rr_bandwidth_floor(std::size_t ports);

}  // namespace lcf::analysis
