#pragma once
// Replicated simulation runs with confidence intervals: the statistical
// layer the benchmark harnesses use when a single seeded run is not
// enough (crossover localisation, small effect sizes).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sched/scheduler.hpp"
#include "sim/runner.hpp"

namespace lcf::analysis {

/// Point estimate with a symmetric confidence half-width.
struct Estimate {
    double mean = 0.0;
    double half_width = 0.0;  ///< 95 % CI is mean ± half_width
    std::size_t replications = 0;

    [[nodiscard]] double lower() const noexcept { return mean - half_width; }
    [[nodiscard]] double upper() const noexcept { return mean + half_width; }
    /// True when the two intervals do not overlap (a conservative
    /// significance check for orderings).
    [[nodiscard]] bool clearly_below(const Estimate& other) const noexcept {
        return upper() < other.lower();
    }
};

/// Aggregated replicated-run results.
struct ReplicatedResult {
    Estimate mean_delay;
    Estimate throughput;
    std::vector<sim::SimResult> runs;  ///< per-seed raw results
};

/// Run `replications` copies of the given Figure 12 configuration with
/// seeds derived from config.seed, in parallel, and summarise delay and
/// throughput with 95 % confidence intervals (Student t for small
/// sample counts).
ReplicatedResult replicate(std::string_view config_name,
                           const sim::SimConfig& config,
                           std::string_view traffic_name, double load,
                           std::size_t replications,
                           const sched::SchedulerConfig& sched_config = {},
                           std::size_t threads = 0);

/// Two-sided 95 % Student-t critical value for `dof` degrees of freedom
/// (exact table through 30, normal approximation beyond).
[[nodiscard]] double t_critical_95(std::size_t dof);

}  // namespace lcf::analysis
