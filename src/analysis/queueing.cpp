#include "analysis/queueing.hpp"

#include <cmath>
#include <stdexcept>

namespace lcf::analysis {

double outbuf_mean_delay(std::size_t ports, double load) {
    if (ports == 0) throw std::invalid_argument("ports must be positive");
    if (load < 0.0 || load >= 1.0) {
        throw std::invalid_argument("load must be in [0, 1) for a finite mean");
    }
    const auto n = static_cast<double>(ports);
    const double wait = (n - 1.0) / n * load / (2.0 * (1.0 - load));
    return wait + 1.0;
}

double fifo_saturation_limit() noexcept { return 2.0 - std::sqrt(2.0); }

double fifo_saturation(std::size_t ports) noexcept {
    // Exact values from Karol/Hluchyj/Morgan (Table I) for small n; the
    // sequence decreases monotonically to 2 - sqrt(2).
    switch (ports) {
        case 0:
        case 1:
            return 1.0;
        case 2:
            return 0.75;
        case 3:
            return 0.6825;
        case 4:
            return 0.6553;
        case 5:
            return 0.6399;
        case 6:
            return 0.6302;
        case 7:
            return 0.6234;
        case 8:
            return 0.6184;
        default:
            return fifo_saturation_limit();
    }
}

double pim_expected_iterations(std::size_t ports) {
    if (ports == 0) throw std::invalid_argument("ports must be positive");
    return std::log2(static_cast<double>(ports)) + 4.0 / 3.0;
}

double lcf_rr_bandwidth_floor(std::size_t ports) {
    if (ports == 0) throw std::invalid_argument("ports must be positive");
    const auto n = static_cast<double>(ports);
    return 1.0 / (n * n);
}

}  // namespace lcf::analysis
