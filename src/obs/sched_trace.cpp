#include "obs/sched_trace.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "util/csv.hpp"

namespace lcf::obs {

StarvationAges::StarvationAges(std::size_t inputs, std::size_t outputs) {
    reset(inputs, outputs);
}

void StarvationAges::reset(std::size_t inputs, std::size_t outputs) {
    inputs_ = inputs;
    outputs_ = outputs;
    ages_.assign(inputs * outputs, 0);
    high_watermark_ = 0;
}

std::uint64_t StarvationAges::observe(const sched::RequestMatrix& requests,
                                      const sched::Matching& matching) {
    assert(requests.inputs() == inputs_ && requests.outputs() == outputs_);
    std::uint64_t worst = 0;
    for (std::size_t i = 0; i < inputs_; ++i) {
        const std::int32_t granted = matching.output_of(i);
        const auto& row = requests.row(i);
        for (std::size_t j = 0; j < outputs_; ++j) {
            auto& age = ages_[i * outputs_ + j];
            if (!row.test(j) || granted == static_cast<std::int32_t>(j)) {
                age = 0;
            } else {
                worst = std::max(worst, ++age);
            }
        }
    }
    high_watermark_ = std::max(high_watermark_, worst);
    return worst;
}

std::uint64_t StarvationAges::max_age() const noexcept {
    std::uint64_t worst = 0;
    for (const auto a : ages_) worst = std::max(worst, a);
    return worst;
}

SchedTrace::SchedTrace(std::size_t inputs, std::size_t outputs,
                       std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
    reset(inputs, outputs);
}

void SchedTrace::reset(std::size_t inputs, std::size_t outputs) {
    inputs_ = inputs;
    outputs_ = outputs;
    recorded_ = 0;
    ring_.clear();
    ring_.resize(capacity_);
    grant_counts_.assign(inputs * outputs, 0);
    ages_.reset(inputs, outputs);
    counters_ = SchedCounters{};
}

void SchedTrace::record(std::uint64_t cycle,
                        const sched::RequestMatrix& requests,
                        const sched::Matching& matching) {
    assert(requests.inputs() == inputs_ && requests.outputs() == outputs_);
    const std::uint64_t request_bits = requests.total();
    const std::uint64_t granted = matching.size();
    counters_.observe_cycle(request_bits, granted);
    const std::uint64_t worst = ages_.observe(requests, matching);
    counters_.max_starvation_age =
        std::max(counters_.max_starvation_age, worst);

    TraceRecord& rec = ring_[recorded_ % capacity_];
    rec.cycle = cycle;
    rec.requests = static_cast<std::uint32_t>(request_bits);
    rec.granted = static_cast<std::uint32_t>(granted);
    rec.max_age = static_cast<std::uint32_t>(worst);
    rec.grant_of_output.assign(outputs_, sched::kUnmatched);
    for (std::size_t j = 0; j < outputs_; ++j) {
        const std::int32_t i = matching.input_of(j);
        rec.grant_of_output[j] = i;
        if (i != sched::kUnmatched) {
            ++grant_counts_[static_cast<std::size_t>(i) * outputs_ + j];
        }
    }
    ++recorded_;
}

const TraceRecord& SchedTrace::at(std::size_t k) const noexcept {
    assert(k < size());
    const std::size_t oldest =
        recorded_ <= capacity_ ? 0 : recorded_ % capacity_;
    return ring_[(oldest + k) % capacity_];
}

void SchedTrace::export_csv(std::ostream& out) const {
    util::CsvWriter csv(out);
    csv.row("cycle", "requests", "granted", "max_starvation_age", "matching");
    for (std::size_t k = 0; k < size(); ++k) {
        const TraceRecord& rec = at(k);
        std::string pairs;
        for (std::size_t j = 0; j < rec.grant_of_output.size(); ++j) {
            if (rec.grant_of_output[j] == sched::kUnmatched) continue;
            if (!pairs.empty()) pairs += ' ';
            pairs += std::to_string(rec.grant_of_output[j]);
            pairs += "->";
            pairs += std::to_string(j);
        }
        csv.row(rec.cycle, rec.requests, rec.granted, rec.max_age, pairs);
    }
}

void SchedTrace::export_jsonl(std::ostream& out) const {
    for (std::size_t k = 0; k < size(); ++k) {
        const TraceRecord& rec = at(k);
        out << "{\"cycle\":" << rec.cycle << ",\"requests\":" << rec.requests
            << ",\"granted\":" << rec.granted
            << ",\"max_starvation_age\":" << rec.max_age << ",\"grants\":[";
        bool first = true;
        for (std::size_t j = 0; j < rec.grant_of_output.size(); ++j) {
            if (rec.grant_of_output[j] == sched::kUnmatched) continue;
            if (!first) out << ',';
            out << '[' << rec.grant_of_output[j] << ',' << j << ']';
            first = false;
        }
        out << "]}\n";
    }
}

}  // namespace lcf::obs
