#pragma once
// Cycle-level invariant checking for switch schedulers. When enabled
// (SimConfig::paranoid, BulkChannelConfig::paranoid, or directly in a
// test), every scheduling cycle is validated against the properties the
// paper's claims rest on:
//
//   1. the matching is a valid partial permutation (the two direction
//      maps are mutually consistent and no port appears twice),
//   2. every grant is backed by a request,
//   3. the request matrix's maintained per-row counts (NRQ) and column
//      counts (NGT) equal counts recomputed bit by bit from scratch,
//   4. for the rotating-diagonal LCF variants, a continuously asserted
//      request is granted within n² cycles (§3's fairness guarantee),
//   5. iteration-limited matchers never exceed their configured budget.
//
// The checker deliberately re-derives everything from first principles
// instead of calling Matching::valid_for() — an invariant checker that
// trusts the code under test is no net.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/sched_trace.hpp"
#include "sched/matching.hpp"
#include "sched/request_matrix.hpp"

namespace lcf::obs {

/// Checker configuration. options_for() derives the right settings from
/// a scheduler's registry name.
struct ParanoidOptions {
    /// Throw std::logic_error on the first violation (the default: fail
    /// fast and loud). When false, violations are recorded and counted
    /// instead — the mode the long-running sweeps use.
    bool throw_on_violation = true;
    /// Enforce invariant 4. Only meaningful for schedulers that promise
    /// the rotating-diagonal guarantee.
    bool check_diagonal_fairness = false;
    /// Cycle budget for invariant 4; 0 derives n_in * n_out at reset().
    std::uint64_t fairness_window = 0;
    /// Budget for invariant 5; 0 disables the check.
    std::size_t iteration_budget = 0;
};

/// Per-cycle scheduler invariant checker.
class ParanoidChecker {
public:
    explicit ParanoidChecker(const ParanoidOptions& options = {});

    /// Options appropriate for the named scheduler: diagonal fairness on
    /// for the rotating-diagonal central variants ("lcf_central_rr",
    /// "lcf_central_rr_single", "lcf_central_rr_first"), iteration
    /// budget set for the iterative matchers ("pim", "islip", "lcf_dist",
    /// "lcf_dist_rr") when `iterations` is nonzero.
    static ParanoidOptions options_for(std::string_view scheduler_name,
                                       std::size_t iterations);

    /// Prepare for a run over an inputs × outputs switch.
    void reset(std::size_t inputs, std::size_t outputs);

    /// Validate one scheduling cycle (invariants 1–4). Returns the
    /// number of new violations (always 0 when throwing is enabled —
    /// the first violation throws).
    std::size_t check_cycle(const sched::RequestMatrix& requests,
                            const sched::Matching& matching);

    /// Validate invariant 5 for the cycle just checked: `used` is the
    /// number of iterations the scheduler reports for its last
    /// schedule() call. No-op when the budget is 0.
    std::size_t check_iterations(std::size_t used);

    /// All violation messages recorded so far (empty when throwing).
    [[nodiscard]] const std::vector<std::string>& violations()
        const noexcept {
        return violations_;
    }
    [[nodiscard]] std::uint64_t violation_count() const noexcept {
        return violation_count_;
    }
    /// Cycles validated since reset().
    [[nodiscard]] std::uint64_t cycles_checked() const noexcept {
        return cycles_checked_;
    }
    /// Worst continuously-denied streak seen so far (invariant 4's
    /// measured quantity; tracked even when the fairness check is off).
    [[nodiscard]] std::uint64_t max_starvation_age() const noexcept {
        return ages_.high_watermark();
    }
    [[nodiscard]] const ParanoidOptions& options() const noexcept {
        return options_;
    }

private:
    void violation(const std::string& message);

    ParanoidOptions options_;
    std::size_t inputs_ = 0;
    std::size_t outputs_ = 0;
    std::uint64_t fairness_window_ = 0;
    StarvationAges ages_;
    std::uint64_t cycles_checked_ = 0;
    std::uint64_t violation_count_ = 0;
    std::vector<std::string> violations_;
};

}  // namespace lcf::obs
