#pragma once
// Per-cycle scheduler event sink: a ring buffer of recent cycles (the
// flight recorder consulted when an invariant trips or a latency spike
// needs explaining) plus cumulative per-position grant counters and
// per-VOQ starvation ages. The in-memory footprint is bounded by the
// ring capacity; export is JSONL (one object per cycle, stream-friendly)
// or CSV via util/csv.
//
// This is the per-cycle diagnosis style of the RR/RR CICQ burst study
// (Gunther, cs/0403029): end-of-run averages hide exactly the transient
// misbehaviour — a stuck rotating priority, a starving VOQ — that the
// trace makes visible.

#include <cstdint>
#include <ostream>
#include <vector>

#include "obs/counters.hpp"
#include "sched/matching.hpp"
#include "sched/request_matrix.hpp"

namespace lcf::obs {

/// Tracks, per (input, output) position, how many consecutive past
/// cycles the position requested without being granted. A grant or a
/// cycle without a request resets the age to zero — so the age is
/// exactly the "continuously asserted and denied" streak the paper's §3
/// fairness guarantee bounds by n² for the rotating-diagonal variants.
class StarvationAges {
public:
    StarvationAges() = default;
    StarvationAges(std::size_t inputs, std::size_t outputs);

    void reset(std::size_t inputs, std::size_t outputs);
    /// Fold one cycle; returns the largest age after the update.
    std::uint64_t observe(const sched::RequestMatrix& requests,
                          const sched::Matching& matching);

    [[nodiscard]] std::uint64_t age(std::size_t input,
                                    std::size_t output) const noexcept {
        return ages_[input * outputs_ + output];
    }
    /// Largest current age across all positions.
    [[nodiscard]] std::uint64_t max_age() const noexcept;
    /// Largest age ever observed since reset().
    [[nodiscard]] std::uint64_t high_watermark() const noexcept {
        return high_watermark_;
    }

private:
    std::size_t inputs_ = 0;
    std::size_t outputs_ = 0;
    std::vector<std::uint64_t> ages_;  // row-major inputs × outputs
    std::uint64_t high_watermark_ = 0;
};

/// One recorded scheduling cycle.
struct TraceRecord {
    std::uint64_t cycle = 0;     ///< scheduling-cycle index (monotonic)
    std::uint32_t requests = 0;  ///< request bits offered this cycle
    std::uint32_t granted = 0;   ///< matching size
    std::uint32_t max_age = 0;   ///< worst starvation age after this cycle
    /// Input granted to each output this cycle (sched::kUnmatched = idle);
    /// a verbatim copy of the matching's output-side map.
    std::vector<std::int32_t> grant_of_output;
};

/// Ring-buffered per-cycle event sink with cumulative per-position
/// counters. record() is O(n) per cycle; everything else is bookkeeping
/// on top of memory the ring already owns.
class SchedTrace {
public:
    /// Keep the most recent `capacity` cycles (capacity >= 1).
    explicit SchedTrace(std::size_t inputs, std::size_t outputs,
                        std::size_t capacity = 1024);

    /// Forget everything and adopt a new geometry.
    void reset(std::size_t inputs, std::size_t outputs);

    /// Record one scheduling cycle.
    void record(std::uint64_t cycle, const sched::RequestMatrix& requests,
                const sched::Matching& matching);

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    /// Number of cycles currently retained (<= capacity()).
    [[nodiscard]] std::size_t size() const noexcept {
        return std::min(recorded_, capacity_);
    }
    /// Total cycles ever recorded (including ones the ring evicted).
    [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
    /// k-th retained record, oldest first (precondition: k < size()).
    [[nodiscard]] const TraceRecord& at(std::size_t k) const noexcept;

    /// Cumulative grants of position [input, output] over the whole run
    /// (not just the retained window) — the paper's service matrix.
    [[nodiscard]] std::uint64_t grants_at(std::size_t input,
                                          std::size_t output) const noexcept {
        return grant_counts_[input * outputs_ + output];
    }
    [[nodiscard]] const StarvationAges& ages() const noexcept { return ages_; }
    [[nodiscard]] const SchedCounters& counters() const noexcept {
        return counters_;
    }
    [[nodiscard]] std::size_t inputs() const noexcept { return inputs_; }
    [[nodiscard]] std::size_t outputs() const noexcept { return outputs_; }

    /// Write the retained window as CSV: one row per cycle with the
    /// matching serialised as "i->j" pairs separated by spaces.
    void export_csv(std::ostream& out) const;
    /// Write the retained window as JSON Lines: one object per cycle
    /// with the grants as [input, output] pairs.
    void export_jsonl(std::ostream& out) const;

private:
    std::size_t inputs_ = 0;
    std::size_t outputs_ = 0;
    std::size_t capacity_ = 0;
    std::uint64_t recorded_ = 0;
    std::vector<TraceRecord> ring_;
    std::vector<std::uint64_t> grant_counts_;  // row-major inputs × outputs
    StarvationAges ages_;
    SchedCounters counters_;
};

}  // namespace lcf::obs
