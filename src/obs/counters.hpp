#pragma once
// Structured per-run scheduler counters: the cheap, always-on layer of
// the observability subsystem. One SchedCounters instance accompanies
// every simulated switch (and every Clint bulk channel); sweep results
// merge them across worker threads, so fleet-wide grant statistics stay
// exact regardless of how the grid was parallelised.

#include <cstdint>

namespace lcf::obs {

/// Aggregated per-cycle scheduling statistics. All fields are plain
/// sums/extrema so that merge() is associative and commutative — the
/// property the multi-threaded sweep aggregation relies on.
struct SchedCounters {
    std::uint64_t cycles = 0;        ///< scheduling cycles observed
    std::uint64_t requests = 0;      ///< request bits summed over cycles
    std::uint64_t grants = 0;        ///< matched pairs summed over cycles
    std::uint64_t empty_cycles = 0;  ///< cycles with an empty matching
    std::uint64_t max_matching = 0;  ///< largest single-cycle matching
    /// Longest observed streak of cycles a (input, output) pair requested
    /// continuously without being granted. Only tracked when a SchedTrace
    /// or ParanoidChecker watches the run; 0 otherwise.
    std::uint64_t max_starvation_age = 0;
    /// Invariant violations found by the ParanoidChecker (0 unless
    /// paranoid mode ran with throwing disabled).
    std::uint64_t paranoid_violations = 0;
    /// Cycles in which the scheduler was forcibly stalled by a fault
    /// plan (fault::SchedulerStall) and produced no matching. These
    /// cycles are not part of `cycles`: no scheduling ran.
    std::uint64_t stalled_cycles = 0;

    /// Fold one scheduling cycle into the counters.
    void observe_cycle(std::uint64_t request_bits,
                       std::uint64_t matching_size) noexcept;
    /// Combine counters from another run or worker thread.
    void merge(const SchedCounters& other) noexcept;

    /// Mean matching size per cycle (0 when no cycles ran).
    [[nodiscard]] double mean_matching() const noexcept;
    /// Fraction of offered request bits that were granted, in [0, 1].
    [[nodiscard]] double grant_fraction() const noexcept;

    friend bool operator==(const SchedCounters&,
                           const SchedCounters&) = default;
};

}  // namespace lcf::obs
