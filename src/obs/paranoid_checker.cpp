#include "obs/paranoid_checker.hpp"

#include <stdexcept>

namespace lcf::obs {

ParanoidChecker::ParanoidChecker(const ParanoidOptions& options)
    : options_(options) {}

ParanoidOptions ParanoidChecker::options_for(std::string_view scheduler_name,
                                             std::size_t iterations) {
    ParanoidOptions opts;
    // All rotating-diagonal variants promise at least the b/n² floor:
    // the anchor position covers every [i, j] once per n² cycles, so a
    // continuously asserted request is granted within n² cycles.
    opts.check_diagonal_fairness = scheduler_name == "lcf_central_rr" ||
                                   scheduler_name == "lcf_central_rr_single" ||
                                   scheduler_name == "lcf_central_rr_first";
    const bool iterative =
        scheduler_name == "pim" || scheduler_name == "islip" ||
        scheduler_name == "lcf_dist" || scheduler_name == "lcf_dist_rr";
    if (iterative) opts.iteration_budget = iterations;
    return opts;
}

void ParanoidChecker::reset(std::size_t inputs, std::size_t outputs) {
    inputs_ = inputs;
    outputs_ = outputs;
    fairness_window_ = options_.fairness_window
                           ? options_.fairness_window
                           : static_cast<std::uint64_t>(inputs) * outputs;
    ages_.reset(inputs, outputs);
    cycles_checked_ = 0;
    violation_count_ = 0;
    violations_.clear();
}

void ParanoidChecker::violation(const std::string& message) {
    const std::string full = "paranoid: cycle " +
                             std::to_string(cycles_checked_) + ": " + message;
    if (options_.throw_on_violation) throw std::logic_error(full);
    ++violation_count_;
    // Keep the log bounded; the count keeps the full tally.
    if (violations_.size() < 64) violations_.push_back(full);
}

std::size_t ParanoidChecker::check_cycle(const sched::RequestMatrix& requests,
                                         const sched::Matching& matching) {
    const std::uint64_t before = violation_count_;

    // Geometry.
    if (requests.inputs() != inputs_ || requests.outputs() != outputs_) {
        violation("request matrix geometry " +
                  std::to_string(requests.inputs()) + "x" +
                  std::to_string(requests.outputs()) + " != configured " +
                  std::to_string(inputs_) + "x" + std::to_string(outputs_));
        return static_cast<std::size_t>(violation_count_ - before);
    }
    if (matching.inputs() != inputs_ || matching.outputs() != outputs_) {
        violation("matching geometry mismatch");
        return static_cast<std::size_t>(violation_count_ - before);
    }

    // Invariants 1 + 2: valid partial permutation, every grant backed by
    // a request. Both direction maps are walked independently.
    for (std::size_t i = 0; i < inputs_; ++i) {
        const std::int32_t j = matching.output_of(i);
        if (j == sched::kUnmatched) continue;
        if (j < 0 || static_cast<std::size_t>(j) >= outputs_) {
            violation("input " + std::to_string(i) +
                      " matched to out-of-range output " + std::to_string(j));
            continue;
        }
        if (matching.input_of(static_cast<std::size_t>(j)) !=
            static_cast<std::int32_t>(i)) {
            violation("direction maps disagree: input " + std::to_string(i) +
                      " -> output " + std::to_string(j) + " but output " +
                      std::to_string(j) + " -> input " +
                      std::to_string(matching.input_of(
                          static_cast<std::size_t>(j))));
        }
        if (!requests.get(i, static_cast<std::size_t>(j))) {
            violation("grant [" + std::to_string(i) + ", " +
                      std::to_string(j) + "] has no backing request");
        }
    }
    for (std::size_t j = 0; j < outputs_; ++j) {
        const std::int32_t i = matching.input_of(j);
        if (i == sched::kUnmatched) continue;
        if (i < 0 || static_cast<std::size_t>(i) >= inputs_) {
            violation("output " + std::to_string(j) +
                      " matched to out-of-range input " + std::to_string(i));
            continue;
        }
        if (matching.output_of(static_cast<std::size_t>(i)) !=
            static_cast<std::int32_t>(j)) {
            violation("direction maps disagree: output " + std::to_string(j) +
                      " -> input " + std::to_string(i) + " but input " +
                      std::to_string(i) + " -> output " +
                      std::to_string(matching.output_of(
                          static_cast<std::size_t>(i))));
        }
    }

    // Invariant 3: the maintained word-parallel counts (NRQ per row, NGT
    // per column, grand total) equal counts recomputed bit by bit.
    std::uint64_t total_bits = 0;
    std::vector<std::size_t> col_bits(outputs_, 0);
    for (std::size_t i = 0; i < inputs_; ++i) {
        std::size_t row_bits = 0;
        for (std::size_t j = 0; j < outputs_; ++j) {
            if (requests.get(i, j)) {
                ++row_bits;
                ++col_bits[j];
            }
        }
        total_bits += row_bits;
        if (requests.row_count(i) != row_bits) {
            violation("NRQ mismatch at input " + std::to_string(i) +
                      ": row_count() = " +
                      std::to_string(requests.row_count(i)) +
                      ", recomputed = " + std::to_string(row_bits));
        }
    }
    for (std::size_t j = 0; j < outputs_; ++j) {
        if (requests.col_count(j) != col_bits[j]) {
            violation("NGT mismatch at output " + std::to_string(j) +
                      ": col_count() = " +
                      std::to_string(requests.col_count(j)) +
                      ", recomputed = " + std::to_string(col_bits[j]));
        }
    }
    if (requests.total() != total_bits) {
        violation("total() = " + std::to_string(requests.total()) +
                  " != recomputed " + std::to_string(total_bits));
    }

    // Invariant 4: rotating-diagonal fairness. The age of a position is
    // its continuously-requested-and-denied streak; the anchor visits
    // every position once per fairness window, so the streak may never
    // exceed it.
    const std::uint64_t worst = ages_.observe(requests, matching);
    if (options_.check_diagonal_fairness && worst > fairness_window_) {
        violation("diagonal fairness violated: a continuously requesting "
                  "position has been denied for " +
                  std::to_string(worst) + " cycles (window " +
                  std::to_string(fairness_window_) + ")");
    }

    ++cycles_checked_;
    return static_cast<std::size_t>(violation_count_ - before);
}

std::size_t ParanoidChecker::check_iterations(std::size_t used) {
    if (options_.iteration_budget == 0) return 0;
    const std::uint64_t before = violation_count_;
    if (used > options_.iteration_budget) {
        violation("scheduler ran " + std::to_string(used) +
                  " iterations, exceeding its budget of " +
                  std::to_string(options_.iteration_budget));
    }
    return static_cast<std::size_t>(violation_count_ - before);
}

}  // namespace lcf::obs
