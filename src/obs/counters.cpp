#include "obs/counters.hpp"

#include <algorithm>

namespace lcf::obs {

void SchedCounters::observe_cycle(std::uint64_t request_bits,
                                  std::uint64_t matching_size) noexcept {
    ++cycles;
    requests += request_bits;
    grants += matching_size;
    if (matching_size == 0) ++empty_cycles;
    max_matching = std::max(max_matching, matching_size);
}

void SchedCounters::merge(const SchedCounters& other) noexcept {
    cycles += other.cycles;
    requests += other.requests;
    grants += other.grants;
    empty_cycles += other.empty_cycles;
    max_matching = std::max(max_matching, other.max_matching);
    max_starvation_age = std::max(max_starvation_age, other.max_starvation_age);
    paranoid_violations += other.paranoid_violations;
    stalled_cycles += other.stalled_cycles;
}

double SchedCounters::mean_matching() const noexcept {
    return cycles ? static_cast<double>(grants) / static_cast<double>(cycles)
                  : 0.0;
}

double SchedCounters::grant_fraction() const noexcept {
    return requests ? static_cast<double>(grants) /
                          static_cast<double>(requests)
                    : 0.0;
}

}  // namespace lcf::obs
